"""Aggregate AQP from an approximation set (paper §6.4).

Run with::

    python examples/aggregate_aqp.py

ASQP-RL trains for non-aggregate queries, yet the same approximation set
answers COUNT/SUM/AVG queries "surprisingly well" (paper §6.4): COUNT and
SUM answers are rescaled by a *self-calibrated* inclusion rate the model
measures on its own training queries, AVG is scale-free. The example
compares against the two dedicated AQP engines the paper uses — gAQP
(tabular VAE) and DeepDB (Sum-Product Network).
"""

from __future__ import annotations

import numpy as np

from repro import ASQPConfig, load_flights
from repro.baselines import GAQPEstimator, SPNModel, UnsupportedQueryError
from repro.core import ASQPTrainer, aggregate_relative_error, relative_error
from repro.db import execute_aggregate


def main() -> None:
    bundle = load_flights(scale=0.4)
    rng = np.random.default_rng(0)
    train, test = bundle.aggregate_workload.split(0.4, rng)
    print(f"database: {bundle.db}")
    print(f"aggregate workload: {len(train)} train / {len(test)} test queries\n")

    # ASQP-RL in aggregate mode: larger frame size, ~8% memory.
    memory = max(1, int(0.08 * bundle.db.total_rows()))
    config = ASQPConfig(
        memory_budget=memory, frame_size=200,
        n_iterations=25, learning_rate=1e-3, seed=0,
    )
    print(f"training ASQP-RL (k={memory}, F=200) on the rewritten workload...")
    model = ASQPTrainer(bundle.db, train, config).train()
    approx_db = model.approximation_database()
    scale = model.calibrated_count_scale()
    print(f"self-calibrated COUNT/SUM scale: x{scale:.2f}\n")

    print("training gAQP (VAE) and DeepDB (SPN)...")
    gaqp = GAQPEstimator(bundle.db, memory_fraction=0.05, epochs=20, seed=1)
    spn = SPNModel(bundle.db.table("flights"), seed=2)

    asqp_errors, gaqp_errors, spn_errors = [], [], []
    for query in test.queries:
        asqp_errors.append(
            aggregate_relative_error(bundle.db, approx_db, query, scale_counts=scale)
        )
        gaqp_errors.append(gaqp.answer_error(query))
        try:
            estimated = spn.answer(query)
            truth = execute_aggregate(bundle.db, query).as_mapping()
            per_group = []
            for key, true_row in truth.items():
                est_row = estimated.get(key)
                for name, value in true_row.items():
                    if est_row is None or name not in est_row:
                        per_group.append(1.0)
                    else:
                        per_group.append(relative_error(est_row[name], value))
            spn_errors.append(float(np.mean(per_group)) if per_group else 0.0)
        except UnsupportedQueryError:
            spn_errors.append(1.0)

    print("\nmean relative error over the test queries (lower is better):")
    print(f"  ASQP-RL : {np.mean(asqp_errors):.3f}")
    print(f"  gAQP    : {np.mean(gaqp_errors):.3f}")
    print(f"  DeepDB  : {np.mean(spn_errors):.3f}")

    # Show one concrete group-by answer side by side.
    query = next(q for q in test.queries if q.group_by)
    truth = execute_aggregate(bundle.db, query).as_mapping()
    approx = execute_aggregate(approx_db, query).as_mapping()
    name = query.aggregates[0].output_name()
    print(f"\nexample: {query.to_sql()[:75]}")
    shown = 0
    for key, true_row in truth.items():
        approx_row = approx.get(key)
        estimate = approx_row[name] if approx_row else float("nan")
        if name.startswith(("count", "sum")):
            estimate *= scale
        print(f"  group {key}: truth={true_row[name]:.1f} asqp≈{estimate:.1f}")
        shown += 1
        if shown >= 5:
            break


if __name__ == "__main__":
    main()
