"""Interest drift in action: the session notices and adapts (paper §4.4).

Run with::

    python examples/drift_session.py

A session is trained on publication-centric MAS queries. The user then
shifts to author-centric exploration; the answerability estimator flags
the new queries as deviating from the training workload, and once three
deviating queries accumulate (the paper's trigger), the model fine-tunes
itself — after which the new interest answers well from the refreshed
approximation set.
"""

from __future__ import annotations

from repro import ASQPConfig, ASQPSystem, load_mas
from repro.datasets import Workload
from repro.db import sql


def main() -> None:
    bundle = load_mas(scale=0.4)
    # Train only on the publication/venue part of the workload.
    publication_queries = [
        q for q in bundle.workload if "author" not in q.tables
    ]
    print(f"training on {len(publication_queries)} publication-centric queries...")
    config = ASQPConfig(
        memory_budget=500,
        n_iterations=20,
        learning_rate=1e-3,
        drift_trigger_count=3,
        fine_tune_iterations=6,
        seed=5,
    )
    session = ASQPSystem(config).fit(
        bundle.db, Workload(list(publication_queries))
    )
    print(f"ready: {session.approximation_set}\n")

    # The user's interest drifts to authors.
    drifted = [
        sql("SELECT author.name FROM author WHERE author.h_index > 20"),
        sql("SELECT author.name FROM author "
            "WHERE author.affiliation_country = 'il' AND author.h_index > 5"),
        sql("SELECT author.name, author.h_index FROM author "
            "WHERE author.affiliation_country IN ('us', 'uk')"),
        sql("SELECT author.name FROM author WHERE author.h_index BETWEEN 10 AND 30"),
    ]

    for i, query in enumerate(drifted, start=1):
        deviation = session.estimator.deviation_confidence(query)
        outcome = session.query(query)
        print(f"[{i}] {query.to_sql()[:70]}")
        print(f"    deviation confidence {deviation:.2f}; "
              f"pending drift count {session.drift_detector.pending_count}; "
              f"fine-tuned: {outcome.fine_tuned}")
    print()

    print(f"drift events fired: {session.drift_detector.events_fired}")
    print(f"model fine-tune count: {session.model.fine_tune_count}")

    # After fine-tuning the author queries are familiar and answerable.
    estimate = session.estimator.estimate(drifted[0])
    print(f"post-fine-tune familiarity of the first drifted query: "
          f"{estimate.familiarity:.2f} (confidence {estimate.confidence:.2f})")
    author_rows = session.approximation_set.rows.get("author", set())
    print(f"approximation set now holds {len(author_rows)} author tuples")


if __name__ == "__main__":
    main()
