"""Compare ASQP-RL against the paper's baselines on one split.

Run with::

    python examples/baseline_comparison.py

A compact version of the Figure 2 experiment: one train/test split of the
IMDB workload, every method builds its k-tuple stand-in, and each is
scored with the ANAQP metric (Eq. 1) on the held-out queries.
"""

from __future__ import annotations

import numpy as np

from repro import load_imdb
from repro.baselines import baseline_names, make_baseline
from repro.bench import bench_asqp_config
from repro.core import ASQPTrainer, score

K = 800
FRAME_SIZE = 50


def main() -> None:
    bundle = load_imdb(scale=0.4, n_queries=50)
    train, test = bundle.workload.split(0.3, np.random.default_rng(0))
    print(f"database: {bundle.db}")
    print(f"workload: {len(train)} training / {len(test)} test queries; "
          f"k={K}, F={FRAME_SIZE}\n")

    rows: list[tuple[str, float, float]] = []

    config = bench_asqp_config(K, FRAME_SIZE, seed=1, n_iterations=30)
    model = ASQPTrainer(bundle.db, train, config).train()
    quality = score(bundle.db, model.approximation_database(), test, FRAME_SIZE)
    rows.append(("ASQP-RL", quality, model.setup_seconds))

    for name in baseline_names():
        selector = make_baseline(name)
        budget = 15.0 if name in ("BRT", "GRE") else None
        result = selector.select(
            bundle.db, train, K, FRAME_SIZE, np.random.default_rng(2),
            time_budget=budget,
        )
        quality = score(bundle.db, result.database, test, FRAME_SIZE)
        label = name if result.completed else f"{name} (timeout)"
        rows.append((label, quality, result.setup_seconds))

    rows.sort(key=lambda r: -r[1])
    width = max(len(r[0]) for r in rows)
    print(f"{'method'.ljust(width)} | score  | setup")
    print("-" * (width + 18))
    for name, quality, setup in rows:
        print(f"{name.ljust(width)} | {quality:.3f}  | {setup:6.1f}s")


if __name__ == "__main__":
    main()
