"""A realistic movie-exploration session over the IMDB benchmark.

Run with::

    python examples/imdb_exploration.py

Plays the scenario from the paper's introduction: a data scientist
explores a movie database with complex select-project-join queries —
which companies release highly rated science fiction? who acts in recent
French productions? — where each direct query on the full data is slow.
ASQP-RL trains once offline, then the whole session runs against the
approximation set, including an aggregate drill-down at the end (§6.4).
"""

from __future__ import annotations

from repro import ASQPConfig, ASQPSystem, load_imdb
from repro.db import sql


SESSION = [
    # Non-aggregate exploration (the paper's primary target).
    "SELECT title.title, title.rating FROM title "
    "WHERE title.kind = 'movie' AND title.rating > 7.5 "
    "ORDER BY title.rating DESC LIMIT 20",

    "SELECT title.title, company.name, company.country_code "
    "FROM title, movie_companies, company "
    "WHERE title.id = movie_companies.movie_id "
    "AND movie_companies.company_id = company.id "
    "AND company.country_code IN ('fr', 'de') "
    "AND title.production_year > 2000",

    "SELECT title.title, person.name, cast_info.role "
    "FROM title, cast_info, person "
    "WHERE title.id = cast_info.movie_id "
    "AND cast_info.person_id = person.id "
    "AND cast_info.role = 'director' AND title.rating > 7.0",

    "SELECT title.title, movie_info.info FROM title, movie_info "
    "WHERE title.id = movie_info.movie_id "
    "AND movie_info.info = 'scifi' AND title.production_year BETWEEN 1995 AND 2015",

    # Aggregate drill-down — not what the model trained for, but the
    # subset preserves group distributions well enough (paper §6.4).
    "SELECT kind, COUNT(*) FROM title WHERE production_year > 2000 GROUP BY kind",
    "SELECT kind, AVG(rating) FROM title GROUP BY kind",
]


def main() -> None:
    bundle = load_imdb(scale=0.4, n_queries=50)
    print(f"exploring {bundle.db}\n")

    config = ASQPConfig(
        memory_budget=1000,
        frame_size=50,
        n_iterations=30,
        learning_rate=1e-3,
        seed=1,
    )
    print("training the mediator on the historical workload...")
    session = ASQPSystem(config).fit(bundle.db, bundle.workload)
    approx = session.approximation_set
    kept = {t: len(ids) for t, ids in sorted(approx.rows.items())}
    print(f"approximation set ready: {approx.total_size()} tuples {kept}\n")

    for i, text in enumerate(SESSION, start=1):
        query = sql(text)
        outcome = session.query(query)
        source = "approx" if outcome.used_approximation else "full DB"
        print(f"[{i}] {text[:78]}...")
        print(
            f"    {len(outcome)} rows via {source} "
            f"({outcome.elapsed_seconds * 1000:.1f}ms, "
            f"confidence {outcome.estimate.confidence:.2f})"
        )
        if query.is_aggregate and outcome.used_approximation:
            for row in outcome.result.rows[:4]:
                print(f"      {row}")
        print()

    answered_fast = sum(
        1 for text in SESSION
        if session.estimator.estimate(sql(text)).answerable
    )
    print(
        f"{answered_fast}/{len(SESSION)} session queries deemed answerable "
        "from the approximation set"
    )


if __name__ == "__main__":
    main()
