"""Quickstart: train ASQP-RL on the IMDB benchmark and query it.

Run with::

    python examples/quickstart.py

Covers the core loop of the paper in ~a minute: load a database and its
query workload, train the RL model offline, get the approximation set,
and answer exploratory queries from it — falling back to the full
database when the estimator says the subset can't answer well.
"""

from __future__ import annotations

import time

from repro import ASQPConfig, ASQPSystem, load_imdb
from repro.db import sql, timed_execute


def main() -> None:
    # 1. A database plus the query workload of past exploration sessions.
    bundle = load_imdb(scale=0.3, n_queries=40)
    print(f"database: {bundle.db}")
    print(f"workload: {len(bundle.workload)} SPJ queries\n")

    # 2. Offline training: learn which tuples to keep (the paper's Alg. 1).
    config = ASQPConfig(
        memory_budget=600,     # k — total tuples the approximation set may hold
        frame_size=50,         # F — result rows a person actually reads
        n_iterations=25,
        learning_rate=1e-3,
        seed=0,
    )
    print(f"training ASQP-RL (k={config.memory_budget}, F={config.frame_size})...")
    start = time.perf_counter()
    session = ASQPSystem(config).fit(bundle.db, bundle.workload)
    print(f"trained in {time.perf_counter() - start:.1f}s; "
          f"approximation set: {session.approximation_set}\n")

    # 3. Interactive exploration. Known-workload queries answer from the
    #    approximation set in milliseconds.
    query = bundle.workload.queries[0]
    print(f"Q1 (from the workload): {query.to_sql()}")
    outcome = session.query(query)
    source = "approximation set" if outcome.used_approximation else "full database"
    print(f"  -> {len(outcome)} rows from the {source} "
          f"in {outcome.elapsed_seconds * 1000:.1f}ms "
          f"(confidence {outcome.estimate.confidence:.2f})\n")

    # 4. A novel ad-hoc query: the estimator notices it is unfamiliar and
    #    routes it to the full database for an exact answer.
    novel = sql(
        "SELECT person.name FROM person WHERE person.birth_year < 1940 "
        "AND person.gender = 'f'"
    )
    print(f"Q2 (ad hoc): {novel.to_sql()}")
    outcome = session.query(novel)
    source = "approximation set" if outcome.used_approximation else "full database"
    print(f"  -> {len(outcome)} rows from the {source} "
          f"(confidence {outcome.estimate.confidence:.2f})\n")

    # 5. Compare against querying the full database directly.
    _, full_seconds = timed_execute(bundle.db, query)
    _, approx_seconds = timed_execute(session.approx_db, query)
    print(f"direct execution of Q1: {full_seconds * 1000:.1f}ms on the full data "
          f"vs {approx_seconds * 1000:.1f}ms on the approximation set")


if __name__ == "__main__":
    main()
