"""No-workload scenario: ASQP-RL without any historical queries.

Run with::

    python examples/flights_no_workload.py

Demonstrates §4.5 of the paper: when no query workload exists, the system
generates one from table statistics (numeric means/stds, popularity-
sampled categorical values, standard templates), trains on it, and then
*aligns itself with the user* during the session — each batch of real user
queries refines the generator and fine-tunes the model.
"""

from __future__ import annotations

import numpy as np

from repro import ASQPConfig, ASQPSystem, load_flights, score
from repro.datasets import Workload


def main() -> None:
    bundle = load_flights(scale=0.4)
    print(f"database: {bundle.db}")
    print("no workload provided — the system will generate one\n")

    config = ASQPConfig(
        memory_budget=800,
        frame_size=50,
        n_iterations=20,
        learning_rate=1e-3,
        fine_tune_iterations=6,
        seed=2,
    )
    session = ASQPSystem(config).fit(
        bundle.db, workload=None, n_generated_queries=30
    )
    print(f"trained on a generated workload; "
          f"approximation set holds {session.approximation_set.total_size()} tuples\n")

    # The user's real interest (hidden from training): delay analysis.
    user_queries = list(bundle.workload)[:15]
    for step in range(3):
        batch = user_queries[step * 5 : (step + 1) * 5]
        seen = Workload(user_queries[: (step + 1) * 5])
        quality = score(bundle.db, session.approx_db, seen, frame_size=50)
        print(f"step {step}: quality on the user's queries so far = {quality:.3f}")
        print(f"        fine-tuning on {len(batch)} new user queries "
              "(+ generator refinement)...")
        session.fine_tune(list(batch))

    final = score(
        bundle.db, session.approx_db, Workload(list(user_queries)), frame_size=50
    )
    print(f"\nfinal quality on the user's 15 queries: {final:.3f}")
    print(f"model fine-tuned {session.model.fine_tune_count} times; "
          f"action space grew to {len(session.model.action_space)} groups")


if __name__ == "__main__":
    main()
