"""Figure 4: problem justification — cumulative average direct-query
latency on progressively larger copies of the IMDB data.

The paper blows up IMDB and shows that even at modest sizes, averaging
over the first queries of a session quickly reaches hours of cumulative
wait. Here the database scales ×{1, 2, 4, 8} and the series is the
cumulative mean per-query latency after 1..N executed queries — the shape
(superlinear growth of waiting time with both database size and session
length) is the reproduced claim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import emit
from repro.db import timed_execute

SCALE_FACTORS = [1, 2, 4, 8]
N_SESSION_QUERIES = 8


def _run(bundle) -> list[dict]:
    rng = np.random.default_rng(3)
    order = rng.permutation(len(bundle.workload))[:N_SESSION_QUERIES]
    queries = [bundle.workload.queries[int(i)] for i in order]
    rows = []
    for factor in SCALE_FACTORS:
        blown = bundle.db.scale(factor)
        elapsed: list[float] = []
        throughput: list[float] = []
        for query in queries:
            timing = timed_execute(blown, query)
            elapsed.append(timing.seconds)
            throughput.append(timing.rows_per_second)
        cumulative_mean = np.cumsum(elapsed) / np.arange(1, len(elapsed) + 1)
        rows.append(
            {
                "scale_factor": factor,
                "total_rows": blown.total_rows(),
                "per_query_seconds": elapsed,
                "per_query_rows_per_second": throughput,
                "mean_rows_per_second": float(np.mean(throughput)),
                "cumulative_mean_seconds": cumulative_mean.tolist(),
                "final_cumulative_mean": float(cumulative_mean[-1]),
            }
        )
    return rows


@pytest.mark.benchmark(group="fig4")
def test_fig4_direct_query_cost(benchmark, imdb_bundle):
    rows = benchmark.pedantic(_run, args=(imdb_bundle,), rounds=1, iterations=1)
    emit(
        "fig4_direct_query_cost",
        [
            "Scale",
            "Rows",
            *[f"after {i + 1} queries (ms)" for i in range(N_SESSION_QUERIES)],
            "rows/s",
        ],
        [
            [
                f"x{r['scale_factor']}",
                r["total_rows"],
                *[f"{v * 1000:.1f}" for v in r["cumulative_mean_seconds"]],
                f"{r['mean_rows_per_second']:.0f}",
            ]
            for r in rows
        ],
        {"rows": rows},
        title="Figure 4 — cumulative mean direct-query latency vs database scale",
    )
    # Latency grows with database size...
    finals = [r["final_cumulative_mean"] for r in rows]
    assert finals[-1] > finals[0]
    # ...and the largest scale is markedly slower than the smallest.
    assert finals[-1] > 2.0 * finals[0]
