"""Figure 10: effect of the executed training-set fraction.

(a) quality and (b) training time as the system executes a decreasing
fraction of the training queries (the ``Q̂_train`` selection of §4.2 —
representative selection keeps one query per embedding cluster).

Paper shape: quality degrades gracefully as the fraction shrinks while
training time drops sharply (the 25% point is ASQP-Light's setting).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import SWEEP_PROFILE, emit, evaluate_method

FRACTIONS = [1.0, 0.75, 0.5, 0.25]
COMPARISON_METHODS = ["TOP", "QUIK"]
K = 1000


def _run(bundle) -> dict:
    train, test = bundle.workload.split(0.3, np.random.default_rng(53))
    asqp_rows = []
    for fraction in FRACTIONS:
        result = evaluate_method(
            bundle, train, test, "ASQP-RL", k=K, frame_size=50, seed=14,
            asqp_overrides={**SWEEP_PROFILE, "training_fraction": fraction},
        )
        asqp_rows.append(
            {
                "fraction": fraction,
                "quality": result.quality,
                "setup_seconds": result.setup_seconds,
            }
        )
    baselines = {}
    for method in COMPARISON_METHODS:
        result = evaluate_method(
            bundle, train, test, method, k=K, frame_size=50, seed=14
        )
        baselines[method] = result.quality
    return {"asqp": asqp_rows, "baselines": baselines}


@pytest.mark.benchmark(group="fig10")
def test_fig10_training_fraction(benchmark, imdb_bundle):
    result = benchmark.pedantic(_run, args=(imdb_bundle,), rounds=1, iterations=1)
    rows = result["asqp"]
    emit(
        "fig10_train_size",
        ["Training fraction", "Quality (a)", "Training time s (b)"],
        [
            [f"{r['fraction']:.0%}", f"{r['quality']:.3f}", f"{r['setup_seconds']:.1f}"]
            for r in rows
        ],
        result,
        title="Figure 10 — quality and training time vs training-set fraction",
    )
    # Shape (a): full training is at least as good as the 25% setting.
    assert rows[0]["quality"] >= rows[-1]["quality"] * 0.95
    # Shape (b): executing fewer queries cannot be much slower. (In this
    # simulator query execution is cheap relative to RL iterations, so the
    # paper's steep time drop flattens; the guard is against regression.)
    assert rows[-1]["setup_seconds"] <= rows[0]["setup_seconds"] * 1.5
    # Even at reduced fractions ASQP stays comparable to the baselines.
    best_baseline = max(result["baselines"].values())
    assert rows[1]["quality"] >= best_baseline * 0.6
