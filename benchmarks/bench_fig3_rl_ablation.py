"""Figure 3: RL ablation study — {GSL, DRP, DRP+GSL} environments ×
{full, −ppo, −ppo −ac} agents, on IMDB and MAS.

Paper shape to reproduce: GSL is the best environment; within GSL,
removing PPO clipping degrades the score and additionally removing the
actor-critic (REINFORCE) degrades it further; DRP is clearly worst; the
hybrid sits between.

Inference is *environment-faithful*: the GSL variants produce their set via
Alg. 2 (sequential growth); the DRP variants produce the episode outcome of
the drop-one process itself (random initialization to the budget, then
policy-guided swaps with random evictions) — which is where the paper's
reported DRP instability lives. Running Alg. 2 growth on a DRP-trained
policy would quietly convert DRP into GSL at inference time.
"""

from __future__ import annotations

import numpy as np
import pytest


from repro.bench import SWEEP_PROFILE, bench_asqp_config, emit
from repro.core import ASQPTrainer, make_environment, score

ENVIRONMENTS = ["gsl", "drp", "drp+gsl"]
AGENTS = [
    ("ASQP-RL", dict(use_ppo_clip=True, use_actor_critic=True)),
    ("ASQP-RL -ppo", dict(use_ppo_clip=False, use_actor_critic=True)),
    ("ASQP-RL -ppo -ac", dict(use_ppo_clip=False, use_actor_critic=False)),
]


def _environment_faithful_set(model, config):
    """The approximation set the *trained environment's* process produces."""
    if config.environment == "gsl":
        return model.approximation_set()
    env = make_environment(
        config.environment,
        model.action_space,
        model.coverages,
        config,
        np.random.default_rng(config.seed + 77),
        query_batch=list(range(len(model.coverages))),
    )
    state, mask = env.reset()
    done = False
    steps = 0
    while not done and mask.any() and steps < 5 * config.drp_horizon:
        action = model.agent.actor.greedy(state, mask)
        state, _, done, mask = env.step(action)
        steps += 1
    return env.approximation_set()


def _run_dataset(bundle, k: int) -> list[dict]:
    train, test = bundle.workload.split(0.3, np.random.default_rng(17))
    rows = []
    for environment in ENVIRONMENTS:
        for agent_name, agent_flags in AGENTS:
            config = bench_asqp_config(
                k, 50, seed=5,
                environment=environment,
                drp_horizon=120,
                **agent_flags,
                **{**SWEEP_PROFILE, "n_iterations": 12},
            )
            model = ASQPTrainer(bundle.db, train, config).train()
            approx = _environment_faithful_set(model, config)
            quality = score(
                bundle.db, approx.to_database(bundle.db), test, 50
            )
            rows.append(
                {
                    "environment": environment.upper(),
                    "agent": agent_name,
                    "score": quality,
                    "total_seconds": model.setup_seconds,
                    "iterations": len(model.history),
                }
            )
    return rows


def _emit(name: str, rows: list[dict]) -> None:
    emit(
        f"fig3_{name}",
        ["Environment", "Agent", "Score", "Total time (s)", "Iterations"],
        [
            [r["environment"], r["agent"], f"{r['score']:.3f}",
             f"{r['total_seconds']:.1f}", r["iterations"]]
            for r in rows
        ],
        {"rows": rows},
        title=f"Figure 3 — RL ablation ({name.upper()})",
    )


def _by(rows, environment, agent):
    return next(
        r["score"] for r in rows
        if r["environment"] == environment and r["agent"] == agent
    )


@pytest.mark.benchmark(group="fig3")
def test_fig3_imdb(benchmark, imdb_bundle):
    rows = benchmark.pedantic(
        _run_dataset, args=(imdb_bundle, 1000), rounds=1, iterations=1
    )
    _emit("imdb", rows)
    # Paper shape: GSL with the full agent dominates DRP with the full agent.
    assert _by(rows, "GSL", "ASQP-RL") > _by(rows, "DRP", "ASQP-RL")
    # Full GSL agent is at least as good as the REINFORCE ablation.
    assert _by(rows, "GSL", "ASQP-RL") >= _by(rows, "GSL", "ASQP-RL -ppo -ac") * 0.95


@pytest.mark.benchmark(group="fig3")
def test_fig3_mas(benchmark, mas_bundle):
    rows = benchmark.pedantic(
        _run_dataset, args=(mas_bundle, 500), rounds=1, iterations=1
    )
    _emit("mas", rows)
    assert _by(rows, "GSL", "ASQP-RL") > _by(rows, "DRP", "ASQP-RL")
