"""Figure 9: quality vs frame size F.

Increasing F at fixed k makes the problem harder — every query needs more
covered rows before its Eq. 1 term saturates — so all curves decrease;
ASQP-RL stays on top throughout (paper: SKY falls from ~0.4 to ~0.2).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import SWEEP_PROFILE, ascii_chart, emit, evaluate_method

F_VALUES = [25, 50, 75, 100]
METHODS = ["ASQP-RL", "RAN", "TOP", "CACH", "QUIK", "SKY"]
K = 1000


def _run(bundle) -> dict:
    train, test = bundle.workload.split(0.3, np.random.default_rng(47))
    series: dict[str, list[float]] = {m: [] for m in METHODS}
    for frame_size in F_VALUES:
        for method in METHODS:
            result = evaluate_method(
                bundle, train, test, method, k=K, frame_size=frame_size,
                seed=12, asqp_overrides=SWEEP_PROFILE,
            )
            series[method].append(result.quality)
    return series


@pytest.mark.benchmark(group="fig9")
def test_fig9_frame_sweep(benchmark, imdb_bundle):
    series = benchmark.pedantic(_run, args=(imdb_bundle,), rounds=1, iterations=1)
    emit(
        "fig9_frame_f",
        ["Method", *[f"F={f}" for f in F_VALUES]],
        [[m, *[f"{v:.3f}" for v in series[m]]] for m in series],
        {"f_values": F_VALUES, "series": series},
        title="Figure 9 — quality vs frame size F (IMDB, k=1000)",
    )
    print(ascii_chart(series, F_VALUES, title="Figure 9 (chart)"))
    # Shape: growing F makes the problem harder for everyone.
    asqp = series["ASQP-RL"]
    assert asqp[0] >= asqp[-1]
    # ASQP-RL stays competitive with the best baseline at every F.
    for i in range(len(F_VALUES)):
        best_baseline = max(series[m][i] for m in METHODS if m != "ASQP-RL")
        assert asqp[i] >= best_baseline * 0.75
