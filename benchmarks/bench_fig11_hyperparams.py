"""Figure 11: RL hyper-parameter tuning.

Sweeps the three coefficients the paper tunes — entropy coefficient,
learning rate, KL coefficient — one at a time around the default
configuration, reporting the resulting quality.

Paper shape: the entropy coefficient is the decisive knob (a small
positive value beats both 0 and large values); quality is comparatively
flat in the KL coefficient; extreme learning rates hurt.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import SWEEP_PROFILE, bench_asqp_config, emit
from repro.core import ASQPTrainer, score

ENTROPY_VALUES = [0.0, 0.001, 0.0015, 0.01, 0.015, 0.02]
LEARNING_RATES = [5e-5, 5e-4, 5e-3, 5e-2]
KL_VALUES = [0.2, 0.3, 0.5, 0.7, 0.9]
K = 800

_FAST = dict(SWEEP_PROFILE, n_iterations=10, n_candidate_rollouts=3)


def _quality(bundle, train, test, **overrides) -> float:
    config = bench_asqp_config(K, 50, seed=15, **{**_FAST, **overrides})
    model = ASQPTrainer(bundle.db, train, config).train()
    return score(bundle.db, model.approximation_database(), test, 50)


def _run(bundle) -> dict:
    train, test = bundle.workload.split(0.3, np.random.default_rng(59))
    sweeps = {
        "entropy_coef": [
            {"value": v, "quality": _quality(bundle, train, test, entropy_coef=v)}
            for v in ENTROPY_VALUES
        ],
        "learning_rate": [
            {"value": v, "quality": _quality(bundle, train, test, learning_rate=v)}
            for v in LEARNING_RATES
        ],
        "kl_coef": [
            {"value": v, "quality": _quality(bundle, train, test, kl_coef=v)}
            for v in KL_VALUES
        ],
    }
    return sweeps


@pytest.mark.benchmark(group="fig11")
def test_fig11_hyperparameters(benchmark, imdb_bundle):
    sweeps = benchmark.pedantic(_run, args=(imdb_bundle,), rounds=1, iterations=1)
    for parameter, rows in sweeps.items():
        emit(
            f"fig11_{parameter}",
            [parameter, "Quality"],
            [[f"{r['value']:g}", f"{r['quality']:.3f}"] for r in rows],
            {"rows": rows},
            title=f"Figure 11 — quality vs {parameter}",
        )
    # Shape: every configuration trains to something non-trivial...
    for rows in sweeps.values():
        assert all(r["quality"] > 0.0 for r in rows)
    # ...and the KL sweep is comparatively flat (max/min ratio bounded).
    kl_qualities = [r["quality"] for r in sweeps["kl_coef"]]
    assert max(kl_qualities) <= 3.0 * max(min(kl_qualities), 1e-6) or min(kl_qualities) > 0.05
