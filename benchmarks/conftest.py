"""Shared fixtures and helpers for the paper-reproduction benchmarks.

Every ``bench_fig*.py`` regenerates one table/figure of the paper's §6.
Conventions:

* dataset sizes scale with ``REPRO_BENCH_SCALE`` (default 0.4, ~1000x
  below the paper's data; the *shape* of results is what reproduces);
* each benchmark prints its table (visible with ``pytest -s``) and always
  writes both a JSON record and the formatted text table under
  ``bench_results/`` (override with ``REPRO_RESULTS_DIR``);
* ``REPRO_BENCH_SPLITS`` controls train/test repetitions where the paper
  averages over partitions (default 2 for Fig. 2, 1 for sweeps).

Two ASQP-RL profiles are used: the *full* profile (Fig. 2, the headline
table) and a cheaper *sweep* profile for the many-training-run figures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import bench_scale
from repro.datasets import load_flights, load_imdb, load_mas


@pytest.fixture(scope="session")
def imdb_bundle():
    return load_imdb(scale=bench_scale(0.35), n_queries=50)


@pytest.fixture(scope="session")
def mas_bundle():
    return load_mas(scale=bench_scale(0.35), n_queries=44)


@pytest.fixture(scope="session")
def flights_bundle():
    return load_flights(scale=bench_scale(0.35), n_queries=40)


@pytest.fixture(scope="session")
def split_rng():
    return np.random.default_rng(2024)
