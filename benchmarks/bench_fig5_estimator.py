"""Figure 5: answerability-estimator quality, plus the full-system variants.

Protocol (paper §6.2 "Answers Estimation Quality"): train on a training
workload, build the approximation set, then ask the estimator whether each
*test* query is answerable. Ground truth: the query's actual Eq. 1 score
on the approximation set, thresholded at 0.5. Reported: precision and
recall, repeated with the trainer seeing only 75% / 50% of the training
queries.

Full-system variants: route queries with predicted confidence below 0.6
(resp. 0.8) to the real database — average answer quality rises at the
price of query latency.

Paper shape: high precision/recall at full training (≈0.90/0.95),
degrading gracefully at 50% (≈0.75/0.85); the 0.6-threshold variant lifts
the average score above the approximation-only score, the 0.8 variant
lifts it further.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import SWEEP_PROFILE, bench_asqp_config, emit
from repro.core import ASQPSession, ASQPTrainer, per_query_scores
from repro.datasets import Workload

TRAIN_ACCESS_FRACTIONS = [1.0, 0.75, 0.5]
ANSWERABLE_THRESHOLD = 0.5


def _precision_recall(predicted: list[bool], actual: list[bool]) -> tuple[float, float]:
    tp = sum(1 for p, a in zip(predicted, actual) if p and a)
    fp = sum(1 for p, a in zip(predicted, actual) if p and not a)
    fn = sum(1 for p, a in zip(predicted, actual) if not p and a)
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    return precision, recall


def _run(bundle) -> dict:
    train, test = bundle.workload.split(0.3, np.random.default_rng(23))
    estimator_rows = []
    session_for_variants = None
    for fraction in TRAIN_ACCESS_FRACTIONS:
        config = bench_asqp_config(
            1000, 50, seed=9, training_fraction=fraction, **SWEEP_PROFILE
        )
        model = ASQPTrainer(bundle.db, train, config).train()
        session = ASQPSession(model, auto_fine_tune=False)
        if fraction == 1.0:
            session_for_variants = session

        actual_scores = per_query_scores(
            bundle.db, session.approx_db, test, frame_size=50
        )
        actual = [s >= ANSWERABLE_THRESHOLD for s in actual_scores]
        predicted = [
            session.estimator.estimate(q).confidence >= ANSWERABLE_THRESHOLD
            for q in test.spj_only().queries
        ]
        precision, recall = _precision_recall(predicted, actual)
        estimator_rows.append(
            {
                "training_access": fraction,
                "precision": precision,
                "recall": recall,
                "n_test": len(actual),
                "answerable_rate": float(np.mean(actual)),
            }
        )

    # Full-system variants on the fully trained model.
    assert session_for_variants is not None
    variant_rows = []
    spj_test = test.spj_only()
    approx_only = per_query_scores(
        bundle.db, session_for_variants.approx_db, test, frame_size=50
    )
    for threshold in (None, 0.6, 0.8):
        scores, latencies = [], []
        for i, query in enumerate(spj_test.queries):
            if threshold is None:
                used_full = False
            else:
                confidence = session_for_variants.estimator.estimate(query).confidence
                used_full = confidence < threshold
            outcome = session_for_variants.query(
                query,
                confidence_threshold=(0.0 if threshold is None else threshold),
            )
            scores.append(1.0 if used_full else float(approx_only[i]))
            latencies.append(outcome.elapsed_seconds)
        variant_rows.append(
            {
                "variant": "approx only" if threshold is None else f"DB below {threshold}",
                "avg_score": float(np.mean(scores)),
                "avg_query_seconds": float(np.mean(latencies)),
            }
        )
    return {"estimator": estimator_rows, "variants": variant_rows}


@pytest.mark.benchmark(group="fig5")
def test_fig5_estimator(benchmark, imdb_bundle):
    result = benchmark.pedantic(_run, args=(imdb_bundle,), rounds=1, iterations=1)
    emit(
        "fig5_estimator",
        ["Training access", "Precision", "Recall", "Answerable rate"],
        [
            [f"{r['training_access']:.0%}", f"{r['precision']:.2f}",
             f"{r['recall']:.2f}", f"{r['answerable_rate']:.2f}"]
            for r in result["estimator"]
        ],
        result,
        title="Figure 5 — estimator precision/recall vs training-query access",
    )
    emit(
        "fig5_full_system",
        ["Variant", "Avg score", "Avg query (ms)"],
        [
            [r["variant"], f"{r['avg_score']:.3f}",
             f"{r['avg_query_seconds'] * 1000:.1f}"]
            for r in result["variants"]
        ],
        result,
        title="Figure 5 — full-system variants (query DB below threshold)",
    )
    full = result["estimator"][0]
    half = result["estimator"][-1]
    # Shape: reasonable detector at full access, graceful degradation.
    assert full["precision"] >= 0.6 and full["recall"] >= 0.6
    assert half["precision"] >= 0.4 and half["recall"] >= 0.4
    variants = {r["variant"]: r["avg_score"] for r in result["variants"]}
    assert variants["DB below 0.8"] >= variants["approx only"]
    assert variants["DB below 0.6"] >= variants["approx only"]
