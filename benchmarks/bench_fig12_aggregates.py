"""Figure 12: aggregate-query evaluation (AQP) against gAQP and DeepDB.

Protocol (paper §6.4): the FLIGHTS aggregate workload (IDEBench-style) is
split by operator class — CNT, G+CNT, SUM, G+SUM, AVG, G+AVG — and each
engine's mean relative error (Eq. 2; missing groups count as error 1) is
reported with memory ≈ 1% of the data:

* **ASQP-RL** answers from its approximation set, rescaling COUNT/SUM by
  a self-calibrated inclusion rate measured on its training queries;
* **gAQP** samples its per-table VAEs and rescales;
* **DeepDB** evaluates its Sum-Product Network.

Paper shape: no engine dominates all six classes; ASQP-RL is best on a
subset of the operators and comparable elsewhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GAQPEstimator, SPNModel, UnsupportedQueryError
from repro.bench import SWEEP_PROFILE, bench_asqp_config, emit
from repro.core import ASQPTrainer, aggregate_relative_error
from repro.db import AggFunc


def _class_of(query) -> str:
    func = query.aggregates[0].func
    prefix = "G+" if query.group_by else ""
    return prefix + {"COUNT": "CNT", "SUM": "SUM", "AVG": "AVG"}[func.value]


def _run(bundle) -> dict:
    rng = np.random.default_rng(61)
    train, test = bundle.aggregate_workload.split(0.4, rng)
    memory = max(1, int(0.01 * bundle.db.total_rows())) * 8  # ~1% budget, scaled

    # ASQP-RL: train on the (rewritten) aggregate workload, per §3. The
    # frame size is raised for aggregate mode (distribution coverage needs
    # more than a human reading frame) and COUNT/SUM rescaling uses the
    # model's self-calibrated inclusion rate (see
    # TrainedModel.calibrated_count_scale).
    config = bench_asqp_config(memory, 200, seed=16, **SWEEP_PROFILE)
    model = ASQPTrainer(bundle.db, train, config).train()
    approx_db = model.approximation_database()
    count_scale = model.calibrated_count_scale(
        default=bundle.db.total_rows() / max(1, approx_db.total_rows())
    )

    gaqp = GAQPEstimator(bundle.db, memory_fraction=0.05, epochs=20, seed=3)
    spn = SPNModel(bundle.db.table("flights"), seed=4)

    from repro.db import execute_aggregate

    errors: dict[str, dict[str, list[float]]] = {}
    for query in test.queries:
        klass = _class_of(query)
        bucket = errors.setdefault(
            klass, {"ASQP-RL": [], "gAQP": [], "DeepDB": []}
        )
        bucket["ASQP-RL"].append(
            aggregate_relative_error(
                bundle.db, approx_db, query, scale_counts=count_scale
            )
        )
        bucket["gAQP"].append(gaqp.answer_error(query))
        try:
            estimated = spn.answer(query)
            truth = execute_aggregate(bundle.db, query).as_mapping()
            per_group = []
            for key, true_row in truth.items():
                est_row = estimated.get(key)
                for name, true_value in true_row.items():
                    if est_row is None or name not in est_row:
                        per_group.append(1.0)
                    else:
                        from repro.core import relative_error

                        per_group.append(relative_error(est_row[name], true_value))
            bucket["DeepDB"].append(float(np.mean(per_group)) if per_group else 0.0)
        except UnsupportedQueryError:
            bucket["DeepDB"].append(1.0)

    rows = []
    for klass in ("CNT", "G+CNT", "SUM", "G+SUM", "AVG", "G+AVG"):
        if klass not in errors:
            continue
        rows.append(
            {
                "class": klass,
                "n_queries": len(errors[klass]["ASQP-RL"]),
                **{
                    engine: float(np.mean(values))
                    for engine, values in errors[klass].items()
                },
            }
        )
    return {"rows": rows, "memory_tuples": memory}


@pytest.mark.benchmark(group="fig12")
def test_fig12_aggregates(benchmark, flights_bundle):
    result = benchmark.pedantic(_run, args=(flights_bundle,), rounds=1, iterations=1)
    rows = result["rows"]
    emit(
        "fig12_aggregates",
        ["Class", "n", "ASQP-RL", "gAQP", "DeepDB"],
        [
            [r["class"], r["n_queries"], f"{r['ASQP-RL']:.3f}",
             f"{r['gAQP']:.3f}", f"{r['DeepDB']:.3f}"]
            for r in rows
        ],
        result,
        title="Figure 12 — mean relative error by aggregate class (lower is better)",
    )
    assert len(rows) == 6, "all six operator classes must be exercised"
    # Shape: ASQP-RL is competitive — best or near-best on several classes
    # (the paper: lowest error on half the operators, comparable elsewhere).
    wins = sum(
        1 for r in rows if r["ASQP-RL"] <= min(r["gAQP"], r["DeepDB"]) + 0.1
    )
    assert wins >= 2, f"ASQP-RL should be competitive on several classes, won {wins}"
    # All errors are valid fractions.
    for r in rows:
        for engine in ("ASQP-RL", "gAQP", "DeepDB"):
            assert 0.0 <= r[engine] <= 1.0
