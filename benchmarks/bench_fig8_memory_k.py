"""Figure 8: quality vs memory budget k.

The paper sweeps k ∈ {1k, 5k, 10k, 15k} over 34M tuples; scaled here to
{100, 250, 500, 1000} over the synthetic IMDB. All methods are expected to
improve with k, with ASQP-RL dominating at every point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import SWEEP_PROFILE, ascii_chart, emit, evaluate_method
from repro.core import workload_result_keys

K_VALUES = [100, 250, 500, 1000]
METHODS = ["ASQP-RL", "RAN", "TOP", "CACH", "QUIK", "VERD", "QRD", "SKY"]


def _run(bundle) -> dict:
    train, test = bundle.workload.split(0.3, np.random.default_rng(43))
    full_keys = workload_result_keys(bundle.db, test)
    series: dict[str, list[float]] = {m: [] for m in METHODS}
    for k in K_VALUES:
        for method in METHODS:
            result = evaluate_method(
                bundle, train, test, method, k=k, frame_size=50, seed=11,
                asqp_overrides=SWEEP_PROFILE, full_keys=full_keys,
            )
            series[method].append(result.quality)
    return series


@pytest.mark.benchmark(group="fig8")
def test_fig8_memory_sweep(benchmark, imdb_bundle):
    series = benchmark.pedantic(_run, args=(imdb_bundle,), rounds=1, iterations=1)
    emit(
        "fig8_memory_k",
        ["Method", *[f"k={k}" for k in K_VALUES]],
        [[m, *[f"{v:.3f}" for v in series[m]]] for m in series],
        {"k_values": K_VALUES, "series": series},
        title="Figure 8 — quality vs memory budget k (IMDB)",
    )
    print(ascii_chart(series, K_VALUES, title="Figure 8 (chart)"))
    # Shape: ASQP-RL improves with k and tops every baseline at the largest k.
    asqp = series["ASQP-RL"]
    assert asqp[-1] > asqp[0]
    best_baseline_at_max = max(series[m][-1] for m in METHODS if m != "ASQP-RL")
    assert asqp[-1] >= best_baseline_at_max * 0.9
    # Random also improves with k (sanity of the sweep itself).
    assert series["RAN"][-1] >= series["RAN"][0]
