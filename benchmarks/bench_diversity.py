"""§6.2 diversity comparison: pairwise-Jaccard diversity of query answers.

The paper measures answer diversity (queries run with LIMIT 100) on the
full database (~58%), on ASQP-RL's approximation set (~52%, at least 14%
above any baseline), and on the baselines. The RAN baseline is noted as
the closest diversity competitor despite its poor quality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import make_baseline
from repro.bench import SWEEP_PROFILE, bench_asqp_config, emit
from repro.core import ASQPTrainer, result_diversity, score

METHODS = ["RAN", "TOP", "CACH", "QUIK", "QRD"]
K = 1000


def _run(bundle) -> list[dict]:
    train, test = bundle.workload.split(0.3, np.random.default_rng(67))
    rows = [
        {
            "method": "full database",
            "diversity": result_diversity(bundle.db, test, limit=100),
            "quality": 1.0,
        }
    ]

    config = bench_asqp_config(K, 50, seed=18, **SWEEP_PROFILE)
    model = ASQPTrainer(bundle.db, train, config).train()
    approx_db = model.approximation_database()
    rows.append(
        {
            "method": "ASQP-RL",
            "diversity": result_diversity(approx_db, test, limit=100),
            "quality": score(bundle.db, approx_db, test, 50),
        }
    )

    for method in METHODS:
        selector = make_baseline(method)
        result = selector.select(
            bundle.db, train, K, 50, np.random.default_rng(71)
        )
        rows.append(
            {
                "method": method,
                "diversity": result_diversity(result.database, test, limit=100),
                "quality": score(bundle.db, result.database, test, 50),
            }
        )
    return rows


@pytest.mark.benchmark(group="diversity")
def test_diversity(benchmark, imdb_bundle):
    rows = benchmark.pedantic(_run, args=(imdb_bundle,), rounds=1, iterations=1)
    emit(
        "diversity",
        ["Method", "Answer diversity", "Quality"],
        [
            [r["method"], f"{r['diversity']:.3f}", f"{r['quality']:.3f}"]
            for r in rows
        ],
        {"rows": rows},
        title="§6.2 — pairwise-Jaccard diversity of approximate answers (IMDB)",
    )
    by_method = {r["method"]: r for r in rows}
    # Shape: the full database is the diversity ceiling; ASQP-RL is close
    # to it while having by far the best quality among selections.
    assert by_method["ASQP-RL"]["diversity"] <= by_method["full database"]["diversity"] + 0.05
    selections = [r for r in rows if r["method"] not in ("full database",)]
    best_quality = max(r["quality"] for r in selections)
    assert by_method["ASQP-RL"]["quality"] >= best_quality * 0.9
