"""Micro-benchmark of the vectorized execution kernels and CSR tracker.

Times each hot-path kernel — equi-join, stable distinct, group-by, and
the CoverageTracker batch add/remove/probe operations — on seeded
synthetic data, against the retained pre-vectorization reference
implementations (``repro.db.kernels.reference_*`` and
``repro.core.reward.DictCoverageTracker``). Writes ``BENCH_kernels.json``
so the performance trajectory of these kernels is tracked in-repo.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py                  # full profile
    PYTHONPATH=src python benchmarks/bench_kernels.py --profile fast   # CI smoke
    PYTHONPATH=src python benchmarks/bench_kernels.py --profile fast \
        --check BENCH_kernels.json --max-regression 2.0

``--check`` compares the freshly measured vectorized timings against a
committed baseline file and exits non-zero if any kernel regressed by
more than ``--max-regression`` (see ``scripts/bench_smoke.sh``).

This file is not a pytest benchmark: it is a standalone script so CI can
run it without the pytest-benchmark plugin.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.reward import CoverageTracker, DictCoverageTracker, QueryCoverage
from repro.db import kernels
from repro.db import parallel as db_parallel

#: Speedups the tentpole must hold at the 10k-row profile (join and the
#: coverage hot paths are the acceptance-gated kernels; distinct/group and
#: the raw batch-update path ride along). ``coverage_probe`` is the BRT /
#: greedy inner loop — reset, add a candidate set, score — where the
#: legacy tracker rebuilds its missing-requirement dict per candidate.
#: ``coverage_batch`` (raw add/remove) is reported but ungated: both
#: implementations pay the same per-key tuple hash to intern keys, which
#: caps that path's speedup near 3x regardless of the update structure.
REQUIRED_SPEEDUPS = {
    "join_10k": 5.0,
    "coverage_probe": 5.0,
    "coverage_score_with_keys": 5.0,
}

PROFILES = {
    # rows are identical between profiles so the JSON is comparable;
    # "fast" only lowers the repeat count for CI smoke runs.
    "full": {"repeats": 5},
    "fast": {"repeats": 2},
}

N_ROWS = 10_000

#: Row count for the column-store / parallel-scaling sections — big enough
#: to clear the morsel floor (``REPRO_PARALLEL_MIN_ROWS``, default 32768)
#: several times over, identical between profiles for comparability.
COLUMNSTORE_ROWS = 120_000

#: Worker counts on the parallel-scaling curve (0 = serial baseline).
PARALLEL_WORKER_COUNTS = (0, 1, 2, 4, 8)


def _best_of(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ------------------------------------------------------------------ #
# workloads
# ------------------------------------------------------------------ #
def _join_workload(rng: np.random.Generator):
    build = [
        rng.integers(0, N_ROWS // 2, size=N_ROWS),
        rng.integers(0, 50, size=N_ROWS),
    ]
    probe = [
        rng.integers(0, N_ROWS // 2, size=N_ROWS),
        rng.integers(0, 50, size=N_ROWS),
    ]
    return build, probe


def _distinct_workload(rng: np.random.Generator):
    labels = np.asarray([f"v{i}" for i in range(64)], dtype=object)
    return [
        rng.integers(0, 200, size=N_ROWS),
        labels[rng.integers(0, len(labels), size=N_ROWS)],
    ]


def _group_workload(rng: np.random.Generator):
    return [
        rng.integers(0, 500, size=N_ROWS),
        rng.integers(0, 8, size=N_ROWS),
    ]


def _coverage_fixture(rng: np.random.Generator):
    """Synthetic provenance requirements plus seeded add/remove batches.

    The id space is deliberately much smaller than the requirement count:
    exploratory workloads share hot provenance tuples across queries (that
    overlap is why approximation sets work at all), so a realistic tracker
    workload has each key appearing in several queries' requirement rows.
    """
    tables = ["t0", "t1", "t2", "t3"]
    n_ids = 600
    coverages = []
    for q in range(200):
        requirements = []
        for _ in range(50):
            width = int(rng.integers(1, 4))
            requirement = tuple(
                (tables[int(rng.integers(0, len(tables)))], int(rng.integers(0, n_ids)))
                for _ in range(width)
            )
            requirements.append(requirement)
        coverages.append(
            QueryCoverage(
                name=f"q{q}",
                weight=float(rng.uniform(0.5, 2.0)),
                denominator=50,
                requirements=requirements,
            )
        )
    universe = [
        (table, int(i)) for table in tables for i in rng.integers(0, n_ids, size=400)
    ]
    # Environment-step-sized add/remove batches (one action group each).
    batches = []
    for _ in range(16):
        picks = rng.integers(0, len(universe), size=500)
        added = [universe[int(p)] for p in picks]
        removed = added[: len(added) // 2]
        batches.append((added, removed))
    # BRT-sized candidate sets: whole approximation sets of ~k tuples,
    # probed from scratch (reset + add + score) per combination.
    candidates = []
    for _ in range(8):
        picks = rng.integers(0, len(universe), size=2_000)
        candidates.append([universe[int(p)] for p in picks])
    return coverages, batches, candidates


def _run_coverage_batches(tracker, batches) -> None:
    tracker.reset()
    for added, removed in batches:
        tracker.add_keys(added)
        tracker.batch_score()
        tracker.remove_keys(removed)
        tracker.batch_score()


def _run_coverage_candidate_probes(tracker, candidates) -> None:
    # Verbatim the BruteForce inner loop: score each candidate set from
    # an empty tracker (legacy reset() rebuilds the missing-dict from all
    # requirements; CSR reset() is three array copies).
    for candidate in candidates:
        tracker.reset()
        tracker.add_keys(candidate)
        tracker.batch_score()


def _run_coverage_probes(tracker, batches) -> None:
    for added, _ in batches:
        tracker.score_with_keys(added)


# ------------------------------------------------------------------ #
def run_benchmarks(profile: str) -> dict:
    repeats = PROFILES[profile]["repeats"]
    record: dict = {"profile": profile, "rows": N_ROWS, "kernels": {}}

    def measure(name: str, reference, vectorized, units: int) -> None:
        ref_s = _best_of(reference, repeats)
        vec_s = _best_of(vectorized, repeats)
        record["kernels"][name] = {
            "reference_s": ref_s,
            "vectorized_s": vec_s,
            "speedup": ref_s / vec_s if vec_s > 0 else float("inf"),
            "units_per_s": units / vec_s if vec_s > 0 else float("inf"),
        }

    rng = np.random.default_rng(7)
    build, probe = _join_workload(rng)
    measure(
        "join_10k",
        lambda: kernels.reference_join_positions(build, probe),
        lambda: kernels.join_positions(build, probe),
        units=len(build[0]) + len(probe[0]),
    )

    distinct_arrays = _distinct_workload(rng)
    measure(
        "distinct_10k",
        lambda: kernels.reference_distinct_positions(distinct_arrays),
        lambda: kernels.distinct_positions(distinct_arrays),
        units=len(distinct_arrays[0]),
    )

    group_arrays = _group_workload(rng)
    measure(
        "group_by_10k",
        lambda: kernels.reference_group_by_positions(group_arrays),
        lambda: kernels.group_by_positions(group_arrays),
        units=len(group_arrays[0]),
    )

    coverages, batches, candidates = _coverage_fixture(rng)
    csr = CoverageTracker(coverages)
    legacy = DictCoverageTracker(coverages)
    n_batch_keys = sum(len(a) + len(r) for a, r in batches)
    measure(
        "coverage_batch",
        lambda: _run_coverage_batches(legacy, batches),
        lambda: _run_coverage_batches(csr, batches),
        units=n_batch_keys,
    )
    measure(
        "coverage_probe",
        lambda: _run_coverage_candidate_probes(legacy, candidates),
        lambda: _run_coverage_candidate_probes(csr, candidates),
        units=sum(len(c) for c in candidates),
    )
    csr.reset()
    legacy.reset()
    warm = [key for added, _ in batches[:4] for key in added]
    csr.add_keys(warm)
    legacy.add_keys(warm)
    measure(
        "coverage_score_with_keys",
        lambda: _run_coverage_probes(legacy, batches),
        lambda: _run_coverage_probes(csr, batches),
        units=sum(len(a) for a, _ in batches),
    )
    return record


def run_obs_overhead(repeats: int) -> dict:
    """Measure the cost of *instrumentation* on the vectorized kernels.

    Times each kernel with observability disabled (the default, where an
    instrumentation site is one flag check) and enabled (spans + metric
    histograms recording), and reports the per-kernel and median overhead
    fractions. The disabled numbers are the contract: DESIGN.md promises
    zero overhead when off, and ``--obs-check`` gates the *median*
    enabled-vs-disabled overhead (medians absorb single-kernel timing
    noise that best-of-N repeats cannot).
    """
    rng = np.random.default_rng(7)
    build, probe = _join_workload(rng)
    distinct_arrays = _distinct_workload(rng)
    group_arrays = _group_workload(rng)
    cases = {
        "join_10k": lambda: kernels.join_positions(build, probe),
        "distinct_10k": lambda: kernels.distinct_positions(distinct_arrays),
        "group_by_10k": lambda: kernels.group_by_positions(group_arrays),
        "factorize_10k": lambda: kernels.factorize_keys(distinct_arrays),
    }
    entries: dict = {}
    overheads = []
    rounds = max(5 * repeats, 10)
    batch = 3
    # The enabled arm runs the *full* tracing stack: an active request
    # context (so every histogram observation captures an exemplar) and
    # the tail sampler hooked on finished roots — the <2% budget covers
    # exemplar capture and tail sampling, not just bare spans.
    request = obs.context.new_context(fingerprint="bench_obs_overhead")
    obs.sampling.configure()
    try:
        for name, fn in cases.items():
            # Warm both paths first (the first enabled call allocates the
            # metric histograms). Each round then times one disabled and
            # one enabled batch back to back and keeps their ratio: the
            # paired samples see the same machine state, so slow drift
            # cancels, and the median over rounds absorbs the jitter that
            # a best-of floor cannot.
            obs.disable()
            fn()
            obs.enable()
            with obs.context.activate(request):
                fn()
            ratios = []
            disabled_best = enabled_best = np.inf
            for _ in range(rounds):
                obs.disable()
                start = time.perf_counter()
                for _ in range(batch):
                    fn()
                disabled_t = time.perf_counter() - start
                obs.enable()
                with obs.context.activate(request):
                    start = time.perf_counter()
                    for _ in range(batch):
                        fn()
                    enabled_t = time.perf_counter() - start
                ratios.append(enabled_t / disabled_t)
                disabled_best = min(disabled_best, disabled_t / batch)
                enabled_best = min(enabled_best, enabled_t / batch)
            overhead = float(np.median(ratios)) - 1.0
            overheads.append(overhead)
            entries[name] = {
                "disabled_s": disabled_best,
                "enabled_s": enabled_best,
                "overhead_fraction": overhead,
            }
    finally:
        obs.disable()
        obs.sampling.clear()
        obs.metrics.reset()
    return {
        "kernels": entries,
        "median_overhead_fraction": float(np.median(overheads)),
    }


def run_parallel_obs_overhead(repeats: int) -> dict:
    """Instrumentation overhead of the morsel-parallel path (workers=4).

    Same paired-interleaved-batch scheme as :func:`run_obs_overhead`,
    but the workload is the end-to-end 120k-row columnstore scan
    dispatched over a 4-worker pool, so the measured delta is exactly
    the parent-side stitching cost: worker-span lane recording, the
    per-dispatch ``MetricsRegistry.merge``, and per-query accounting.
    Worker-side recording and heartbeats are always on (both paths pay
    them), so they cancel in the enabled/disabled ratio by design —
    the gate holds the *observability* of the parallel path to the same
    <2% budget as the serial kernels.
    """
    from repro.db import execute

    db, _table, query = _columnstore_fixture()
    db_parallel.set_workers(4)
    rounds = max(5 * repeats, 10)
    batch = 3
    # Enabled arm = full causal tracing: the executor opens a root span
    # under an active request context, context rides the task envelopes
    # into the workers, worker lanes stitch back under the trace id, and
    # the tail sampler sees every finished root — all inside the gate.
    request = obs.context.new_context(fingerprint="bench_parallel_obs")
    obs.sampling.configure()
    try:
        # Warm both paths (pool spawn + first shared-memory round trip
        # on the disabled side, histogram allocation on the enabled one).
        obs.disable()
        execute(db, query)
        obs.enable()
        with obs.context.activate(request):
            execute(db, query)
        ratios = []
        disabled_best = enabled_best = np.inf
        for _ in range(rounds):
            obs.disable()
            start = time.perf_counter()
            for _ in range(batch):
                execute(db, query)
            disabled_t = time.perf_counter() - start
            obs.enable()
            with obs.context.activate(request):
                start = time.perf_counter()
                for _ in range(batch):
                    execute(db, query)
                enabled_t = time.perf_counter() - start
            ratios.append(enabled_t / disabled_t)
            disabled_best = min(disabled_best, disabled_t / batch)
            enabled_best = min(enabled_best, enabled_t / batch)
        overhead = float(np.median(ratios)) - 1.0
    finally:
        obs.disable()
        obs.sampling.clear()
        obs.metrics.reset()
        obs.trace.reset()
        db_parallel.set_workers(0)
        db_parallel.shutdown()
    return {
        "kernels": {
            "parallel_scan_4w": {
                "disabled_s": disabled_best,
                "enabled_s": enabled_best,
                "overhead_fraction": overhead,
            }
        },
        "median_overhead_fraction": overhead,
    }


def run_profile_overhead(repeats: int, hz: float = 100.0) -> dict:
    """Measure the cost of the *running* sampling profiler on the kernels.

    Same paired-interleaved-batch scheme as :func:`run_obs_overhead`,
    but the varied condition is the background sampler: each round times
    one batch with the profiler stopped and one with it running at
    ``hz``, keeping the per-round ratio. ``--profile-check`` gates the
    median — a statistical sampler reading ``sys._current_frames()``
    from another thread should cost well under 5% at 100 hz.
    """
    from repro.obs import profiler as obs_profiler

    rng = np.random.default_rng(11)
    build, probe = _join_workload(rng)
    distinct_arrays = _distinct_workload(rng)
    group_arrays = _group_workload(rng)
    cases = {
        "join_10k": lambda: kernels.join_positions(build, probe),
        "distinct_10k": lambda: kernels.distinct_positions(distinct_arrays),
        "group_by_10k": lambda: kernels.group_by_positions(group_arrays),
        "factorize_10k": lambda: kernels.factorize_keys(distinct_arrays),
    }
    entries: dict = {}
    overheads = []
    rounds = max(5 * repeats, 10)
    batch = 3
    try:
        for name, fn in cases.items():
            fn()  # warm caches once before any timing
            ratios = []
            stopped_best = running_best = np.inf
            for _ in range(rounds):
                obs_profiler.stop()
                start = time.perf_counter()
                for _ in range(batch):
                    fn()
                stopped_t = time.perf_counter() - start
                obs_profiler.start(hz=hz)
                start = time.perf_counter()
                for _ in range(batch):
                    fn()
                running_t = time.perf_counter() - start
                ratios.append(running_t / stopped_t)
                stopped_best = min(stopped_best, stopped_t / batch)
                running_best = min(running_best, running_t / batch)
            overhead = float(np.median(ratios)) - 1.0
            overheads.append(overhead)
            entries[name] = {
                "stopped_s": stopped_best,
                "running_s": running_best,
                "overhead_fraction": overhead,
            }
    finally:
        obs_profiler.stop()
    return {
        "hz": hz,
        "kernels": entries,
        "median_overhead_fraction": float(np.median(overheads)),
    }


def _unwrap(fn):
    """Peel decorator layers (``functools.wraps`` chains) off a kernel."""
    while hasattr(fn, "__wrapped__"):
        fn = fn.__wrapped__
    return fn


def run_strict_overhead(repeats: int) -> dict:
    """Measure the cost of *disabled* strict-mode contract wrappers.

    ``repro.contracts`` promises that with strict mode off (the default)
    a ``@shape_contract``/``@dtype_contract`` site costs one attribute
    check. This times each public kernel (whose wrapper stack includes
    the contract decorators) against the raw unwrapped implementation
    with the same paired-interleaved-batch scheme as
    :func:`run_obs_overhead`, and reports the median per-round ratio —
    ``--strict-check`` gates it with the same tolerance as ``--obs-check``.
    """
    from repro import contracts

    rng = np.random.default_rng(7)
    build, probe = _join_workload(rng)
    distinct_arrays = _distinct_workload(rng)
    group_arrays = _group_workload(rng)
    cases = {
        "join_10k": (kernels.join_positions, (build, probe)),
        "distinct_10k": (kernels.distinct_positions, (distinct_arrays,)),
        "group_by_10k": (kernels.group_by_positions, (group_arrays,)),
        "factorize_10k": (kernels.factorize_keys, (distinct_arrays,)),
    }
    entries: dict = {}
    overheads = []
    rounds = max(5 * repeats, 10)
    batch = 3
    was_strict = contracts.is_enabled()
    contracts.disable()
    obs.disable()
    try:
        for name, (wrapped, args) in cases.items():
            raw = _unwrap(wrapped)
            wrapped(*args)
            raw(*args)
            ratios = []
            raw_best = wrapped_best = np.inf
            for _ in range(rounds):
                start = time.perf_counter()
                for _ in range(batch):
                    raw(*args)
                raw_t = time.perf_counter() - start
                start = time.perf_counter()
                for _ in range(batch):
                    wrapped(*args)
                wrapped_t = time.perf_counter() - start
                ratios.append(wrapped_t / raw_t)
                raw_best = min(raw_best, raw_t / batch)
                wrapped_best = min(wrapped_best, wrapped_t / batch)
            overhead = float(np.median(ratios)) - 1.0
            overheads.append(overhead)
            entries[name] = {
                "raw_s": raw_best,
                "wrapped_s": wrapped_best,
                "overhead_fraction": overhead,
            }
    finally:
        if was_strict:
            contracts.enable()
    return {
        "kernels": entries,
        "median_overhead_fraction": float(np.median(overheads)),
    }


def run_audit_overhead(repeats: int) -> dict:
    """Measure the cost of shadow auditing on end-to-end query serving.

    Builds one micro trained session (flights at scale 0.12, ASQP-Light)
    and serves its workload with the quality monitor installed at the
    default audit rate. Both overhead components are *directly
    attributed* rather than inferred from paired A/B round ratios — on
    a one-core container the per-round jitter of millisecond serving
    batches is +/-30%, an order of magnitude above the signal, so a
    paired median either hides a ~10ms audit spike or reports pure
    scheduler noise as overhead:

    * **accounting** — the per-query cost of the always-on quality
      bookkeeping. The exact calls the session makes per served query
      (``observe_query`` on the approximation path plus the
      ``should_audit`` coin-and-budget check) are micro-timed over
      thousands of iterations on a probe monitor and divided by the
      measured per-query serving time. Both numerator and denominator
      are tight-loop averages, stable to a few percent where the
      paired ratio swung by whole percentage points of overhead.
    * **audit time** — the ground-truth re-executions themselves: the
      session wraps each audit in a ``perf_counter`` pair and the
      monitor accumulates the spent seconds, so this component is
      exact wall-clock attribution (audit seconds over serving seconds
      across the monitored phase, first always-allowed audit excluded
      via snapshots).

    The budget governor in :mod:`repro.obs.quality` keeps the audit
    component under ``max_overhead`` (1%) of serving time by
    construction — beyond the always-allowed first audit it only admits
    an audit the remaining budget can cover — so the combined gate at
    <2% fails only when the governor or the accounting hot path breaks,
    not when the machine is noisy.
    """
    from repro.core import ASQPConfig, ASQPSession, ASQPTrainer
    from repro.datasets import load_flights
    from repro.obs import quality

    bundle = load_flights(scale=0.12, n_queries=6, n_aggregate_queries=2)
    config = ASQPConfig.light(
        memory_budget=120, frame_size=20, n_iterations=2,
        learning_rate=1e-3, seed=0,
    )
    obs.disable()
    model = ASQPTrainer(bundle.db, bundle.workload, config).train()
    session = ASQPSession(model, auto_fine_tune=False)
    queries = list(bundle.workload)[:4]

    def serve() -> None:
        for query in queries:
            session.query(query)

    serves = max(60 * repeats, 120)
    hook_loops = 20_000
    obs.enable()
    quality.clear()
    gc_was_enabled = gc.isenabled()
    try:
        serve()  # warm: result cache, metric histograms
        # Baseline per-query serving time, monitor removed. The
        # collector is paused during timed phases — session serving is
        # allocation-heavy and a GC pause inside the loop would inflate
        # the average the accounting fraction divides by.
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        for _ in range(serves):
            serve()
        baseline_t = time.perf_counter() - start
        if gc_was_enabled:
            gc.enable()
        per_query = baseline_t / (serves * len(queries))

        # Monitored phase: same workload volume under the governor.
        monitor = quality.configure(sample_rate=quality.DEFAULT_AUDIT_RATE)
        serve()  # warm the monitor: first (always-allowed) audit lands
        audit_s0 = monitor.audit_seconds
        serving_s0 = monitor.serving_seconds
        start = time.perf_counter()
        for _ in range(serves):
            serve()
        monitored_t = time.perf_counter() - start
        counts = dict(monitor.counts)
        served = monitor.serving_seconds - serving_s0
        audit_fraction = (
            (monitor.audit_seconds - audit_s0) / served if served > 0 else 0.0
        )

        # Accounting micro-bench: the exact per-query instrumentation
        # path on a probe monitor (so the counts reported above stay
        # those of the monitored phase). The trace id's audit-coin hex
        # window is all zeros, forcing the coin to *pass* so the probe
        # times the longest path (coin plus budget governor).
        probe = quality.QualityMonitor(
            sample_rate=quality.DEFAULT_AUDIT_RATE
        )
        tid = "deadbeef00000000deadbeefdeadbeef"
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        for _ in range(hook_loops):
            probe.observe_query(
                predicted=0.9,
                observed=0.88,
                used_approximation=True,
                elapsed_seconds=0.0,
            )
            probe.should_audit(tid)
        hook_t = time.perf_counter() - start
        if gc_was_enabled:
            gc.enable()
        accounting = (hook_t / hook_loops) / per_query
    finally:
        quality.clear()
        obs.disable()
        obs.metrics.reset()
        obs.trace.reset()
        obs.health.reset()
    disabled_best = baseline_t / serves
    enabled_best = monitored_t / serves
    overhead = accounting + audit_fraction
    return {
        "kernels": {
            "session_serving": {
                "disabled_s": disabled_best,
                "enabled_s": enabled_best,
                "overhead_fraction": overhead,
            }
        },
        "accounting_overhead_fraction": accounting,
        "audit_time_fraction": audit_fraction,
        "median_overhead_fraction": overhead,
        "audit_counts": counts,
    }


def _columnstore_fixture():
    """A 120k-row table with a clustered int, a dict-string, and a float.

    ``ts`` is sorted so zone maps prune range predicates hard; ``city``
    has 200 distinct values so dictionary encoding wins; ``value`` is a
    float column that rides along undecoded through the scan.
    """
    from repro.db import Column, ColumnType, Database, Table, TableSchema, sql

    rng = np.random.default_rng(13)
    n = COLUMNSTORE_ROWS
    cities = np.asarray([f"city_{i:03d}" for i in range(200)], dtype=object)
    schema = TableSchema(
        "bench",
        (
            Column("city", ColumnType.STR),
            Column("ts", ColumnType.INT),
            Column("value", ColumnType.FLOAT),
        ),
    )
    table = Table(
        schema,
        {
            "city": cities[rng.integers(0, len(cities), size=n)],
            "ts": np.sort(rng.integers(0, 10_000_000, size=n)),
            "value": rng.normal(size=n),
        },
    )
    db = Database([table])
    # ~10% of the ts range plus a string equality — prunable AND rewritable.
    query = sql(
        "SELECT city, ts, value FROM bench "
        "WHERE ts BETWEEN 4000000 AND 5000000 AND city != 'city_000'"
    )
    return db, table, query


def run_columnstore(repeats: int) -> dict:
    """Compression ratio, zone-map pruning rate, and the serial scan cost.

    The serial comparison is kernel-level and apples-to-apples: the same
    predicate evaluated over decoded arrays (plain) versus its
    code-space rewrite over the stored int32 codes (encoded, the path
    the executor runs with late materialization). ``serial_ratio`` is
    the acceptance-gated number — encoded must stay within the allowed
    factor of plain.
    """
    from repro.db import expressions as E
    from repro.db import statistics as dbstats

    db, table, query = _columnstore_fixture()
    record: dict = {"rows": len(table)}

    record["compression"] = table.compression_stats()

    zmaps = table.zone_maps()
    refs = [f"bench.{c.name}" for c in table.schema.columns]
    mask = dbstats.zone_map_block_mask(query.predicate, zmaps.columns, zmaps.n_blocks)
    record["zone_maps"] = {
        "block_rows": zmaps.block_rows,
        "blocks_total": int(zmaps.n_blocks),
        "blocks_pruned": int(zmaps.n_blocks - int(mask.sum())),
        "pruning_rate": float(1.0 - mask.sum() / max(zmaps.n_blocks, 1)),
    }

    plain_context = {f"bench.{name}": table.column(name) for name in ("city", "ts", "value")}
    encoding = table.encoding("city")
    encoded_context = dict(plain_context)
    encoded_context["bench.city"] = encoding.codes
    rewritten = E.rewrite_for_codes(
        query.predicate, {"bench.city": encoding.dictionary}, refs
    )
    assert rewritten is not None, "bench predicate must be code-rewritable"

    plain_s = _best_of(
        lambda: np.flatnonzero(query.predicate.evaluate(plain_context)), repeats
    )
    encoded_s = _best_of(
        lambda: np.flatnonzero(rewritten.evaluate(encoded_context)), repeats
    )
    record["serial_scan"] = {
        "plain_s": plain_s,
        "encoded_s": encoded_s,
        "serial_ratio": encoded_s / plain_s if plain_s > 0 else float("inf"),
    }
    return record


def run_parallel_scaling(repeats: int) -> dict:
    """End-to-end scan plus join-probe and group-by at each worker count.

    Numbers are honest for the machine they ran on: ``cpu_count`` is
    recorded alongside the curve, and on single-core runners the curve
    simply shows the dispatch overhead instead of a speedup.
    """
    from repro.db import execute

    db, _table, query = _columnstore_fixture()
    rng = np.random.default_rng(17)
    n = COLUMNSTORE_ROWS
    build = [rng.integers(0, n // 4, size=n), rng.integers(0, 64, size=n)]
    probe = [rng.integers(0, n // 4, size=n), rng.integers(0, 64, size=n)]
    group_arrays = [rng.integers(0, 2_000, size=n), rng.integers(0, 16, size=n)]

    record: dict = {
        "rows": n,
        "cpu_count": os.cpu_count(),
        "min_parallel_rows": db_parallel.min_parallel_rows(),
        "workers": {},
    }
    try:
        for workers in PARALLEL_WORKER_COUNTS:
            db_parallel.set_workers(workers)
            # Warm once per count: pool creation (and the first shared-
            # memory round trip) must not land inside the timed region.
            execute(db, query)
            kernels.join_positions(build, probe)
            kernels.group_by_positions(group_arrays)
            entry = {
                "scan_s": _best_of(lambda: execute(db, query), repeats),
                "join_s": _best_of(
                    lambda: kernels.join_positions(build, probe), repeats
                ),
                "group_by_s": _best_of(
                    lambda: kernels.group_by_positions(group_arrays), repeats
                ),
            }
            record["workers"][str(workers)] = entry
    finally:
        db_parallel.set_workers(0)
        db_parallel.shutdown()

    serial = record["workers"].get("0")
    if serial:
        for workers, entry in record["workers"].items():
            if workers == "0":
                continue
            for op in ("scan", "join", "group_by"):
                base = serial[f"{op}_s"]
                entry[f"{op}_speedup"] = (
                    base / entry[f"{op}_s"] if entry[f"{op}_s"] > 0 else float("inf")
                )
    return record


def check_regressions(record: dict, baseline_path: Path, max_regression: float) -> list[str]:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, entry in record["kernels"].items():
        base = baseline.get("kernels", {}).get(name)
        if base is None:
            continue
        if entry["vectorized_s"] > max_regression * base["vectorized_s"]:
            failures.append(
                f"{name}: {entry['vectorized_s'] * 1e3:.3f} ms vs baseline "
                f"{base['vectorized_s'] * 1e3:.3f} ms (> {max_regression:.1f}x)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=sorted(PROFILES), default="full")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON record here (default: repo-root "
                             "BENCH_kernels.json; '-' to skip)")
    parser.add_argument("--check", type=Path, default=None,
                        help="baseline BENCH_kernels.json to compare against")
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument("--obs-check", action="store_true",
                        help="also measure instrumentation overhead "
                             "(enabled vs disabled) and gate the median")
    parser.add_argument("--obs-tolerance", type=float, default=0.02,
                        help="maximum tolerated median overhead fraction "
                             "of enabled instrumentation (default 2%%)")
    parser.add_argument("--profile-check", action="store_true",
                        help="also measure the running sampling profiler's "
                             "overhead on the kernels and gate the median")
    parser.add_argument("--profile-tolerance", type=float, default=0.05,
                        help="maximum tolerated median overhead fraction "
                             "of the 100hz sampling profiler (default 5%%)")
    parser.add_argument("--audit-check", action="store_true",
                        help="also measure shadow-audit overhead on "
                             "end-to-end query serving (quality monitor "
                             "at the default rate vs removed) and gate "
                             "the median")
    parser.add_argument("--audit-tolerance", type=float, default=0.02,
                        help="maximum tolerated median serving overhead "
                             "fraction of shadow auditing (default 2%%)")
    parser.add_argument("--strict-check", action="store_true",
                        help="also measure disabled strict-mode contract "
                             "wrapper overhead (wrapped vs raw kernels) "
                             "and gate the median")
    parser.add_argument("--strict-tolerance", type=float, default=0.02,
                        help="maximum tolerated median overhead fraction "
                             "of disabled contract wrappers (default 2%%)")
    parser.add_argument("--parallel-check", action="store_true",
                        help="gate the serial encoded-scan ratio and the "
                             "4-worker scan speedup (speedup auto-skipped "
                             "when cpu_count < 4 or "
                             "REPRO_SKIP_PARALLEL_CHECK is set)")
    parser.add_argument("--max-serial-regression", type=float, default=1.25,
                        help="maximum tolerated encoded/plain serial scan "
                             "ratio (default 1.25)")
    parser.add_argument("--parallel-speedup", type=float, default=1.5,
                        help="required 4-worker scan speedup over serial "
                             "(default 1.5)")
    args = parser.parse_args(argv)

    record = run_benchmarks(args.profile)

    width = max(len(name) for name in record["kernels"])
    print(f"{'kernel'.ljust(width)}  reference    vectorized   speedup")
    for name, entry in record["kernels"].items():
        print(
            f"{name.ljust(width)}  {entry['reference_s'] * 1e3:9.3f} ms"
            f"  {entry['vectorized_s'] * 1e3:9.3f} ms"
            f"  {entry['speedup']:6.1f}x"
        )

    status = 0
    for name, required in REQUIRED_SPEEDUPS.items():
        speedup = record["kernels"][name]["speedup"]
        if speedup < required:
            print(f"FAIL: {name} speedup {speedup:.1f}x < required {required:.1f}x")
            status = 1

    if args.check is not None:
        failures = check_regressions(record, args.check, args.max_regression)
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if failures:
            status = 1

    if args.obs_check:
        overhead = run_obs_overhead(PROFILES[args.profile]["repeats"])
        record["observability"] = {
            **overhead,
            "tolerance": args.obs_tolerance,
            "ok": overhead["median_overhead_fraction"] <= args.obs_tolerance,
        }
        print(f"\n{'kernel'.ljust(width)}  disabled     enabled      overhead")
        for name, entry in overhead["kernels"].items():
            print(
                f"{name.ljust(width)}  {entry['disabled_s'] * 1e3:9.3f} ms"
                f"  {entry['enabled_s'] * 1e3:9.3f} ms"
                f"  {entry['overhead_fraction'] * 100:+7.2f}%"
            )
        median = overhead["median_overhead_fraction"]
        print(f"median instrumentation overhead: {median * 100:+.2f}% "
              f"(tolerance {args.obs_tolerance * 100:.0f}%)")
        if not record["observability"]["ok"]:
            print(f"FAIL: median observability overhead {median * 100:.2f}% "
                  f"exceeds {args.obs_tolerance * 100:.0f}%")
            status = 1

        # The same gate over the morsel-parallel path: workers=4 under
        # instrumentation (worker-record stitching + watchdog polling)
        # must stay within the identical tolerance. Skipped where the
        # parallel speedup gate would be meaningless too.
        cpu_count = os.cpu_count() or 1
        if os.environ.get("REPRO_SKIP_PARALLEL_CHECK"):
            skip_reason = "REPRO_SKIP_PARALLEL_CHECK set"
        elif cpu_count < 4:
            skip_reason = f"cpu_count={cpu_count} < 4"
        else:
            skip_reason = None
        if skip_reason is not None:
            print(f"parallel observability gate skipped: {skip_reason}")
            record["observability"]["parallel"] = {
                "skipped": True,
                "reason": skip_reason,
            }
        else:
            par_overhead = run_parallel_obs_overhead(
                PROFILES[args.profile]["repeats"]
            )
            entry = par_overhead["kernels"]["parallel_scan_4w"]
            par_median = par_overhead["median_overhead_fraction"]
            ok = par_median <= args.obs_tolerance
            record["observability"]["parallel"] = {
                **par_overhead,
                "tolerance": args.obs_tolerance,
                "ok": ok,
                "skipped": False,
            }
            print(
                f"{'parallel_scan_4w'.ljust(width)}"
                f"  {entry['disabled_s'] * 1e3:9.3f} ms"
                f"  {entry['enabled_s'] * 1e3:9.3f} ms"
                f"  {entry['overhead_fraction'] * 100:+7.2f}%"
            )
            print(f"parallel-path instrumentation overhead: "
                  f"{par_median * 100:+.2f}% "
                  f"(tolerance {args.obs_tolerance * 100:.0f}%)")
            if not ok:
                print(f"FAIL: parallel-path observability overhead "
                      f"{par_median * 100:.2f}% exceeds "
                      f"{args.obs_tolerance * 100:.0f}%")
                status = 1

    if args.profile_check:
        overhead = run_profile_overhead(PROFILES[args.profile]["repeats"])
        record["profiler"] = {
            **overhead,
            "tolerance": args.profile_tolerance,
            "ok": overhead["median_overhead_fraction"]
            <= args.profile_tolerance,
        }
        print(f"\n{'kernel'.ljust(width)}  stopped      sampling     overhead")
        for name, entry in overhead["kernels"].items():
            print(
                f"{name.ljust(width)}  {entry['stopped_s']:.6f}s   "
                f"{entry['running_s']:.6f}s   "
                f"{entry['overhead_fraction'] * 100:+.2f}%"
            )
        median = overhead["median_overhead_fraction"]
        print(f"median sampling-profiler overhead at {overhead['hz']:.0f}hz: "
              f"{median * 100:+.2f}% "
              f"(tolerance {args.profile_tolerance * 100:.0f}%)")
        if not record["profiler"]["ok"]:
            print(f"FAIL: median sampling-profiler overhead "
                  f"{median * 100:.2f}% exceeds "
                  f"{args.profile_tolerance * 100:.0f}%")
            status = 1

    if args.audit_check:
        overhead = run_audit_overhead(PROFILES[args.profile]["repeats"])
        record["audit"] = {
            **overhead,
            "tolerance": args.audit_tolerance,
            "ok": overhead["median_overhead_fraction"] <= args.audit_tolerance,
        }
        entry = overhead["kernels"]["session_serving"]
        counts = overhead["audit_counts"]
        print(f"\n{'session_serving'.ljust(width)}"
              f"  {entry['disabled_s'] * 1e3:9.3f} ms"
              f"  {entry['enabled_s'] * 1e3:9.3f} ms"
              f"  {entry['overhead_fraction'] * 100:+7.2f}%")
        print(f"  audits {counts.get('audits', 0)} "
              f"(coin-skipped {counts.get('skipped_coin', 0)}, "
              f"budget-skipped {counts.get('skipped_budget', 0)}) over "
              f"{counts.get('queries', 0)} served queries")
        median = overhead["median_overhead_fraction"]
        print(f"shadow-audit overhead: "
              f"{overhead['accounting_overhead_fraction'] * 100:.2f}% "
              f"accounting (per-query hooks) + "
              f"{overhead['audit_time_fraction'] * 100:.2f}% audit time "
              f"= {median * 100:.2f}% "
              f"(tolerance {args.audit_tolerance * 100:.0f}%)")
        if not record["audit"]["ok"]:
            print(f"FAIL: attributed shadow-audit overhead "
                  f"{median * 100:.2f}% "
                  f"exceeds {args.audit_tolerance * 100:.0f}%")
            status = 1

    if args.strict_check:
        overhead = run_strict_overhead(PROFILES[args.profile]["repeats"])
        record["contracts"] = {
            **overhead,
            "tolerance": args.strict_tolerance,
            "ok": overhead["median_overhead_fraction"] <= args.strict_tolerance,
        }
        print(f"\n{'kernel'.ljust(width)}  raw          wrapped      overhead")
        for name, entry in overhead["kernels"].items():
            print(
                f"{name.ljust(width)}  {entry['raw_s'] * 1e3:9.3f} ms"
                f"  {entry['wrapped_s'] * 1e3:9.3f} ms"
                f"  {entry['overhead_fraction'] * 100:+7.2f}%"
            )
        median = overhead["median_overhead_fraction"]
        print(f"median disabled-contract overhead: {median * 100:+.2f}% "
              f"(tolerance {args.strict_tolerance * 100:.0f}%)")
        if not record["contracts"]["ok"]:
            print(f"FAIL: median disabled-contract overhead "
                  f"{median * 100:.2f}% exceeds "
                  f"{args.strict_tolerance * 100:.0f}%")
            status = 1

    repeats = PROFILES[args.profile]["repeats"]
    columnstore = run_columnstore(repeats)
    record["columnstore"] = columnstore
    compression = columnstore["compression"]
    zone = columnstore["zone_maps"]
    scan = columnstore["serial_scan"]
    print(
        f"\ncolumn store ({columnstore['rows']} rows): "
        f"compression {compression['ratio']:.2f}x "
        f"({compression['plain_bytes'] / 1e6:.1f} MB -> "
        f"{compression['encoded_bytes'] / 1e6:.1f} MB), "
        f"zone maps prune {zone['blocks_pruned']}/{zone['blocks_total']} "
        f"blocks ({zone['pruning_rate']:.1%})"
    )
    print(
        f"serial scan: plain {scan['plain_s'] * 1e3:.3f} ms, "
        f"encoded {scan['encoded_s'] * 1e3:.3f} ms "
        f"(ratio {scan['serial_ratio']:.2f}x)"
    )

    parallel = run_parallel_scaling(repeats)
    record["parallel"] = parallel
    print(f"\nparallel scaling ({parallel['rows']} rows, "
          f"cpu_count={parallel['cpu_count']}):")
    print("workers   scan         join         group-by")
    for workers in PARALLEL_WORKER_COUNTS:
        entry = parallel["workers"][str(workers)]
        cells = []
        for op in ("scan", "join", "group_by"):
            cell = f"{entry[f'{op}_s'] * 1e3:8.2f} ms"
            if f"{op}_speedup" in entry:
                cell += f" ({entry[f'{op}_speedup']:.2f}x)"
            cells.append(cell.ljust(20))
        print(f"{workers:>7}   {''.join(cells)}")

    if args.parallel_check:
        ratio = scan["serial_ratio"]
        if ratio > args.max_serial_regression:
            print(f"FAIL: serial encoded scan is {ratio:.2f}x plain "
                  f"(allowed {args.max_serial_regression:.2f}x)")
            status = 1
        cpu_count = os.cpu_count() or 1
        skip_env = os.environ.get("REPRO_SKIP_PARALLEL_CHECK")
        if skip_env:
            reason = "REPRO_SKIP_PARALLEL_CHECK set"
        elif cpu_count < 4:
            reason = f"cpu_count={cpu_count} < 4"
        else:
            reason = None
        if reason is not None:
            print(f"parallel speedup gate skipped: {reason}")
            record["parallel"]["check"] = {"skipped": True, "reason": reason}
        else:
            speedup = parallel["workers"]["4"]["scan_speedup"]
            ok = speedup >= args.parallel_speedup
            record["parallel"]["check"] = {
                "skipped": False,
                "scan_speedup_4_workers": speedup,
                "required": args.parallel_speedup,
                "ok": ok,
            }
            if not ok:
                print(f"FAIL: 4-worker scan speedup {speedup:.2f}x < "
                      f"required {args.parallel_speedup:.2f}x")
                status = 1

    if args.output is None:
        args.output = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
    if str(args.output) != "-":
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.output}")
    return status


if __name__ == "__main__":
    sys.exit(main())
