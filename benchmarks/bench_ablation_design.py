"""Ablation of this reproduction's own design choices (DESIGN.md §5).

Not a paper figure — it justifies the three implementation decisions this
reproduction makes on top of the paper's description:

1. **telescoped GSL rewards** (delta vs the paper's literal absolute
   score) — same optimal policy, better credit assignment;
2. **exact/extension pool split** (``exact_row_share``) — most of the
   action-space budget goes to the representatives' own result rows;
3. **best-of-N candidate rollouts at inference** vs a single greedy
   rollout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import SWEEP_PROFILE, bench_asqp_config, emit
from repro.core import ASQPTrainer, score

K = 800

VARIANTS = [
    ("full recipe", dict()),
    ("absolute rewards (paper literal)", dict(gsl_delta_rewards=False)),
    ("no exact-row priority", dict(exact_row_share=0.33)),
    ("single greedy rollout", dict(n_candidate_rollouts=0)),
]


def _run(bundle) -> list[dict]:
    train, test = bundle.workload.split(0.3, np.random.default_rng(73))
    rows = []
    for name, overrides in VARIANTS:
        config = bench_asqp_config(
            K, 50, seed=20, **{**SWEEP_PROFILE, **overrides}
        )
        model = ASQPTrainer(bundle.db, train, config).train()
        quality = score(bundle.db, model.approximation_database(), test, 50)
        rows.append(
            {
                "variant": name,
                "quality": quality,
                "setup_seconds": model.setup_seconds,
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_design_ablation(benchmark, imdb_bundle):
    rows = benchmark.pedantic(_run, args=(imdb_bundle,), rounds=1, iterations=1)
    emit(
        "ablation_design",
        ["Variant", "Quality", "Setup (s)"],
        [
            [r["variant"], f"{r['quality']:.3f}", f"{r['setup_seconds']:.1f}"]
            for r in rows
        ],
        {"rows": rows},
        title="Design ablation — reproduction-specific choices (IMDB)",
    )
    by_name = {r["variant"]: r["quality"] for r in rows}
    # The full recipe should not lose to any single ablation by much.
    for name, quality in by_name.items():
        if name != "full recipe":
            assert by_name["full recipe"] >= quality * 0.85, name
