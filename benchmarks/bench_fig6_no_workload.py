"""Figure 6: the no-workload use case on FLIGHTS.

Protocol (paper §6.2): no workload is given, so the system generates one
from table statistics and trains on it. The user then iteratively submits
batches of 5 queries; after each batch the generator is refined toward the
user's interest and the model fine-tunes. Quality of the user's queries is
measured after every step, against the RAN and QRD baselines (the two that
also run without a workload).

Paper shape: ASQP starts adequate and climbs steeply with iterations,
ending well above QRD, which in turn beats RAN.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import SWEEP_PROFILE, ascii_chart, bench_asqp_config, emit
from repro.baselines import make_baseline
from repro.core import ASQPSession, ASQPTrainer, WorkloadGenerator, score
from repro.datasets import Workload

N_STEPS = 4
QUERIES_PER_STEP = 5
K = 800


def _run(bundle) -> dict:
    rng = np.random.default_rng(29)
    # The user's true interest: a hidden slice of the real workload.
    user_queries = list(bundle.workload)[: N_STEPS * QUERIES_PER_STEP]

    # ASQP in no-workload mode: generated workload, then iterative refinement.
    generator = WorkloadGenerator(bundle.db, np.random.default_rng(31))
    generated = generator.generate(30)
    config = bench_asqp_config(
        K, 50, seed=13, fine_tune_iterations=6, **SWEEP_PROFILE
    )
    model = ASQPTrainer(bundle.db, generated, config).train()
    session = ASQPSession(model, auto_fine_tune=False, workload_generator=generator)

    asqp_series = []
    for step in range(N_STEPS):
        batch = user_queries[step * QUERIES_PER_STEP : (step + 1) * QUERIES_PER_STEP]
        seen = user_queries[: (step + 1) * QUERIES_PER_STEP]
        quality = score(
            bundle.db, session.approx_db, Workload(list(seen)), frame_size=50
        )
        asqp_series.append(quality)
        session.fine_tune(list(batch))
    final_quality = score(
        bundle.db, session.approx_db, Workload(list(user_queries)), frame_size=50
    )
    asqp_series.append(final_quality)

    # Baselines (static; they cannot use the user queries).
    baseline_series = {}
    for name in ("RAN", "QRD"):
        selector = make_baseline(name)
        result = selector.select(
            bundle.db, Workload(list(generated)), K, 50, np.random.default_rng(37)
        )
        series = []
        for step in range(N_STEPS + 1):
            seen = user_queries[: max(1, step) * QUERIES_PER_STEP]
            series.append(
                score(bundle.db, result.database, Workload(list(seen)), frame_size=50)
            )
        baseline_series[name] = series

    return {"ASQP-RL": asqp_series, **baseline_series}


@pytest.mark.benchmark(group="fig6")
def test_fig6_no_workload(benchmark, flights_bundle):
    series = benchmark.pedantic(_run, args=(flights_bundle,), rounds=1, iterations=1)
    steps = list(range(len(series["ASQP-RL"])))
    emit(
        "fig6_no_workload",
        ["Method", *[f"step {s}" for s in steps]],
        [
            [name, *[f"{v:.3f}" for v in values]]
            for name, values in series.items()
        ],
        {"series": series},
        title="Figure 6 — no-workload mode on FLIGHTS (quality per fine-tune step)",
    )
    print(ascii_chart(series, steps, title="Figure 6 (chart)"))
    asqp = series["ASQP-RL"]
    # Fine-tuning on the user's queries improves quality over the session...
    assert asqp[-1] > asqp[0]
    # ...and ends above both no-workload baselines.
    assert asqp[-1] > series["RAN"][-1]
    assert asqp[-1] > series["QRD"][-1]
