"""Figure 2: quality (Eq. 1 score), setup time and per-query-batch time for
ASQP-RL, ASQP-Light and the ten baselines, on IMDB and MAS.

Paper shape to reproduce: ASQP-RL tops the Score column on both datasets
with ASQP-Light close behind at roughly half the setup time; the VAE
scores near zero on non-aggregate queries; RAN is the fastest setup but
low quality; GRE/BRT hit their (scaled) time budgets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    FIG2_METHODS,
    PAPER_FIG2_SCORES,
    bench_splits,
    emit,
    evaluate_over_splits,
)

#: Scaled-down stand-in for the paper's 48-hour search budget. The paper's
#: GRE/BRT hit their budget (GRE never finished on IMDB); at our ~1000x
#: smaller scale the equivalent binding budget is a few seconds.
SEARCH_BUDGET_SECONDS = 8.0


#: The headline table runs ASQP-RL at its full-strength profile (the
#: sweep figures use the cheaper SWEEP_PROFILE).
FULL_ASQP = dict(
    n_iterations=60,
    early_stopping_patience=12,
    episodes_per_actor=2,
    action_space_target=1000,
    n_candidate_rollouts=10,
)


def _run_dataset(bundle, k: int) -> list[dict]:
    rows = []
    for method in FIG2_METHODS:
        budget = SEARCH_BUDGET_SECONDS if method in ("BRT", "GRE") else None
        aggregated = evaluate_over_splits(
            bundle,
            method,
            k=k,
            frame_size=50,
            n_splits=bench_splits(),
            base_seed=7,
            time_budget=budget,
            asqp_overrides=FULL_ASQP if method == "ASQP-RL" else None,
        )
        rows.append(
            {
                "method": method,
                "score": aggregated.quality_mean,
                "score_std": aggregated.quality_std,
                "setup_seconds": aggregated.setup_mean,
                "setup_std": aggregated.setup_std,
                "query_avg_seconds": aggregated.query_avg_mean,
                "completed": aggregated.completed,
            }
        )
    return rows


def _emit(name: str, rows: list[dict], paper_index: int) -> None:
    headers = ["Method", "Score", "Setup(s)", "QueryAvg(ms)", "Budget", "Paper score"]
    table_rows = []
    for row in rows:
        paper = PAPER_FIG2_SCORES.get(row["method"], (float("nan"),) * 2)[paper_index]
        table_rows.append(
            [
                row["method"],
                f"{row['score']:.3f}±{row['score_std']:.3f}",
                f"{row['setup_seconds']:.1f}±{row['setup_std']:.1f}",
                f"{row['query_avg_seconds'] * 1000:.1f}",
                "ok" if row["completed"] else "TIMEOUT",
                "N/A" if not np.isfinite(paper) else f"{paper:.3f}",
            ]
        )
    emit(
        f"fig2_{name}",
        headers,
        table_rows,
        {"rows": rows, "k": None},
        title=f"Figure 2 — {name.upper()}: quality and running time",
    )


@pytest.mark.benchmark(group="fig2")
def test_fig2_imdb(benchmark, imdb_bundle):
    rows = benchmark.pedantic(
        _run_dataset, args=(imdb_bundle, 1000), rounds=1, iterations=1
    )
    _emit("imdb", rows, paper_index=0)
    scores = {row["method"]: row["score"] for row in rows}
    best_baseline = max(
        value for method, value in scores.items()
        if method not in ("ASQP-RL", "ASQP-Light")
    )
    assert scores["ASQP-RL"] >= best_baseline * 0.9, (
        "ASQP-RL should top (or tie) every baseline on IMDB"
    )
    assert scores["VAE"] < 0.1, "generative tuples must not count as answers"


@pytest.mark.benchmark(group="fig2")
def test_fig2_mas(benchmark, mas_bundle):
    rows = benchmark.pedantic(
        _run_dataset, args=(mas_bundle, 500), rounds=1, iterations=1
    )
    _emit("mas", rows, paper_index=1)
    scores = {row["method"]: row["score"] for row in rows}
    assert scores["ASQP-RL"] > scores["RAN"]
    assert scores["VAE"] < 0.1
