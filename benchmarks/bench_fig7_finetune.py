"""Figure 7: fine-tuning after interest drift.

Protocol (paper §6.2 "Fine-Tuning Importance"): cluster the workload into
three interest clusters via query embeddings; train on cluster 1 only;
measure per-cluster test quality; then reveal cluster 2's training queries
(the estimator flags them as unanswerable → fine-tune), measure again;
repeat with cluster 3.

Paper shape: each fine-tuning step sharply lifts the quality on the newly
introduced cluster while retaining quality on earlier clusters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import SWEEP_PROFILE, bench_asqp_config, emit
from repro.core import ASQPTrainer, score
from repro.datasets import Workload
from repro.db import compute_database_stats
from repro.embedding import QueryEmbedder, kmeans

N_CLUSTERS = 3


def _cluster_workload(bundle, rng) -> list[list]:
    embedder = QueryEmbedder(stats=compute_database_stats(bundle.db))
    vectors = embedder.embed_workload(list(bundle.workload))
    result = kmeans(vectors, N_CLUSTERS, rng)
    clusters = []
    for c in range(N_CLUSTERS):
        members = [bundle.workload.queries[i] for i in result.members(c)]
        clusters.append(members)
    # Largest cluster first so the initial training set is non-trivial.
    clusters.sort(key=len, reverse=True)
    return clusters


def _run(bundle) -> dict:
    rng = np.random.default_rng(41)
    clusters = _cluster_workload(bundle, rng)
    splits = []
    for members in clusters:
        n_test = max(1, len(members) // 4)
        order = rng.permutation(len(members))
        test = [members[i] for i in order[:n_test]]
        train = [members[i] for i in order[n_test:]] or test
        splits.append((train, test))

    config = bench_asqp_config(1000, 50, seed=19, fine_tune_iterations=8,
                               **SWEEP_PROFILE)
    model = ASQPTrainer(bundle.db, Workload(list(splits[0][0])), config).train()

    def per_cluster_quality() -> list[float]:
        sub = model.approximation_database()
        return [
            score(bundle.db, sub, Workload(list(test)), frame_size=50)
            for _, test in splits
        ]

    stages = {"trained on cluster 1": per_cluster_quality()}
    for stage in range(1, N_CLUSTERS):
        model.fine_tune(list(splits[stage][0]))
        stages[f"+ fine-tuned on cluster {stage + 1}"] = per_cluster_quality()
    return {
        "stages": stages,
        "cluster_sizes": [len(m) for m in clusters],
    }


@pytest.mark.benchmark(group="fig7")
def test_fig7_finetune(benchmark, imdb_bundle):
    result = benchmark.pedantic(_run, args=(imdb_bundle,), rounds=1, iterations=1)
    stages = result["stages"]
    emit(
        "fig7_finetune",
        ["Stage", *[f"cluster {c + 1} quality" for c in range(N_CLUSTERS)]],
        [[name, *[f"{v:.3f}" for v in values]] for name, values in stages.items()],
        result,
        title="Figure 7 — quality per interest cluster across fine-tuning stages",
    )
    names = list(stages)
    # Fine-tuning on cluster 2 lifts cluster-2 quality...
    assert stages[names[1]][1] > stages[names[0]][1]
    # ...and on cluster 3 lifts cluster-3 quality.
    assert stages[names[2]][2] > stages[names[0]][2]
