"""Assemble EXPERIMENTS.md from recorded benchmark tables.

Run after ``pytest benchmarks/ --benchmark-only``::

    python scripts/build_experiments.py

Reads ``bench_results/*.txt`` (the formatted tables each benchmark wrote)
and splices them, with per-experiment commentary, between the MEASURED
RESULTS markers of EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys

RESULTS_DIR = os.environ.get("REPRO_RESULTS_DIR", "bench_results")
TARGET = "EXPERIMENTS.md"
START = "<!-- MEASURED RESULTS START -->"
END = "<!-- MEASURED RESULTS END -->"

#: experiment id -> (section heading, paper-reported shape, commentary)
SECTIONS = [
    ("fig2_imdb", "Figure 2 — IMDB (quality / setup / per-query time)",
     "Paper: ASQP-RL 0.64±0.06 (60 min setup), ASQP-Light 0.53 (32 min), "
     "VAE 0.0025, best non-ASQP baseline VERD 0.471; GRE never finished.",
     "Reproduced shape: ASQP-RL tops the table; ASQP-Light trades ~15-25% "
     "quality for roughly half the setup; the VAE's fabricated tuples score "
     "~0; GRE/BRT hit their scaled budgets. Differences: at our "
     "budget-to-data ratio the workload-agnostic baselines (RAN/VERD/SKY/QRD)"
     " collapse toward zero instead of the paper's mid-pack scores — see "
     "docs/datasets.md."),
    ("fig2_mas", "Figure 2 — MAS",
     "Paper: ASQP-RL 0.754, ASQP-Light 0.61, GRE (the best baseline) 0.518.",
     "Reproduced shape: same ordering character on the second dataset."),
    ("fig3_imdb", "Figure 3 — RL ablation (IMDB)",
     "Paper: GSL/full 0.64 > GSL−ppo 0.536 > GSL−ppo−ac 0.496; DRP ~0.36; "
     "hybrid in between.",
     "Reproduced shape: with environment-faithful inference (the DRP "
     "variants score the drop-one process's own episode outcome), GSL beats "
     "DRP; agent ablations degrade the full agent or tie within noise at "
     "this training budget."),
    ("fig3_mas", "Figure 3 — RL ablation (MAS)",
     "Paper: GSL/full 0.754 > ablations; DRP worst.", ""),
    ("fig4_direct_query_cost", "Figure 4 — problem justification",
     "Paper: cumulative average direct-query latency passes 5 hours after "
     "seven queries at the 1 GB scale.",
     "Reproduced shape: cumulative mean latency grows superlinearly with the "
     "blow-up factor (x8 data ≈ x20-30 latency at the session tail)."),
    ("fig5_estimator", "Figure 5 — answerability estimator",
     "Paper: 0.90 precision / 0.95 recall at full training access; "
     "0.75 / 0.85 at 50%.",
     "Reproduced shape: strong detector at full access, graceful degradation "
     "with less training visibility."),
    ("fig5_full_system", "Figure 5 — full-system variants",
     "Paper: querying the DB below predicted score 0.6 lifts the average "
     "score to 85% at ~24 min/query; below 0.8 to 76%.",
     "Reproduced shape: both thresholds lift average answer quality above "
     "approximation-only at higher per-query latency."),
    ("fig6_no_workload", "Figure 6 — no-workload mode (FLIGHTS)",
     "Paper: quality climbs across iterations to ~90%, vs QRD <70% and RAN "
     "below that.",
     "Reproduced shape: generated-workload training starts adequate and "
     "fine-tuning on each batch of user queries lifts quality above both "
     "no-workload baselines."),
    ("fig7_finetune", "Figure 7 — fine-tuning after interest drift",
     "Paper: rapid quality recovery on each newly introduced query cluster.",
     "Reproduced shape: each fine-tuning stage sharply lifts the newly "
     "revealed cluster while earlier clusters are retained."),
    ("fig8_memory_k", "Figure 8 — quality vs memory budget k",
     "Paper: ASQP-RL reaches 80% at k=15k, double GRE and +20% over SKY/QRD; "
     "all methods improve with k.",
     "Reproduced shape: monotone in k for every method, ASQP-RL on top at "
     "the largest budget."),
    ("fig9_frame_f", "Figure 9 — quality vs frame size F",
     "Paper: larger F makes the problem harder for everyone (SKY 0.4→0.2); "
     "ASQP-RL consistently on top.",
     "Reproduced shape: decreasing curves, ASQP-RL competitive at every F."),
    ("fig10_train_size", "Figure 10 — training-set fraction",
     "Paper: quality degrades gracefully as fewer training queries execute; "
     "training time drops to ~30 minutes.",
     "Reproduced shape: graceful quality decay; the time effect is flatter "
     "here because query execution is cheap relative to RL iterations in "
     "this simulator."),
    ("fig11_entropy_coef", "Figure 11 — entropy coefficient",
     "Paper: entropy coefficient is the crucial knob; 0.001 chosen.",
     "Reproduced: all settings train; sensitivity is milder at this network "
     "scale."),
    ("fig11_learning_rate", "Figure 11 — learning rate", "", ""),
    ("fig11_kl_coef", "Figure 11 — KL coefficient",
     "Paper: comparatively flat in the KL coefficient.", ""),
    ("fig12_aggregates", "Figure 12 — aggregate AQP vs gAQP and DeepDB",
     "Paper: no engine dominates; ASQP-RL attains the lowest error on half "
     "the operator classes and is comparable elsewhere.",
     "Reproduced shape: ASQP-RL (with self-calibrated COUNT/SUM rescaling) "
     "is best or near-best on several classes; the SPN is strongest on "
     "plain counts, as expected for a dedicated single-table estimator."),
    ("diversity", "§6.2 — answer diversity",
     "Paper: full-DB diversity 58%, ASQP-RL 52%, ≥14% above any baseline, "
     "with RAN the closest diversity competitor but far worse quality.",
     "Reproduced shape: ASQP-RL's diversity is within a few points of the "
     "full database while holding the best quality among selections."),
    ("ablation_design", "Design ablation (reproduction-specific)",
     "Not a paper figure — justifies this reproduction's own choices "
     "(telescoped rewards, exact-row priority, best-of-N inference).", ""),
]


def main() -> int:
    blocks = []
    missing = []
    for experiment, heading, paper, note in SECTIONS:
        path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
        if not os.path.exists(path):
            missing.append(experiment)
            continue
        with open(path) as handle:
            table = handle.read().rstrip()
        parts = [f"### {heading}", ""]
        if paper:
            cleaned = paper[len("Paper: "):] if paper.startswith("Paper: ") else paper
            parts += [f"**Paper:** {cleaned}", ""]
        parts += ["```", table, "```", ""]
        if note:
            parts += [note, ""]
        blocks.append("\n".join(parts))

    with open(TARGET) as handle:
        text = handle.read()
    head, _, rest = text.partition(START)
    _, _, tail = rest.partition(END)
    body = "\n".join([START, "", *blocks, END])
    with open(TARGET, "w") as handle:
        handle.write(head + body + tail)
    print(f"wrote {len(blocks)} sections to {TARGET}"
          + (f"; missing: {missing}" if missing else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
