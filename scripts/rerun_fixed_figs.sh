#!/bin/sh
# Re-run Figure 2 and Figure 3 after the CACH single-pass, BRT tuple-level,
# GRE budget, full-profile-ASQP and environment-faithful-DRP fixes, appending
# to the recorded bench output.
set -e
cd /root/repo
{
  echo ""
  echo "=================================================================="
  echo "RE-RUN (fixed): bench_fig2_quality_time.py + bench_fig3_rl_ablation.py"
  echo "=================================================================="
} >> bench_output.txt
python -m pytest benchmarks/bench_fig2_quality_time.py benchmarks/bench_fig3_rl_ablation.py benchmarks/bench_fig4_direct_query_cost.py \
  --benchmark-only -s 2>&1 | tee -a bench_output.txt | tail -3
