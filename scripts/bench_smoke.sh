#!/bin/sh
# CI smoke run: lint + vectorized-kernel micro-benchmark.
#
# 1. repro lint src — the full AST rule pack (subsumes the old
#    check_no_print grep; scripts/check_no_print.sh remains as a thin
#    wrapper over the no-bare-print rule).
# 2. benchmarks/bench_kernels.py (fast profile) — fails if any kernel's
#    vectorized timing regressed by more than 2x against the committed
#    BENCH_kernels.json baseline, if a required speedup over the
#    reference implementations no longer holds, if the median
#    observability-instrumentation overhead (enabled vs disabled)
#    exceeds 2% (--obs-check), or if the disabled strict-mode contract
#    wrappers cost more than 2% over the raw kernels (--strict-check).
set -e
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro lint src
PYTHONPATH=src python benchmarks/bench_kernels.py \
  --profile fast \
  --check BENCH_kernels.json \
  --max-regression 2.0 \
  --obs-check \
  --strict-check \
  --output -
