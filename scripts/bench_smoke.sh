#!/bin/sh
# CI smoke run of the vectorized-kernel micro-benchmark.
#
# Runs benchmarks/bench_kernels.py in the fast profile and fails if any
# kernel's vectorized timing regressed by more than 2x against the
# committed BENCH_kernels.json baseline (or if a required speedup over
# the reference implementations no longer holds).
set -e
cd "$(dirname "$0")/.."
PYTHONPATH=src python benchmarks/bench_kernels.py \
  --profile fast \
  --check BENCH_kernels.json \
  --max-regression 2.0 \
  --output -
