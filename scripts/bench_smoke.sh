#!/bin/sh
# CI smoke run: lint + vectorized-kernel micro-benchmark.
#
# 1. scripts/check_no_print.sh — no bare print() in library code.
# 2. benchmarks/bench_kernels.py (fast profile) — fails if any kernel's
#    vectorized timing regressed by more than 2x against the committed
#    BENCH_kernels.json baseline, if a required speedup over the
#    reference implementations no longer holds, or if the median
#    observability-instrumentation overhead (enabled vs disabled)
#    exceeds 2% (--obs-check).
set -e
cd "$(dirname "$0")/.."
sh scripts/check_no_print.sh
PYTHONPATH=src python benchmarks/bench_kernels.py \
  --profile fast \
  --check BENCH_kernels.json \
  --max-regression 2.0 \
  --obs-check \
  --output -
