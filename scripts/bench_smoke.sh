#!/bin/sh
# CI smoke run: lint + vectorized-kernel micro-benchmark.
#
# 1. repro lint src — the full AST rule pack (subsumes the old
#    check_no_print grep; scripts/check_no_print.sh remains as a thin
#    wrapper over the no-bare-print rule).
# 2. benchmarks/bench_kernels.py (fast profile) — fails if any kernel's
#    vectorized throughput regressed by more than 25% against the
#    committed BENCH_kernels.json baseline (override the tolerance with
#    BENCH_MAX_REGRESSION for noisy CI machines), if a required speedup
#    over the reference implementations no longer holds, if the median
#    observability-instrumentation overhead (enabled vs disabled)
#    exceeds 2% (--obs-check), if the disabled strict-mode contract
#    wrappers cost more than 2% over the raw kernels (--strict-check),
#    or if the running 100hz sampling profiler costs more than 5% on
#    the kernels (--profile-check). --audit-check gates shadow auditing
#    on end-to-end serving: directly-attributed per-query accounting
#    plus audit re-execution time must stay under 2% at the default
#    sample rate. --parallel-check additionally gates
#    the column store: the serial encoded scan must stay within 1.25x
#    of the plain scan, and the 4-worker morsel scan must reach 1.5x
#    over serial — the speedup half auto-skips on runners with fewer
#    than 4 CPUs or when REPRO_SKIP_PARALLEL_CHECK is set.
set -e
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro lint src
PYTHONPATH=src python benchmarks/bench_kernels.py \
  --profile fast \
  --check BENCH_kernels.json \
  --max-regression "${BENCH_MAX_REGRESSION:-1.25}" \
  --obs-check \
  --strict-check \
  --profile-check \
  --audit-check \
  --parallel-check \
  --output -
