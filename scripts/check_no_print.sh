#!/bin/sh
# Lint: no bare print() in library code under src/repro/.
#
# Thin compatibility wrapper over the AST-accurate rule so the shell
# check and the linter cannot drift: the actual logic (including the
# exemptions for the CLI entry point src/repro/__main__.py and the
# console implementation src/repro/obs/log.py) lives in
# src/repro/lint/rules.py (NoBarePrint). Kept under this name because
# earlier CI and docs refer to scripts/check_no_print.sh.
set -e
cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
  python -m repro.lint src/repro --rules no-bare-print
echo "check_no_print: OK"
