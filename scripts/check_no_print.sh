#!/bin/sh
# Lint: no bare print() in library code under src/repro/.
#
# Console output from the library goes through repro.obs.log.console (a
# sys.stdout wrapper) and structured events through repro.obs telemetry;
# bare print() in library modules is a smell that bypasses both. The CLI
# entry point (src/repro/__main__.py) is the designated console surface
# and is exempt, as is the console implementation itself
# (src/repro/obs/log.py).
set -e
cd "$(dirname "$0")/.."

violations=$(grep -rnE '(^|[^A-Za-z0-9_.])print\(' src/repro --include='*.py' \
  | grep -v '^src/repro/__main__\.py:' \
  | grep -v '^src/repro/obs/log\.py:' \
  || true)

if [ -n "$violations" ]; then
  echo "bare print() calls found in library code (use repro.obs.log.console"
  echo "or telemetry instead; see scripts/check_no_print.sh):"
  echo "$violations"
  exit 1
fi
echo "check_no_print: OK"
