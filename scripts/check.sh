#!/bin/sh
# Full per-PR check: tests + static analysis + strict-mode smoke.
#
# 1. tier-1 pytest           — the repo's own test suite (ROADMAP.md),
#                              pinned to REPRO_WORKERS=0 so the serial
#                              execution path is what CI certifies; the
#                              column-store/parallel differential files
#                              then re-run with REPRO_WORKERS=4 and a
#                              low morsel floor so the worker-pool path
#                              (shared memory, morsel merge) is also
#                              exercised end to end.
# 2. repro lint              — the two-phase analyzer (per-file rules +
#                              whole-program fork-safety/lifecycle pack)
#                              over src+tests+benchmarks with an empty
#                              committed baseline: errors fail, warns
#                              report (--strict-severity); a second
#                              warm-cache run must finish under the 5s
#                              budget so lint never becomes the slow
#                              step (DESIGN.md §12).
# 3. strict-mode smoke train — a micro fit+query run with the runtime
#                              shape/dtype/NaN contracts enabled
#                              (REPRO_STRICT=1), so a contract that
#                              would fire on the real pipeline fails CI
#                              rather than a user.
# 4. repro explain --analyze  — the EXPLAIN ANALYZE path on a 3-table
#                              IMDB join (per-operator est/act/q-error).
# 5. repro report --smoke     — records a tiny end-to-end run and fuses
#                              it into the markdown diagnostic artifact.
# 6. repro profile + top       — profiles a micro demo run (sampling
#                              profiler + memory tracker + SLOs) and
#                              renders one frame of the live view from
#                              the recorded artifacts.
# 7. repro watch --once        — one frame of the ops console over the
#                              same profiled run dir (DESIGN.md §11).
# 8. analyze/diff smoke        — records an EXPLAIN ANALYZE run with
#                              telemetry, asserts the trace id printed
#                              in the plan footer resolves through
#                              `repro analyze --slowest 1`, and diffs
#                              the run against itself (must report no
#                              regressions).
# 9. watchdog smoke            — REPRO_TEST_HANG_MORSEL wedges a morsel;
#                              the pool watchdog must cancel it and the
#                              serial fallback must return the identical
#                              result (tests/test_worker_obs.py).
# 10. repro audit --smoke      — records a run with shadow auditing at
#                              rate 1.0 and prints the predicted-vs-
#                              observed calibration table, so the
#                              answer-quality pipeline (auditor, quality
#                              SLOs, drift detector) is exercised end to
#                              end on every PR (DESIGN.md §14).
#
# Benchmark gates (kernel regressions, instrumentation + contract
# overhead) live in scripts/bench_smoke.sh.
set -e
cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== tier-1 tests (serial execution path, REPRO_WORKERS=0)"
REPRO_WORKERS=0 python -m pytest -x -q

echo "== parallel differential (REPRO_WORKERS=4 through the morsel pool)"
REPRO_WORKERS=4 REPRO_PARALLEL_MIN_ROWS=1024 \
  python -m pytest tests/test_columnstore.py tests/test_parallel.py -q

echo "== repro lint (whole-program pass, strict severity)"
python -m repro lint --strict-severity --baseline lint_baseline.json

echo "== repro lint timing budget (<5s warm cache)"
python - <<'EOF'
import sys, time
from repro.lint import cli

start = time.perf_counter()
code, text = cli.run(strict_severity=True, baseline="lint_baseline.json")
elapsed = time.perf_counter() - start
sys.stdout.write(f"warm-cache full-tree lint: {elapsed:.2f}s\n")
if code != 0:
    sys.stdout.write(text + "\n")
    sys.exit(code)
if elapsed >= 5.0:
    sys.stdout.write("lint timing budget exceeded (>= 5s warm cache)\n")
    sys.exit(1)
EOF

echo "== strict-mode smoke (REPRO_STRICT=1 micro train + queries)"
REPRO_STRICT=1 python -m repro demo \
  --dataset flights --scale 0.12 --k 100 --iterations 2 --light --seed 1 \
  > /dev/null
echo "strict smoke: OK"

echo "== repro explain --analyze (3-table IMDB join)"
python -m repro explain \
  "SELECT title.title FROM title, movie_companies, company \
   WHERE title.id = movie_companies.movie_id \
   AND movie_companies.company_id = company.id \
   AND title.production_year > 1990" \
  --dataset imdb --scale 0.3 --analyze

echo "== repro report --smoke"
report_dir="$(mktemp -d)"
python -m repro report --smoke --dir "$report_dir"
rm -rf "$report_dir"

echo "== repro profile + top (continuous profiler smoke)"
profile_dir="$(mktemp -d)"
python -m repro profile --dir "$profile_dir" demo \
  --dataset flights --scale 0.12 --k 100 --frame-size 20 \
  --iterations 2 --light --seed 1 > /dev/null
test -s "$profile_dir/flamegraph.html"
test -s "$profile_dir/profile.collapsed.txt"
python -m repro top --dir "$profile_dir" --once

echo "== repro watch --once (ops console over the profiled run)"
python -m repro watch --dir "$profile_dir" --once
rm -rf "$profile_dir"

echo "== repro analyze / diff smoke (trace id round trip)"
analyze_dir="$(mktemp -d)"
python -m repro explain \
  "SELECT title.title FROM title WHERE title.production_year > 1990" \
  --dataset imdb --scale 0.3 --analyze --telemetry "$analyze_dir" \
  > "$analyze_dir/explain.out"
trace_id="$(sed -n 's/^trace: \([0-9a-f]\{32\}\)$/\1/p' \
  "$analyze_dir/explain.out")"
test -n "$trace_id"
python -m repro analyze --dir "$analyze_dir" --slowest 1 \
  | grep -q "$trace_id"
python -m repro analyze --dir "$analyze_dir" --trace "$trace_id" > /dev/null
python -m repro diff "$analyze_dir" "$analyze_dir" \
  | grep -q "no regressions"
rm -rf "$analyze_dir"

echo "== pool watchdog smoke (forced-hang morsel, serial fallback)"
python -m pytest tests/test_worker_obs.py -q -k "watchdog or hung"

echo "== repro audit --smoke (shadow auditing + calibration table)"
audit_dir="$(mktemp -d)"
python -m repro audit --smoke --dir "$audit_dir" > "$audit_dir/audit.out"
grep -q "Calibration" "$audit_dir/audit.out"
rm -rf "$audit_dir"
echo "audit smoke: OK"

echo "check: OK"
