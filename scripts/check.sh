#!/bin/sh
# Full per-PR check: tests + static analysis + strict-mode smoke.
#
# 1. tier-1 pytest           — the repo's own test suite (ROADMAP.md).
# 2. repro lint src          — the AST rule pack over the whole tree
#                              (empty committed baseline: any finding is
#                              new and fails the check; see DESIGN.md
#                              §"Static analysis & strict mode").
# 3. strict-mode smoke train — a micro fit+query run with the runtime
#                              shape/dtype/NaN contracts enabled
#                              (REPRO_STRICT=1), so a contract that
#                              would fire on the real pipeline fails CI
#                              rather than a user.
#
# Benchmark gates (kernel regressions, instrumentation + contract
# overhead) live in scripts/bench_smoke.sh.
set -e
cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== tier-1 tests"
python -m pytest -x -q

echo "== repro lint"
python -m repro lint src --baseline lint_baseline.json

echo "== strict-mode smoke (REPRO_STRICT=1 micro train + queries)"
REPRO_STRICT=1 python -m repro demo \
  --dataset flights --scale 0.12 --k 100 --iterations 2 --light --seed 1 \
  > /dev/null
echo "strict smoke: OK"

echo "check: OK"
