"""Tests for strict-mode runtime contracts (repro.contracts).

Covers shape/dtype mismatches raising under strict mode, the NaN guard
tripping on a poisoned PPO batch, and the disabled-mode promise: same
results, no behavioural change, and no allocations attributable to the
contracts module.
"""

import tracemalloc

import numpy as np
import pytest

from repro import contracts
from repro.contracts import (
    ContractError,
    assert_finite,
    dtype_contract,
    shape_contract,
)
from repro.db import kernels
from repro.rl.policy import ActorNetwork, CriticNetwork
from repro.rl.ppo import PPOConfig, PPOUpdater
from repro.rl.rollout import RolloutBatch


@pytest.fixture(autouse=True)
def _restore_strict_state():
    previous = contracts.STATE.enabled
    yield
    contracts.STATE.enabled = previous


class TestShapeContracts:
    def test_mismatched_key_lengths_raise_in_kernels(self):
        with contracts.strict():
            with pytest.raises(ContractError, match="factorize_keys"):
                kernels.factorize_keys([np.arange(5), np.arange(6)])

    def test_dimension_variable_binds_across_parameters(self):
        @shape_contract(a=("n",), b=("n",))
        def paired(a, b):
            return a

        with contracts.strict():
            paired(np.arange(3), np.arange(3))
            with pytest.raises(ContractError, match="bound to 3"):
                paired(np.arange(3), np.arange(4))

    def test_exact_and_wildcard_dims(self):
        @shape_contract(x=(2, None))
        def f(x):
            return x

        with contracts.strict():
            f(np.zeros((2, 7)))
            with pytest.raises(ContractError, match="axis 0"):
                f(np.zeros((3, 7)))

    def test_return_spec_checks_tuple_outputs(self):
        @shape_contract(returns=(("m",), ("m",)))
        def unequal():
            return np.arange(2), np.arange(3)

        with contracts.strict():
            with pytest.raises(ContractError, match="returns"):
                unequal()

    def test_kernels_pass_on_well_formed_input(self):
        arrays = [np.array([1, 2, 1, 2]), np.array([0.5, 1.5, 0.5, 2.5])]
        expected = kernels.distinct_positions(arrays)
        with contracts.strict():
            strict_result = kernels.distinct_positions(arrays)
            kernels.factorize_keys(arrays)
            kernels.group_by_positions(arrays)
            kernels.join_positions(arrays, arrays)
        np.testing.assert_array_equal(strict_result, expected)


class TestDtypeContracts:
    def test_kind_mismatch_raises(self):
        @dtype_contract(x="i")
        def ints_only(x):
            return x

        with contracts.strict():
            ints_only(np.arange(3))
            with pytest.raises(ContractError, match="dtype kind"):
                ints_only(np.linspace(0, 1, 3))

    def test_return_dtype_checked(self):
        @dtype_contract(returns="i")
        def leaks_floats():
            return np.zeros(3)

        with contracts.strict():
            with pytest.raises(ContractError, match="returns"):
                leaks_floats()

    def test_multiple_kinds_allowed(self):
        @dtype_contract(x="if")
        def numeric(x):
            return x

        with contracts.strict():
            numeric(np.arange(3))
            numeric(np.linspace(0, 1, 3))


class TestFiniteGuards:
    def test_assert_finite_names_offending_tensor(self):
        with pytest.raises(ContractError, match="advantages"):
            assert_finite(
                "ppo.update",
                returns=np.zeros(3),
                advantages=np.array([0.0, np.nan, 1.0]),
            )

    def test_assert_finite_reports_inf_and_scalar(self):
        with pytest.raises(ContractError, match="policy_loss"):
            assert_finite(None, policy_loss=float("inf"))

    def test_integer_arrays_are_skipped(self):
        assert_finite("ctx", actions=np.arange(5))

    def test_poisoned_ppo_batch_raises_under_strict(self):
        rng = np.random.default_rng(3)
        n_actions, n = 4, 12
        actor = ActorNetwork(n_actions, rng, hidden=[8])
        critic = CriticNetwork(n_actions, rng, hidden=[8])
        updater = PPOUpdater(
            actor, critic, PPOConfig(minibatch_size=4, update_epochs=1), rng
        )
        advantages = rng.normal(size=n)
        advantages[5] = np.nan
        batch = RolloutBatch(
            states=rng.normal(size=(n, n_actions)),
            actions=rng.integers(0, n_actions, size=n),
            old_log_probs=np.full(n, -1.0),
            returns=rng.normal(size=n),
            advantages=advantages,
            masks=np.ones((n, n_actions), dtype=bool),
        )
        with contracts.strict():
            with pytest.raises(ContractError, match="advantages"):
                updater.update(batch)
        # Disabled: the same poisoned batch passes through unchecked.
        contracts.disable()
        stats = updater.update(batch)
        assert stats.n_samples == n

    def test_clean_ppo_batch_trains_under_strict(self):
        rng = np.random.default_rng(4)
        n_actions, n = 3, 8
        actor = ActorNetwork(n_actions, rng, hidden=[8])
        critic = CriticNetwork(n_actions, rng, hidden=[8])
        updater = PPOUpdater(
            actor, critic, PPOConfig(minibatch_size=4, update_epochs=1), rng
        )
        batch = RolloutBatch(
            states=rng.normal(size=(n, n_actions)),
            actions=rng.integers(0, n_actions, size=n),
            old_log_probs=np.full(n, -1.0),
            returns=rng.normal(size=n),
            advantages=rng.normal(size=n),
            masks=np.ones((n, n_actions), dtype=bool),
        )
        with contracts.strict():
            stats = updater.update(batch)
        assert np.isfinite(stats.policy_loss)


class TestDisabledMode:
    def test_results_identical_with_contracts_disabled(self):
        @shape_contract(x=("n",))
        @dtype_contract(x="i")
        def double(x):
            return x * 2

        contracts.disable()
        x = np.arange(6)
        np.testing.assert_array_equal(double(x), x * 2)

    def test_env_var_controls_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_STRICT", "1")
        assert contracts._env_default() is True
        monkeypatch.setenv("REPRO_STRICT", "0")
        assert contracts._env_default() is False
        monkeypatch.delenv("REPRO_STRICT")
        assert contracts._env_default() is False

    def test_strict_context_restores_previous_state(self):
        contracts.disable()
        with contracts.strict():
            assert contracts.is_enabled()
            with contracts.strict(False):
                assert not contracts.is_enabled()
            assert contracts.is_enabled()
        assert not contracts.is_enabled()

    def test_disabled_wrapper_allocates_nothing(self):
        """The zero-overhead promise: with strict mode off, repeated calls
        through a contract wrapper leave no live allocations attributable
        to the contracts module."""

        @shape_contract(x=("n",), returns=("n",))
        def identity(x):
            return x

        contracts.disable()
        x = np.arange(8)
        identity(x)  # warm any lazy interpreter state
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(200):
                identity(x)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = after.compare_to(before, "lineno")
        leaked = [
            stat
            for stat in stats
            if stat.traceback[0].filename == contracts.__file__
            and stat.size_diff > 0
        ]
        assert leaked == []
