"""Tests for EXPLAIN / EXPLAIN ANALYZE operator trees (repro.db.plan)."""

import json

import pytest

from repro import obs
from repro.db import (
    ExecutionError,
    PlanNode,
    execute,
    execute_aggregate,
    explain,
    q_error,
    split_explain,
    sql,
)
from repro.obs import metrics, telemetry, trace


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    trace.reset()
    metrics.reset()
    telemetry.reset()
    telemetry.configure(None)
    yield
    obs.disable()
    trace.reset()
    metrics.reset()
    telemetry.reset()
    telemetry.configure(None)


JOIN_SQL = (
    "SELECT movies.title FROM movies, cast_info "
    "WHERE movies.id = cast_info.movie_id AND movies.year > 2000"
)


# ------------------------------------------------------------------ #
# q-error
# ------------------------------------------------------------------ #
class TestQError:
    def test_exact_is_one(self):
        assert q_error(10, 10) == 1.0

    def test_symmetric(self):
        assert q_error(10, 100) == q_error(100, 10) == pytest.approx(10.0)

    def test_zero_actual_clamped(self):
        # Empty results clamp to one row instead of producing infinity.
        assert q_error(50, 0) == pytest.approx(50.0)

    def test_always_at_least_one(self):
        assert q_error(0.2, 0.4) == 1.0


# ------------------------------------------------------------------ #
# estimate-only EXPLAIN
# ------------------------------------------------------------------ #
class TestExplain:
    def test_does_not_execute(self, mini_db):
        plan = explain(mini_db, sql(JOIN_SQL))
        assert plan.analyze is False
        assert plan.result is None
        assert plan.total_seconds is None
        assert all(node.actual_rows is None for node in plan.operators())
        assert all(node.seconds is None for node in plan.operators())

    def test_operator_shape(self, mini_db):
        plan = explain(mini_db, sql(JOIN_SQL))
        ops = [node.op for node in plan.operators()]
        assert ops.count("scan") == 2
        assert "hash_join" in ops
        assert "filter" in ops      # pushdown of movies.year > 2000
        assert "project" in ops     # movies.title
        assert plan.root.op == "project"

    def test_every_operator_has_estimate(self, mini_db):
        plan = explain(mini_db, sql(JOIN_SQL))
        for node in plan.operators():
            assert node.estimated_rows is not None
            assert node.estimated_rows >= 0

    def test_scan_estimate_is_table_size(self, mini_db):
        plan = explain(mini_db, sql("SELECT * FROM movies"))
        scans = [n for n in plan.operators() if n.op == "scan"]
        assert scans[0].estimated_rows == 6.0

    def test_filter_estimate_below_scan(self, mini_db):
        plan = explain(
            mini_db, sql("SELECT * FROM movies WHERE movies.year > 2015")
        )
        filt = next(n for n in plan.operators() if n.op == "filter")
        scan = next(n for n in plan.operators() if n.op == "scan")
        assert filt.estimated_rows < scan.estimated_rows

    def test_limit_caps_estimate(self, mini_db):
        plan = explain(mini_db, sql("SELECT * FROM movies LIMIT 2"))
        assert plan.root.op == "limit"
        assert plan.root.estimated_rows == 2.0

    def test_sort_and_distinct_nodes(self, mini_db):
        plan = explain(
            mini_db,
            sql(
                "SELECT DISTINCT movies.genre FROM movies "
                "ORDER BY movies.genre"
            ),
        )
        ops = [node.op for node in plan.operators()]
        assert "sort" in ops
        assert "distinct" in ops

    def test_unknown_table_raises(self, mini_db):
        with pytest.raises(ExecutionError):
            explain(mini_db, sql("SELECT * FROM bogus"))

    def test_aggregate_root(self, mini_db):
        plan = explain(
            mini_db,
            sql(
                "SELECT movies.genre, COUNT(*) FROM movies "
                "GROUP BY movies.genre"
            ),
        )
        assert plan.root.op == "aggregate"
        # three distinct genres; the NDV estimate is exact on tiny data
        assert plan.root.estimated_rows == pytest.approx(3.0, rel=0.5)


# ------------------------------------------------------------------ #
# EXPLAIN ANALYZE
# ------------------------------------------------------------------ #
class TestExplainAnalyze:
    def test_actuals_match_execute(self, mini_db):
        query = sql(JOIN_SQL)
        plan = explain(mini_db, query, analyze=True)
        expected = execute(mini_db, query)
        assert plan.analyze is True
        assert plan.result is not None
        assert plan.result.n_rows == expected.n_rows
        assert plan.root.actual_rows == expected.n_rows

    def test_per_operator_actuals_and_time(self, mini_db):
        plan = explain(mini_db, sql(JOIN_SQL), analyze=True)
        for node in plan.operators():
            assert node.actual_rows is not None
            assert node.seconds is not None and node.seconds >= 0
            assert node.q is not None and node.q >= 1.0
        assert plan.max_q_error() >= 1.0
        assert plan.total_seconds > 0

    def test_scan_actual_is_table_size(self, mini_db):
        plan = explain(mini_db, sql(JOIN_SQL), analyze=True)
        scans = {n.label: n for n in plan.operators() if n.op == "scan"}
        assert scans["movies"].actual_rows == 6
        assert scans["cast_info"].actual_rows == 7

    def test_aggregate_analyze(self, mini_db):
        query = sql(
            "SELECT movies.genre, COUNT(*) FROM movies GROUP BY movies.genre"
        )
        plan = explain(mini_db, query, analyze=True)
        expected = execute_aggregate(mini_db, query)
        assert plan.root.op == "aggregate"
        assert plan.root.actual_rows == len(expected)
        assert plan.root.seconds is not None and plan.root.seconds >= 0

    def test_three_table_join_imdb(self, tiny_imdb):
        """Acceptance criterion: per-operator est/act/q/time on a 3-way join."""
        query = sql(
            "SELECT title.title FROM title, movie_companies, company "
            "WHERE title.id = movie_companies.movie_id "
            "AND movie_companies.company_id = company.id "
            "AND title.production_year > 1990"
        )
        plan = explain(tiny_imdb.db, query, analyze=True)
        ops = [node.op for node in plan.operators()]
        assert ops.count("scan") == 3
        assert ops.count("hash_join") + ops.count("cross_join") == 2
        for node in plan.operators():
            assert node.estimated_rows is not None
            assert node.actual_rows is not None
            assert node.q >= 1.0
            assert node.seconds >= 0
        assert plan.result.n_rows == execute(tiny_imdb.db, query).n_rows


# ------------------------------------------------------------------ #
# rendering and serialization
# ------------------------------------------------------------------ #
class TestPlanRendering:
    def test_format_text(self, mini_db):
        text = explain(mini_db, sql(JOIN_SQL), analyze=True).format()
        assert text.startswith("EXPLAIN ANALYZE:")
        assert "-> " in text
        assert "est=" in text and "act=" in text and "q=" in text
        assert text.strip().endswith("ms")

    def test_format_estimate_only(self, mini_db):
        text = explain(mini_db, sql(JOIN_SQL)).format()
        assert text.startswith("EXPLAIN:")
        assert "act=" not in text

    def test_to_dict_json_round_trip(self, mini_db):
        plan = explain(mini_db, sql(JOIN_SQL), analyze=True)
        payload = json.loads(json.dumps(plan.to_dict()))
        assert payload["analyze"] is True
        assert payload["max_q_error"] >= 1.0
        assert payload["plan"]["op"] == plan.root.op

    def test_operator_stats_flat(self, mini_db):
        plan = explain(mini_db, sql(JOIN_SQL), analyze=True)
        rows = plan.operator_stats()
        assert len(rows) == len(plan.operators())
        assert all("op" in row and "q_error" in row for row in rows)

    def test_walk_preorder(self):
        leaf = PlanNode("scan", "t")
        root = PlanNode("filter", "p", children=[leaf])
        assert [n.op for n in root.walk()] == ["filter", "scan"]


# ------------------------------------------------------------------ #
# telemetry integration
# ------------------------------------------------------------------ #
class TestPlanTelemetry:
    def test_analyze_emits_plan_record_when_enabled(self, mini_db):
        obs.enable()
        explain(mini_db, sql(JOIN_SQL), analyze=True)
        records = telemetry.records("plan")
        assert len(records) == 1
        assert records[0]["max_q_error"] >= 1.0
        assert records[0]["operators"]
        assert metrics.snapshot()["counters"]["executor.explain_analyze"] == 1

    def test_no_telemetry_when_disabled(self, mini_db):
        explain(mini_db, sql(JOIN_SQL), analyze=True)
        assert telemetry.records("plan") == []

    def test_passive_join_q_error_histogram(self, mini_db):
        """Every instrumented execute() observes per-join q-error."""
        obs.enable()
        execute(mini_db, sql(JOIN_SQL))
        hist = metrics.snapshot()["histograms"].get("executor.join.q_error")
        assert hist is not None
        assert hist["count"] >= 1

    def test_no_passive_q_error_when_disabled(self, mini_db):
        execute(mini_db, sql(JOIN_SQL))
        assert metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


# ------------------------------------------------------------------ #
# SQL prefix parsing
# ------------------------------------------------------------------ #
class TestSplitExplain:
    def test_no_prefix(self):
        assert split_explain("SELECT 1") == ("SELECT 1", False, False)

    def test_explain_prefix(self):
        rest, is_explain, analyze = split_explain("EXPLAIN SELECT 1")
        assert (rest, is_explain, analyze) == ("SELECT 1", True, False)

    def test_explain_analyze_prefix(self):
        rest, is_explain, analyze = split_explain(
            "explain analyze SELECT * FROM t"
        )
        assert rest == "SELECT * FROM t"
        assert is_explain and analyze

    def test_leading_whitespace_and_case(self):
        rest, is_explain, analyze = split_explain("  Explain   Analyze  SELECT 1")
        assert rest == "SELECT 1"
        assert is_explain and analyze
