"""Unit tests for repro.db.executor."""

import numpy as np
import pytest

from repro.db import (
    Comparison,
    Database,
    ExecutionError,
    JoinCondition,
    Or,
    SPJQuery,
    execute,
    execute_aggregate,
    sql,
    timed_execute,
)


class TestSingleTable:
    def test_full_scan(self, mini_db):
        result = execute(mini_db, sql("SELECT * FROM movies"))
        assert len(result) == 6

    def test_filter(self, mini_db):
        result = execute(mini_db, sql("SELECT * FROM movies WHERE year > 2006"))
        assert len(result) == 3

    def test_projection_limits_columns(self, mini_db):
        result = execute(mini_db, sql("SELECT movies.title FROM movies"))
        assert set(result.columns) == {"movies.title"}

    def test_order_by_and_limit(self, mini_db):
        result = execute(
            mini_db, sql("SELECT movies.title FROM movies ORDER BY movies.rating DESC LIMIT 2")
        )
        assert list(result.column("movies.title")) == ["Delta", "Beta"]

    def test_order_by_string_column(self, mini_db):
        result = execute(mini_db, sql("SELECT * FROM movies ORDER BY movies.title LIMIT 3"))
        titles = list(result.column("movies.title"))
        assert titles == sorted(titles)

    def test_distinct(self, mini_db):
        result = execute(mini_db, sql("SELECT DISTINCT movies.genre FROM movies"))
        assert len(result) == 3

    def test_limit_zero(self, mini_db):
        result = execute(mini_db, sql("SELECT * FROM movies LIMIT 0"))
        assert len(result) == 0

    def test_unknown_table(self, mini_db):
        with pytest.raises(ExecutionError, match="unknown table"):
            execute(mini_db, sql("SELECT * FROM nope"))

    def test_row_ids_track_provenance(self, mini_db):
        result = execute(mini_db, sql("SELECT * FROM movies WHERE year = 2005"))
        assert sorted(result.row_ids["movies"]) == [1, 4]


class TestJoins:
    def test_two_way_join(self, mini_db):
        q = sql(
            "SELECT movies.title, cast_info.actor FROM movies, cast_info "
            "WHERE movies.id = cast_info.movie_id"
        )
        result = execute(mini_db, q)
        assert len(result) == 7  # every cast row joins exactly one movie

    def test_join_with_filter_pushdown(self, mini_db):
        q = sql(
            "SELECT movies.title, cast_info.actor FROM movies, cast_info "
            "WHERE movies.id = cast_info.movie_id AND cast_info.actor = 'ann'"
        )
        result = execute(mini_db, q)
        assert sorted(result.column("movies.title")) == ["Alpha", "Beta", "Zeta"]

    def test_join_result_provenance_spans_tables(self, mini_db):
        q = sql(
            "SELECT * FROM movies, cast_info WHERE movies.id = cast_info.movie_id"
        )
        result = execute(mini_db, q)
        assert set(result.row_ids) == {"movies", "cast_info"}

    def test_residual_multi_table_predicate(self, mini_db):
        q = sql(
            "SELECT * FROM movies, cast_info WHERE movies.id = cast_info.movie_id "
            "AND (movies.year > 2015 OR cast_info.actor = 'cid')"
        )
        result = execute(mini_db, q)
        titles = set(result.column("movies.title"))
        assert titles == {"Delta", "Gamma"}

    def test_cross_join_without_condition(self, mini_db):
        q = SPJQuery(tables=("movies", "cast_info"))
        result = execute(mini_db, q)
        assert len(result) == 6 * 7

    def test_join_on_empty_side(self, mini_db):
        q = sql(
            "SELECT * FROM movies, cast_info WHERE movies.id = cast_info.movie_id "
            "AND movies.year > 3000"
        )
        assert len(execute(mini_db, q)) == 0

    def test_join_matches_manual_computation(self, mini_db):
        q = sql(
            "SELECT movies.title, cast_info.actor FROM movies, cast_info "
            "WHERE movies.id = cast_info.movie_id AND movies.genre = 'drama'"
        )
        result = execute(mini_db, q)
        expected = {("Alpha", "ann"), ("Alpha", "bob"), ("Gamma", "cid"), ("Zeta", "ann")}
        got = {
            (t, a)
            for t, a in zip(result.column("movies.title"), result.column("cast_info.actor"))
        }
        assert got == expected


class TestSubsetMonotonicity:
    def test_subset_results_are_subset_of_full(self, mini_db):
        q = sql(
            "SELECT movies.title, cast_info.actor FROM movies, cast_info "
            "WHERE movies.id = cast_info.movie_id"
        )
        full_keys = set(execute(mini_db, q).tuple_keys())
        sub = mini_db.subset({"movies": [0, 1, 2], "cast_info": [0, 1, 2, 3]})
        sub_keys = set(execute(sub, q).tuple_keys())
        assert sub_keys <= full_keys


class TestAggregates:
    def test_count_star(self, mini_db):
        result = execute_aggregate(mini_db, sql("SELECT COUNT(*) FROM movies"))
        assert result.rows[0]["count(*)"] == 6.0

    def test_group_by_counts(self, mini_db):
        result = execute_aggregate(
            mini_db, sql("SELECT genre, COUNT(*) FROM movies GROUP BY genre")
        )
        mapping = {row["genre"]: row["count(*)"] for row in result.rows}
        assert mapping == {"drama": 3.0, "action": 2.0, "scifi": 1.0}

    def test_avg_min_max_sum(self, mini_db):
        result = execute_aggregate(
            mini_db,
            sql("SELECT AVG(rating) AS a, MIN(rating) AS lo, MAX(rating) AS hi, "
                "SUM(year) AS sy FROM movies"),
        )
        row = result.rows[0]
        assert row["lo"] == 5.5 and row["hi"] == 9.0
        assert row["sy"] == float(1999 + 2005 + 2010 + 2020 + 2005 + 2015)
        assert abs(row["a"] - np.mean([7.1, 8.2, 5.5, 9.0, 6.0, 7.7])) < 1e-9

    def test_filtered_aggregate(self, mini_db):
        result = execute_aggregate(
            mini_db, sql("SELECT COUNT(*) FROM movies WHERE genre = 'drama'")
        )
        assert result.rows[0]["count(*)"] == 3.0

    def test_aggregate_over_join(self, mini_db):
        result = execute_aggregate(
            mini_db,
            sql("SELECT cast_info.actor, COUNT(*) FROM movies, cast_info "
                "WHERE movies.id = cast_info.movie_id GROUP BY cast_info.actor"),
        )
        mapping = {row["cast_info.actor"]: row["count(*)"] for row in result.rows}
        assert mapping["ann"] == 3.0

    def test_empty_group_result(self, mini_db):
        result = execute_aggregate(
            mini_db, sql("SELECT genre, COUNT(*) FROM movies WHERE year > 3000 GROUP BY genre")
        )
        assert len(result) == 0

    def test_global_aggregate_on_empty_selection(self, mini_db):
        result = execute_aggregate(
            mini_db, sql("SELECT COUNT(*) FROM movies WHERE year > 3000")
        )
        assert result.rows[0]["count(*)"] == 0.0

    def test_as_mapping(self, mini_db):
        result = execute_aggregate(
            mini_db, sql("SELECT genre, COUNT(*) FROM movies GROUP BY genre")
        )
        mapping = result.as_mapping()
        assert mapping[("drama",)]["count(*)"] == 3.0


class TestResultSet:
    def test_tuple_keys_distinct_identity(self, mini_db):
        result = execute(mini_db, sql("SELECT movies.genre FROM movies"))
        keys = result.tuple_keys()
        assert len(keys) == 6
        assert len(set(keys)) == 3

    def test_provenance_keys(self, mini_db):
        result = execute(mini_db, sql("SELECT * FROM movies WHERE year = 1999"))
        assert result.provenance_keys() == [(0,)]

    def test_to_rows(self, mini_db):
        rows = execute(mini_db, sql("SELECT movies.title FROM movies LIMIT 1")).to_rows()
        assert rows == [{"movies.title": "Alpha"}]

    def test_column_bare_name_lookup(self, mini_db):
        result = execute(mini_db, sql("SELECT movies.title FROM movies"))
        assert len(result.column("title")) == 6


class TestTimedExecute:
    def test_returns_elapsed_and_throughput(self, mini_db):
        result, elapsed, rows_per_second = timed_execute(
            mini_db, sql("SELECT * FROM movies")
        )
        assert len(result) == 6
        assert elapsed >= 0.0
        assert rows_per_second == pytest.approx(len(result) / elapsed)

    def test_named_fields(self, mini_db):
        timing = timed_execute(mini_db, sql("SELECT * FROM movies LIMIT 0"))
        assert timing.result.n_rows == 0
        assert timing.rows_per_second == 0.0
