"""Trace analysis: critical paths, aggregation, and run-vs-run diffs.

Exercises :mod:`repro.obs.analyze` on synthetic span trees where the
right answers are computable by hand — in particular the interval-union
self-time attribution that collapses parallel worker lanes to their max
instead of summing them — plus the ``traces.json``/``trace.json``
loading paths and the ``diff_runs`` regression verdict.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import analyze


def node(name, start, seconds, children=(), **extra):
    record = {
        "name": name,
        "start_s": float(start),
        "seconds": float(seconds),
    }
    if children:
        record["children"] = list(children)
    record.update(extra)
    return record


def worker(name, start, seconds, pid):
    return {
        "name": name,
        "start_s": float(start),
        "seconds": float(seconds),
        "pid": pid,
    }


# ------------------------------------------------------------------ #
# critical path
# ------------------------------------------------------------------ #
class TestCriticalPath:
    def test_descends_longest_child_chain(self):
        root = node("root", 0.0, 10.0, [
            node("fast", 0.0, 2.0),
            node("slow", 2.0, 7.0, [node("leaf", 2.5, 4.0)]),
        ])
        path = analyze.critical_path(root)
        assert [row["name"] for row in path] == ["root", "slow", "leaf"]
        # root self = 10 - (2 + 7) covered = 1; slow self = 7 - 4 = 3
        assert path[0]["self_s"] == pytest.approx(1.0)
        assert path[1]["self_s"] == pytest.approx(3.0)
        assert path[2]["self_s"] == pytest.approx(4.0)

    def test_parallel_lanes_collapse_to_max_not_sum(self):
        # Four workers covering the same window charge the parent once:
        # self time is 10 - union([2,8]) = 4, not 10 - 4*6 (negative).
        root = node("dispatch", 0.0, 10.0)
        lanes = [worker("morsel", 2.0, 6.0, pid=100 + i) for i in range(4)]
        path = analyze.critical_path(root, lanes)
        assert [row["name"] for row in path] == ["dispatch", "morsel"]
        assert path[0]["self_s"] == pytest.approx(4.0)
        assert path[1]["pid"] in (100, 101, 102, 103)

    def test_staggered_lanes_union_not_sum(self):
        root = node("dispatch", 0.0, 10.0)
        lanes = [
            worker("morsel", 1.0, 4.0, pid=1),   # [1, 5]
            worker("morsel", 3.0, 4.0, pid=2),   # [3, 7] → union [1, 7]
        ]
        path = analyze.critical_path(root, lanes)
        assert path[0]["self_s"] == pytest.approx(10.0 - 6.0)

    def test_worker_spans_attach_to_deepest_containing_node(self):
        inner = node("scan", 2.0, 6.0)
        root = node("execute", 0.0, 10.0, [inner])
        lanes = [worker("morsel", 3.0, 2.0, pid=9)]
        path = analyze.critical_path(root, lanes)
        # morsel lives inside scan, so the path goes through scan.
        assert [row["name"] for row in path] == ["execute", "scan", "morsel"]
        assert path[1]["self_s"] == pytest.approx(4.0)

    def test_single_node_path(self):
        path = analyze.critical_path(node("only", 0.0, 1.5))
        assert path == [
            {"name": "only", "seconds": 1.5, "self_s": 1.5}
        ]


# ------------------------------------------------------------------ #
# aggregation
# ------------------------------------------------------------------ #
class TestAggregate:
    def test_rollup_counts_totals_and_self(self):
        entries = [{
            "trace_id": "a" * 32,
            "root": node("execute", 0.0, 10.0, [node("scan", 1.0, 4.0)]),
            "worker_spans": [worker("morsel", 2.0, 1.0, pid=5)],
        }]
        rollup = analyze.aggregate_spans(entries)
        assert rollup["execute"]["count"] == 1
        assert rollup["execute"]["self_s"] == pytest.approx(6.0)
        assert rollup["scan"]["total_s"] == pytest.approx(4.0)
        assert rollup["morsel"]["count"] == 1


# ------------------------------------------------------------------ #
# loading + lookup
# ------------------------------------------------------------------ #
class TestLoading:
    def test_load_prefers_traces_json(self, tmp_path):
        document = {
            "counts": {"offered": 2},
            "traces": [{
                "trace_id": "b" * 32, "reason": "slow",
                "duration_s": 0.5, "root": node("execute", 0.0, 0.5),
                "worker_spans": [],
            }],
        }
        (tmp_path / "traces.json").write_text(json.dumps(document))
        entries = analyze.load_traces(str(tmp_path))
        assert len(entries) == 1 and entries[0]["reason"] == "slow"
        summary = analyze.sampler_summary(str(tmp_path))
        assert summary["counts"]["offered"] == 2

    def test_load_falls_back_to_trace_json(self, tmp_path):
        roots = [
            node("execute", 0.0, 0.2, trace_id="c" * 32),
            node("anon", 0.0, 0.1),  # no id → not a trace entry
        ]
        (tmp_path / "trace.json").write_text(json.dumps(roots))
        entries = analyze.load_traces(str(tmp_path))
        assert len(entries) == 1
        assert entries[0]["trace_id"] == "c" * 32
        assert entries[0]["reason"] == "retained"

    def test_empty_dir_loads_nothing(self, tmp_path):
        assert analyze.load_traces(str(tmp_path)) == []
        assert analyze.sampler_summary(str(tmp_path)) is None

    def test_find_trace_exact_prefix_and_ambiguous(self):
        entries = [
            {"trace_id": "abcd" + "0" * 28},
            {"trace_id": "abce" + "0" * 28},
        ]
        assert analyze.find_trace(entries, "abcd" + "0" * 28) is entries[0]
        assert analyze.find_trace(entries, "abce") is entries[1]
        assert analyze.find_trace(entries, "abc") is None  # ambiguous
        assert analyze.find_trace(entries, "zzzz") is None

    def test_slowest_orders_by_duration(self):
        entries = [
            {"trace_id": "1", "duration_s": 0.1},
            {"trace_id": "2", "duration_s": 0.9},
            {"trace_id": "3", "duration_s": 0.5},
        ]
        assert [e["trace_id"] for e in analyze.slowest(entries, 2)] == ["2", "3"]


# ------------------------------------------------------------------ #
# run diffs
# ------------------------------------------------------------------ #
def write_run(run_dir, durations_by_name):
    os.makedirs(run_dir, exist_ok=True)
    roots = [
        node(name, 0.0, seconds)
        for name, values in durations_by_name.items()
        for seconds in values
    ]
    with open(os.path.join(run_dir, "trace.json"), "w") as handle:
        json.dump(roots, handle)


class TestDiffRuns:
    def test_identical_runs_have_no_regressions(self, tmp_path):
        a = str(tmp_path / "a")
        write_run(a, {"execute": [0.01, 0.02, 0.03]})
        diff = analyze.diff_runs(a, a)
        assert diff["verdict"] == "no regressions"
        assert all(row["verdict"] == "ok" for row in diff["spans"])

    def test_regression_requires_factor_and_floor(self, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        write_run(a, {
            "big": [0.010] * 10,      # regresses: ×2 and +10ms
            "tiny": [0.0001] * 10,    # ×2 but below the 0.5ms floor
        })
        write_run(b, {
            "big": [0.020] * 10,
            "tiny": [0.0002] * 10,
        })
        diff = analyze.diff_runs(a, b)
        by_name = {row["name"]: row for row in diff["spans"]}
        assert by_name["big"]["verdict"] == "REGRESSED"
        assert by_name["tiny"]["verdict"] == "ok"
        assert diff["regressions"] == 1
        assert diff["verdict"] == "1 span name(s) regressed"

    def test_improvement_and_only_one_side(self, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        write_run(a, {"hot": [0.1] * 5, "gone": [0.01]})
        write_run(b, {"hot": [0.01] * 5, "new": [0.01]})
        diff = analyze.diff_runs(a, b)
        by_name = {row["name"]: row for row in diff["spans"]}
        assert by_name["hot"]["verdict"] == "improved"
        assert by_name["gone"]["verdict"] == "only_a"
        assert by_name["new"]["verdict"] == "only_b"
        assert diff["verdict"] == "no regressions"  # only_* never regress


# ------------------------------------------------------------------ #
# rendering
# ------------------------------------------------------------------ #
class TestRendering:
    def test_format_trace_entry_mentions_lanes_and_path(self):
        entry = {
            "trace_id": "d" * 32,
            "reason": "slow",
            "duration_s": 0.25,
            "root": node("execute", 0.0, 0.25, trace_id="d" * 32),
            "worker_spans": [
                worker("morsel", 0.05, 0.1, pid=11),
                worker("morsel", 0.05, 0.1, pid=12),
            ],
        }
        text = analyze.format_trace_entry(entry)
        assert "d" * 32 in text
        assert "kept: slow" in text
        assert "worker lanes: 2 pids" in text
        assert "critical path:" in text

    def test_worker_pids_distinct_in_order(self):
        entry = {"worker_spans": [
            worker("m", 0, 1, pid=3), worker("m", 0, 1, pid=1),
            worker("m", 0, 1, pid=3),
        ]}
        assert analyze.worker_pids(entry) == [3, 1]
