"""Unit tests for repro.core.metric (Eq. 1, Eq. 2, diversity)."""

import numpy as np
import pytest

from repro.core import (
    ApproximationSet,
    aggregate_relative_error,
    pairwise_jaccard_diversity,
    per_query_scores,
    query_score,
    relative_error,
    result_diversity,
    score,
    workload_result_keys,
)
from repro.datasets import Workload
from repro.db import sql


class TestQueryScore:
    def test_full_coverage(self):
        assert query_score(10, 10, frame_size=50) == 1.0

    def test_frame_caps_denominator(self):
        # 200 result rows, F=50: 50 covered rows suffice.
        assert query_score(200, 50, frame_size=50) == 1.0
        assert query_score(200, 25, frame_size=50) == 0.5

    def test_small_result_needs_everything(self):
        assert query_score(4, 2, frame_size=50) == 0.5

    def test_empty_full_result_scores_one(self):
        assert query_score(0, 0) == 1.0

    def test_capped_at_one(self):
        assert query_score(10, 100, frame_size=50) == 1.0


class TestScore:
    def _workload(self):
        return Workload([
            sql("SELECT * FROM movies WHERE movies.genre = 'drama'"),
            sql("SELECT * FROM movies WHERE movies.year > 2004"),
        ])

    def test_full_database_scores_one(self, mini_db):
        assert score(mini_db, mini_db, self._workload()) == pytest.approx(1.0)

    def test_empty_subset_scores_zero(self, mini_db):
        empty = mini_db.subset({})
        assert score(mini_db, empty, self._workload()) == pytest.approx(0.0)

    def test_partial_subset(self, mini_db):
        # movies 0, 2 are drama (of 3); movies 1, 2 in year range (of 5... )
        sub = mini_db.subset({"movies": [0, 2]})
        value = score(mini_db, sub, self._workload(), frame_size=50)
        assert 0.0 < value < 1.0

    def test_monotone_in_subset(self, mini_db):
        small = mini_db.subset({"movies": [0]})
        large = mini_db.subset({"movies": [0, 2, 3]})
        workload = self._workload()
        assert score(mini_db, large, workload) >= score(mini_db, small, workload)

    def test_precomputed_keys_match(self, mini_db):
        workload = self._workload()
        keys = workload_result_keys(mini_db, workload)
        sub = mini_db.subset({"movies": [0, 2]})
        assert score(mini_db, sub, workload) == pytest.approx(
            score(mini_db, sub, workload, full_keys=keys)
        )

    def test_weights_respected(self, mini_db):
        queries = [
            sql("SELECT * FROM movies WHERE movies.genre = 'drama'"),
            sql("SELECT * FROM movies WHERE movies.genre = 'scifi'"),
        ]
        # Subset covers all of scifi (movie 3), none of drama.
        sub = mini_db.subset({"movies": [3]})
        lopsided = Workload(queries, np.asarray([0.0, 1.0]))
        assert score(mini_db, sub, lopsided) == pytest.approx(1.0)

    def test_fabricated_tuples_do_not_count(self, mini_db, movies):
        """A fake database whose rows satisfy predicates must score 0."""
        from repro.db import Database, Table

        fake_movies = Table(
            movies.schema,
            {
                "id": [100], "title": ["Fake"], "year": [2010],
                "rating": [9.9], "genre": ["drama"],
            },
        )
        fake = Database([fake_movies, mini_db.table("cast_info").take(np.asarray([], dtype=np.int64))])
        workload = Workload([sql("SELECT * FROM movies WHERE movies.genre = 'drama'")])
        assert score(mini_db, fake, workload) == pytest.approx(0.0)

    def test_per_query_scores_shape(self, mini_db):
        workload = self._workload()
        values = per_query_scores(mini_db, mini_db, workload)
        assert values.shape == (2,)
        assert np.allclose(values, 1.0)


class TestRelativeError:
    def test_exact(self):
        assert relative_error(10, 10) == 0.0

    def test_simple(self):
        assert relative_error(8, 10) == pytest.approx(0.2)

    def test_zero_truth(self):
        assert relative_error(0, 0) == 0.0
        assert relative_error(5, 0) == 1.0

    def test_nan_prediction(self):
        assert relative_error(float("nan"), 10) == 1.0

    def test_capped_at_one(self):
        assert relative_error(100, 1) == 1.0


class TestAggregateRelativeError:
    def test_full_database_zero_error(self, mini_db):
        q = sql("SELECT genre, COUNT(*) FROM movies GROUP BY genre")
        assert aggregate_relative_error(mini_db, mini_db, q) == 0.0

    def test_missing_group_costs_one(self, mini_db):
        q = sql("SELECT genre, COUNT(*) FROM movies GROUP BY genre")
        sub = mini_db.subset({"movies": [0]})  # only drama present
        error = aggregate_relative_error(mini_db, sub, q)
        # action and scifi groups missing entirely -> error ~ (2/3 + drama error)/...
        assert error > 0.5

    def test_count_scaling(self, mini_db):
        q = sql("SELECT COUNT(*) FROM movies")
        sub = mini_db.subset({"movies": [0, 1, 2]})  # half the rows
        unscaled = aggregate_relative_error(mini_db, sub, q)
        scaled = aggregate_relative_error(mini_db, sub, q, scale_counts=2.0)
        assert unscaled == pytest.approx(0.5)
        assert scaled == pytest.approx(0.0)

    def test_avg_never_scaled(self, mini_db):
        q = sql("SELECT AVG(rating) FROM movies")
        error = aggregate_relative_error(mini_db, mini_db, q, scale_counts=2.0)
        assert error == 0.0


class TestDiversity:
    def test_identical_sets_zero(self):
        assert pairwise_jaccard_diversity([{1, 2}, {1, 2}]) == 0.0

    def test_disjoint_sets_one(self):
        assert pairwise_jaccard_diversity([{1}, {2}, {3}]) == 1.0

    def test_single_set_zero(self):
        assert pairwise_jaccard_diversity([{1, 2}]) == 0.0

    def test_empty_pair_zero(self):
        assert pairwise_jaccard_diversity([set(), set()]) == 0.0

    def test_result_diversity_on_database(self, mini_db):
        workload = Workload([
            sql("SELECT movies.title FROM movies WHERE movies.genre = 'drama'"),
            sql("SELECT movies.title FROM movies WHERE movies.genre = 'action'"),
        ])
        assert result_diversity(mini_db, workload) == 1.0

    def test_result_diversity_overlapping_queries(self, mini_db):
        workload = Workload([
            sql("SELECT movies.title FROM movies WHERE movies.year > 2000"),
            sql("SELECT movies.title FROM movies WHERE movies.year > 2010"),
        ])
        value = result_diversity(mini_db, workload)
        assert 0.0 < value < 1.0
