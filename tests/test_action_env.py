"""Unit tests for repro.core.action_space and repro.core.environment."""

import numpy as np
import pytest

from repro.core import (
    ASQPConfig,
    Action,
    ActionSpace,
    DropOneEnvironment,
    GSLEnvironment,
    HybridEnvironment,
    QueryCoverage,
    group_rows_into_actions,
    make_environment,
)


@pytest.fixture
def actions():
    return [
        Action(keys=(("t", 0), ("u", 0)), source_query=0),
        Action(keys=(("t", 1), ("u", 1)), source_query=0),
        Action(keys=(("t", 2),), source_query=1),
        Action(keys=(("t", 3), ("t", 4)), source_query=1),
    ]


@pytest.fixture
def space(actions):
    return ActionSpace(actions, embedding_dim=8)


@pytest.fixture
def coverages():
    return [
        QueryCoverage(
            name="q0", weight=0.5, denominator=2,
            requirements=[(("t", 0), ("u", 0)), (("t", 1), ("u", 1))],
        ),
        QueryCoverage(
            name="q1", weight=0.5, denominator=3,
            requirements=[(("t", 2),), (("t", 3),), (("t", 4),)],
        ),
    ]


def _config(**overrides):
    defaults = dict(memory_budget=5, query_batch_size=2, drp_horizon=6, seed=0)
    defaults.update(overrides)
    return ASQPConfig(**defaults)


class TestActionSpace:
    def test_len_and_indexing(self, space, actions):
        assert len(space) == 4
        assert space[2] is actions[2]
        assert space.keys_of(0) == (("t", 0), ("u", 0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ActionSpace([])

    def test_embedding_length_check(self, actions):
        with pytest.raises(ValueError):
            ActionSpace(actions, embeddings=np.zeros((2, 8)))

    def test_stats(self, space):
        assert space.mean_action_size() == pytest.approx((2 + 2 + 1 + 2) / 4)
        assert space.total_distinct_tuples() == 7

    def test_extend(self, space):
        extra = [Action(keys=(("t", 9),), source_query=5)]
        bigger = space.extend(extra, np.zeros((1, 8)))
        assert len(bigger) == 5
        assert len(space) == 4  # original untouched

    def test_extend_length_check(self, space):
        with pytest.raises(ValueError):
            space.extend([Action(keys=(("t", 9),))], np.zeros((2, 8)))


class TestGroupRows:
    def test_groups_within_source(self, rng):
        rows = [(("t", i),) for i in range(6)]
        sources = [0, 0, 0, 1, 1, 1]
        actions = group_rows_into_actions(rows, sources, group_size=2, rng=rng)
        assert len(actions) == 4  # ceil(3/2) per source
        for action in actions:
            assert action.source_query in (0, 1)

    def test_duplicate_keys_collapse(self, rng):
        rows = [(("t", 0), ("u", 1)), (("t", 0), ("u", 2))]
        actions = group_rows_into_actions(rows, [0, 0], group_size=2, rng=rng)
        assert len(actions) == 1
        assert len(actions[0].keys) == 3

    def test_group_size_validation(self, rng):
        with pytest.raises(ValueError):
            group_rows_into_actions([], [], group_size=0, rng=rng)

    def test_all_rows_covered(self, rng):
        rows = [(("t", i),) for i in range(10)]
        actions = group_rows_into_actions(rows, [0] * 10, group_size=3, rng=rng)
        keys = {key for action in actions for key in action.keys}
        assert keys == {("t", i) for i in range(10)}


class TestGSLEnvironment:
    def test_episode_reaches_budget(self, space, coverages, rng):
        env = GSLEnvironment(space, coverages, _config(), rng)
        state, mask = env.reset()
        assert state.sum() == 0 and mask.all()
        done = False
        steps = 0
        while not done:
            action = int(np.flatnonzero(mask)[0])
            state, reward, done, mask = env.step(action)
            steps += 1
        assert env.approx.total_size() >= 5 or not mask.any()

    def test_mask_violation_raises(self, space, coverages, rng):
        env = GSLEnvironment(space, coverages, _config(), rng)
        env.reset()
        env.step(0)
        with pytest.raises(ValueError, match="already selected"):
            env.step(0)

    def test_delta_rewards_telescope_to_score(self, space, coverages, rng):
        config = _config(memory_budget=100, query_batch_size=2)
        env = GSLEnvironment(space, coverages, config, rng,
                             query_batch=[0, 1])
        _, mask = env.reset()
        total = 0.0
        done = False
        while not done and mask.any():
            action = int(np.flatnonzero(mask)[0])
            _, reward, done, mask = env.step(action)
            total += reward
        assert total == pytest.approx(env.current_score())

    def test_absolute_rewards_mode(self, space, coverages, rng):
        config = _config(gsl_delta_rewards=False)
        env = GSLEnvironment(space, coverages, config, rng, query_batch=[0, 1])
        env.reset()
        _, r1, _, _ = env.step(0)
        assert r1 == pytest.approx(env.tracker.batch_score([0, 1]))

    def test_fixed_batch_respected(self, space, coverages, rng):
        env = GSLEnvironment(space, coverages, _config(), rng, query_batch=[1])
        env.reset()
        assert env.batch == [1]

    def test_reset_clears_state(self, space, coverages, rng):
        env = GSLEnvironment(space, coverages, _config(), rng)
        env.reset()
        env.step(0)
        state, mask = env.reset()
        assert state.sum() == 0
        assert mask.all()
        assert env.approx.total_size() == 0


class TestDropOneEnvironment:
    def test_initializes_full(self, space, coverages, rng):
        env = DropOneEnvironment(space, coverages, _config(), rng)
        state, mask = env.reset()
        assert env.approx.total_size() >= 5 or state.sum() == len(space)

    def test_swap_keeps_size_roughly_constant(self, space, coverages, rng):
        env = DropOneEnvironment(space, coverages, _config(), rng)
        _, mask = env.reset()
        before = state_size = env.approx.total_size()
        action = int(np.flatnonzero(mask)[0])
        env.step(action)
        after = env.approx.total_size()
        assert abs(after - before) <= 2  # one group out, one in

    def test_horizon_terminates(self, space, coverages, rng):
        config = _config(drp_horizon=2, memory_budget=2)
        env = DropOneEnvironment(space, coverages, config, rng)
        _, mask = env.reset()
        done = False
        steps = 0
        while not done and mask.any():
            action = int(np.flatnonzero(mask)[0])
            _, _, done, mask = env.step(action)
            steps += 1
        assert steps <= 2

    def test_reward_is_delta(self, space, coverages, rng):
        env = DropOneEnvironment(space, coverages, _config(), rng)
        _, mask = env.reset()
        before = env.tracker.batch_score(env.batch)
        action = int(np.flatnonzero(mask)[0])
        _, reward, _, _ = env.step(action)
        after = env.tracker.batch_score(env.batch)
        assert reward == pytest.approx(after - before)


class TestHybridEnvironment:
    def test_grows_then_swaps(self, space, coverages, rng):
        config = _config(memory_budget=3, drp_horizon=4)
        env = HybridEnvironment(space, coverages, config, rng)
        _, mask = env.reset()
        done = False
        while not done and mask.any():
            action = int(np.flatnonzero(mask)[0])
            _, _, done, mask = env.step(action)
        assert env.approx.total_size() >= 3 or not mask.any()


class TestFactory:
    def test_known_names(self, space, coverages, rng):
        for name, cls in (
            ("gsl", GSLEnvironment),
            ("drp", DropOneEnvironment),
            ("drp+gsl", HybridEnvironment),
        ):
            env = make_environment(name, space, coverages, _config(), rng)
            assert isinstance(env, cls)

    def test_unknown_name(self, space, coverages, rng):
        with pytest.raises(ValueError, match="unknown environment"):
            make_environment("bogus", space, coverages, _config(), rng)


class TestDiversityRegularizer:
    def test_off_by_default(self, space, coverages, rng):
        env = GSLEnvironment(space, coverages, _config(), rng, query_batch=[0, 1])
        env.reset()
        assert env._diversity_bonus(0) == 0.0

    def test_first_pick_full_bonus(self, space, coverages, rng):
        config = _config(diversity_coef=0.5)
        env = GSLEnvironment(space, coverages, config, rng, query_batch=[0, 1])
        env.reset()
        assert env._diversity_bonus(0) == 1.0

    def test_bonus_bounded_and_rewards_shift(self, space, coverages, rng):
        import numpy as np

        base_cfg = _config(diversity_coef=0.0)
        div_cfg = _config(diversity_coef=1.0)
        rewards = {}
        for name, config in (("base", base_cfg), ("div", div_cfg)):
            env = GSLEnvironment(
                space, coverages, config, np.random.default_rng(0),
                query_batch=[0, 1],
            )
            env.reset()
            _, r0, _, _ = env.step(0)
            _, r1, _, _ = env.step(1)
            rewards[name] = (r0, r1)
        # First pick earns the full bonus under the regularizer.
        assert rewards["div"][0] == rewards["base"][0] + 1.0
        # Later picks earn a bounded, non-negative extra.
        extra = rewards["div"][1] - rewards["base"][1]
        assert 0.0 <= extra <= 1.0
