"""Tests for repro.core.workload_gen and repro.core.session."""

import numpy as np
import pytest

from repro.core import (
    ASQPConfig,
    ASQPSystem,
    WorkloadGenerator,
    generate_workload,
)
from repro.db import execute, sql


class TestWorkloadGenerator:
    def test_generates_requested_count(self, mini_db, rng):
        workload = generate_workload(mini_db, 12, rng)
        assert len(workload) == 12

    def test_queries_are_executable(self, mini_db, rng):
        workload = generate_workload(mini_db, 15, rng)
        for query in workload:
            execute(mini_db, query)  # must not raise

    def test_some_queries_nonempty(self, tiny_flights, rng):
        workload = generate_workload(tiny_flights.db, 20, rng)
        sizes = [len(execute(tiny_flights.db, q)) for q in workload]
        assert sum(1 for s in sizes if s > 0) >= len(sizes) // 3

    def test_join_template_uses_foreign_keys(self, tiny_imdb, rng):
        workload = generate_workload(tiny_imdb.db, 40, rng)
        joined = [q for q in workload if len(q.tables) == 2]
        assert joined, "expected at least one FK-join query"
        for q in joined:
            assert len(q.joins) == 1

    def test_refinement_biases_generation(self, tiny_flights):
        rng = np.random.default_rng(0)
        generator = WorkloadGenerator(tiny_flights.db, rng)
        user_query = sql("SELECT * FROM flights WHERE flights.dep_delay > 30.0")
        generator.refine_with_user_queries([user_query] * 5)
        workload = generator.generate(40)
        hits = sum(
            1 for q in workload if "dep_delay" in q.predicate.to_sql()
        )
        # dep_delay is one of ~8 numeric targets; bias should raise its share
        assert hits >= 8

    def test_deterministic_given_seed(self, mini_db):
        a = generate_workload(mini_db, 10, np.random.default_rng(3))
        b = generate_workload(mini_db, 10, np.random.default_rng(3))
        assert [q.to_sql() for q in a] == [q.to_sql() for q in b]

    def test_names_prefixed(self, mini_db, rng):
        workload = generate_workload(mini_db, 5, rng, name_prefix="xyz")
        assert all(q.name.startswith("xyz_") for q in workload)


def _session_config(**overrides):
    defaults = dict(
        memory_budget=60,
        n_iterations=2,
        n_actors=2,
        episodes_per_actor=1,
        action_space_target=40,
        n_query_representatives=5,
        n_candidate_rollouts=1,
        fine_tune_iterations=1,
        learning_rate=1e-3,
        seed=11,
    )
    defaults.update(overrides)
    return ASQPConfig(**defaults)


@pytest.fixture(scope="module")
def session(tiny_flights):
    return ASQPSystem(_session_config()).fit(tiny_flights.db, tiny_flights.workload)


class TestSession:
    def test_approximation_within_budget(self, session):
        assert 0 < session.approximation_set.total_size() <= 60

    def test_query_returns_outcome(self, session, tiny_flights):
        outcome = session.query(tiny_flights.workload.queries[0])
        assert outcome.elapsed_seconds >= 0
        assert 0 <= outcome.estimate.confidence <= 1
        assert len(session.query_log) >= 1

    def test_disallow_full_database_forces_approx(self, session, tiny_flights):
        outcome = session.query(
            tiny_flights.workload.queries[1], allow_full_database=False
        )
        assert outcome.used_approximation

    def test_confidence_threshold_override(self, session, tiny_flights):
        # Threshold 0 answers everything from the approximation set.
        outcome = session.query(
            tiny_flights.workload.queries[2], confidence_threshold=0.0
        )
        assert outcome.used_approximation
        # Threshold above 1 always goes to the database.
        outcome = session.query(
            tiny_flights.workload.queries[2], confidence_threshold=1.01
        )
        assert not outcome.used_approximation

    def test_aggregate_query_path(self, session, tiny_flights):
        outcome = session.query(tiny_flights.aggregate_workload.queries[0])
        assert hasattr(outcome.result, "rows")

    def test_approx_results_subset_of_full(self, session, tiny_flights):
        from repro.db import execute as run

        query = tiny_flights.workload.queries[0].with_limit(None)
        approx_keys = set(run(session.approx_db, query).tuple_keys())
        full_keys = set(run(session.model.db, query).tuple_keys())
        assert approx_keys <= full_keys


class TestSessionDrift:
    def test_drift_triggers_fine_tune(self, tiny_flights):
        config = _session_config(drift_trigger_count=2, seed=13)
        session = ASQPSystem(config).fit(tiny_flights.db, tiny_flights.workload)
        foreign = [
            sql("SELECT * FROM carriers WHERE carriers.low_cost = 1"),
            sql("SELECT * FROM carriers WHERE carriers.low_cost = 0"),
            sql("SELECT * FROM carriers WHERE carriers.name LIKE 'Air%'"),
        ]
        fired = False
        for query in foreign:
            outcome = session.query(query)
            fired = fired or outcome.fine_tuned
        assert fired
        assert session.model.fine_tune_count >= 1

    def test_auto_fine_tune_disabled(self, tiny_flights):
        config = _session_config(drift_trigger_count=1, seed=14)
        session = ASQPSystem(config).fit(
            tiny_flights.db, tiny_flights.workload, auto_fine_tune=False
        )
        outcome = session.query(sql("SELECT * FROM carriers WHERE carriers.low_cost = 1"))
        assert not outcome.fine_tuned
        assert session.model.fine_tune_count == 0


class TestNoWorkloadMode:
    def test_fit_without_workload(self, tiny_flights):
        session = ASQPSystem(_session_config(seed=15)).fit(
            tiny_flights.db, workload=None, n_generated_queries=10
        )
        assert session.workload_generator is not None
        assert session.approximation_set.total_size() > 0

    def test_generated_session_answers_queries(self, tiny_flights):
        session = ASQPSystem(_session_config(seed=16)).fit(
            tiny_flights.db, workload=None, n_generated_queries=10
        )
        outcome = session.query(tiny_flights.workload.queries[0])
        assert outcome is not None


class TestAdaptiveBudget:
    def test_fit_within_budget_returns_session(self, tiny_flights):
        system = ASQPSystem(_session_config(seed=19))
        session = system.fit_within_budget(
            tiny_flights.db, tiny_flights.workload, time_budget_seconds=10.0
        )
        assert session.approximation_set.total_size() > 0

    def test_small_budget_picks_light_settings(self, tiny_flights):
        system = ASQPSystem(_session_config(seed=20))
        session = system.fit_within_budget(
            tiny_flights.db, tiny_flights.workload, time_budget_seconds=0.01
        )
        # A near-zero budget lands at the light end of the spectrum.
        assert session.model.config.training_fraction <= 0.5

    def test_invalid_budget(self, tiny_flights):
        system = ASQPSystem(_session_config())
        with pytest.raises(ValueError):
            system.fit_within_budget(tiny_flights.db, tiny_flights.workload, 0.0)


class TestResultCache:
    def test_repeat_query_hits_cache(self, tiny_flights):
        from repro.core import ASQPSession

        model = ASQPSystem(_session_config(seed=23)).fit(
            tiny_flights.db, tiny_flights.workload
        ).model
        session = ASQPSession(model, auto_fine_tune=False, result_cache_size=16)
        q = tiny_flights.workload.queries[0]
        first = session.query(q)
        second = session.query(q)
        assert session.cache_hits == 1
        assert len(first) == len(second)

    def test_cache_cleared_on_refresh(self, tiny_flights):
        from repro.core import ASQPSession

        model = ASQPSystem(_session_config(seed=24)).fit(
            tiny_flights.db, tiny_flights.workload
        ).model
        session = ASQPSession(model, auto_fine_tune=False, result_cache_size=4)
        q = tiny_flights.workload.queries[0]
        session.query(q)
        session.refresh()
        session.query(q)
        assert session.cache_hits == 0

    def test_cache_disabled_by_default(self, session, tiny_flights):
        q = tiny_flights.workload.queries[0]
        session.query(q)
        session.query(q)
        assert session.cache_hits == 0
