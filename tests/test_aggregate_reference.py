"""Differential testing of hash aggregation against a naive reference."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    Column,
    ColumnType,
    Comparison,
    Database,
    SPJQuery,
    Table,
    TableSchema,
    TrueExpr,
    execute_aggregate,
    sql,
)


def _build(rows) -> Database:
    schema = TableSchema(
        "f",
        [Column("id", ColumnType.INT), Column("g", ColumnType.STR),
         Column("v", ColumnType.INT)],
    )
    return Database([
        Table(schema, {
            "id": [r[0] for r in rows],
            "g": [r[1] for r in rows],
            "v": [r[2] for r in rows],
        })
    ])


def _reference(rows, threshold):
    groups: dict[str, list[int]] = {}
    for _id, g, v in rows:
        if v > threshold:
            groups.setdefault(g, []).append(v)
    return {
        (g,): {
            "count(*)": float(len(vs)),
            "sum(v)": float(sum(vs)),
            "avg(v)": float(np.mean(vs)),
            "min(v)": float(min(vs)),
            "max(v)": float(max(vs)),
        }
        for g, vs in groups.items()
    }


_rows = st.lists(
    st.tuples(st.integers(0, 50), st.sampled_from("pqr"), st.integers(-20, 20)),
    min_size=1, max_size=40,
)


@given(rows=_rows, threshold=st.integers(-25, 25))
@settings(max_examples=80, deadline=None)
def test_grouped_aggregates_match_reference(rows, threshold):
    db = _build(rows)
    query = sql(
        f"SELECT g, COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) "
        f"FROM f WHERE v > {threshold} GROUP BY g"
    )
    got = execute_aggregate(db, query).as_mapping()
    expected = _reference(rows, threshold)
    assert set(got) == set(expected)
    for key, expected_row in expected.items():
        for name, value in expected_row.items():
            assert got[key][name] == value


@given(rows=_rows)
@settings(max_examples=40, deadline=None)
def test_global_count_matches_len(rows):
    db = _build(rows)
    query = sql("SELECT COUNT(*) FROM f")
    assert execute_aggregate(db, query).rows[0]["count(*)"] == float(len(rows))


@given(rows=_rows, threshold=st.integers(-25, 25))
@settings(max_examples=40, deadline=None)
def test_count_consistent_with_spj(rows, threshold):
    """COUNT(*) under a predicate == row count of the SPJ core."""
    from repro.db import execute

    db = _build(rows)
    predicate = Comparison("f.v", ">", threshold)
    count = execute_aggregate(
        db, sql(f"SELECT COUNT(*) FROM f WHERE f.v > {threshold}")
    ).rows[0]["count(*)"]
    spj = SPJQuery(tables=("f",), predicate=predicate)
    assert count == float(len(execute(db, spj)))
