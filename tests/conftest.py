"""Shared fixtures: a small movie database and tiny dataset bundles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_flights, load_imdb, load_mas
from repro.db import (
    Column,
    ColumnType,
    Database,
    ForeignKey,
    Table,
    TableSchema,
)


@pytest.fixture
def movie_schema() -> TableSchema:
    return TableSchema(
        "movies",
        [
            Column("id", ColumnType.INT),
            Column("title", ColumnType.STR),
            Column("year", ColumnType.INT),
            Column("rating", ColumnType.FLOAT),
            Column("genre", ColumnType.STR),
        ],
        primary_key="id",
    )


@pytest.fixture
def cast_schema() -> TableSchema:
    return TableSchema(
        "cast_info",
        [
            Column("id", ColumnType.INT),
            Column("movie_id", ColumnType.INT),
            Column("actor", ColumnType.STR),
        ],
        primary_key="id",
        foreign_keys=(ForeignKey("movie_id", "movies", "id"),),
    )


@pytest.fixture
def movies(movie_schema) -> Table:
    return Table(
        movie_schema,
        {
            "id": [1, 2, 3, 4, 5, 6],
            "title": ["Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Zeta"],
            "year": [1999, 2005, 2010, 2020, 2005, 2015],
            "rating": [7.1, 8.2, 5.5, 9.0, 6.0, 7.7],
            "genre": ["drama", "action", "drama", "scifi", "action", "drama"],
        },
    )


@pytest.fixture
def cast(cast_schema) -> Table:
    return Table(
        cast_schema,
        {
            "id": [10, 11, 12, 13, 14, 15, 16],
            "movie_id": [1, 1, 2, 3, 4, 5, 6],
            "actor": ["ann", "bob", "ann", "cid", "dee", "bob", "ann"],
        },
    )


@pytest.fixture
def mini_db(movies, cast) -> Database:
    return Database([movies, cast], name="mini")


@pytest.fixture(scope="session")
def tiny_imdb():
    """A very small IMDB bundle for integration-level tests."""
    return load_imdb(scale=0.1, n_queries=20, n_aggregate_queries=8)


@pytest.fixture(scope="session")
def tiny_mas():
    return load_mas(scale=0.1, n_queries=16, n_aggregate_queries=6)


@pytest.fixture(scope="session")
def tiny_flights():
    return load_flights(scale=0.1, n_queries=16, n_aggregate_queries=12)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
