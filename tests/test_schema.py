"""Unit tests for repro.db.schema."""

import numpy as np
import pytest

from repro.db import INT_NULL, Column, ColumnType, ForeignKey, SchemaError, TableSchema


class TestColumnType:
    def test_int_dtype(self):
        assert ColumnType.INT.dtype == np.dtype(np.int64)

    def test_float_dtype(self):
        assert ColumnType.FLOAT.dtype == np.dtype(np.float64)

    def test_str_dtype_is_object(self):
        assert ColumnType.STR.dtype == np.dtype(object)

    def test_numeric_flags(self):
        assert ColumnType.INT.is_numeric
        assert ColumnType.FLOAT.is_numeric
        assert not ColumnType.STR.is_numeric


class TestColumnCoercion:
    def test_int_coercion(self):
        column = Column("x", ColumnType.INT)
        arr = column.coerce([1, 2, 3])
        assert arr.dtype == np.int64
        assert list(arr) == [1, 2, 3]

    def test_float_coercion(self):
        column = Column("x", ColumnType.FLOAT)
        arr = column.coerce([1, 2.5])
        assert arr.dtype == np.float64
        assert arr[1] == 2.5

    def test_str_coercion_stringifies(self):
        column = Column("x", ColumnType.STR)
        arr = column.coerce(["a", 5, None])
        assert list(arr) == ["a", "5", ""]

    def test_int_coercion_failure(self):
        column = Column("x", ColumnType.INT)
        with pytest.raises(TypeError, match="x"):
            column.coerce(["not-a-number"])

    def test_float_coercion_failure(self):
        column = Column("x", ColumnType.FLOAT)
        with pytest.raises(TypeError):
            column.coerce(["oops"])


class TestNullMasks:
    def test_int_null_mask(self):
        column = Column("x", ColumnType.INT, nullable=True)
        arr = np.asarray([1, INT_NULL, 3], dtype=np.int64)
        assert list(column.null_mask(arr)) == [False, True, False]

    def test_float_null_mask(self):
        column = Column("x", ColumnType.FLOAT, nullable=True)
        arr = np.asarray([1.0, np.nan], dtype=np.float64)
        assert list(column.null_mask(arr)) == [False, True]

    def test_str_null_mask(self):
        column = Column("x", ColumnType.STR, nullable=True)
        arr = column.coerce(["a", ""])
        assert list(column.null_mask(arr)) == [False, True]


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableSchema("t", [Column("a", ColumnType.INT), Column("a", ColumnType.INT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError, match="at least one column"):
            TableSchema("t", [])

    def test_bad_primary_key_rejected(self):
        with pytest.raises(SchemaError, match="primary key"):
            TableSchema("t", [Column("a", ColumnType.INT)], primary_key="nope")

    def test_bad_foreign_key_rejected(self):
        with pytest.raises(SchemaError, match="foreign key"):
            TableSchema(
                "t",
                [Column("a", ColumnType.INT)],
                foreign_keys=(ForeignKey("missing", "other", "id"),),
            )

    def test_column_lookup(self, movie_schema):
        assert movie_schema.column("year").ctype is ColumnType.INT
        assert movie_schema.has_column("rating")
        assert not movie_schema.has_column("nope")

    def test_column_lookup_error_lists_available(self, movie_schema):
        with pytest.raises(SchemaError, match="rating"):
            movie_schema.column("missing")

    def test_column_names_order(self, movie_schema):
        assert movie_schema.column_names == ["id", "title", "year", "rating", "genre"]

    def test_numeric_and_categorical_partition(self, movie_schema):
        numeric = {c.name for c in movie_schema.numeric_columns()}
        categorical = {c.name for c in movie_schema.categorical_columns()}
        assert numeric == {"id", "year", "rating"}
        assert categorical == {"title", "genre"}
        assert numeric | categorical == set(movie_schema.column_names)
