"""Tests for the benchmark harness and reporting helpers."""

import json
import os

import numpy as np
import pytest

from repro.bench import (
    FIG2_METHODS,
    bench_asqp_config,
    evaluate_method,
    evaluate_over_splits,
    format_table,
    measure_query_batch,
    save_results,
)
from repro.bench.reporting import bench_scale


class TestConfigFactory:
    def test_base_config(self):
        config = bench_asqp_config(500, 25)
        assert config.memory_budget == 500
        assert config.frame_size == 25

    def test_light_config_profile(self):
        full = bench_asqp_config(500, 50)
        light = bench_asqp_config(500, 50, light=True)
        assert light.training_fraction < full.training_fraction
        assert light.n_iterations < full.n_iterations

    def test_overrides_win(self):
        config = bench_asqp_config(500, 50, light=True, n_iterations=99)
        assert config.n_iterations == 99


class TestEvaluate:
    def test_baseline_result_fields(self, tiny_flights):
        train, test = tiny_flights.workload.split(0.3, np.random.default_rng(0))
        result = evaluate_method(
            tiny_flights, train, test, "RAN", k=50, frame_size=50, seed=0
        )
        assert result.name == "RAN"
        assert 0.0 <= result.quality <= 1.0
        assert result.setup_seconds >= 0
        assert result.query_avg_seconds > 0
        assert result.database is not None

    def test_asqp_result_includes_model(self, tiny_flights):
        train, test = tiny_flights.workload.split(0.3, np.random.default_rng(0))
        result = evaluate_method(
            tiny_flights, train, test, "ASQP-RL", k=50, frame_size=50, seed=0,
            asqp_overrides=dict(
                n_iterations=2, n_actors=2, episodes_per_actor=1,
                action_space_target=30, n_query_representatives=4,
                n_candidate_rollouts=1,
            ),
        )
        assert result.model is not None
        assert result.model.setup_seconds > 0

    def test_over_splits_aggregates(self, tiny_flights):
        aggregated = evaluate_over_splits(
            tiny_flights, "RAN", k=50, frame_size=50, n_splits=2
        )
        assert aggregated.n_splits == 2
        assert aggregated.quality_std >= 0
        row = aggregated.row()
        assert row[0] == "RAN"

    def test_fig2_method_list_complete(self):
        assert len(FIG2_METHODS) == 12
        assert "ASQP-RL" in FIG2_METHODS and "GRE" in FIG2_METHODS


class TestQueryBatchTiming:
    def test_positive(self, tiny_flights):
        elapsed = measure_query_batch(tiny_flights.db, tiny_flights.workload, 5)
        assert elapsed > 0

    def test_regenerator_called(self, tiny_flights):
        calls = []

        def regenerator():
            calls.append(1)
            return tiny_flights.db

        measure_query_batch(tiny_flights.db, tiny_flights.workload, 3, regenerator)
        assert calls == [1]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [["a", 1.23456], ["bb", 2]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.235" in text

    def test_save_results_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_results("unit_test", {"rows": [1, 2, 3]})
        with open(path) as handle:
            record = json.load(handle)
        assert record["experiment"] == "unit_test"
        assert record["rows"] == [1, 2, 3]

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale(0.5) == 0.5
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        assert bench_scale(0.5) == 0.25
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            bench_scale()


class TestAsciiChart:
    def test_contains_all_markers_and_labels(self):
        from repro.bench import ascii_chart

        chart = ascii_chart(
            {"a": [1.0, 2.0], "b": [2.0, 1.0]}, ["x0", "x1"], title="T"
        )
        assert "T" in chart
        assert "o a" in chart and "x b" in chart
        assert "x0" in chart and "x1" in chart

    def test_length_mismatch_rejected(self):
        from repro.bench import ascii_chart
        import pytest

        with pytest.raises(ValueError):
            ascii_chart({"a": [1.0]}, ["x", "y"])

    def test_flat_series_ok(self):
        from repro.bench import ascii_chart

        chart = ascii_chart({"a": [1.0, 1.0, 1.0]}, [1, 2, 3])
        assert "o" in chart

    def test_empty_rejected(self):
        from repro.bench import ascii_chart
        import pytest

        with pytest.raises(ValueError):
            ascii_chart({}, [])
