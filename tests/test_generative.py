"""Tests for the VAE codec/model, gAQP, and the DeepDB-style SPN."""

import numpy as np
import pytest

from repro.baselines import GAQPEstimator, SPNModel, TabularCodec, TabularVAE
from repro.baselines.deepdb import (
    Interval,
    UnsupportedQueryError,
    ValueSet,
    conditions_from_predicate,
)
from repro.db import execute_aggregate, sql


class TestTabularCodec:
    def test_width(self, movies):
        codec = TabularCodec(movies)
        # 3 numeric columns + 2 categorical (title: 6 distinct + other,
        # genre: 3 distinct + other)
        assert codec.width == 3 + 7 + 4

    def test_encode_shape_and_standardization(self, movies):
        codec = TabularCodec(movies)
        matrix = codec.encode()
        assert matrix.shape == (6, codec.width)
        # numeric columns standardized: mean ~0
        assert abs(matrix[:, 0].mean()) < 1e-9

    def test_one_hot_rows_sum_to_one(self, movies):
        codec = TabularCodec(movies)
        matrix = codec.encode()
        genre_codec = [c for c in codec.columns if c.name == "genre"][0]
        offset = sum(c.width for c in codec.columns[: codec.columns.index(genre_codec)])
        block = matrix[:, offset : offset + genre_codec.width]
        assert np.allclose(block.sum(axis=1), 1.0)

    def test_decode_round_trip_types(self, movies, rng):
        codec = TabularCodec(movies)
        decoded = codec.decode(codec.encode(), rng)
        assert isinstance(decoded["year"][0], int)
        assert isinstance(decoded["rating"][0], float)
        assert all(isinstance(v, str) for v in decoded["genre"])

    def test_decode_categories_from_vocabulary(self, movies, rng):
        codec = TabularCodec(movies)
        decoded = codec.decode(codec.encode(), rng)
        assert set(decoded["genre"]) <= {"drama", "action", "scifi"}


class TestTabularVAE:
    def test_training_reduces_loss(self, tiny_flights):
        table = tiny_flights.db.table("flights")
        codec = TabularCodec(table)
        vae = TabularVAE(codec, latent_dim=4, seed=0)
        losses = vae.train(codec.encode(), epochs=15)
        assert losses[-1] < losses[0]

    def test_generation_shapes(self, movies, rng):
        codec = TabularCodec(movies)
        vae = TabularVAE(codec, latent_dim=4, seed=1)
        vae.train(codec.encode(), epochs=5)
        generated = vae.generate(10, rng)
        assert len(generated["year"]) == 10
        assert set(generated) == set(movies.schema.column_names)


class TestGAQP:
    def test_memory_fraction_validation(self, tiny_flights):
        with pytest.raises(ValueError):
            GAQPEstimator(tiny_flights.db, memory_fraction=0.0, epochs=1)

    def test_answer_error_bounded(self, tiny_flights):
        estimator = GAQPEstimator(
            tiny_flights.db, memory_fraction=0.05, epochs=8, seed=0
        )
        q = tiny_flights.aggregate_workload.queries[0]
        error = estimator.answer_error(q)
        assert 0.0 <= error <= 1.0


class TestConditionTranslation:
    COLUMNS = ["month", "carrier", "distance"]

    def test_between(self):
        q = sql("SELECT COUNT(*) FROM flights WHERE flights.month BETWEEN 2 AND 5")
        conditions = conditions_from_predicate(q.predicate, self.COLUMNS, "flights")
        assert conditions["month"] == Interval(2.0, 5.0)

    def test_one_sided(self):
        q = sql("SELECT COUNT(*) FROM flights WHERE flights.distance > 500")
        conditions = conditions_from_predicate(q.predicate, self.COLUMNS, "flights")
        assert conditions["distance"].low == 500.0
        assert conditions["distance"].high == np.inf

    def test_intersection(self):
        q = sql(
            "SELECT COUNT(*) FROM flights WHERE flights.month > 2 AND flights.month < 8"
        )
        conditions = conditions_from_predicate(q.predicate, self.COLUMNS, "flights")
        assert conditions["month"] == Interval(2.0, 8.0)

    def test_categorical_in(self):
        q = sql("SELECT COUNT(*) FROM flights WHERE flights.carrier IN ('AA','DL')")
        conditions = conditions_from_predicate(q.predicate, self.COLUMNS, "flights")
        assert conditions["carrier"] == ValueSet(frozenset({"AA", "DL"}))

    def test_unsupported_like(self):
        q = sql("SELECT COUNT(*) FROM flights WHERE flights.carrier LIKE 'A%'")
        with pytest.raises(UnsupportedQueryError):
            conditions_from_predicate(q.predicate, self.COLUMNS, "flights")

    def test_unknown_column(self):
        q = sql("SELECT COUNT(*) FROM flights WHERE flights.bogus = 1")
        with pytest.raises(UnsupportedQueryError):
            conditions_from_predicate(q.predicate, self.COLUMNS, "flights")


@pytest.fixture(scope="module")
def spn(tiny_flights):
    return SPNModel(tiny_flights.db.table("flights"), seed=0)


class TestSPN:
    def test_unconditional_count_exact(self, spn, tiny_flights):
        q = sql("SELECT COUNT(*) FROM flights")
        estimate = spn.answer(q)[()]["count(*)"]
        assert estimate == pytest.approx(len(tiny_flights.db.table("flights")), rel=0.01)

    def test_range_count_close(self, spn, tiny_flights):
        q = sql("SELECT COUNT(*) FROM flights WHERE flights.month BETWEEN 3 AND 6")
        truth = execute_aggregate(tiny_flights.db, q).rows[0]["count(*)"]
        estimate = spn.answer(q)[()]["count(*)"]
        assert abs(estimate - truth) / max(truth, 1) < 0.35

    def test_categorical_count_close(self, spn, tiny_flights):
        q = sql("SELECT COUNT(*) FROM flights WHERE flights.carrier = 'AA'")
        truth = execute_aggregate(tiny_flights.db, q).rows[0]["count(*)"]
        estimate = spn.answer(q)[()]["count(*)"]
        assert abs(estimate - truth) / max(truth, 1) < 0.35

    def test_sum_close(self, spn, tiny_flights):
        q = sql("SELECT SUM(distance) FROM flights WHERE flights.month BETWEEN 1 AND 6")
        truth = execute_aggregate(tiny_flights.db, q).rows[0]["sum(distance)"]
        estimate = spn.answer(q)[()]["sum(distance)"]
        assert abs(estimate - truth) / abs(truth) < 0.35

    def test_avg_close(self, spn, tiny_flights):
        q = sql("SELECT AVG(distance) FROM flights")
        truth = execute_aggregate(tiny_flights.db, q).rows[0]["avg(distance)"]
        estimate = spn.answer(q)[()]["avg(distance)"]
        assert abs(estimate - truth) / abs(truth) < 0.25

    def test_group_by_covers_groups(self, spn, tiny_flights):
        q = sql("SELECT carrier, COUNT(*) FROM flights GROUP BY carrier")
        truth = execute_aggregate(tiny_flights.db, q).as_mapping()
        estimate = spn.answer(q)
        # every true group should be present in the estimate
        missing = [k for k in truth if k not in estimate]
        assert len(missing) <= max(1, len(truth) // 5)

    def test_rejects_joins(self, spn):
        q = sql(
            "SELECT COUNT(*) FROM flights, carriers WHERE flights.carrier = carriers.code"
        )
        with pytest.raises(UnsupportedQueryError):
            spn.answer(q)

    def test_rejects_min_max(self, spn):
        q = sql("SELECT MAX(distance) FROM flights")
        with pytest.raises(UnsupportedQueryError):
            spn.answer(q)

    def test_empty_predicate_probability_zero(self, spn):
        q = sql("SELECT COUNT(*) FROM flights WHERE flights.month > 13")
        estimate = spn.answer(q)[()]["count(*)"]
        assert estimate == pytest.approx(0.0, abs=1.0)


class TestSPNPointConditions:
    """Integer group-by / equality conditions need discrete mass, not
    zero-measure intervals (regression test for the Fig. 12 G+AVG bug)."""

    def test_integer_equality_has_mass(self, spn, tiny_flights):
        q = sql("SELECT COUNT(*) FROM flights WHERE flights.month = 3")
        truth = execute_aggregate(tiny_flights.db, q).rows[0]["count(*)"]
        estimate = spn.answer(q)[()]["count(*)"]
        assert truth > 0
        assert abs(estimate - truth) / truth < 0.5

    def test_numeric_group_by_covers_groups(self, spn, tiny_flights):
        q = sql("SELECT month, COUNT(*) FROM flights GROUP BY month")
        truth = execute_aggregate(tiny_flights.db, q).as_mapping()
        estimate = spn.answer(q)
        missing = [k for k in truth if k not in estimate]
        assert len(missing) <= max(1, len(truth) // 5)

    def test_numeric_group_by_avg_reasonable(self, spn, tiny_flights):
        q = sql("SELECT month, AVG(distance) FROM flights GROUP BY month")
        truth = execute_aggregate(tiny_flights.db, q).as_mapping()
        estimate = spn.answer(q)
        errors = []
        for key, row in truth.items():
            if key in estimate:
                t = row["avg(distance)"]
                e = estimate[key]["avg(distance)"]
                errors.append(abs(e - t) / max(abs(t), 1e-9))
        assert errors, "no overlapping groups"
        assert np.median(errors) < 0.5
