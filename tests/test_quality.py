"""Answer-quality observability: shadow audits, quality SLOs, drift.

Covers the :mod:`repro.obs.quality` pipeline — rate validation, the
deterministic audit coin, the overhead budget governor, the rolling
calibration-drift detector — plus its integration surfaces: the tail
sampler's ``low_quality`` keep reason, lower-bound ``quality.recall``
SLO burn alerts with trace exemplars, the ``repro audit`` CLI, the
"Answer quality" report section, and the end-to-end acceptance path (a
seeded low-recall run whose CRIT burn alert names a trace id that
``repro analyze --trace`` resolves).
"""

from __future__ import annotations

import json
import os
import re

import pytest

from repro import obs
from repro.__main__ import main
from repro.obs import (
    health,
    metrics,
    quality,
    sampling,
    slo,
    telemetry,
    trace,
)


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends disabled with empty state."""

    def scrub():
        quality.clear()
        slo.clear()
        sampling.clear()
        obs.disable()
        trace.reset()
        metrics.reset()
        telemetry.reset()
        telemetry.configure(None)
        health.reset()

    scrub()
    yield
    scrub()


# ------------------------------------------------------------------ #
# rate validation
# ------------------------------------------------------------------ #
class TestValidateRate:
    @pytest.mark.parametrize("rate", [0, 1, 0.5, "0.25", True])
    def test_accepts_in_range(self, rate):
        value = quality.validate_rate(rate)
        assert 0.0 <= value <= 1.0
        assert isinstance(value, float)

    @pytest.mark.parametrize("rate", [-0.1, 1.0001, 17, float("nan")])
    def test_rejects_out_of_range(self, rate):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            quality.validate_rate(rate)

    @pytest.mark.parametrize("rate", ["ten percent", None, [0.1]])
    def test_rejects_non_numbers(self, rate):
        with pytest.raises(ValueError, match="must be a number"):
            quality.validate_rate(rate)

    def test_error_names_the_source(self):
        with pytest.raises(ValueError, match="REPRO_AUDIT_RATE"):
            quality.validate_rate(2.0, source="REPRO_AUDIT_RATE")

    def test_rate_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT_RATE", raising=False)
        assert quality.rate_from_env() == quality.DEFAULT_AUDIT_RATE
        monkeypatch.setenv("REPRO_AUDIT_RATE", "0.42")
        assert quality.rate_from_env() == pytest.approx(0.42)
        monkeypatch.setenv("REPRO_AUDIT_RATE", "1.5")
        with pytest.raises(ValueError, match="REPRO_AUDIT_RATE"):
            quality.rate_from_env()

    def test_cli_rejects_bad_rate_with_exit_2(self, tmp_path, capsys):
        code = main([
            "audit", "--dir", str(tmp_path), "--sample-rate", "1.5",
        ])
        assert code == 2
        out = capsys.readouterr().out
        assert "error:" in out and "[0, 1]" in out


# ------------------------------------------------------------------ #
# the deterministic audit coin
# ------------------------------------------------------------------ #
class TestAuditCoin:
    def test_deterministic_and_edge_rates(self):
        tid = "a3f1b2c4d5e6f708a9b0c1d2e3f40516"
        assert quality._audit_keep(tid, 0.0) is False
        assert quality._audit_keep(tid, 1.0) is True
        first = quality._audit_keep(tid, 0.3)
        assert all(
            quality._audit_keep(tid, 0.3) == first for _ in range(10)
        )

    def test_reads_its_own_hash_window(self):
        # The coin reads hex chars [8:16] — flipping the head window
        # (what tail-sampling's head coin reads) must not change it.
        base = "00000000" + "12345678" + "0" * 16
        flipped = "ffffffff" + "12345678" + "0" * 16
        for rate in (0.1, 0.5, 0.9):
            assert quality._audit_keep(base, rate) == quality._audit_keep(
                flipped, rate
            )

    def test_realized_fraction_tracks_rate(self):
        import hashlib

        tids = [
            hashlib.md5(str(i).encode()).hexdigest() for i in range(2000)
        ]
        kept = sum(quality._audit_keep(t, 0.2) for t in tids)
        assert abs(kept / len(tids) - 0.2) < 0.05


# ------------------------------------------------------------------ #
# budget governor
# ------------------------------------------------------------------ #
class TestBudgetGovernor:
    PASSING_TID = "deadbeef00000000deadbeefdeadbeef"  # coin window = 0

    def _monitor(self, **kwargs):
        kwargs.setdefault("sample_rate", 1.0)
        kwargs.setdefault("max_overhead", 0.01)
        return quality.install(quality.QualityMonitor(**kwargs))

    def test_first_audit_always_allowed(self):
        monitor = self._monitor()
        assert monitor.should_audit(self.PASSING_TID) is True

    def test_none_trace_id_never_audits(self):
        monitor = self._monitor()
        assert monitor.should_audit(None) is False

    def test_budget_blocks_after_expensive_audit(self):
        obs.enable()
        monitor = self._monitor()
        monitor.observe_query(0.9, 0.9, True, elapsed_seconds=1.0)
        monitor.record_audit(
            recall=0.9, predicted=0.9, observed=0.9, cost_seconds=0.5
        )
        # 0.5s of audit over 1s of serving is 50x the 1% budget.
        assert monitor.should_audit(self.PASSING_TID) is False
        assert monitor.counts["skipped_budget"] == 1

    def test_budget_reserves_the_last_audit_cost(self):
        # Conservative admission: even when spent audit time fits the
        # budget, the governor must also reserve one more audit at the
        # last observed cost — otherwise each admission overshoots the
        # budget by a full audit.
        obs.enable()
        monitor = self._monitor()
        monitor.observe_query(0.9, 0.9, True, elapsed_seconds=100.0)
        monitor.record_audit(
            recall=0.9, predicted=0.9, observed=0.9, cost_seconds=0.9
        )
        # spent 0.9 <= 1.0 budget, but 0.9 + 0.9 reserved > 1.0: skip.
        assert monitor.should_audit(self.PASSING_TID) is False
        # More serving grows the budget; 0.9 + 0.9 <= 2.0: admit.
        monitor.observe_query(0.9, 0.9, True, elapsed_seconds=100.0)
        assert monitor.should_audit(self.PASSING_TID) is True

    def test_unlimited_budget_when_disabled(self):
        obs.enable()
        monitor = self._monitor(max_overhead=None)
        monitor.record_audit(
            recall=0.9, predicted=0.9, observed=0.9, cost_seconds=99.0
        )
        assert monitor.should_audit(self.PASSING_TID) is True

    def test_coin_skip_counted(self):
        monitor = self._monitor(sample_rate=0.0001)
        losing = "00000000ffffffff0000000000000000"
        assert monitor.should_audit(losing) is False
        assert monitor.counts["skipped_coin"] == 1


# ------------------------------------------------------------------ #
# audit accounting
# ------------------------------------------------------------------ #
class TestRecordAudit:
    def test_low_quality_flag_and_counters(self):
        obs.enable()
        monitor = quality.install(quality.QualityMonitor(sample_rate=1.0))
        assert monitor.record_audit(
            recall=0.2, predicted=0.9, observed=0.1, agg_rel_error=0.5,
            cost_seconds=0.01, sql="SELECT 1", trace_id="ab" * 16,
        ) is True
        assert monitor.record_audit(
            recall=0.95, predicted=0.9, observed=0.92,
        ) is False
        assert monitor.counts["audits"] == 2
        assert monitor.counts["low_quality"] == 1
        summary = monitor.summary()
        assert summary["mean_recall"] == pytest.approx((0.2 + 0.95) / 2)
        assert summary["mean_agg_rel_error"] == pytest.approx(0.5)
        assert summary["audit_log"][0]["trace_id"] == "ab" * 16
        assert summary["audit_log"][0]["low_quality"] is True

    def test_audit_log_is_bounded(self):
        monitor = quality.QualityMonitor(sample_rate=1.0, max_audit_rows=4)
        for i in range(10):
            monitor.record_audit(
                recall=0.9, predicted=0.9, observed=0.9, sql=f"q{i}"
            )
        assert len(monitor.audit_log) == 4
        assert [row["sql"] for row in monitor.audit_log] == [
            "q6", "q7", "q8", "q9",
        ]

    def test_overhead_fraction(self):
        monitor = quality.QualityMonitor(sample_rate=1.0, max_overhead=None)
        assert monitor.overhead_fraction() == 0.0
        monitor.observe_query(0.9, 0.9, True, elapsed_seconds=10.0)
        monitor.record_audit(
            recall=0.9, predicted=0.9, observed=0.9, cost_seconds=0.5
        )
        assert monitor.overhead_fraction() == pytest.approx(0.05)


# ------------------------------------------------------------------ #
# calibration drift
# ------------------------------------------------------------------ #
class TestCalibrationDrift:
    def _monitor(self):
        return quality.install(quality.QualityMonitor(
            sample_rate=0.0, drift_window=8, drift_min_window=4,
        ))

    def _feed(self, monitor, predicted, observed, n):
        drift = None
        for _ in range(n):
            event = monitor.observe_query(predicted, observed, True)
            drift = event or drift
        return drift

    def test_calibrated_answers_raise_nothing(self):
        obs.enable()
        monitor = self._monitor()
        assert self._feed(monitor, 0.9, 0.85, 10) is None
        assert monitor.counts["drift_events"] == 0

    def test_warn_then_crit_escalation_with_dedup(self):
        obs.enable()
        monitor = self._monitor()
        warn = self._feed(monitor, 0.9, 0.65, 8)  # bias 0.25
        assert warn is not None and warn.severity == health.WARN
        assert warn.bias == pytest.approx(0.25)
        # Same severity again: deduplicated, no second event.
        assert self._feed(monitor, 0.9, 0.65, 4) is None
        crit = self._feed(monitor, 0.9, 0.40, 8)  # bias 0.50
        assert crit is not None and crit.severity == health.CRIT
        assert monitor.counts["drift_events"] == 2

    def test_recovery_rearms_the_detector(self):
        obs.enable()
        monitor = self._monitor()
        assert self._feed(monitor, 0.9, 0.65, 8) is not None
        # Window refills with calibrated pairs: published level resets.
        assert self._feed(monitor, 0.9, 0.9, 8) is None
        again = self._feed(monitor, 0.9, 0.65, 8)
        assert again is not None and again.severity == health.WARN

    def test_drift_publishes_health_alert(self):
        obs.enable()
        monitor = self._monitor()
        self._feed(monitor, 0.9, 0.40, 8)
        rules = [a.rule for a in health.active_monitor().alerts]
        assert "quality_calibration_drift" in rules

    def test_under_prediction_is_signed(self):
        obs.enable()
        monitor = self._monitor()
        drift = self._feed(monitor, 0.5, 0.8, 8)  # bias -0.30
        assert drift is not None
        assert drift.bias == pytest.approx(-0.30)


# ------------------------------------------------------------------ #
# tail-sampler keep reason
# ------------------------------------------------------------------ #
class TestLowQualityKeepReason:
    def _root(self, trace_id, **attrs):
        span = trace.Span("session.query")
        span.trace_id = trace_id
        span.duration_s = 0.01
        span.attrs.update(attrs)
        return span

    def test_low_quality_trace_is_kept(self):
        sampler = sampling.TailSampler(head_rate=0.0, min_window=0)
        reason = sampler.offer(self._root("ab" * 16, low_quality=1))
        assert reason == "low_quality"
        assert sampler.counts["kept_low_quality"] == 1

    def test_error_outranks_low_quality(self):
        sampler = sampling.TailSampler(head_rate=0.0, min_window=0)
        root = self._root("cd" * 16, low_quality=1)
        root.error = "boom"
        assert sampler.offer(root) == "error"


# ------------------------------------------------------------------ #
# lower-bound quality SLOs
# ------------------------------------------------------------------ #
class TestQualitySLO:
    def test_lower_bound_spec_parses(self):
        objective = slo.parse_objective("quality.recall.p10 > 0.85 @ 90%")
        assert objective.metric == "quality.recall"
        assert objective.agg == "p10"
        assert objective.op == ">"
        assert objective.threshold == pytest.approx(0.85)
        assert objective.target == pytest.approx(0.90)
        assert objective.complies(0.9) and not objective.complies(0.5)

    def test_recall_alias_resolves(self):
        objective = slo.parse_objective("recall.p10 > 0.85")
        assert objective.metric == "quality.recall"

    def test_low_recall_burns_with_smallest_sample_exemplars(self):
        obs.enable()
        tracker = slo.configure(["quality.recall.p10 > 0.85 @ 90%"])
        registry = metrics.registry()
        # 11 audited answers, all violating; the worst (smallest) two
        # carry distinct trace ids that must surface as exemplars.
        worst = "11" * 16
        second = "22" * 16
        registry.observe("quality.recall", 0.05, trace_id=worst)
        registry.observe("quality.recall", 0.10, trace_id=second)
        for i in range(9):
            registry.observe("quality.recall", 0.3 + i * 0.01)
        for value in (0.05, 0.10) + tuple(0.3 + i * 0.01 for i in range(9)):
            tracker.record("quality.recall", value)
        alerts = tracker.publish()
        burn = [a for a in alerts if a.rule == "slo_burn"]
        assert burn and burn[0].severity == health.CRIT
        assert "quality.recall.p10" in burn[0].message
        assert worst in burn[0].message
        assert second in burn[0].message
        assert "repro analyze --trace" in burn[0].message

    def test_quality_objectives_constants_parse(self):
        for spec in quality.QUALITY_OBJECTIVES:
            slo.parse_objective(spec)


# ------------------------------------------------------------------ #
# report section
# ------------------------------------------------------------------ #
class TestReportSection:
    def test_placeholder_when_no_audit_data(self):
        from repro.obs.report import _section_quality

        lines = _section_quality([], None)
        text = "\n".join(lines)
        assert "## Answer quality" in text
        assert "No audit data recorded" in text
        assert "unverified" in text

    def test_calibration_table_renders(self):
        from repro.obs.report import _section_quality

        records = [
            {
                "stream": "quality", "kind": "audit", "trace_id": "ab" * 16,
                "predicted": 0.9, "observed": 0.3, "recall": 0.3,
                "agg_rel_error": 0.4, "low_quality": True, "sql": "SELECT 1",
            },
            {
                "stream": "quality", "kind": "audit", "trace_id": "cd" * 16,
                "predicted": 0.2, "observed": 0.25, "recall": 0.95,
                "agg_rel_error": None, "low_quality": False, "sql": "SELECT 2",
            },
        ]
        doc = {
            "counts": {
                "queries": 4, "approx_queries": 2, "audits": 2,
                "skipped_coin": 0, "skipped_budget": 0,
                "low_quality": 1, "drift_events": 0,
            },
            "sample_rate": 1.0, "max_overhead": 0.01,
            "overhead_fraction": 0.003,
            "mean_recall": 0.625, "calibration_bias": 0.275,
        }
        text = "\n".join(_section_quality(records, doc))
        assert "Calibration (predicted vs audited)" in text
        assert "[0.75, 1.00)" in text and "[0.00, 0.25)" in text
        assert "Worst audited answers" in text
        assert ("ab" * 16)[:16] in text
        assert "repro analyze --trace" in text


# ------------------------------------------------------------------ #
# end-to-end: seeded low recall trips the quality pipeline
# ------------------------------------------------------------------ #
@pytest.fixture(scope="module")
def low_recall_run(tmp_path_factory):
    """A recorded run whose approximation set was gutted to one row.

    Every answer is served from (and audited against) a one-row-per-
    table approximation set, so measured recall collapses while the
    estimator's confidence stays put: audits land low-quality, the
    ``quality.recall`` SLO burns, and calibration drifts.
    """
    from repro.core import ASQPConfig, ASQPSession, ASQPTrainer
    from repro.datasets import load_flights
    from repro.db import Database

    bundle = load_flights(scale=0.1, n_queries=12, n_aggregate_queries=4)
    config = ASQPConfig.light(
        memory_budget=120, frame_size=20, n_iterations=2,
        learning_rate=1e-3, seed=0,
    )
    obs.disable()
    model = ASQPTrainer(bundle.db, bundle.workload, config).train()
    session = ASQPSession(model, auto_fine_tune=False)
    session.approx_db = Database(
        [table.head(1) for table in session.approx_db], name="gutted"
    )
    run_dir = str(tmp_path_factory.mktemp("low_recall"))
    outcomes = []
    with obs.run(
        run_dir,
        slo_objectives=quality.QUALITY_OBJECTIVES,
        audit_rate=1.0,
    ):
        # The budget governor would throttle a rate-1.0 audit storm;
        # this scenario wants every answer audited.
        quality.configure(sample_rate=1.0, max_overhead=None)
        for query in bundle.workload:
            outcomes.append(session.query(query, confidence_threshold=0.0))
    return run_dir, outcomes


class TestLowRecallAcceptance:
    def test_every_answer_audited_and_low_quality(self, low_recall_run):
        _, outcomes = low_recall_run
        # >= MIN_SAMPLES so the SLO burn window can fire at all.
        assert len(outcomes) >= slo.MIN_SAMPLES
        audited = [o for o in outcomes if o.audit is not None]
        assert len(audited) == len(outcomes)
        assert all(o.audit.recall < 0.8 for o in audited)
        assert all(o.audit.low_quality for o in audited)

    def test_query_stats_stamped(self, low_recall_run):
        _, outcomes = low_recall_run
        stamped = [
            o for o in outcomes
            if getattr(o.result, "stats", None) is not None
        ]
        assert stamped
        for outcome in stamped:
            assert outcome.result.stats.audited is True
            assert outcome.result.stats.audit_recall == pytest.approx(
                outcome.audit.recall
            )

    def test_quality_json_written(self, low_recall_run):
        run_dir, outcomes = low_recall_run
        with open(os.path.join(run_dir, quality.QUALITY_FILE)) as handle:
            doc = json.load(handle)
        assert doc["counts"]["audits"] == len(outcomes)
        assert doc["counts"]["low_quality"] == len(outcomes)
        assert doc["mean_recall"] < 0.5
        assert doc["audit_log"]
        assert all(row["trace_id"] for row in doc["audit_log"])

    def _health_records(self, run_dir):
        records = []
        with open(os.path.join(run_dir, obs.TELEMETRY_FILE)) as handle:
            for line in handle:
                record = json.loads(line)
                if record.get("stream") == "health":
                    records.append(record)
        return records

    def test_recall_slo_burns_crit_with_resolvable_exemplar(
        self, low_recall_run
    ):
        run_dir, _ = low_recall_run
        burns = [
            r for r in self._health_records(run_dir)
            if r.get("rule") == "slo_burn"
            and "quality.recall" in r.get("message", "")
        ]
        assert burns, "expected a quality.recall SLO burn alert"
        assert burns[0]["severity"] == health.CRIT
        match = re.search(
            r"worst traces: ([0-9a-f]{32})", burns[0]["message"]
        )
        assert match, burns[0]["message"]
        trace_id = match.group(1)
        assert main(["analyze", "--dir", run_dir, "--trace", trace_id]) == 0

    def test_calibration_drift_alert_fired(self, low_recall_run):
        run_dir, _ = low_recall_run
        drift = [
            r for r in self._health_records(run_dir)
            if r.get("rule") == "quality_calibration_drift"
        ]
        assert drift, "expected a calibration-drift health alert"

    def test_traces_kept_for_low_quality(self, low_recall_run):
        run_dir, _ = low_recall_run
        with open(os.path.join(run_dir, "traces.json")) as handle:
            doc = json.load(handle)
        assert doc["counts"]["kept_low_quality"] > 0

    def test_audit_cli_prints_calibration_table(
        self, low_recall_run, capsys
    ):
        run_dir, _ = low_recall_run
        assert main(["audit", "--dir", run_dir]) == 0
        out = capsys.readouterr().out
        assert "Calibration" in out
        assert "predicted bin" in out
        assert "Worst" in out
        assert "repro analyze --trace" in out

    def test_watch_shows_quality_and_keep_reasons(
        self, low_recall_run, capsys
    ):
        run_dir, _ = low_recall_run
        assert main(["watch", "--dir", run_dir, "--once"]) == 0
        out = capsys.readouterr().out
        assert "answer quality" in out
        assert "audits" in out
        assert "low_quality" in out

    def test_report_renders_answer_quality_section(self, low_recall_run):
        from repro.obs.report import render_markdown

        run_dir, _ = low_recall_run
        text = render_markdown(run_dir)
        assert "## Answer quality" in text
        assert "Calibration (predicted vs audited)" in text
        assert "Worst audited answers" in text


# ------------------------------------------------------------------ #
# repro audit CLI on empty / missing runs
# ------------------------------------------------------------------ #
class TestAuditCLI:
    def test_missing_run_dir(self, tmp_path, capsys):
        code = main(["audit", "--dir", str(tmp_path / "nope")])
        assert code != 0

    def test_no_audit_data_is_explicit(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        with obs.run(run_dir, audit_rate=0.0):
            pass
        os.remove(os.path.join(run_dir, quality.QUALITY_FILE))
        code = main(["audit", "--dir", run_dir])
        assert code == 1
        out = capsys.readouterr().out
        assert "no audit data recorded" in out
        assert "unverified" in out

    def test_help_documents_default_rate(self, capsys):
        with pytest.raises(SystemExit):
            main(["audit", "--help"])
        out = capsys.readouterr().out
        assert "REPRO_AUDIT_RATE" in out
        assert "0.1" in out
