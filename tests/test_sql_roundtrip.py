"""Property-based SQL round-trip: ``sql(q.to_sql())`` preserves semantics.

Model persistence depends on this (queries are stored as SQL text), so the
round-trip must hold for everything the workload generators can emit.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    Between,
    Column,
    ColumnType,
    Comparison,
    Database,
    InSet,
    Like,
    Not,
    Or,
    SPJQuery,
    Table,
    TableSchema,
    conjoin,
    execute,
    sql,
)


def _db() -> Database:
    schema = TableSchema(
        "t",
        [Column("id", ColumnType.INT), Column("x", ColumnType.INT),
         Column("y", ColumnType.FLOAT), Column("g", ColumnType.STR)],
    )
    rng = np.random.default_rng(0)
    n = 60
    return Database([
        Table(schema, {
            "id": np.arange(n),
            "x": rng.integers(-10, 10, n),
            "y": np.round(rng.normal(0, 3, n), 2),
            "g": [str(v) for v in rng.choice(["aa", "bb", "cc", "d'd"], n)],
        })
    ])


_DB = _db()


def _atoms():
    numeric_comparison = st.builds(
        Comparison,
        st.sampled_from(["t.x", "t.id"]),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.integers(-12, 12),
    )
    float_comparison = st.builds(
        Comparison,
        st.just("t.y"),
        st.sampled_from(["<", ">"]),
        st.floats(-5, 5).map(lambda v: round(v, 2)),
    )
    string_equality = st.builds(
        Comparison, st.just("t.g"), st.just("="),
        st.sampled_from(["aa", "bb", "d'd"]),
    )
    between = st.builds(
        lambda lo, hi: Between("t.x", min(lo, hi), max(lo, hi)),
        st.integers(-12, 12), st.integers(-12, 12),
    )
    inset = st.builds(
        lambda values: InSet("t.g", values),
        st.sets(st.sampled_from(["aa", "bb", "cc", "d'd"]), min_size=1, max_size=3),
    )
    like = st.builds(Like, st.just("t.g"), st.sampled_from(["a%", "%b", "_c", "d%"]))
    return st.one_of(
        numeric_comparison, float_comparison, string_equality, between, inset, like
    )


def _predicates():
    atom = _atoms()
    negated = atom.map(Not)
    disjunction = st.lists(atom, min_size=2, max_size=3).map(Or)
    part = st.one_of(atom, negated, disjunction)
    return st.lists(part, min_size=0, max_size=3).map(conjoin)


@given(predicate=_predicates())
@settings(max_examples=120, deadline=None)
def test_predicate_roundtrip_same_results(predicate):
    query = SPJQuery(tables=("t",), predicate=predicate)
    reparsed = sql(query.to_sql())
    original = execute(_DB, query).provenance_keys()
    round_tripped = execute(_DB, reparsed).provenance_keys()
    assert original == round_tripped


@given(
    predicate=_predicates(),
    limit=st.one_of(st.none(), st.integers(0, 20)),
    descending=st.booleans(),
    distinct=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_modifier_roundtrip(predicate, limit, descending, distinct):
    query = SPJQuery(
        tables=("t",),
        predicate=predicate,
        projection=("t.g", "t.x"),
        order_by="t.x",
        descending=descending,
        limit=limit,
        distinct=distinct,
    )
    reparsed = sql(query.to_sql())
    assert reparsed.limit == limit
    assert reparsed.descending == descending
    assert reparsed.distinct == distinct
    original = execute(_DB, query).tuple_keys()
    round_tripped = execute(_DB, reparsed).tuple_keys()
    assert original == round_tripped


def test_join_query_roundtrip(mini_db):
    query = sql(
        "SELECT movies.title, cast_info.actor FROM movies, cast_info "
        "WHERE movies.id = cast_info.movie_id AND movies.year > 2000"
    )
    reparsed = sql(query.to_sql())
    assert reparsed.joins == query.joins
    a = sorted(execute(mini_db, query).tuple_keys())
    b = sorted(execute(mini_db, reparsed).tuple_keys())
    assert a == b


def test_aggregate_roundtrip(mini_db):
    from repro.db import execute_aggregate

    query = sql(
        "SELECT genre, COUNT(*), AVG(rating) AS ar FROM movies "
        "WHERE year > 2000 GROUP BY genre"
    )
    reparsed = sql(query.to_sql())
    assert reparsed.is_aggregate
    assert execute_aggregate(mini_db, query).as_mapping() == \
        execute_aggregate(mini_db, reparsed).as_mapping()
