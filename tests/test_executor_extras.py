"""Deeper executor tests: multi-way joins, ordering, provenance edge cases."""

import numpy as np
import pytest

from repro.db import (
    Column,
    ColumnType,
    Database,
    JoinCondition,
    SPJQuery,
    Table,
    TableSchema,
    execute,
    sql,
)


@pytest.fixture
def chain_db():
    """A three-table chain a -> b -> c for multi-hop joins."""
    a = Table(
        TableSchema("a", [Column("id", ColumnType.INT), Column("x", ColumnType.INT)]),
        {"id": [1, 2, 3], "x": [10, 20, 30]},
    )
    b = Table(
        TableSchema("b", [Column("id", ColumnType.INT), Column("a_id", ColumnType.INT),
                          Column("y", ColumnType.STR)]),
        {"id": [1, 2, 3, 4], "a_id": [1, 1, 2, 3], "y": ["p", "q", "p", "r"]},
    )
    c = Table(
        TableSchema("c", [Column("id", ColumnType.INT), Column("b_id", ColumnType.INT),
                          Column("z", ColumnType.FLOAT)]),
        {"id": [1, 2, 3], "b_id": [1, 3, 4], "z": [0.5, 1.5, 2.5]},
    )
    return Database([a, b, c], name="chain")


class TestThreeWayJoins:
    def test_chain_join(self, chain_db):
        q = sql(
            "SELECT a.x, c.z FROM a, b, c "
            "WHERE a.id = b.a_id AND b.id = c.b_id"
        )
        result = execute(chain_db, q)
        got = sorted(zip(result.column("a.x"), result.column("c.z")))
        assert got == [(10, 0.5), (20, 1.5), (30, 2.5)]

    def test_chain_join_with_filters_on_each_table(self, chain_db):
        q = sql(
            "SELECT a.x FROM a, b, c "
            "WHERE a.id = b.a_id AND b.id = c.b_id "
            "AND a.x > 10 AND b.y = 'p' AND c.z < 2.0"
        )
        result = execute(chain_db, q)
        assert list(result.column("a.x")) == [20]

    def test_join_order_independent_of_from_order(self, chain_db):
        joins = (
            JoinCondition("a.id", "b.a_id"),
            JoinCondition("b.id", "c.b_id"),
        )
        q1 = SPJQuery(tables=("a", "b", "c"), joins=joins)
        q2 = SPJQuery(tables=("c", "a", "b"), joins=joins)
        r1 = execute(chain_db, q1)
        r2 = execute(chain_db, q2)
        assert sorted(r1.provenance_keys()) == sorted(r2.provenance_keys())

    def test_disconnected_table_cross_product(self, chain_db):
        q = SPJQuery(
            tables=("a", "b", "c"),
            joins=(JoinCondition("a.id", "b.a_id"),),
        )
        result = execute(chain_db, q)
        assert len(result) == 4 * 3  # (a⋈b) × c

    def test_self_equality_predicate_not_a_join(self, chain_db):
        # a.id = a.x is a plain per-table predicate.
        q = sql("SELECT * FROM a WHERE a.id = a.x")
        assert len(execute(chain_db, q)) == 0


class TestOrderingEdgeCases:
    def test_order_by_unprojected_column(self, mini_db):
        q = sql("SELECT movies.title FROM movies ORDER BY movies.rating LIMIT 2")
        result = execute(mini_db, q)
        assert list(result.column("movies.title")) == ["Gamma", "Epsilon"]

    def test_order_stability_on_ties(self, mini_db):
        q = sql("SELECT movies.title FROM movies ORDER BY movies.year")
        result = execute(mini_db, q)
        titles = list(result.column("movies.title"))
        # 2005 appears twice: Beta (row 1) before Epsilon (row 4) — stable.
        assert titles.index("Beta") < titles.index("Epsilon")

    def test_distinct_after_order_keeps_first(self, mini_db):
        q = sql("SELECT DISTINCT movies.genre FROM movies ORDER BY movies.rating DESC")
        result = execute(mini_db, q)
        assert list(result.column("movies.genre"))[0] == "scifi"  # rating 9.0


class TestPredicateCoverage:
    def test_numeric_in(self, chain_db):
        q = sql("SELECT * FROM a WHERE a.x IN (10, 30)")
        assert len(execute(chain_db, q)) == 2

    def test_or_across_tables_residual(self, chain_db):
        q = sql(
            "SELECT * FROM a, b WHERE a.id = b.a_id AND (a.x = 10 OR b.y = 'r')"
        )
        result = execute(chain_db, q)
        assert len(result) == 3  # two b-rows of a1 plus the 'r' row

    def test_not_predicate(self, chain_db):
        q = sql("SELECT * FROM b WHERE NOT (b.y = 'p')")
        assert len(execute(chain_db, q)) == 2


class TestEmptyInputs:
    def test_empty_table_join(self, chain_db):
        sub = chain_db.subset({"a": [0, 1, 2], "b": []})
        q = sql("SELECT * FROM a, b WHERE a.id = b.a_id")
        assert len(execute(sub, q)) == 0

    def test_all_rows_filtered_then_ordered(self, chain_db):
        q = sql("SELECT * FROM a WHERE a.x > 1000 ORDER BY a.x LIMIT 5")
        assert len(execute(chain_db, q)) == 0
