"""Differential testing: the executor vs a naive reference evaluator.

A nested-loop, row-at-a-time evaluator is trivially correct; hypothesis
generates small random databases and SPJ queries, and the vectorized
executor must produce exactly the same multiset of result rows.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    Between,
    Column,
    ColumnType,
    Comparison,
    Database,
    InSet,
    JoinCondition,
    SPJQuery,
    Table,
    TableSchema,
    conjoin,
    execute,
)

_GENRES = ["a", "b", "c"]


def _build_db(left_rows, right_rows) -> Database:
    left_schema = TableSchema(
        "l",
        [Column("id", ColumnType.INT), Column("x", ColumnType.INT),
         Column("g", ColumnType.STR)],
    )
    right_schema = TableSchema(
        "r",
        [Column("id", ColumnType.INT), Column("l_id", ColumnType.INT),
         Column("y", ColumnType.INT)],
    )
    left = Table(left_schema, {
        "id": [row[0] for row in left_rows],
        "x": [row[1] for row in left_rows],
        "g": [row[2] for row in left_rows],
    })
    right = Table(right_schema, {
        "id": [row[0] for row in right_rows],
        "l_id": [row[1] for row in right_rows],
        "y": [row[2] for row in right_rows],
    })
    return Database([left, right])


def _reference_single(left_rows, predicate) -> list[tuple]:
    out = []
    for lid, x, g in left_rows:
        ctx = {"l.id": np.asarray([lid]), "l.x": np.asarray([x]),
               "l.g": np.asarray([g], dtype=object)}
        if predicate.evaluate(ctx)[0]:
            out.append((lid, x, g))
    return sorted(out)


def _reference_join(left_rows, right_rows, predicate) -> list[tuple]:
    out = []
    for lid, x, g in left_rows:
        for rid, l_id, y in right_rows:
            if l_id != lid:
                continue
            ctx = {
                "l.id": np.asarray([lid]), "l.x": np.asarray([x]),
                "l.g": np.asarray([g], dtype=object),
                "r.id": np.asarray([rid]), "r.l_id": np.asarray([l_id]),
                "r.y": np.asarray([y]),
            }
            if predicate.evaluate(ctx)[0]:
                out.append((lid, x, g, rid, l_id, y))
    return sorted(out)


_left_rows = st.lists(
    st.tuples(st.integers(0, 9), st.integers(-5, 5), st.sampled_from(_GENRES)),
    min_size=1, max_size=12,
)
_right_rows = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9), st.integers(-5, 5)),
    min_size=1, max_size=12,
)


def _predicates():
    comparison = st.builds(
        Comparison,
        st.sampled_from(["l.x", "l.id"]),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.integers(-5, 5),
    )
    between = st.builds(
        lambda lo, hi: Between("l.x", min(lo, hi), max(lo, hi)),
        st.integers(-5, 5), st.integers(-5, 5),
    )
    inset = st.builds(
        lambda vs: InSet("l.g", vs),
        st.sets(st.sampled_from(_GENRES), min_size=1, max_size=3),
    )
    atom = st.one_of(comparison, between, inset)
    return st.lists(atom, min_size=0, max_size=3).map(conjoin)


@given(rows=_left_rows, predicate=_predicates())
@settings(max_examples=80, deadline=None)
def test_single_table_matches_reference(rows, predicate):
    db = _build_db(rows, [(0, 0, 0)])
    query = SPJQuery(tables=("l",), predicate=predicate)
    result = execute(db, query)
    got = sorted(
        zip(
            (int(v) for v in result.column("l.id")),
            (int(v) for v in result.column("l.x")),
            (str(v) for v in result.column("l.g")),
        )
    )
    assert got == _reference_single(rows, predicate)


@given(left=_left_rows, right=_right_rows, predicate=_predicates())
@settings(max_examples=60, deadline=None)
def test_join_matches_reference(left, right, predicate):
    db = _build_db(left, right)
    query = SPJQuery(
        tables=("l", "r"),
        joins=(JoinCondition("l.id", "r.l_id"),),
        predicate=predicate,
    )
    result = execute(db, query)
    got = sorted(
        zip(
            (int(v) for v in result.column("l.id")),
            (int(v) for v in result.column("l.x")),
            (str(v) for v in result.column("l.g")),
            (int(v) for v in result.column("r.id")),
            (int(v) for v in result.column("r.l_id")),
            (int(v) for v in result.column("r.y")),
        )
    )
    assert got == _reference_join(left, right, predicate)


@given(left=_left_rows, right=_right_rows, predicate=_predicates())
@settings(max_examples=40, deadline=None)
def test_subset_monotonicity_random(left, right, predicate):
    """q(S) ⊆ q(T) for random sub-databases (SPJ monotonicity)."""
    db = _build_db(left, right)
    query = SPJQuery(
        tables=("l", "r"),
        joins=(JoinCondition("l.id", "r.l_id"),),
        predicate=predicate,
    )
    full = set(execute(db, query).provenance_keys())
    rng = np.random.default_rng(0)
    keep_l = [i for i in range(len(left)) if rng.random() < 0.6]
    keep_r = [i for i in range(len(right)) if rng.random() < 0.6]
    sub = db.subset({"l": keep_l, "r": keep_r})
    partial = set(execute(sub, query).provenance_keys())
    assert partial <= full


# ------------------------------------------------------------------ #
# byte-identical: vectorized kernels vs per-row reference kernels
# ------------------------------------------------------------------ #

from repro.db import QueryError, execute_aggregate, sql  # noqa: E402
from repro.db import kernels  # noqa: E402


def _assert_byte_identical(db, query):
    """The vectorized executor must equal the per-row one exactly:
    same columns, same row ids, same values, same row *order*."""
    with kernels.use_reference_kernels():
        expected = execute(db, query)
    got = execute(db, query)
    assert got.n_rows == expected.n_rows
    assert set(got.columns) == set(expected.columns)
    for ref in expected.columns:
        np.testing.assert_array_equal(got.column(ref), expected.column(ref))
    assert set(got.row_ids) == set(expected.row_ids)
    for table in expected.row_ids:
        np.testing.assert_array_equal(got.row_ids[table], expected.row_ids[table])


@given(left=_left_rows, right=_right_rows, predicate=_predicates(),
       distinct=st.booleans())
@settings(max_examples=80, deadline=None)
def test_vectorized_join_byte_identical(left, right, predicate, distinct):
    db = _build_db(left, right)
    query = SPJQuery(
        tables=("l", "r"),
        joins=(JoinCondition("l.id", "r.l_id"),),
        predicate=predicate,
        distinct=distinct,
    )
    _assert_byte_identical(db, query)


@given(rows=_left_rows, predicate=_predicates())
@settings(max_examples=60, deadline=None)
def test_vectorized_distinct_byte_identical(rows, predicate):
    db = _build_db(rows, [(0, 0, 0)])
    query = SPJQuery(
        tables=("l",),
        projection=("l.g",),
        predicate=predicate,
        distinct=True,
    )
    _assert_byte_identical(db, query)


@given(left=_left_rows, right=_right_rows)
@settings(max_examples=40, deadline=None)
def test_vectorized_aggregate_identical(left, right):
    db = _build_db(left, right)
    query = sql(
        "SELECT l.g, COUNT(*), SUM(r.y) FROM l, r "
        "WHERE l.id = r.l_id GROUP BY l.g"
    )
    with kernels.use_reference_kernels():
        expected = execute_aggregate(db, query)
    got = execute_aggregate(db, query)
    assert got.rows == expected.rows


def test_ambiguous_bare_column_raises():
    db = _build_db([(1, 2, "a")], [(3, 1, 4)])
    query = SPJQuery(tables=("l", "r"), joins=(JoinCondition("l.id", "r.l_id"),))
    result = execute(db, query)
    # both l.id and r.id match the bare name "id"
    with pytest.raises(QueryError, match="ambiguous"):
        result.column("id")
    np.testing.assert_array_equal(result.column("y"), [4])
