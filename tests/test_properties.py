"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ApproximationSet, CoverageTracker, QueryCoverage, query_score
from repro.db import Between, Comparison, InSet, conjoin, conjuncts
from repro.db.cache import LRUTupleCache
from repro.db.sampling import variational_subsample
from repro.embedding import TokenHasher, cosine_similarity
from repro.rl.nn import masked_log_softmax, softmax
from repro.rl.rollout import discounted_returns


# ------------------------------------------------------------------ #
# Eq. 1 per-query term
# ------------------------------------------------------------------ #
@given(
    full=st.integers(min_value=0, max_value=10_000),
    subset=st.integers(min_value=0, max_value=10_000),
    frame=st.integers(min_value=1, max_value=500),
)
def test_query_score_bounded(full, subset, frame):
    value = query_score(full, min(subset, full), frame)
    assert 0.0 <= value <= 1.0


@given(
    full=st.integers(min_value=1, max_value=1000),
    frame=st.integers(min_value=1, max_value=100),
    a=st.integers(min_value=0, max_value=1000),
    b=st.integers(min_value=0, max_value=1000),
)
def test_query_score_monotone_in_coverage(full, frame, a, b):
    low, high = sorted((min(a, full), min(b, full)))
    assert query_score(full, low, frame) <= query_score(full, high, frame)


# ------------------------------------------------------------------ #
# coverage tracker: add/remove symmetry
# ------------------------------------------------------------------ #
_keys = st.tuples(st.sampled_from(["t", "u"]), st.integers(0, 8))
_requirements = st.lists(
    st.lists(_keys, min_size=1, max_size=3, unique=True).map(tuple),
    min_size=1,
    max_size=6,
)


@given(requirements=_requirements, operations=st.lists(_keys, min_size=0, max_size=20))
@settings(max_examples=60)
def test_tracker_matches_recomputation(requirements, operations):
    """Incremental updates == rebuilding the tracker from scratch."""
    coverage = QueryCoverage(
        name="q", weight=1.0, denominator=len(requirements), requirements=list(requirements)
    )
    incremental = CoverageTracker([coverage])
    present: list = []
    for key in operations:
        incremental.add_key(key)
        present.append(key)

    fresh = CoverageTracker([
        QueryCoverage(name="q", weight=1.0, denominator=len(requirements),
                      requirements=list(requirements))
    ])
    fresh.add_keys(present)
    assert incremental.batch_score() == fresh.batch_score()


@given(requirements=_requirements, keys=st.lists(_keys, min_size=1, max_size=10))
@settings(max_examples=60)
def test_tracker_add_remove_roundtrip(requirements, keys):
    coverage = QueryCoverage(
        name="q", weight=1.0, denominator=len(requirements), requirements=list(requirements)
    )
    tracker = CoverageTracker([coverage])
    baseline = tracker.batch_score()
    tracker.add_keys(keys)
    tracker.remove_keys(keys)
    assert tracker.batch_score() == baseline


# ------------------------------------------------------------------ #
# approximation set
# ------------------------------------------------------------------ #
@given(keys=st.lists(_keys, min_size=0, max_size=30))
def test_approximation_set_size_counts_distinct(keys):
    approx = ApproximationSet.from_keys(keys)
    assert approx.total_size() == len(set(keys))
    for key in keys:
        assert key in approx


@given(keys=st.lists(_keys, min_size=0, max_size=30))
def test_approximation_set_copy_independent(keys):
    approx = ApproximationSet.from_keys(keys)
    clone = approx.copy()
    clone.add_keys([("t", 999)])
    assert ("t", 999) not in approx


# ------------------------------------------------------------------ #
# predicates
# ------------------------------------------------------------------ #
@given(
    values=st.lists(st.integers(-100, 100), min_size=1, max_size=50),
    low=st.integers(-100, 100),
    high=st.integers(-100, 100),
)
def test_between_equals_two_comparisons(values, low, high):
    low, high = sorted((low, high))
    ctx = {"t.x": np.asarray(values, dtype=np.int64)}
    between = Between("t.x", low, high).evaluate(ctx)
    manual = (
        Comparison("t.x", ">=", low).evaluate(ctx)
        & Comparison("t.x", "<=", high).evaluate(ctx)
    )
    assert (between == manual).all()


@given(
    values=st.lists(st.sampled_from("abcde"), min_size=1, max_size=30),
    wanted=st.sets(st.sampled_from("abcde"), min_size=1, max_size=5),
)
def test_inset_equals_or_of_equalities(values, wanted):
    ctx = {"t.g": np.asarray(values, dtype=object)}
    in_mask = InSet("t.g", wanted).evaluate(ctx)
    manual = np.zeros(len(values), dtype=bool)
    for value in wanted:
        manual |= Comparison("t.g", "=", value).evaluate(ctx)
    assert (in_mask == manual).all()


@given(st.lists(st.integers(-5, 5), min_size=0, max_size=5))
def test_conjoin_conjuncts_roundtrip(values):
    parts = [Comparison("t.x", ">", v) for v in values]
    combined = conjoin(parts)
    assert len(conjuncts(combined)) == len(parts)


# ------------------------------------------------------------------ #
# sampling
# ------------------------------------------------------------------ #
@given(
    sizes=st.lists(st.integers(1, 40), min_size=1, max_size=6),
    target=st.integers(1, 100),
    seed=st.integers(0, 1000),
)
def test_variational_subsample_invariants(sizes, target, seed):
    keys = [f"s{i}" for i, n in enumerate(sizes) for _ in range(n)]
    rng = np.random.default_rng(seed)
    result = variational_subsample(keys, target, rng)
    # positions unique, within bounds; probabilities in (0, 1]
    assert len(set(result.positions.tolist())) == len(result.positions)
    assert (result.positions >= 0).all() and (result.positions < len(keys)).all()
    assert (result.inclusion_probability > 0).all()
    assert (result.inclusion_probability <= 1).all()
    if target < len(keys):
        # every stratum keeps at least one member
        sampled = {keys[p] for p in result.positions}
        assert sampled == set(keys)


# ------------------------------------------------------------------ #
# LRU cache
# ------------------------------------------------------------------ #
@given(
    capacity=st.integers(1, 10),
    accesses=st.lists(st.integers(0, 20), min_size=0, max_size=60),
)
def test_lru_never_exceeds_capacity(capacity, accesses):
    cache = LRUTupleCache(capacity)
    for item in accesses:
        cache.touch(("t", item))
    assert len(cache) <= capacity
    if accesses:
        assert ("t", accesses[-1]) in cache  # most recent always resident


# ------------------------------------------------------------------ #
# embeddings
# ------------------------------------------------------------------ #
@given(tokens=st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=10))
@settings(max_examples=50)
def test_embedding_normalized_and_deterministic(tokens):
    hasher = TokenHasher(dim=16)
    a = hasher.embed(tokens)
    b = TokenHasher(dim=16).embed(tokens)
    assert np.allclose(a, b)
    assert abs(np.linalg.norm(a) - 1.0) < 1e-9


@given(tokens=st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=10))
@settings(max_examples=50)
def test_embedding_order_invariant(tokens):
    hasher = TokenHasher(dim=16)
    assert np.allclose(hasher.embed(tokens), hasher.embed(list(reversed(tokens))))


@given(
    a=st.lists(st.floats(-10, 10), min_size=4, max_size=4),
    b=st.lists(st.floats(-10, 10), min_size=4, max_size=4),
)
def test_cosine_bounded(a, b):
    value = cosine_similarity(np.asarray(a), np.asarray(b))
    assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


# ------------------------------------------------------------------ #
# RL numerics
# ------------------------------------------------------------------ #
@given(logits=st.lists(st.floats(-50, 50), min_size=2, max_size=8))
def test_softmax_is_distribution(logits):
    p = softmax(np.asarray([logits]))
    assert abs(p.sum() - 1.0) < 1e-9
    assert (p >= 0).all()


@given(
    logits=st.lists(st.floats(-20, 20), min_size=3, max_size=8),
    seed=st.integers(0, 100),
)
def test_masked_softmax_zero_outside_mask(logits, seed):
    rng = np.random.default_rng(seed)
    mask = rng.random(len(logits)) < 0.5
    if not mask.any():
        mask[0] = True
    lp = masked_log_softmax(np.asarray([logits]), mask[None, :])
    probs = np.exp(lp[0])
    assert probs[~mask].sum() == 0.0
    assert abs(probs[mask].sum() - 1.0) < 1e-9


@given(
    rewards=st.lists(st.floats(-5, 5), min_size=1, max_size=20),
    gamma=st.floats(0.0, 1.0),
)
def test_discounted_returns_recurrence(rewards, gamma):
    returns = discounted_returns(rewards, gamma)
    for t in range(len(rewards) - 1):
        assert abs(returns[t] - (rewards[t] + gamma * returns[t + 1])) < 1e-6
