"""Cross-process observability for morsel-parallel execution (DESIGN.md §11).

Covers the capture → ship → stitch pipeline end to end: worker-side
``TaskRecorder`` spans arriving in the parent's Chrome trace as distinct
per-pid lanes, worker counters/histograms folded into the parent
registry via ``MetricsRegistry.merge``, the per-query ``QueryStats``
envelope (wall vs cpu, skew, per-worker busy) on ``ResultSet`` and in
EXPLAIN ANALYZE, the pool watchdog (forced hang → cancel → recycle →
byte-identical serial fallback → CRIT health alert), fallback telemetry
events, pool-generation gauges across ``shutdown()``, and the
``repro watch`` ops console.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.db import (
    Database,
    QueryStats,
    execute,
    explain,
    parallel,
    sql,
)
from repro.obs import health, metrics, telemetry, trace
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.watch import render_watch
from repro.obs.worker import TaskRecorder, busy_by_pid, combine_metrics

from tests.test_columnstore import _comparable, make_table

N_ROWS = 6_000


@pytest.fixture(autouse=True)
def clean_obs(monkeypatch):
    """Every test: obs off, empty state, serial workers, no stray hang env."""
    monkeypatch.delenv("REPRO_TEST_HANG_MORSEL", raising=False)
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)

    def scrub():
        obs.disable()
        trace.reset()
        metrics.reset()
        telemetry.reset()
        telemetry.configure(None)
        health.reset()
        parallel.set_workers(0)
        parallel.shutdown()

    scrub()
    yield
    scrub()


@pytest.fixture
def pool4(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_MIN_ROWS", "256")
    parallel.set_workers(4)
    yield


def run_scan(seed=41, where="score > 10 AND city != 'drab'"):
    table = make_table(seed=seed, n=N_ROWS)
    db = Database([table])
    return execute(db, sql(f"SELECT city, score, temp FROM t WHERE {where}"))


# ------------------------------------------------------------------ #
# histogram dumps + registry merge (the ship/stitch transport)
# ------------------------------------------------------------------ #
class TestMetricsMerge:
    def test_dump_merge_same_bounds_is_lossless(self):
        a, b = Histogram(), Histogram()
        for value in (0.001, 0.002, 0.5):
            a.observe(value)
        for value in (0.003, 4.0):
            b.observe(value)
        a.merge_dump(b.dump())
        assert a.total == 5
        assert a.sum == pytest.approx(0.001 + 0.002 + 0.5 + 0.003 + 4.0)
        assert a.min == pytest.approx(0.001) and a.max == pytest.approx(4.0)
        # Bucket-wise add, not re-observation: counts sum exactly.
        reference = Histogram()
        for value in (0.001, 0.002, 0.5, 0.003, 4.0):
            reference.observe(value)
        assert a.counts == reference.counts and a.overflow == reference.overflow

    def test_merge_foreign_bounds_preserves_count_sum_min_max(self):
        a = Histogram()
        b = Histogram(bounds=(1.0, 10.0))
        for value in (2.0, 6.0):
            b.observe(value)
        a.merge_dump(b.dump())
        assert a.total == 2
        assert a.sum == pytest.approx(8.0)
        assert a.min == pytest.approx(2.0) and a.max == pytest.approx(6.0)

    def test_merge_empty_dump_is_noop(self):
        a = Histogram()
        a.observe(1.0)
        a.merge_dump(Histogram().dump())
        assert a.total == 1

    def test_registry_merge_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.add("parallel.worker.rows", 10.0)
        hist = Histogram()
        hist.observe(0.25)
        registry.merge(
            {
                "counters": {"parallel.worker.rows": 5.0, "new.counter": 1.0},
                "gauges": {"pool.size": 4.0},
                "histograms": {"task.seconds": hist.dump()},
            }
        )
        assert registry.counter("parallel.worker.rows") == 15.0
        assert registry.counter("new.counter") == 1.0
        assert registry.gauge("pool.size") == 4.0
        merged = registry.histogram("task.seconds")
        assert merged is not None and merged.total == 1
        assert merged.bounds == DEFAULT_BUCKETS


# ------------------------------------------------------------------ #
# worker-side recorder
# ------------------------------------------------------------------ #
class TestTaskRecorder:
    def test_export_envelope_shape(self):
        recorder = TaskRecorder()
        with recorder.span("parallel.filter_morsel", start=0, stop=100) as sp:
            sp.count("rows_in", 100)
            sp.count("rows_out", 40)
        recorder.add("parallel.worker.morsels")
        recorder.observe("morsel.seconds", 0.01)
        export = recorder.export()
        assert export["pid"] == os.getpid()
        assert export["busy_s"] > 0.0
        (span,) = export["spans"]
        assert span["name"] == "parallel.filter_morsel"
        assert span["counters"]["rows_out"] == 40
        assert export["counters"]["parallel.worker.morsels"] == 1.0
        assert export["histograms"]["morsel.seconds"]["total"] == 1

    def test_combine_and_busy_by_pid(self):
        def record(pid, busy):
            recorder = TaskRecorder()
            recorder.add("parallel.worker.morsels")
            recorder.observe("t", busy)
            export = recorder.export()
            export["pid"], export["busy_s"] = pid, busy
            return export

        records = [record(100, 0.5), record(100, 0.25), record(200, 1.0)]
        combined = combine_metrics(records)
        assert combined["counters"]["parallel.worker.morsels"] == 3.0
        assert combined["histograms"]["t"]["total"] == 3
        assert busy_by_pid(records) == {100: 0.75, 200: 1.0}


# ------------------------------------------------------------------ #
# worker lanes + merged metrics (acceptance: ≥2 distinct pid lanes)
# ------------------------------------------------------------------ #
class TestWorkerLanes:
    def test_chrome_trace_has_worker_lanes_with_morsel_spans(self, pool4):
        obs.enable()
        run_scan()
        doc = trace.chrome_trace()
        worker_pids = {
            event["pid"]
            for event in doc["traceEvents"]
            if event.get("ph") == "X"
            and event["pid"] != 1
            and "morsel" in event["name"]
        }
        assert len(worker_pids) >= 2
        assert os.getpid() not in worker_pids
        # Each lane is labelled as a worker process in the metadata.
        names = {
            event["pid"]: event["args"]["name"]
            for event in doc["traceEvents"]
            if event.get("ph") == "M" and event.get("name") == "process_name"
        }
        assert names[1] == "repro (parent)"
        for pid in worker_pids:
            assert names[pid] == f"repro worker {pid}"

    def test_worker_counters_and_histograms_merged_into_parent(self, pool4):
        obs.enable()
        result = run_scan()
        snap = metrics.snapshot()
        assert snap["counters"]["parallel.worker.morsels"] >= 4
        assert snap["counters"]["parallel.worker.rows"] == N_ROWS
        task_hist = snap["histograms"]["parallel.worker.task.seconds"]
        assert task_hist["count"] == snap["counters"]["parallel.worker.morsels"]
        assert result.stats is not None and result.stats.dispatches >= 1

    def test_trace_reset_clears_worker_lanes(self, pool4):
        obs.enable()
        run_scan()
        assert trace.worker_spans()
        trace.reset()
        assert trace.worker_spans() == []


# ------------------------------------------------------------------ #
# QueryStats envelope
# ------------------------------------------------------------------ #
class TestQueryStats:
    def test_stats_attached_serial(self):
        obs.enable()
        result = run_scan()
        stats = result.stats
        assert isinstance(stats, QueryStats)
        assert stats.wall_seconds > 0.0
        assert stats.rows_scanned == N_ROWS
        assert stats.rows_produced == result.n_rows
        assert stats.dispatches == 0 and stats.worker_busy == {}
        assert stats.skew_ratio == 1.0

    def test_stats_parallel_fields(self, pool4):
        obs.enable()
        result = run_scan()
        stats = result.stats
        assert stats.dispatches >= 1 and stats.morsels >= 4
        assert len(stats.worker_busy) >= 2
        assert stats.worker_busy_seconds == pytest.approx(
            sum(stats.worker_busy.values())
        )
        assert stats.skew_ratio >= 1.0
        # Child CPU is invisible to the parent's process clock, so the
        # envelope folds worker busy time into cpu_seconds.
        assert stats.cpu_seconds >= stats.worker_busy_seconds
        assert result.decode_all().stats is stats

    def test_query_telemetry_event_carries_worker_busy(self, pool4):
        obs.enable()
        run_scan()
        events = [
            r
            for r in telemetry.records("parallel")
            if r.get("event") == "query"
        ]
        assert events
        event = events[-1]
        assert len(event["query"]) == 12  # sha1 fingerprint prefix
        assert event["dispatches"] >= 1
        assert len(event["worker_busy"]) >= 2
        assert event["skew_ratio"] >= 1.0

    def test_explain_analyze_renders_stats_footer(self, pool4):
        obs.enable()
        table = make_table(seed=44, n=N_ROWS)
        db = Database([table])
        plan = explain(db, sql("SELECT city FROM t WHERE score > 10"), analyze=True)
        assert plan.query_stats is not None
        assert plan.query_stats["dispatches"] >= 1
        text = plan.format()
        assert "timing: wall=" in text
        assert "parallel: dispatches=" in text
        assert "skew=" in text

    def test_stats_without_obs_are_not_collected(self, pool4):
        result = run_scan()
        assert result.stats is None


# ------------------------------------------------------------------ #
# fallback + shutdown satellites
# ------------------------------------------------------------------ #
class TestFallbackTelemetry:
    def test_fallback_emits_reason_and_fingerprint(self, pool4):
        obs.enable()
        parallel.begin_query_accounting(fingerprint="deadbeef0123")
        try:
            values = np.asarray(["a"] * N_ROWS, dtype=object)
            query = sql("SELECT city FROM t WHERE city = 'a'")
            assert (
                parallel.maybe_parallel_filter(query.predicate, {"city": values})
                is None
            )
        finally:
            summary = parallel.end_query_accounting()
        assert summary["fallbacks"] == 1
        assert summary["fallback_reasons"] == {"object_dtype": 1}
        (event,) = telemetry.records("parallel")
        assert event["event"] == "fallback"
        assert event["reason"] == "object_dtype"
        assert event["query"] == "deadbeef0123"
        assert metrics.snapshot()["counters"]["parallel.fallbacks.object_dtype"] == 1

    def test_shutdown_marks_pool_gauges(self, pool4):
        obs.enable()
        run_scan()
        snap = metrics.snapshot()["gauges"]
        assert snap["parallel.pool.workers"] == 4.0
        generation = snap["parallel.pool.generation"]
        assert generation >= 1.0
        parallel.shutdown()
        snap = metrics.snapshot()["gauges"]
        assert snap["parallel.pool.workers"] == 0.0
        # Generation survives shutdown so dashboards can count recycles.
        assert snap["parallel.pool.generation"] == generation


# ------------------------------------------------------------------ #
# pool watchdog (acceptance: hung morsel cancelled, serial fallback
# byte-identical, CRIT health alert)
# ------------------------------------------------------------------ #
class TestWatchdog:
    def test_task_timeout_env_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert parallel.task_timeout() == parallel.DEFAULT_TASK_TIMEOUT
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
        assert parallel.task_timeout() == 2.5
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0")
        assert parallel.task_timeout() == 0.0
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "junk")
        assert parallel.task_timeout() == parallel.DEFAULT_TASK_TIMEOUT

    def test_hung_morsel_cancelled_with_identical_serial_fallback(
        self, pool4, monkeypatch
    ):
        obs.enable()
        parallel.set_workers(0)
        reference = run_scan(seed=45)
        parallel.set_workers(4)

        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "1.0")
        monkeypatch.setenv("REPRO_TEST_HANG_MORSEL", "1")
        hung = run_scan(seed=45)
        monkeypatch.delenv("REPRO_TEST_HANG_MORSEL")

        # The query still completed — serially — with identical output.
        assert reference.row_ids.keys() == hung.row_ids.keys()
        for table, ids in reference.row_ids.items():
            np.testing.assert_array_equal(ids, hung.row_ids[table])
        normalize = lambda rows: [
            {key: _comparable(value) for key, value in row.items()} for row in rows
        ]
        assert normalize(reference.to_rows()) == normalize(hung.to_rows())

        snap = metrics.snapshot()
        assert snap["counters"]["parallel.watchdog.timeouts"] == 1
        assert snap["counters"]["parallel.fallbacks.watchdog_timeout"] == 1
        assert hung.stats.watchdog_timeouts == 1
        assert hung.stats.fallback_reasons["watchdog_timeout"] == 1

        # The hung pool was torn down; the health pipeline saw a CRIT.
        assert parallel._POOL is None
        alerts = health.active_monitor().alerts
        assert any(
            a.rule == "parallel.watchdog.hung_task" and a.severity == health.CRIT
            for a in alerts
        )
        events = telemetry.records("parallel")
        timeout_events = [
            r for r in events if r.get("event") == "watchdog_timeout"
        ]
        assert len(timeout_events) == 1
        assert timeout_events[0]["timeout_s"] == 1.0

    def test_pool_recycles_with_new_generation_after_timeout(
        self, pool4, monkeypatch
    ):
        obs.enable()
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "1.0")
        monkeypatch.setenv("REPRO_TEST_HANG_MORSEL", "1")
        run_scan(seed=46)
        monkeypatch.delenv("REPRO_TEST_HANG_MORSEL")
        first_generation = parallel.pool_generation()
        result = run_scan(seed=46)
        assert result.stats.dispatches >= 1  # fresh pool served the query
        assert parallel.pool_generation() == first_generation + 1


# ------------------------------------------------------------------ #
# repro watch
# ------------------------------------------------------------------ #
class TestWatchConsole:
    def _run_dir_with_traffic(self, tmp_path):
        obs.enable()
        telemetry.configure(str(tmp_path / "telemetry.jsonl"))
        run_scan()
        telemetry.emit("query", elapsed_seconds=0.01, n_rows=10)
        metrics.write_json(str(tmp_path / "metrics.json"))
        return str(tmp_path)

    def test_render_watch_frames_parallel_traffic(self, pool4, tmp_path):
        run_dir = self._run_dir_with_traffic(tmp_path)
        frame = render_watch(run_dir)
        assert "worker utilization" in frame
        assert "pid " in frame and "█" in frame
        assert "skew" in frame
        assert "dispatches 1" in frame
        assert "watchdog timeouts 0" in frame
        assert "(no slo.json yet)" in frame
        assert "0 CRIT, 0 WARN" in frame

    def test_render_watch_is_deterministic_for_a_finished_run(
        self, pool4, tmp_path
    ):
        run_dir = self._run_dir_with_traffic(tmp_path)
        assert render_watch(run_dir) == render_watch(run_dir)

    def test_render_watch_empty_dir(self, tmp_path):
        frame = render_watch(str(tmp_path))
        assert "(no query records yet)" in frame
        assert "(no parallel queries yet)" in frame

    def test_cli_watch_once(self, pool4, tmp_path, capsys):
        run_dir = self._run_dir_with_traffic(tmp_path)
        # Scrub module state before re-entering via the CLI path.
        obs.disable()
        from repro.__main__ import main

        assert main(["watch", "--dir", run_dir, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro watch" in out and "worker utilization" in out

    def test_cli_watch_missing_dir(self, tmp_path, capsys):
        assert main_watch_missing(str(tmp_path / "nope"), capsys) != 0


def main_watch_missing(run_dir, capsys):
    from repro.__main__ import main

    status = main(["watch", "--dir", run_dir, "--once"])
    capsys.readouterr()
    return status


# ------------------------------------------------------------------ #
# repro report / stats surface
# ------------------------------------------------------------------ #
class TestReportSurface:
    def test_report_mentions_worker_tasks_and_skew(self, pool4):
        obs.enable()
        run_scan()
        from repro.obs.report import _section_storage

        text = "\n".join(_section_storage(metrics.snapshot(), telemetry.records()))
        assert "worker tasks" in text
        assert "skew" in text
        assert "Last parallel query" in text

    def test_chrome_trace_roundtrips_through_json(self, pool4):
        obs.enable()
        run_scan()
        doc = json.loads(json.dumps(trace.chrome_trace()))
        assert doc["displayTimeUnit"] == "ms"
        assert any(e.get("ph") == "M" for e in doc["traceEvents"])
