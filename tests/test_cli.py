"""Tests for the command-line interface (python -m repro)."""

from pathlib import Path

import pytest

from repro import obs
from repro.__main__ import main

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestCLI:
    def test_demo_runs(self, capsys):
        code = main([
            "demo", "--dataset", "flights", "--scale", "0.12",
            "--k", "100", "--iterations", "2", "--light", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload quality" in out

    def test_train_then_query(self, tmp_path, capsys):
        model_dir = str(tmp_path / "model")
        code = main([
            "train", "--dataset", "flights", "--scale", "0.12",
            "--k", "100", "--iterations", "2", "--light", "--seed", "1",
            "--out", model_dir,
        ])
        assert code == 0
        code = main([
            "query", "--model", model_dir, "--dataset", "flights",
            "--scale", "0.12",
            "--sql", "SELECT * FROM flights WHERE flights.month BETWEEN 1 AND 3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rows from the" in out

    def test_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["demo", "--dataset", "bogus"])

    def test_bench_without_results(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "empty"))
        assert main(["bench"]) == 1

    def test_bench_with_results(self, tmp_path, monkeypatch, capsys):
        directory = tmp_path / "res"
        directory.mkdir()
        (directory / "x.txt").write_text("TABLE CONTENT\n")
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(directory))
        assert main(["bench"]) == 0
        assert "TABLE CONTENT" in capsys.readouterr().out

    def test_help_lists_every_command_with_description(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in ("demo", "train", "query", "bench",
                        "stats", "trace", "lint", "explain", "report"):
            assert command in out
        assert "run the AST lint rule pack" in out
        assert "metrics + telemetry" in out
        assert "span tree" in out
        assert "operator tree" in out
        assert "diagnostic artifact" in out

    def test_unknown_subcommand_exits_2_with_command_list(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        for command in ("demo", "train", "query", "bench",
                        "stats", "trace", "lint", "explain", "report"):
            assert command in err

    def test_lint_subcommand_clean_on_src(self, capsys):
        code = main([
            "lint", str(REPO_ROOT / "src"),
            "--baseline", str(REPO_ROOT / "lint_baseline.json"),
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_lint_subcommand_flags_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("print('x')\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "no-bare-print" in out

    def test_lint_subcommand_json(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text("import torch\n")
        assert main(["lint", str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "forbidden-import"

    def test_explain_estimate_only(self, capsys):
        code = main([
            "explain",
            "SELECT * FROM flights WHERE flights.month BETWEEN 1 AND 3",
            "--dataset", "flights", "--scale", "0.12",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN:")
        assert "scan flights" in out
        assert "est=" in out
        assert "act=" not in out  # nothing was executed

    def test_explain_analyze_prefix_and_flag_agree(self, capsys):
        code = main([
            "explain",
            "EXPLAIN ANALYZE SELECT * FROM flights "
            "WHERE flights.month BETWEEN 1 AND 3",
            "--dataset", "flights", "--scale", "0.12",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN ANALYZE:")
        assert "act=" in out and "q=" in out and "ms" in out

    def test_explain_json_output(self, capsys):
        import json

        code = main([
            "explain", "SELECT * FROM flights LIMIT 5",
            "--dataset", "flights", "--scale", "0.12",
            "--analyze", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["analyze"] is True
        assert payload["plan"]["op"] == "limit"
        assert payload["max_q_error"] >= 1.0

    def test_report_on_empty_run_dir_exits_1(
        self, tmp_path, capsys, monkeypatch
    ):
        # An empty dir used to render a misleading all-empty report;
        # it now fails exactly like stats/trace/top on a missing run.
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "nobench"))
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        code = main(["report", "--dir", str(run_dir)])
        assert code == 1
        assert "no observability run" in capsys.readouterr().out

    def test_report_on_recorded_run(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "nobench"))
        run_dir = tmp_path / "run"
        with obs.run(str(run_dir)):
            with obs.span("cli_test_phase"):
                pass
        code = main(["report", "--dir", str(run_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "report written to" in out
        report = (run_dir / "report.md").read_text()
        assert "# repro diagnostic report" in report
        assert "Slowest traces" in report

    def test_profile_then_top(self, tmp_path, capsys):
        run_dir = tmp_path / "prof"
        code = main([
            "profile", "--dir", str(run_dir), "demo",
            "--dataset", "flights", "--scale", "0.12", "--k", "100",
            "--frame-size", "20", "--iterations", "2", "--light",
            "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "flamegraph" in out
        assert (run_dir / "flamegraph.html").stat().st_size > 0
        assert (run_dir / "profile.collapsed.txt").stat().st_size > 0
        assert (run_dir / "slo.json").stat().st_size > 0
        assert (run_dir / "memory.json").stat().st_size > 0

        code = main(["top", "--dir", str(run_dir), "--once"])
        assert code == 0
        top = capsys.readouterr().out
        assert "SLO burn" in top
        assert "hot functions (self time)" in top
        assert "samples by span" in top

    def test_profile_without_command_exits_2(self, capsys):
        assert main(["profile"]) == 2
        assert "usage: repro profile" in capsys.readouterr().out

    def test_profile_refuses_nesting(self, capsys):
        assert main(["profile", "profile", "demo"]) == 2
        assert "nested" in capsys.readouterr().out

    def test_stats_missing_run_dir_exits_1(self, tmp_path, capsys):
        assert main(["stats", "--dir", str(tmp_path / "nope")]) == 1
        assert "no observability run" in capsys.readouterr().out

    def test_trace_missing_run_dir_exits_1(self, tmp_path, capsys):
        assert main(["trace", "--dir", str(tmp_path / "nope")]) == 1
        assert "no observability run" in capsys.readouterr().out

    def test_top_missing_run_dir_exits_1(self, tmp_path, capsys):
        assert main(["top", "--dir", str(tmp_path / "nope"), "--once"]) == 1
        assert "no observability run" in capsys.readouterr().out

    def test_analyze_missing_run_dir_exits_1(self, tmp_path, capsys):
        assert main(["analyze", "--dir", str(tmp_path / "nope")]) == 1
        assert "no observability run" in capsys.readouterr().out

    def test_diff_missing_run_dir_exits_1(self, tmp_path, capsys):
        assert main([
            "diff", str(tmp_path / "nope_a"), str(tmp_path / "nope_b"),
        ]) == 1
        assert "no observability run" in capsys.readouterr().out

    def _record_traced_run(self, run_dir):
        with obs.run(str(run_dir)):
            with obs.context.ensure(fingerprint="cli"):
                with obs.span("cli_analyze_probe"):
                    pass
                trace_id = obs.context.current_trace_id()
        return trace_id

    def test_analyze_round_trip(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        trace_id = self._record_traced_run(run_dir)
        assert main(["analyze", "--dir", str(run_dir), "--slowest", "1"]) == 0
        out = capsys.readouterr().out
        assert trace_id in out
        assert "critical path:" in out
        assert "tail sampler:" in out

        # prefix lookup resolves the same trace; unknown ids exit 1
        assert main([
            "analyze", "--dir", str(run_dir), "--trace", trace_id[:12],
        ]) == 0
        assert trace_id in capsys.readouterr().out
        assert main([
            "analyze", "--dir", str(run_dir), "--trace", "ffffffff",
        ]) == 1
        assert "not found" in capsys.readouterr().out

    def test_diff_run_against_itself_reports_no_regressions(
        self, tmp_path, capsys
    ):
        run_dir = tmp_path / "run"
        self._record_traced_run(run_dir)
        assert main(["diff", str(run_dir), str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out
        assert "cli_analyze_probe" in out

    def test_trace_corrupt_artifact_exits_1_with_message(
        self, tmp_path, capsys
    ):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "trace.json").write_text("")  # half-written run
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "--dir", str(run_dir)])
        assert excinfo.value.code == 1
        assert "unreadable run artifact" in capsys.readouterr().out

    def test_trace_wrong_shape_artifact_exits_1(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "trace.json").write_text("{}")
        assert main(["trace", "--dir", str(run_dir)]) == 1
        assert "expected a span list" in capsys.readouterr().out

    def test_help_lists_profile_and_top(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "profile" in out
        assert "top" in out

    def test_report_html_out_path(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "nobench"))
        run_dir = tmp_path / "run"
        with obs.run(str(run_dir)):
            pass  # minimal artifacts so the report has a run to read
        out_path = tmp_path / "diag.html"
        code = main([
            "report", "--dir", str(run_dir),
            "--out", str(out_path), "--html",
        ])
        assert code == 0
        assert out_path.read_text().startswith("<!DOCTYPE html>")
