"""Tests for the command-line interface (python -m repro)."""

from pathlib import Path

import pytest

from repro.__main__ import main

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestCLI:
    def test_demo_runs(self, capsys):
        code = main([
            "demo", "--dataset", "flights", "--scale", "0.12",
            "--k", "100", "--iterations", "2", "--light", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload quality" in out

    def test_train_then_query(self, tmp_path, capsys):
        model_dir = str(tmp_path / "model")
        code = main([
            "train", "--dataset", "flights", "--scale", "0.12",
            "--k", "100", "--iterations", "2", "--light", "--seed", "1",
            "--out", model_dir,
        ])
        assert code == 0
        code = main([
            "query", "--model", model_dir, "--dataset", "flights",
            "--scale", "0.12",
            "--sql", "SELECT * FROM flights WHERE flights.month BETWEEN 1 AND 3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rows from the" in out

    def test_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["demo", "--dataset", "bogus"])

    def test_bench_without_results(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "empty"))
        assert main(["bench"]) == 1

    def test_bench_with_results(self, tmp_path, monkeypatch, capsys):
        directory = tmp_path / "res"
        directory.mkdir()
        (directory / "x.txt").write_text("TABLE CONTENT\n")
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(directory))
        assert main(["bench"]) == 0
        assert "TABLE CONTENT" in capsys.readouterr().out

    def test_help_lists_every_command_with_description(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in ("demo", "train", "query", "bench",
                        "stats", "trace", "lint"):
            assert command in out
        assert "run the AST lint rule pack" in out
        assert "metrics + telemetry" in out
        assert "span tree" in out

    def test_unknown_subcommand_exits_2_with_command_list(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        for command in ("demo", "train", "query", "bench",
                        "stats", "trace", "lint"):
            assert command in err

    def test_lint_subcommand_clean_on_src(self, capsys):
        code = main([
            "lint", str(REPO_ROOT / "src"),
            "--baseline", str(REPO_ROOT / "lint_baseline.json"),
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_lint_subcommand_flags_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("print('x')\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "no-bare-print" in out

    def test_lint_subcommand_json(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text("import torch\n")
        assert main(["lint", str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "forbidden-import"
