"""Tests for the command-line interface (python -m repro)."""

from pathlib import Path

import pytest

from repro.__main__ import main

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestCLI:
    def test_demo_runs(self, capsys):
        code = main([
            "demo", "--dataset", "flights", "--scale", "0.12",
            "--k", "100", "--iterations", "2", "--light", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload quality" in out

    def test_train_then_query(self, tmp_path, capsys):
        model_dir = str(tmp_path / "model")
        code = main([
            "train", "--dataset", "flights", "--scale", "0.12",
            "--k", "100", "--iterations", "2", "--light", "--seed", "1",
            "--out", model_dir,
        ])
        assert code == 0
        code = main([
            "query", "--model", model_dir, "--dataset", "flights",
            "--scale", "0.12",
            "--sql", "SELECT * FROM flights WHERE flights.month BETWEEN 1 AND 3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rows from the" in out

    def test_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["demo", "--dataset", "bogus"])

    def test_bench_without_results(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "empty"))
        assert main(["bench"]) == 1

    def test_bench_with_results(self, tmp_path, monkeypatch, capsys):
        directory = tmp_path / "res"
        directory.mkdir()
        (directory / "x.txt").write_text("TABLE CONTENT\n")
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(directory))
        assert main(["bench"]) == 0
        assert "TABLE CONTENT" in capsys.readouterr().out

    def test_help_lists_every_command_with_description(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in ("demo", "train", "query", "bench",
                        "stats", "trace", "lint", "explain", "report"):
            assert command in out
        assert "run the AST lint rule pack" in out
        assert "metrics + telemetry" in out
        assert "span tree" in out
        assert "operator tree" in out
        assert "diagnostic artifact" in out

    def test_unknown_subcommand_exits_2_with_command_list(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        for command in ("demo", "train", "query", "bench",
                        "stats", "trace", "lint", "explain", "report"):
            assert command in err

    def test_lint_subcommand_clean_on_src(self, capsys):
        code = main([
            "lint", str(REPO_ROOT / "src"),
            "--baseline", str(REPO_ROOT / "lint_baseline.json"),
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_lint_subcommand_flags_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("print('x')\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "no-bare-print" in out

    def test_lint_subcommand_json(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text("import torch\n")
        assert main(["lint", str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "forbidden-import"

    def test_explain_estimate_only(self, capsys):
        code = main([
            "explain",
            "SELECT * FROM flights WHERE flights.month BETWEEN 1 AND 3",
            "--dataset", "flights", "--scale", "0.12",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN:")
        assert "scan flights" in out
        assert "est=" in out
        assert "act=" not in out  # nothing was executed

    def test_explain_analyze_prefix_and_flag_agree(self, capsys):
        code = main([
            "explain",
            "EXPLAIN ANALYZE SELECT * FROM flights "
            "WHERE flights.month BETWEEN 1 AND 3",
            "--dataset", "flights", "--scale", "0.12",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN ANALYZE:")
        assert "act=" in out and "q=" in out and "ms" in out

    def test_explain_json_output(self, capsys):
        import json

        code = main([
            "explain", "SELECT * FROM flights LIMIT 5",
            "--dataset", "flights", "--scale", "0.12",
            "--analyze", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["analyze"] is True
        assert payload["plan"]["op"] == "limit"
        assert payload["max_q_error"] >= 1.0

    def test_report_on_empty_run_dir(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "nobench"))
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        code = main(["report", "--dir", str(run_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "report written to" in out
        report = (run_dir / "report.md").read_text()
        assert "# repro diagnostic report" in report
        assert "HEALTHY" in report

    def test_report_html_out_path(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "nobench"))
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        out_path = tmp_path / "diag.html"
        code = main([
            "report", "--dir", str(run_dir),
            "--out", str(out_path), "--html",
        ])
        assert code == 0
        assert out_path.read_text().startswith("<!DOCTYPE html>")
