"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_demo_runs(self, capsys):
        code = main([
            "demo", "--dataset", "flights", "--scale", "0.12",
            "--k", "100", "--iterations", "2", "--light", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload quality" in out

    def test_train_then_query(self, tmp_path, capsys):
        model_dir = str(tmp_path / "model")
        code = main([
            "train", "--dataset", "flights", "--scale", "0.12",
            "--k", "100", "--iterations", "2", "--light", "--seed", "1",
            "--out", model_dir,
        ])
        assert code == 0
        code = main([
            "query", "--model", model_dir, "--dataset", "flights",
            "--scale", "0.12",
            "--sql", "SELECT * FROM flights WHERE flights.month BETWEEN 1 AND 3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rows from the" in out

    def test_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["demo", "--dataset", "bogus"])

    def test_bench_without_results(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "empty"))
        assert main(["bench"]) == 1

    def test_bench_with_results(self, tmp_path, monkeypatch, capsys):
        directory = tmp_path / "res"
        directory.mkdir()
        (directory / "x.txt").write_text("TABLE CONTENT\n")
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(directory))
        assert main(["bench"]) == 0
        assert "TABLE CONTENT" in capsys.readouterr().out
