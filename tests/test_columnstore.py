"""Differential tests for the compressed column store.

Every test here compares the encoded execution path — dictionary codes,
packed ints, code-space predicate rewrites, zone-map pruned scans —
against plain evaluation over fully decoded arrays. The two must agree
exactly: same rows, same order, same values.
"""

import numpy as np
import pytest

from repro.db import (
    INT_NULL,
    Column,
    ColumnType,
    Database,
    DictEncoded,
    IntPacked,
    ResultCache,
    Table,
    TableSchema,
    execute,
    execute_cached,
    sql,
)
from repro.db import expressions as E
from repro.db import statistics as dbstats

CITIES = np.asarray(["", "amber", "blue", "cyan", "drab", "ecru"], dtype=object)

#: WHERE-clause battery: every rewritable atom form, plus combinations.
PREDICATES = [
    "city = 'blue'",
    "city = 'nosuch'",
    "city != 'cyan'",
    "city < 'cyan'",
    "city <= 'blue'",
    "city > 'blue'",
    "city >= 'drab'",
    "city BETWEEN 'amber' AND 'cyan'",
    "city IN ('amber', 'ecru', 'nosuch')",
    "city LIKE 'c%'",
    "city IS NULL",
    "city IS NOT NULL",
    "score > 10",
    "score BETWEEN -20 AND 20",
    "score IS NULL",
    "temp IS NOT NULL",
    "city = 'blue' AND score > 0",
    "city < 'cyan' OR score IS NULL",
    "NOT city = 'blue'",
]


def make_table(seed: int = 0, n: int = 500, name: str = "t") -> Table:
    rng = np.random.default_rng(seed)
    schema = TableSchema(
        name,
        (
            Column("city", ColumnType.STR, nullable=True),
            Column("score", ColumnType.INT, nullable=True),
            Column("temp", ColumnType.FLOAT, nullable=True),
        ),
    )
    city = CITIES[rng.integers(0, len(CITIES), size=n)]
    score = rng.integers(-50, 50, size=n)
    score[rng.random(n) < 0.1] = INT_NULL
    temp = rng.normal(size=n)
    temp[rng.random(n) < 0.1] = np.nan
    return Table(schema, {"city": city, "score": score, "temp": temp})


def plain_context(table: Table) -> dict[str, np.ndarray]:
    return {
        f"{table.name}.{name}": table.column(name)
        for name in table.schema.column_names
    }


def _comparable(value):
    """NaN-safe cell: tuples containing nan must still compare equal."""
    if isinstance(value, float) and np.isnan(value):
        return "NaN"
    return value


def expected_rows(table: Table, predicate: E.Expression) -> list[tuple]:
    mask = predicate.evaluate(plain_context(table))
    decoded = [table.column(name) for name in table.schema.column_names]
    return [
        tuple(_comparable(col[i]) for col in decoded)
        for i in np.flatnonzero(mask)
    ]


def row_tuples(result, refs) -> list[tuple]:
    """ResultSet rows as tuples in *refs* order (to_rows yields dicts)."""
    return [
        tuple(_comparable(row[ref]) for ref in refs) for row in result.to_rows()
    ]


# ------------------------------------------------------------------ #
# storage round trips
# ------------------------------------------------------------------ #
def test_dict_encoding_round_trip():
    values = np.asarray(["b", "", "a", "b", "c", "a"], dtype=object)
    enc = DictEncoded.from_values(values)
    assert enc.codes.dtype == np.int32
    assert list(enc.dictionary) == sorted(set(values))  # sorted dictionary
    np.testing.assert_array_equal(enc.decode(), values)
    taken = enc.take(np.asarray([4, 0, 1]))
    np.testing.assert_array_equal(taken.decode(), values[[4, 0, 1]])


def test_int_packing_round_trip_with_nulls():
    values = np.asarray([100, INT_NULL, 103, 101, INT_NULL], dtype=np.int64)
    packed = IntPacked.from_values(values)
    assert packed is not None
    assert packed.codes.dtype == np.uint8
    np.testing.assert_array_equal(packed.decode(), values)


def test_int_packing_declines_wide_ranges():
    values = np.asarray([0, 2**40], dtype=np.int64)
    assert IntPacked.from_values(values) is None


def test_table_columns_decode_to_original_values():
    table = make_table(seed=1)
    rng = np.random.default_rng(1)
    city = CITIES[rng.integers(0, len(CITIES), size=500)]
    np.testing.assert_array_equal(table.column("city"), city)
    assert table.encoding("city") is not None
    assert table.raw_column("city").dtype == np.int32


def test_compression_stats_report_a_win():
    table = make_table(n=2000)
    stats = table.compression_stats()
    assert stats["encoded_bytes"] < stats["plain_bytes"]
    assert stats["ratio"] > 1.0


def test_encoding_version_changes_per_table_build():
    a = make_table(seed=0)
    b = make_table(seed=0)
    assert a.encoding_version != b.encoding_version


def test_take_preserves_encoding_and_values():
    table = make_table(seed=2)
    positions = np.asarray([5, 3, 400, 3, 0])
    subset = table.take(positions)
    np.testing.assert_array_equal(
        subset.column("city"), table.column("city")[positions]
    )
    np.testing.assert_array_equal(
        subset.column("score"), table.column("score")[positions]
    )
    assert subset.encoding("city") is not None


# ------------------------------------------------------------------ #
# differential execution: encoded vs plain
# ------------------------------------------------------------------ #
@pytest.mark.parametrize("where", PREDICATES)
def test_filters_match_plain_evaluation(where):
    table = make_table(seed=3)
    db = Database([table])
    query = sql(f"SELECT city, score, temp FROM t WHERE {where}")
    result = execute(db, query)
    refs = ["t.city", "t.score", "t.temp"]
    assert row_tuples(result, refs) == expected_rows(table, query.predicate)


@pytest.mark.parametrize("where", PREDICATES)
def test_filters_match_on_large_multiblock_tables(where):
    # Spans many zone-map blocks so partial pruning paths are exercised.
    table = make_table(seed=4, n=20_000)
    db = Database([table])
    query = sql(f"SELECT city, score, temp FROM t WHERE {where}")
    result = execute(db, query)
    refs = ["t.city", "t.score", "t.temp"]
    assert row_tuples(result, refs) == expected_rows(table, query.predicate)


def test_encoded_key_join_matches_nested_loop():
    left = make_table(seed=5, n=120, name="l")
    right = make_table(seed=6, n=90, name="r")
    db = Database([left, right])
    query = sql(
        "SELECT l.city, l.score, r.temp FROM l, r WHERE l.city = r.city"
    )
    result = execute(db, query)
    lc, rc = left.column("city"), right.column("city")
    expected = [
        (
            lc[i],
            left.column("score")[i],
            _comparable(right.column("temp")[j]),
        )
        for i in range(len(left))
        for j in range(len(right))
        if lc[i] == rc[j]
    ]
    actual = row_tuples(result, ["l.city", "l.score", "r.temp"])
    assert sorted(actual, key=repr) == sorted(expected, key=repr)
    assert len(actual) == len(expected)


def test_order_by_on_encoded_column_is_string_order():
    table = make_table(seed=7)
    db = Database([table])
    query = sql("SELECT city FROM t WHERE city IS NOT NULL ORDER BY city")
    result = execute(db, query)
    values = [row["t.city"] for row in result.to_rows()]
    assert values == sorted(values)


def test_null_round_trip_through_projection():
    table = make_table(seed=8)
    db = Database([table])
    result = execute(db, sql("SELECT city, score FROM t WHERE score IS NULL"))
    rows = result.to_rows()
    assert rows and all(row["t.score"] == INT_NULL for row in rows)
    result = execute(db, sql("SELECT city FROM t WHERE city IS NULL"))
    rows = result.to_rows()
    assert rows and all(row["t.city"] == "" for row in rows)


def test_group_by_on_encoded_column_matches_plain_counts():
    from repro.db import execute_aggregate

    table = make_table(seed=9)
    db = Database([table])
    result = execute_aggregate(db, sql("SELECT city, COUNT(*) FROM t GROUP BY city"))
    city = table.column("city")
    expected = {value: int((city == value).sum()) for value in set(city)}
    actual = {
        key[0]: int(next(iter(aggs.values())))
        for key, aggs in result.as_mapping().items()
    }
    assert actual == expected


# ------------------------------------------------------------------ #
# zone maps: pruning must never skip a matching block
# ------------------------------------------------------------------ #
@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("where", PREDICATES)
def test_zone_maps_never_prune_matching_blocks(seed, where):
    block_rows = 64
    table = make_table(seed=seed, n=1500)
    query = sql(f"SELECT city FROM t WHERE {where}")
    zmaps = table.zone_maps(block_rows=block_rows)
    refs = [f"t.{name}" for name in table.schema.column_names]
    rewritten = E.rewrite_for_codes(
        query.predicate, {"t.city": table.dictionary("city")}, refs
    )
    predicate = rewritten if rewritten is not None else query.predicate
    mask = dbstats.zone_map_block_mask(predicate, zmaps.columns, zmaps.n_blocks)
    matches = query.predicate.evaluate(plain_context(table))
    for position in np.flatnonzero(matches):
        assert mask[position // block_rows], (
            f"block {position // block_rows} pruned but row {position} "
            f"matches {where!r}"
        )


def test_explain_analyze_reports_pruned_blocks():
    from repro.db import explain

    table = make_table(seed=10, n=20_000)
    db = Database([table])
    plan = explain(
        db, sql("SELECT city FROM t WHERE score BETWEEN 0 AND 5"), analyze=True
    )
    details = [
        node.detail for node in plan.operators() if "blocks_total" in node.detail
    ]
    assert details, "scan node must report zone-map block counts"
    assert details[0]["blocks_total"] > 0
    assert "blocks=" in plan.format()


# ------------------------------------------------------------------ #
# result cache: encoding version keys invalidation
# ------------------------------------------------------------------ #
def test_result_cache_hits_and_invalidates_on_rebuild():
    table = make_table(seed=11)
    db = Database([table])
    query = sql("SELECT city, score FROM t WHERE score > 0")
    cache = ResultCache(capacity=8)
    first = execute_cached(db, query, cache)
    again = execute_cached(db, query, cache)
    assert again is first
    assert cache.hits == 1 and cache.misses == 1

    db.replace_table(make_table(seed=11))
    rebuilt = execute_cached(db, query, cache)
    assert rebuilt is not first
    assert cache.misses == 2
    assert rebuilt.to_rows() == first.to_rows()


def test_result_cache_evicts_lru():
    table = make_table(seed=12)
    db = Database([table])
    cache = ResultCache(capacity=2)
    for bound in (0, 1, 2):
        execute_cached(db, sql(f"SELECT city FROM t WHERE score > {bound}"), cache)
    assert len(cache) == 2
    assert cache.evictions == 1
