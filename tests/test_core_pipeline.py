"""Tests for preprocess, trainer, inference and agent expansion.

These run the real pipeline on the tiny IMDB bundle with very small RL
settings — they verify wiring and invariants, not learning quality (the
benchmarks cover that).
"""

import numpy as np
import pytest

from repro.core import (
    ASQPAgent,
    ASQPConfig,
    ASQPTrainer,
    CoverageTracker,
    generate_approximation_set,
    preprocess,
    provenance_rows,
)
from repro.db import execute, sql


def _tiny_config(**overrides):
    defaults = dict(
        memory_budget=80,
        n_iterations=3,
        n_actors=2,
        episodes_per_actor=1,
        action_space_target=50,
        n_query_representatives=6,
        n_candidate_rollouts=2,
        learning_rate=1e-3,
        seed=7,
    )
    defaults.update(overrides)
    return ASQPConfig(**defaults)


@pytest.fixture(scope="module")
def trained(tiny_imdb):
    config = _tiny_config()
    return ASQPTrainer(tiny_imdb.db, tiny_imdb.workload, config).train()


class TestProvenance:
    def test_single_table_provenance(self, mini_db):
        rows = provenance_rows(mini_db, sql("SELECT * FROM movies WHERE movies.genre = 'drama'"))
        assert rows == [(("movies", 0),), (("movies", 2),), (("movies", 5),)]

    def test_join_provenance_pairs(self, mini_db):
        rows = provenance_rows(
            mini_db,
            sql("SELECT * FROM movies, cast_info WHERE movies.id = cast_info.movie_id "
                "AND cast_info.actor = 'ann'"),
        )
        assert all(len(row) == 2 for row in rows)
        tables = {key[0] for row in rows for key in row}
        assert tables == {"cast_info", "movies"}

    def test_provenance_distinct(self, mini_db):
        rows = provenance_rows(mini_db, sql("SELECT movies.genre FROM movies"))
        assert len(rows) == 6  # provenance-distinct even if values repeat


class TestPreprocess:
    def test_outputs_consistent(self, tiny_imdb):
        config = _tiny_config()
        prep = preprocess(tiny_imdb.db, tiny_imdb.workload, config)
        assert prep.n_representatives <= 6
        assert len(prep.coverages) == prep.n_representatives
        assert len(prep.representative_embeddings) == prep.n_representatives
        assert len(prep.action_space) > 0
        assert prep.action_space.embeddings.shape == (
            len(prep.action_space), config.embedding_dim,
        )
        assert abs(prep.representative_weights.sum() - 1.0) < 1e-9
        assert set(prep.timings) >= {
            "stats", "query_preprocessing", "execute_relaxed",
            "build_action_space", "coverage",
        }

    def test_action_tuples_exist_in_database(self, tiny_imdb):
        prep = preprocess(tiny_imdb.db, tiny_imdb.workload, _tiny_config())
        for action in list(prep.action_space)[:20]:
            for table_name, row_id in action.keys:
                table = tiny_imdb.db.table(table_name)
                assert row_id in set(table.row_ids.tolist())

    def test_training_fraction_limits_queries(self, tiny_imdb):
        config = _tiny_config(training_fraction=0.3)
        prep = preprocess(tiny_imdb.db, tiny_imdb.workload, config)
        expected = max(2, int(round(len(tiny_imdb.workload) * 0.3)))
        assert len(prep.training_queries) == expected

    def test_deterministic_given_seed(self, tiny_imdb):
        a = preprocess(tiny_imdb.db, tiny_imdb.workload, _tiny_config())
        b = preprocess(tiny_imdb.db, tiny_imdb.workload, _tiny_config())
        assert [q.name for q in a.representatives] == [q.name for q in b.representatives]
        assert len(a.action_space) == len(b.action_space)


class TestTrainer:
    def test_history_recorded(self, trained):
        assert 1 <= len(trained.history) <= 3
        record = trained.history[0]
        assert record.iteration == 0
        assert np.isfinite(record.policy_loss)

    def test_setup_time_positive(self, trained):
        assert trained.setup_seconds > 0

    def test_approximation_set_respects_budget(self, trained):
        approx = trained.approximation_set()
        assert 0 < approx.total_size() <= 80

    def test_requested_size_override(self, trained):
        approx = trained.approximation_set(requested_size=30)
        assert approx.total_size() <= 30

    def test_approximation_database_queryable(self, trained, tiny_imdb):
        db = trained.approximation_database()
        result = execute(db, sql("SELECT * FROM title"))
        assert len(result) <= 80

    def test_training_scores_in_unit_interval(self, trained):
        scores = trained.training_scores()
        assert len(scores) == len(trained.coverages)
        assert ((scores >= 0) & (scores <= 1)).all()

    def test_early_stopping(self, tiny_imdb):
        config = _tiny_config(
            n_iterations=30, early_stopping_patience=1,
            early_stopping_min_delta=100.0,  # impossible improvement
        )
        model = ASQPTrainer(tiny_imdb.db, tiny_imdb.workload, config).train()
        assert len(model.history) <= 3


class TestInference:
    def test_greedy_deterministic(self, trained):
        a = generate_approximation_set(
            trained.agent.actor, trained.action_space, trained.config, greedy=True
        )
        b = generate_approximation_set(
            trained.agent.actor, trained.action_space, trained.config, greedy=True
        )
        assert a.keys() == b.keys()

    def test_sampled_respects_budget(self, trained, rng):
        approx = generate_approximation_set(
            trained.agent.actor, trained.action_space, trained.config,
            requested_size=25, rng=rng, greedy=False,
        )
        assert approx.total_size() <= 25

    def test_mismatched_space_rejected(self, trained, tiny_imdb):
        from repro.core import Action, ActionSpace

        bogus = ActionSpace([Action(keys=(("title", 0),))], embedding_dim=8)
        with pytest.raises(ValueError, match="does not match"):
            generate_approximation_set(trained.agent.actor, bogus, trained.config)

    def test_invalid_size_rejected(self, trained):
        with pytest.raises(ValueError):
            generate_approximation_set(
                trained.agent.actor, trained.action_space, trained.config,
                requested_size=0,
            )


class TestAgentExpansion:
    def test_expand_preserves_old_behaviour_shape(self, rng):
        config = _tiny_config()
        agent = ASQPAgent(10, config, rng)
        old_weights = agent.actor.net.weights[0].copy()
        agent.expand_action_space(15)
        assert agent.actor.n_actions == 15
        assert np.allclose(agent.actor.net.weights[0][:10, :], old_weights)
        if agent.critic is not None:
            assert agent.critic.net.layer_sizes[0] == 15

    def test_expand_noop_same_size(self, rng):
        agent = ASQPAgent(10, _tiny_config(), rng)
        weights_before = agent.actor.net.weights[0]
        agent.expand_action_space(10)
        assert agent.actor.net.weights[0] is weights_before

    def test_shrink_rejected(self, rng):
        agent = ASQPAgent(10, _tiny_config(), rng)
        with pytest.raises(ValueError, match="shrink"):
            agent.expand_action_space(5)


class TestFineTune:
    def test_fine_tune_extends_model(self, tiny_imdb):
        config = _tiny_config(fine_tune_iterations=2)
        model = ASQPTrainer(tiny_imdb.db, tiny_imdb.workload, config).train()
        n_cov = len(model.coverages)
        n_actions = len(model.action_space)
        new_query = sql("SELECT * FROM person WHERE person.gender = 'f'")
        model.fine_tune([new_query])
        assert len(model.coverages) == n_cov + 1
        assert len(model.action_space) >= n_actions
        assert model.agent.n_actions == len(model.action_space)
        assert model.fine_tune_count == 1

    def test_fine_tune_empty_noop(self, trained):
        count = trained.fine_tune_count
        trained.fine_tune([])
        assert trained.fine_tune_count == count


class TestCalibratedScale:
    def test_scale_at_least_one(self, trained):
        scale = trained.calibrated_count_scale()
        assert scale >= 1.0  # a subset can never contain more than the data

    def test_default_when_no_ratios(self, trained):
        # Force the no-ratio path by temporarily blanking the reps.
        reps = trained.preprocessed.representatives
        trained.preprocessed.representatives = []
        try:
            assert trained.calibrated_count_scale(default=7.5) == 7.5
        finally:
            trained.preprocessed.representatives = reps
