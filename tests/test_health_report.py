"""Tests for the training health monitor and the fused diagnostic report."""

import json
import math

import pytest

from repro import obs
from repro.bench.reporting import config_hash, run_provenance, save_results
from repro.core import ASQPConfig, ASQPSession, ASQPTrainer
from repro.obs import metrics, telemetry, trace
from repro.obs.health import (
    CRIT,
    WARN,
    HealthMonitor,
    HealthThresholds,
    active_monitor,
    replay,
)
from repro.obs.report import build_report, markdown_to_html, render_markdown


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    trace.reset()
    metrics.reset()
    telemetry.reset()
    telemetry.configure(None)
    from repro.obs import health

    health.reset()
    yield
    obs.disable()
    trace.reset()
    metrics.reset()
    telemetry.reset()
    telemetry.configure(None)
    health.reset()


def _update(iteration=0, **overrides):
    """A healthy train.update record; override fields to trip rules."""
    record = {
        "iteration": iteration,
        "mean_episode_reward": 0.5,
        "policy_loss": -0.01,
        "value_loss": 0.2,
        "entropy": 3.0,
        "kl_divergence": 0.01,
        "clip_fraction": 0.1,
        "explained_variance": 0.3,
        "grad_norm": 1.0,
    }
    record.update(overrides)
    return record


# ------------------------------------------------------------------ #
# individual rules
# ------------------------------------------------------------------ #
class TestHealthRules:
    def test_healthy_run_stays_quiet(self):
        monitor = HealthMonitor()
        for i in range(8):
            assert monitor.observe_update(_update(i)) == []
        assert monitor.worst_severity() is None

    def test_non_finite_is_crit(self):
        monitor = HealthMonitor()
        alerts = monitor.observe_update(_update(policy_loss=math.nan))
        assert [a.severity for a in alerts] == [CRIT]
        assert alerts[0].rule == "non_finite"

    def test_kl_warn_then_crit(self):
        monitor = HealthMonitor()
        warn = monitor.observe_update(_update(kl_divergence=0.7))
        crit = monitor.observe_update(_update(kl_divergence=2.5))
        assert [a.severity for a in warn] == [WARN]
        assert [a.severity for a in crit] == [CRIT]
        assert all(a.rule == "kl_spike" for a in warn + crit)

    def test_clip_saturation_levels(self):
        monitor = HealthMonitor()
        assert monitor.observe_update(_update(clip_fraction=0.6))[0].severity == WARN
        assert monitor.observe_update(_update(clip_fraction=0.95))[0].severity == CRIT

    def test_entropy_collapse_vs_initial(self):
        monitor = HealthMonitor()
        assert monitor.observe_update(_update(entropy=4.0)) == []
        # 1% of the initial entropy → collapse warning.
        alerts = monitor.observe_update(_update(entropy=0.04))
        assert [a.rule for a in alerts] == ["entropy_collapse"]
        assert alerts[0].severity == WARN

    def test_grad_norm_spike_needs_window(self):
        monitor = HealthMonitor()
        # Below min_window no relative rule can fire, even for a big jump.
        assert monitor.observe_update(_update(grad_norm=100.0)) == []
        monitor = HealthMonitor()
        for i in range(3):
            monitor.observe_update(_update(i, grad_norm=1.0))
        warn = monitor.observe_update(_update(3, grad_norm=20.0))
        crit = monitor.observe_update(_update(4, grad_norm=500.0))
        assert [a.rule for a in warn] == ["grad_norm_spike"]
        assert warn[0].severity == WARN
        assert any(a.severity == CRIT and a.rule == "grad_norm_spike" for a in crit)

    def test_critic_useless_window_mean(self):
        monitor = HealthMonitor()
        alerts = []
        for i in range(3):
            alerts += monitor.observe_update(_update(i, explained_variance=-0.9))
        assert any(a.rule == "critic_useless" for a in alerts)

    def test_reward_collapse(self):
        monitor = HealthMonitor()
        for i, reward in enumerate([0.1, 0.9, 1.0]):
            monitor.observe_update(_update(i, mean_episode_reward=reward))
        alerts = monitor.observe_update(_update(3, mean_episode_reward=0.2))
        assert [a.rule for a in alerts] == ["reward_collapse"]

    def test_calibration_warn(self):
        monitor = HealthMonitor()
        alerts = []
        for _ in range(3):
            alerts += monitor.observe_calibration(0.95, 0.1)
        assert any(a.rule == "estimator_miscalibrated" for a in alerts)
        assert all(a.severity == WARN for a in alerts)

    def test_well_calibrated_is_quiet(self):
        monitor = HealthMonitor()
        for _ in range(10):
            assert monitor.observe_calibration(0.8, 0.75) == []

    def test_drift_is_informational_warn(self):
        monitor = HealthMonitor()
        alerts = monitor.observe_drift(
            {"pending_count": 3, "mean_deviation": 0.91}
        )
        assert [a.severity for a in alerts] == [WARN]
        assert "0.91" in alerts[0].message

    def test_counts_and_summary(self):
        monitor = HealthMonitor()
        monitor.observe_update(_update(kl_divergence=2.5))
        monitor.observe_update(_update(kl_divergence=0.7))
        assert monitor.counts() == {WARN: 1, CRIT: 1}
        assert monitor.worst_severity() == CRIT
        summary = monitor.summary()
        assert summary["worst"] == CRIT
        assert len(summary["alerts"]) == 2
        json.dumps(summary)  # JSON-ready

    def test_alerts_land_in_telemetry_and_metrics(self):
        obs.enable()
        monitor = HealthMonitor()
        monitor.observe_update(_update(kl_divergence=2.5))
        records = telemetry.records("health")
        assert len(records) == 1
        assert records[0]["severity"] == CRIT
        assert records[0]["rule"] == "kl_spike"
        assert metrics.snapshot()["counters"]["health.alerts.crit"] == 1

    def test_custom_thresholds(self):
        monitor = HealthMonitor(HealthThresholds(kl_warn=0.001, kl_crit=0.005))
        assert monitor.observe_update(_update())[0].severity == CRIT

    def test_active_monitor_singleton_reset(self):
        from repro.obs import health

        first = active_monitor()
        assert active_monitor() is first
        health.reset()
        assert active_monitor() is not first


# ------------------------------------------------------------------ #
# replay over recorded telemetry
# ------------------------------------------------------------------ #
class TestReplay:
    def test_replay_derives_same_alerts(self):
        records = [
            {"stream": "train.update", **_update(0, kl_divergence=2.5)},
            {"stream": "train.update", **_update(1)},
            {"stream": "log", "event": "noise"},
            {
                "stream": "query",
                "confidence": 0.9,
                "realized_frame_score": 0.85,
            },
            {"stream": "drift", "pending_count": 3, "mean_deviation": 0.9},
        ]
        monitor = replay(records)
        rules = [a.rule for a in monitor.alerts]
        assert rules == ["kl_spike", "interest_drift"]
        assert monitor.worst_severity() == CRIT

    def test_replay_flags_drifted_query_rows(self):
        records = [{
            "stream": "query",
            "confidence": 0.5,
            "realized_frame_score": 0.5,
            "drift": True,
        }]
        monitor = replay(records)
        assert [a.rule for a in monitor.alerts] == ["interest_drift"]

    def test_replay_empty(self):
        assert replay([]).worst_severity() is None


# ------------------------------------------------------------------ #
# end to end: destabilized PPO must trip a CRIT alert
# ------------------------------------------------------------------ #
class TestTrainingHealthEndToEnd:
    def _train(self, tmp_path, learning_rate):
        from repro.datasets import load_flights

        run_dir = str(tmp_path / "run")
        with obs.run(run_dir):
            bundle = load_flights(scale=0.12, n_queries=6, n_aggregate_queries=2)
            config = ASQPConfig.light(
                memory_budget=120, frame_size=20, n_iterations=3,
                learning_rate=learning_rate, seed=0,
            )
            model = ASQPTrainer(bundle.db, bundle.workload, config).train()
            monitor = active_monitor()
            session = ASQPSession(model, auto_fine_tune=False)
            for query in list(bundle.workload)[:2]:
                session.query(query)
        return run_dir, monitor

    def test_destabilized_run_emits_crit(self, tmp_path):
        """lr x100 blows up the KL; the monitor must flag the run CRIT."""
        run_dir, monitor = self._train(tmp_path, learning_rate=1e-3 * 100)
        assert monitor.worst_severity() == CRIT
        # The CRIT alerts are on the persisted telemetry stream too.
        records = telemetry.load_jsonl(f"{run_dir}/telemetry.jsonl")
        crits = [
            r for r in records
            if r["stream"] == "health" and r["severity"] == CRIT
        ]
        assert len(crits) >= 1
        assert any(r["rule"] == "kl_spike" for r in crits)

    def test_stable_run_stays_crit_free(self, tmp_path):
        _, monitor = self._train(tmp_path, learning_rate=1e-3)
        assert monitor.counts()[CRIT] == 0


# ------------------------------------------------------------------ #
# the fused report
# ------------------------------------------------------------------ #
@pytest.fixture
def recorded_run(tmp_path):
    """A synthetic run directory covering every telemetry stream."""
    run_dir = str(tmp_path / "run")
    with obs.run(run_dir):
        with trace.span("train"):
            with trace.span("train.update"):
                pass
        for i, kl in enumerate([0.01, 2.5, 0.02]):
            telemetry.emit("train.update", **_update(i, kl_divergence=kl))
        telemetry.emit(
            "query",
            sql="SELECT * FROM t",
            used_approximation=True,
            confidence=0.9,
            realized_frame_score=0.8,
            rows=12,
            drift=False,
        )
        telemetry.emit(
            "plan",
            sql="SELECT a | b FROM t",  # pipe must survive the markdown table
            total_seconds=0.01,
            max_q_error=1.5,
            operators=[
                {"op": "scan", "label": "t", "estimated_rows": 10,
                 "actual_rows": 8, "q_error": 1.25, "seconds": 0.001},
            ],
        )
        metrics.add("session.queries")
        metrics.observe("executor.join.q_error", 1.3)
    return run_dir


class TestReport:
    def test_markdown_sections(self, recorded_run, tmp_path):
        bench_dir = str(tmp_path / "bench")
        markdown = render_markdown(recorded_run, bench_dir=bench_dir)
        for heading in (
            "# repro diagnostic report",
            "## Run summary",
            "## Health alerts",
            "## Training trajectory",
            "## Query plans",
            "## Queries & estimator calibration",
            "## Metrics",
            "## Hottest spans",
            "## Bench trajectory",
        ):
            assert heading in markdown
        # The replayed monitor found the KL spike in the recorded updates.
        assert "CRIT" in markdown
        assert "kl_spike" in markdown
        assert "executor.join.q_error" in markdown

    def test_build_report_writes_markdown(self, recorded_run):
        path = build_report(recorded_run)
        assert path.endswith("report.md")
        with open(path) as handle:
            assert "# repro diagnostic report" in handle.read()

    def test_build_report_html_self_contained(self, recorded_run):
        path = build_report(recorded_run, html=True)
        assert path.endswith("report.html")
        with open(path) as handle:
            html = handle.read()
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html          # inline CSS, nothing fetched
        assert "http://" not in html and "https://" not in html
        assert "<table>" in html
        # The escaped pipe in the plan SQL renders back as a literal pipe.
        assert "SELECT a | b FROM t" in html

    def test_report_on_empty_dir(self, tmp_path):
        empty = str(tmp_path / "nothing")
        import os

        os.makedirs(empty)
        markdown = render_markdown(empty, bench_dir=str(tmp_path / "nobench"))
        assert "No `train.update` records" in markdown
        assert "HEALTHY" in markdown

    def test_bench_trajectory_includes_provenance(self, recorded_run, tmp_path, monkeypatch):
        bench_dir = tmp_path / "bench"
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(bench_dir))
        save_results("fig9", {"value": 1.0}, duration_seconds=2.5)
        markdown = render_markdown(recorded_run, bench_dir=str(bench_dir))
        assert "fig9" in markdown
        assert "2.5" in markdown

    def test_markdown_to_html_escapes(self):
        html = markdown_to_html("## A <b>title\n\n- item `x<1`\n")
        assert "&lt;b&gt;" in html
        assert "<code>x&lt;1</code>" in html


# ------------------------------------------------------------------ #
# bench provenance
# ------------------------------------------------------------------ #
class TestProvenance:
    def test_run_provenance_fields(self):
        provenance = run_provenance(duration_seconds=1.23456)
        assert set(provenance) == {
            "git_sha", "bench_scale", "config_hash", "duration_seconds"
        }
        assert provenance["duration_seconds"] == 1.2346
        assert provenance["git_sha"]  # short sha or "unknown", never empty
        assert len(provenance["config_hash"]) == 12

    def test_duration_optional(self):
        assert "duration_seconds" not in run_provenance()

    def test_config_hash_stable(self):
        assert config_hash() == config_hash()

    def test_save_results_embeds_provenance(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_results("exp", {"rows": [1, 2]}, duration_seconds=0.5)
        with open(path) as handle:
            record = json.load(handle)
        assert record["experiment"] == "exp"
        assert record["provenance"]["duration_seconds"] == 0.5
        assert record["provenance"]["config_hash"] == config_hash()
