"""Tests for the observability subsystem (repro.obs).

Covers the tracing spans (nesting, exception safety, thread-locality),
the metrics registry (counters, gauges, histogram percentiles, reset),
the telemetry streams (JSONL round-trip), the cache statistics hooks,
and one end-to-end run: ``ASQPSystem.fit`` + queries under an enabled
observability run must produce a well-formed trace tree and a telemetry
JSONL whose ``train.update`` rows match ``UpdateStats`` fields.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.core import ASQPConfig, ASQPSystem
from repro.db.cache import LRUTupleCache
from repro.obs import metrics, telemetry, trace


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends disabled with empty state."""
    obs.disable()
    trace.reset()
    metrics.reset()
    telemetry.reset()
    telemetry.configure(None)
    yield
    obs.disable()
    trace.reset()
    metrics.reset()
    telemetry.reset()
    telemetry.configure(None)


# ------------------------------------------------------------------ #
# spans
# ------------------------------------------------------------------ #
class TestSpans:
    def test_disabled_span_is_falsy_noop(self):
        sp = trace.span("anything", attr=1)
        assert not sp
        with sp:
            sp.set(x=2)
            sp.count("rows", 5)
        assert trace.roots() == []
        assert trace.current() is None

    def test_nesting_builds_a_tree(self):
        obs.enable()
        with trace.span("outer", level=0) as outer:
            with trace.span("inner_a") as inner:
                inner.count("rows", 3)
                inner.count("rows", 4)
            with trace.span("inner_b"):
                pass
        roots = trace.roots()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert outer.children[0].counters["rows"] == 7.0
        assert outer.attrs == {"level": 0}
        assert outer.duration_s >= sum(c.duration_s for c in outer.children) >= 0

    def test_current_tracks_the_active_span(self):
        obs.enable()
        assert trace.current() is None
        with trace.span("a"):
            assert trace.current().name == "a"
            with trace.span("b"):
                assert trace.current().name == "b"
            assert trace.current().name == "a"
        assert trace.current() is None

    def test_exception_records_error_and_unwinds(self):
        obs.enable()
        with pytest.raises(ValueError, match="boom"):
            with trace.span("outer"):
                with trace.span("failing"):
                    raise ValueError("boom")
        (root,) = trace.roots()
        assert root.name == "outer"
        assert root.error and "boom" in root.error
        child = root.children[0]
        assert child.name == "failing"
        assert "ValueError" in child.error
        # The stack fully unwound: new spans are roots again.
        with trace.span("after"):
            pass
        assert [r.name for r in trace.roots()] == ["outer", "after"]

    def test_thread_local_stacks_do_not_interleave(self):
        obs.enable()
        barrier = threading.Barrier(2)
        errors: list[str] = []

        def worker(label: str) -> None:
            try:
                with trace.span(f"{label}.outer"):
                    barrier.wait(timeout=5)
                    with trace.span(f"{label}.inner"):
                        assert trace.current().name == f"{label}.inner"
                    barrier.wait(timeout=5)
            except Exception as exc:  # surface in the main thread
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=worker, args=(name,), name=name)
            for name in ("t1", "t2")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert errors == []
        roots = {r.name: r for r in trace.roots()}
        assert set(roots) == {"t1.outer", "t2.outer"}
        for label in ("t1", "t2"):
            assert [c.name for c in roots[f"{label}.outer"].children] == [
                f"{label}.inner"
            ]
            assert roots[f"{label}.outer"].thread_name == label

    def test_root_cap_keeps_latest(self):
        obs.enable()
        for i in range(trace.MAX_ROOTS + 10):
            with trace.span(f"s{i}"):
                pass
        roots = trace.roots()
        assert len(roots) == trace.MAX_ROOTS
        assert roots[-1].name == f"s{trace.MAX_ROOTS + 9}"

    def test_tree_and_chrome_export(self, tmp_path):
        obs.enable()
        with trace.span("parent", table="flights") as sp:
            sp.count("rows_out", 12)
            with trace.span("child"):
                pass
        tree = trace.tree()
        assert tree[0]["name"] == "parent"
        assert tree[0]["attrs"] == {"table": "flights"}
        assert tree[0]["children"][0]["name"] == "child"
        json.dumps(tree)  # JSON-serializable

        chrome = trace.chrome_trace()
        # Duration events plus one process_name metadata record for the
        # parent lane (worker lanes add theirs per pid; DESIGN.md §11).
        events = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in events} == {"parent", "child"}
        for event in events:
            assert event["dur"] >= 0
            assert event["pid"] == 1
        metadata = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        assert any(
            e["name"] == "process_name" and e["args"]["name"] == "repro (parent)"
            for e in metadata
        )
        parent = next(e for e in events if e["name"] == "parent")
        assert parent["args"]["rows_out"] == 12

        path = tmp_path / "chrome.json"
        trace.write_chrome_trace(str(path))
        assert json.loads(path.read_text())["traceEvents"]

    def test_format_tree_renders_depth_limited(self):
        obs.enable()
        with trace.span("a"):
            with trace.span("b"):
                with trace.span("c"):
                    pass
        text = trace.format_tree(max_depth=1)
        assert "a" in text and "b" in text and "c" not in text


# ------------------------------------------------------------------ #
# metrics
# ------------------------------------------------------------------ #
class TestMetrics:
    def test_disabled_helpers_are_noops(self):
        metrics.add("x")
        metrics.set_gauge("g", 5.0)
        metrics.observe("h", 0.1)
        snap = metrics.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_counters_gauges_accumulate(self):
        obs.enable()
        metrics.add("queries")
        metrics.add("queries", 2)
        metrics.set_gauge("reward", 0.25)
        metrics.set_gauge("reward", 0.75)
        snap = metrics.snapshot()
        assert snap["counters"]["queries"] == 3.0
        assert snap["gauges"]["reward"] == 0.75

    def test_histogram_percentiles(self):
        h = metrics.Histogram()
        values = np.linspace(0.001, 0.1, 1000)  # 1ms..100ms uniform
        for v in values:
            h.observe(float(v))
        assert h.total == 1000
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(0.1)
        # Bucket interpolation: percentiles are approximate but ordered
        # and inside the right decade.
        p50, p95, p99 = h.percentile(50), h.percentile(95), h.percentile(99)
        assert 0.001 <= p50 <= p95 <= p99 <= 0.1
        assert 0.02 <= p50 <= 0.08
        assert p99 >= 0.07

    def test_histogram_empty_and_overflow(self):
        h = metrics.Histogram(bounds=(1.0, 10.0))
        assert np.isnan(h.percentile(50))
        h.observe(100.0)  # beyond the last bound
        assert h.overflow == 1
        assert h.percentile(50) == 100.0
        assert h.snapshot()["count"] == 1

    def test_histogram_single_sample_percentiles(self):
        h = metrics.Histogram()
        h.observe(0.042)
        # One sample: every percentile is that sample (min==max clamps
        # the in-bucket interpolation).
        for q in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert h.percentile(q) == pytest.approx(0.042)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["mean"] == pytest.approx(0.042)
        assert snap["p50"] == snap["p99"] == pytest.approx(0.042)

    def test_histogram_all_equal_samples(self):
        h = metrics.Histogram()
        for _ in range(100):
            h.observe(0.25)
        assert h.min == h.max == 0.25
        for q in (1.0, 50.0, 99.0):
            assert h.percentile(q) == pytest.approx(0.25)

    def test_histogram_empty_snapshot_is_all_none(self):
        snap = metrics.Histogram().snapshot()
        assert snap["count"] == 0
        for key in ("min", "max", "mean", "p50", "p95", "p99"):
            assert snap[key] is None

    def test_registry_reset_and_snapshot_shape(self):
        obs.enable()
        metrics.add("c")
        metrics.observe("h", 0.5)
        snap = metrics.snapshot()
        assert set(snap["histograms"]["h"]) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
        }
        metrics.reset()
        assert metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_jsonl_export(self, tmp_path):
        obs.enable()
        metrics.add("a.calls", 4)
        metrics.set_gauge("a.gauge", 1.5)
        metrics.observe("a.seconds", 0.25)
        path = tmp_path / "metrics.jsonl"
        metrics.write_jsonl(str(path))
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        kinds = {(l["kind"], l["name"]) for l in lines}
        assert kinds == {
            ("counter", "a.calls"),
            ("gauge", "a.gauge"),
            ("histogram", "a.seconds"),
        }


# ------------------------------------------------------------------ #
# telemetry
# ------------------------------------------------------------------ #
class TestTelemetry:
    def test_disabled_emit_is_dropped(self):
        telemetry.emit("query", rows=1)
        assert telemetry.records() == []

    def test_emit_records_and_filters(self):
        obs.enable()
        telemetry.emit("query", rows=1)
        telemetry.emit("train.update", iteration=0)
        telemetry.emit("query", rows=2)
        assert len(telemetry.records()) == 3
        rows = [r["rows"] for r in telemetry.records("query")]
        assert rows == [1, 2]
        seqs = [r["seq"] for r in telemetry.records()]
        assert seqs == sorted(seqs)

    def test_jsonl_sink_and_roundtrip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        telemetry.configure(str(path))
        obs.enable()
        telemetry.emit("query", rows=3, sql="SELECT 1")
        telemetry.emit("log", event="hello")
        loaded = telemetry.load_jsonl(str(path))
        assert [r["stream"] for r in loaded] == ["query", "log"]
        assert loaded[0]["rows"] == 3
        # write_jsonl dumps the in-memory copy identically.
        dump = tmp_path / "dump.jsonl"
        telemetry.write_jsonl(str(dump))
        assert telemetry.load_jsonl(str(dump)) == loaded


# ------------------------------------------------------------------ #
# cache statistics
# ------------------------------------------------------------------ #
class TestCacheStats:
    def test_cache_stats_accessor(self):
        cache = LRUTupleCache(capacity=2)
        cache.touch(("t", 1))
        cache.touch(("t", 1))
        cache.touch(("t", 2))
        cache.touch(("t", 3))  # evicts ("t", 1)
        stats = cache.cache_stats()
        assert stats["hits"] == 1.0
        assert stats["misses"] == 3.0
        assert stats["evictions"] == 1.0
        assert stats["size"] == 2.0
        assert stats["hit_rate"] == pytest.approx(0.25)

    def test_cache_publishes_metrics_when_enabled(self):
        obs.enable()
        cache = LRUTupleCache(capacity=2)
        cache.touch_many([("t", 1), ("t", 2), ("t", 1)])  # dedup: 2 misses
        cache.touch(("t", 1))
        snap = metrics.snapshot()
        assert snap["counters"]["cache.hits"] == 1.0
        assert snap["counters"]["cache.misses"] == 2.0
        assert snap["gauges"]["cache.size"] == 2.0

    def test_cache_counters_not_published_when_disabled(self):
        cache = LRUTupleCache(capacity=2)
        cache.touch(("t", 1))
        assert metrics.snapshot()["counters"] == {}
        # Native counters still work.
        assert cache.misses == 1


# ------------------------------------------------------------------ #
# end to end
# ------------------------------------------------------------------ #
class TestEndToEnd:
    def test_fit_and_query_produce_trace_and_telemetry(self, tmp_path, tiny_flights):
        from repro.rl.ppo import UpdateStats

        run_dir = tmp_path / "run"
        config = ASQPConfig(
            memory_budget=100,
            n_iterations=3,
            n_actors=2,
            episodes_per_actor=1,
            action_space_target=60,
            n_query_representatives=8,
            n_candidate_rollouts=2,
            learning_rate=1e-3,
            seed=21,
        )
        with obs.run(str(run_dir)) as run_path:
            session = ASQPSystem(config).fit(
                tiny_flights.db, tiny_flights.workload, auto_fine_tune=False
            )
            for query in list(tiny_flights.workload)[:3]:
                outcome = session.query(query)
                assert outcome.elapsed_seconds >= 0
        paths = {
            "telemetry": str(run_dir / obs.TELEMETRY_FILE),
            "trace": str(run_dir / obs.TRACE_FILE),
            "chrome_trace": str(run_dir / obs.CHROME_TRACE_FILE),
            "metrics": str(run_dir / obs.METRICS_FILE),
        }
        assert run_path == str(run_dir)

        # --- trace tree: training root span with nested phases -------- #
        with open(paths["trace"]) as handle:
            tree = json.load(handle)
        names = {node["name"] for node in tree}
        assert "train" in names
        train = next(node for node in tree if node["name"] == "train")
        child_names = [c["name"] for c in train.get("children", [])]
        assert "train.preprocess" in child_names
        assert "train.loop" in child_names
        loop = next(c for c in train["children"] if c["name"] == "train.loop")
        grandchildren = {c["name"] for c in loop.get("children", [])}
        assert {"train.rollout", "train.update"} <= grandchildren
        # Session queries traced too, with executor operators below them.
        session_spans = [n for n in tree if n["name"] == "session.query"]
        assert len(session_spans) == 3
        flat: list[dict] = []

        def walk(node):
            flat.append(node)
            for child in node.get("children", []):
                walk(child)

        for node in tree:
            walk(node)
        executor_spans = [n for n in flat if n["name"] == "execute"]
        assert executor_spans and all(
            n.get("seconds", -1) >= 0 for n in executor_spans
        )

        # --- chrome trace is loadable and non-empty ------------------- #
        with open(paths["chrome_trace"]) as handle:
            chrome = json.load(handle)
        duration_events = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert len(duration_events) == len(flat)

        # --- telemetry JSONL: train.update rows match UpdateStats ----- #
        records = telemetry.load_jsonl(paths["telemetry"])
        updates = [r for r in records if r["stream"] == "train.update"]
        assert len(updates) == len(session.model.history)
        stats_fields = set(UpdateStats.__dataclass_fields__) - {"n_samples"}
        for row, record in zip(updates, session.model.history):
            assert stats_fields <= set(row)
            assert row["iteration"] == record.iteration
            assert row["mean_episode_reward"] == pytest.approx(
                record.mean_episode_reward
            )
            assert row["kl_divergence"] == pytest.approx(record.kl_divergence)
            assert row["clip_fraction"] == pytest.approx(record.clip_fraction)
            assert row["n_samples"] == record.n_samples > 0
            assert row["steps_per_second"] > 0

        # --- per-query outcome rows ----------------------------------- #
        outcomes = [r for r in records if r["stream"] == "query"]
        assert len(outcomes) == 3
        for row in outcomes:
            assert 0.0 <= row["confidence"] <= 1.0
            assert 0.0 <= row["realized_frame_score"] <= 1.0
            assert row["rows"] >= 0
            assert isinstance(row["used_approximation"], bool)

        # --- metrics snapshot landed on disk --------------------------- #
        with open(paths["metrics"]) as handle:
            snap = json.load(handle)
        assert snap["counters"]["session.queries"] == 3.0
        assert snap["counters"]["train.iterations"] == len(session.model.history)
        assert "executor.query.seconds" in snap["histograms"]

        # finish_run disabled everything again.
        assert not obs.is_enabled()

    def test_run_training_loop_returns_records(self, tiny_flights):
        from repro.core.trainer import ASQPTrainer

        config = ASQPConfig(
            memory_budget=80,
            n_iterations=2,
            n_actors=1,
            episodes_per_actor=1,
            action_space_target=40,
            n_query_representatives=6,
            learning_rate=1e-3,
            seed=3,
        )
        model = ASQPTrainer(tiny_flights.db, tiny_flights.workload, config).train()
        assert model.history, "training must record iteration history"
        for record in model.history:
            assert record.n_samples > 0
            assert record.rollout_seconds > 0
            assert record.update_seconds > 0
            assert record.steps_per_second > 0
