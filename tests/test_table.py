"""Unit tests for repro.db.table."""

import numpy as np
import pytest

from repro.db import Column, ColumnType, SchemaError, Table, TableSchema, table_from_rows


class TestConstruction:
    def test_basic(self, movies):
        assert len(movies) == 6
        assert movies.name == "movies"
        assert list(movies.row_ids) == [0, 1, 2, 3, 4, 5]

    def test_missing_column_rejected(self, movie_schema):
        with pytest.raises(SchemaError, match="missing"):
            Table(movie_schema, {"id": [1]})

    def test_extra_column_rejected(self, movie_schema):
        with pytest.raises(SchemaError, match="unknown"):
            Table(
                movie_schema,
                {
                    "id": [1], "title": ["x"], "year": [2000],
                    "rating": [5.0], "genre": ["g"], "bogus": [0],
                },
            )

    def test_ragged_columns_rejected(self, movie_schema):
        with pytest.raises(SchemaError, match="expected"):
            Table(
                movie_schema,
                {
                    "id": [1, 2], "title": ["x"], "year": [2000],
                    "rating": [5.0], "genre": ["g"],
                },
            )

    def test_row_id_length_mismatch_rejected(self, movie_schema):
        with pytest.raises(SchemaError, match="row ids"):
            Table(
                movie_schema,
                {
                    "id": [1], "title": ["x"], "year": [2000],
                    "rating": [5.0], "genre": ["g"],
                },
                row_ids=np.asarray([0, 1]),
            )

    def test_columns_read_only(self, movies):
        with pytest.raises(ValueError):
            movies.column("year")[0] = 1234


class TestAccess:
    def test_row(self, movies):
        row = movies.row(1)
        assert row["title"] == "Beta"
        assert row["year"] == 2005

    def test_row_out_of_range(self, movies):
        with pytest.raises(IndexError):
            movies.row(10)

    def test_rows_iterates_all(self, movies):
        assert len(list(movies.rows())) == 6

    def test_column_unknown(self, movies):
        with pytest.raises(SchemaError):
            movies.column("nope")


class TestDerivation:
    def test_take_preserves_row_ids(self, movies):
        sub = movies.take(np.asarray([3, 1]))
        assert list(sub.row_ids) == [3, 1]
        assert list(sub.column("title")) == ["Delta", "Beta"]

    def test_filter_mask(self, movies):
        sub = movies.filter_mask(movies.column("year") > 2006)
        assert set(sub.column("title")) == {"Gamma", "Delta", "Zeta"}

    def test_filter_mask_length_check(self, movies):
        with pytest.raises(ValueError, match="mask length"):
            movies.filter_mask(np.asarray([True]))

    def test_subset_by_row_ids(self, movies):
        sub = movies.subset_by_row_ids([0, 5])
        assert list(sub.column("title")) == ["Alpha", "Zeta"]

    def test_subset_of_subset_keeps_base_ids(self, movies):
        mid = movies.take(np.asarray([2, 3, 4]))
        sub = mid.subset_by_row_ids([3])
        assert list(sub.row_ids) == [3]
        assert list(sub.column("title")) == ["Delta"]

    def test_subset_with_unknown_ids_is_empty_selection(self, movies):
        sub = movies.subset_by_row_ids([99])
        assert len(sub) == 0

    def test_head(self, movies):
        assert len(movies.head(2)) == 2
        assert len(movies.head(100)) == 6

    def test_take_empty(self, movies):
        sub = movies.take(np.asarray([], dtype=np.int64))
        assert len(sub) == 0
        assert sub.schema is movies.schema


class TestFromRows:
    def test_round_trip(self, movie_schema, movies):
        rebuilt = table_from_rows(movie_schema, list(movies.rows()))
        assert len(rebuilt) == len(movies)
        assert list(rebuilt.column("title")) == list(movies.column("title"))

    def test_missing_key_rejected(self, movie_schema):
        with pytest.raises(SchemaError, match="missing column"):
            table_from_rows(movie_schema, [{"id": 1}])


class TestDisplay:
    def test_to_text_contains_header_and_rows(self, movies):
        text = movies.to_text(limit=2)
        assert "title" in text
        assert "Alpha" in text
        assert "more rows" in text


class TestHtmlRepr:
    def test_table_html(self, movies):
        html = movies._repr_html_()
        assert "<table>" in html and "movies — 6 rows" in html
        assert "Alpha" in html

    def test_escaping(self, movie_schema):
        from repro.db import Table

        table = Table(movie_schema, {
            "id": [1], "title": ["<script>"], "year": [2000],
            "rating": [1.0], "genre": ["a&b"],
        })
        html = table._repr_html_()
        assert "&lt;script&gt;" in html
        assert "a&amp;b" in html

    def test_result_set_html(self, mini_db):
        from repro.db import execute, sql

        html = execute(mini_db, sql("SELECT movies.title FROM movies"))._repr_html_()
        assert "movies.title" in html

    def test_aggregate_html(self, mini_db):
        from repro.db import execute_aggregate, sql

        result = execute_aggregate(
            mini_db, sql("SELECT genre, COUNT(*) FROM movies GROUP BY genre")
        )
        html = result._repr_html_()
        assert "count(*)" in html and "3 groups" in html
