"""Unit tests for repro.db.statistics, repro.db.sampling and repro.db.cache."""

import numpy as np
import pytest

from repro.db import (
    LRUTupleCache,
    compute_database_stats,
    compute_table_stats,
    stratified_table_sample,
    uniform_sample,
    variational_subsample,
)
from repro.db.sampling import reservoir_sample
from repro.db.statistics import column_selectivity


class TestStatistics:
    def test_numeric_stats(self, movies):
        stats = compute_table_stats(movies)
        year = stats.numeric["year"]
        assert year.minimum == 1999 and year.maximum == 2020
        assert year.count == 6 and year.n_null == 0
        assert 0.5 in year.quantiles

    def test_categorical_stats(self, movies):
        stats = compute_table_stats(movies)
        genre = stats.categorical["genre"]
        assert genre.n_distinct == 3
        assert genre.frequencies["drama"] == 3
        assert genre.top_values(1) == ["drama"]

    def test_weighted_sampling_prefers_popular(self, movies, rng):
        stats = compute_table_stats(movies)
        picks = stats.categorical["genre"].sample_weighted(rng, 300)
        counts = {v: picks.count(v) for v in set(picks)}
        assert counts["drama"] > counts.get("scifi", 0)

    def test_database_stats_covers_all_tables(self, mini_db):
        stats = compute_database_stats(mini_db)
        assert set(stats) == {"movies", "cast_info"}

    def test_column_selectivity(self, movies):
        assert column_selectivity(movies, "genre", "drama") == pytest.approx(0.5)
        assert column_selectivity(movies, "year", 2005) == pytest.approx(2 / 6)

    def test_value_range(self, movies):
        stats = compute_table_stats(movies)
        assert stats.numeric["year"].value_range == 21


class TestUniformSample:
    def test_size_clipped(self, rng):
        positions = uniform_sample(5, 10, rng)
        assert len(positions) == 5

    def test_no_replacement(self, rng):
        positions = uniform_sample(100, 50, rng)
        assert len(set(positions.tolist())) == 50

    def test_empty_inputs(self, rng):
        assert len(uniform_sample(0, 5, rng)) == 0
        assert len(uniform_sample(5, 0, rng)) == 0

    def test_sorted_output(self, rng):
        positions = uniform_sample(100, 20, rng)
        assert list(positions) == sorted(positions)


class TestReservoirSample:
    def test_size(self, rng):
        assert len(reservoir_sample(range(100), 10, rng)) == 10

    def test_short_stream(self, rng):
        assert reservoir_sample(range(3), 10, rng) == [0, 1, 2]

    def test_coverage_roughly_uniform(self):
        rng = np.random.default_rng(7)
        hits = np.zeros(20)
        for _ in range(400):
            for item in reservoir_sample(range(20), 5, rng):
                hits[item] += 1
        assert hits.min() > 50  # expected 100 each

class TestVariationalSubsample:
    def test_full_keep_when_target_large(self, rng):
        result = variational_subsample(["a"] * 5, 10, rng)
        assert len(result) == 5
        assert (result.inclusion_probability == 1.0).all()

    def test_every_stratum_represented(self, rng):
        keys = ["a"] * 100 + ["b"] * 3 + ["c"] * 1
        result = variational_subsample(keys, 20, rng)
        sampled_keys = {keys[p] for p in result.positions}
        assert sampled_keys == {"a", "b", "c"}

    def test_rare_strata_over_represented(self, rng):
        keys = ["big"] * 1000 + ["small"] * 10
        result = variational_subsample(keys, 100, rng)
        small = sum(1 for p in result.positions if keys[p] == "small")
        # Proportional share would be ~1; sqrt allocation gives more.
        assert small >= 2

    def test_inclusion_probabilities_match_quota(self, rng):
        keys = ["a"] * 50 + ["b"] * 50
        result = variational_subsample(keys, 20, rng)
        for position, probability in zip(result.positions, result.inclusion_probability):
            assert 0 < probability <= 1

    def test_empty(self, rng):
        assert len(variational_subsample([], 10, rng)) == 0

    def test_positions_unique(self, rng):
        keys = list("aabbccddee") * 10
        result = variational_subsample(keys, 30, rng)
        assert len(set(result.positions.tolist())) == len(result.positions)


class TestStratifiedTableSample:
    def test_uniform_mode(self, movies, rng):
        sample = stratified_table_sample(movies, None, 3, rng)
        assert len(sample) == 3

    def test_stratified_keeps_all_strata(self, movies, rng):
        sample = stratified_table_sample(movies, "genre", 3, rng)
        assert set(sample.column("genre")) == {"drama", "action", "scifi"}


class TestLRUCache:
    def test_capacity_enforced(self):
        cache = LRUTupleCache(capacity=2)
        cache.touch(("t", 1))
        cache.touch(("t", 2))
        cache.touch(("t", 3))
        assert len(cache) == 2
        assert ("t", 1) not in cache
        assert cache.evictions == 1

    def test_lru_order(self):
        cache = LRUTupleCache(capacity=2)
        cache.touch(("t", 1))
        cache.touch(("t", 2))
        cache.touch(("t", 1))  # refresh 1; 2 becomes LRU
        cache.touch(("t", 3))
        assert ("t", 1) in cache
        assert ("t", 2) not in cache

    def test_hit_accounting(self):
        cache = LRUTupleCache(capacity=3)
        assert not cache.touch(("t", 1))
        assert cache.touch(("t", 1))
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_touch_many_dedupes(self):
        cache = LRUTupleCache(capacity=5)
        hits = cache.touch_many([("t", 1), ("t", 1), ("t", 2)])
        assert hits == 0
        assert len(cache) == 2

    def test_contents_grouped(self):
        cache = LRUTupleCache(capacity=5)
        cache.touch_many([("b", 2), ("a", 9), ("a", 3)])
        assert cache.contents() == {"a": [3, 9], "b": [2]}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUTupleCache(capacity=0)
