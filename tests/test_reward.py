"""Unit tests for repro.core.reward (incremental coverage tracking).

The central invariant: the tracker's incremental score must equal the
score computed by executing queries on the materialized sub-database.
"""

import numpy as np
import pytest

from repro.core import (
    ApproximationSet,
    CoverageTracker,
    QueryCoverage,
    build_coverage,
    score,
)
from repro.datasets import Workload
from repro.db import sql


@pytest.fixture
def coverages():
    # Query A needs rows (t,0),(t,1); query B needs joined pairs.
    return [
        QueryCoverage(
            name="A", weight=0.5, denominator=2,
            requirements=[(("t", 0),), (("t", 1),)],
        ),
        QueryCoverage(
            name="B", weight=0.5, denominator=2,
            requirements=[(("t", 0), ("u", 7)), (("t", 2), ("u", 8))],
        ),
    ]


class TestCoverageTracker:
    def test_initially_zero(self, coverages):
        tracker = CoverageTracker(coverages)
        assert tracker.batch_score() == 0.0

    def test_single_tuple_partial(self, coverages):
        tracker = CoverageTracker(coverages)
        tracker.add_key(("t", 0))
        assert tracker.query_score(0) == 0.5
        assert tracker.query_score(1) == 0.0  # join partner missing

    def test_join_requirement_needs_all_keys(self, coverages):
        tracker = CoverageTracker(coverages)
        tracker.add_key(("t", 0))
        tracker.add_key(("u", 7))
        assert tracker.query_score(1) == 0.5

    def test_full_coverage(self, coverages):
        tracker = CoverageTracker(coverages)
        tracker.add_keys([("t", 0), ("t", 1), ("t", 2), ("u", 7), ("u", 8)])
        assert tracker.batch_score() == pytest.approx(1.0)

    def test_remove_reverses_add(self, coverages):
        tracker = CoverageTracker(coverages)
        tracker.add_keys([("t", 0), ("u", 7)])
        before = tracker.batch_score()
        tracker.add_key(("t", 1))
        tracker.remove_key(("t", 1))
        assert tracker.batch_score() == pytest.approx(before)

    def test_refcounted_duplicates(self, coverages):
        tracker = CoverageTracker(coverages)
        tracker.add_key(("t", 0))
        tracker.add_key(("t", 0))
        tracker.remove_key(("t", 0))
        assert tracker.query_score(0) == 0.5  # still present once
        tracker.remove_key(("t", 0))
        assert tracker.query_score(0) == 0.0

    def test_remove_absent_is_noop(self, coverages):
        tracker = CoverageTracker(coverages)
        tracker.remove_key(("t", 99))
        assert tracker.batch_score() == 0.0

    def test_irrelevant_key_no_effect(self, coverages):
        tracker = CoverageTracker(coverages)
        tracker.add_key(("zzz", 1))
        assert tracker.batch_score() == 0.0

    def test_reset(self, coverages):
        tracker = CoverageTracker(coverages)
        tracker.add_keys([("t", 0), ("t", 1)])
        tracker.reset()
        assert tracker.batch_score() == 0.0
        tracker.add_key(("t", 0))
        assert tracker.query_score(0) == 0.5

    def test_batch_score_subset_renormalizes(self, coverages):
        tracker = CoverageTracker(coverages)
        tracker.add_keys([("t", 0), ("t", 1)])
        assert tracker.batch_score([0]) == pytest.approx(1.0)
        assert tracker.batch_score([1]) == pytest.approx(0.0)

    def test_empty_query_scores_one(self):
        tracker = CoverageTracker(
            [QueryCoverage(name="empty", weight=1.0, denominator=0)]
        )
        assert tracker.batch_score() == pytest.approx(1.0)

    def test_score_with_keys_preserves_state(self, coverages):
        tracker = CoverageTracker(coverages)
        tracker.add_keys([("t", 0)])
        before = tracker.batch_score()
        probe = tracker.score_with_keys([("t", 0), ("t", 1), ("t", 2), ("u", 7), ("u", 8)])
        assert probe == pytest.approx(1.0)
        assert tracker.batch_score() == pytest.approx(before)

    def test_denominator_caps_coverage(self):
        coverage = QueryCoverage(
            name="big", weight=1.0, denominator=2,
            requirements=[(("t", i),) for i in range(10)],
        )
        tracker = CoverageTracker([coverage])
        tracker.add_keys([("t", 0), ("t", 1)])
        assert tracker.batch_score() == pytest.approx(1.0)


class TestTrackerMatchesExecution:
    """Incremental coverage == executing the query on the sub-database."""

    QUERIES = [
        "SELECT * FROM movies WHERE movies.genre = 'drama'",
        "SELECT * FROM movies WHERE movies.year > 2004",
        "SELECT movies.title, cast_info.actor FROM movies, cast_info "
        "WHERE movies.id = cast_info.movie_id AND cast_info.actor = 'ann'",
    ]

    @pytest.mark.parametrize("selection", [
        {"movies": [0, 1], "cast_info": [0, 2]},
        {"movies": [0, 1, 2, 3, 4, 5], "cast_info": [0, 1, 2, 3, 4, 5, 6]},
        {"movies": [3]},
        {},
    ])
    def test_equivalence(self, mini_db, selection, rng):
        queries = [sql(text) for text in self.QUERIES]
        workload = Workload(queries)
        coverages = [
            build_coverage(mini_db, q, 1.0 / len(queries), frame_size=50, rng=rng)
            for q in queries
        ]
        tracker = CoverageTracker(coverages)
        approx = ApproximationSet.from_mapping(selection)
        tracker.add_keys(approx.keys())
        executed = score(mini_db, approx.to_database(mini_db), workload, frame_size=50)
        assert tracker.batch_score() == pytest.approx(executed, abs=1e-9)
