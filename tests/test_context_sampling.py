"""Request-scoped causal tracing: context, exemplars, tail sampling.

Covers the identity pipeline end to end (DESIGN.md §13):

* :mod:`repro.obs.context` — trace ids, activation, wire round trip;
* trace-id stamping into spans, telemetry records, ``QueryStats`` and
  the EXPLAIN ANALYZE footer, including across the fork-pool boundary
  (worker spans from ≥2 pids stitched under the originating trace);
* metric exemplars — capture under an active context, bounded per
  bucket, and a merge algebra (``Histogram.merge_dump``) that is
  commutative and associative so cross-process merges are order-free;
* the tail sampler — watchdog/fallback traces are never head-dropped
  and outlive eviction pressure, accounting is exact;
* deterministic ``telemetry.load_run`` ordering across rotated parts
  with colliding timestamps;
* ``Histogram.percentile`` interpolating inside the winning bucket
  rather than returning the bucket edge.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import obs
from repro.db import Database, execute, explain, parallel, sql
from repro.obs import context, metrics, sampling, slo, telemetry, trace
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    EXEMPLARS_PER_BUCKET,
    Histogram,
)
from repro.obs.sampling import TailSampler

from tests.test_columnstore import _comparable, make_table

N_ROWS = 6_000


@pytest.fixture(autouse=True)
def clean_obs(monkeypatch):
    monkeypatch.delenv("REPRO_TEST_HANG_MORSEL", raising=False)
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)

    def scrub():
        obs.disable()
        trace.reset()
        metrics.reset()
        telemetry.reset()
        telemetry.configure(None)
        sampling.clear()
        slo.clear()
        parallel.set_workers(0)
        parallel.shutdown()

    scrub()
    yield
    scrub()


def run_scan(seed=41, where="score > 10 AND city != 'drab'"):
    table = make_table(seed=seed, n=N_ROWS)
    db = Database([table])
    return execute(db, sql(f"SELECT city, score, temp FROM t WHERE {where}"))


def normalize(rows):
    return [
        {key: _comparable(value) for key, value in row.items()}
        for row in rows
    ]


# ------------------------------------------------------------------ #
# context basics
# ------------------------------------------------------------------ #
class TestRequestContext:
    def test_trace_ids_are_128_bit_hex_and_unique(self):
        ids = {context.new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 32 and int(i, 16) >= 0 for i in ids)

    def test_activation_is_scoped(self):
        assert context.current() is None
        request = context.new_context(fingerprint="abc", tenant="t0")
        with context.activate(request):
            assert context.current() is request
            assert context.current_trace_id() == request.trace_id
        assert context.current() is None
        assert context.current_trace_id() is None

    def test_wire_round_trip(self):
        request = context.new_context(fingerprint="fp", extra=1)
        with context.activate(request):
            wire = context.current_wire()
        revived = context.RequestContext.from_wire(wire)
        assert revived.trace_id == request.trace_id
        assert revived.baggage == {"fingerprint": "fp", "extra": 1}

    def test_ensure_reuses_active_context_without_clobbering(self):
        outer = context.new_context(fingerprint="outer")
        with context.activate(outer):
            with context.ensure(fingerprint="inner", hop=2) as inner:
                assert inner is outer
                assert inner.baggage["fingerprint"] == "outer"
                assert inner.baggage["hop"] == 2
        with context.ensure(fingerprint="fresh") as fresh:
            assert fresh is not outer
            assert fresh.baggage["fingerprint"] == "fresh"

    def test_span_ids_increment_within_trace(self):
        request = context.new_context()
        first, second = request.next_span_id(), request.next_span_id()
        assert first != second
        assert int(second, 16) == int(first, 16) + 1


# ------------------------------------------------------------------ #
# trace-id stamping: spans and telemetry
# ------------------------------------------------------------------ #
class TestStamping:
    def test_spans_carry_trace_and_span_ids_under_context(self):
        obs.enable()
        request = context.new_context()
        with context.activate(request):
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
        roots = trace.tree()
        root = roots[-1]
        assert root["trace_id"] == request.trace_id
        assert root["children"][0]["trace_id"] == request.trace_id
        assert root["span_id"] != root["children"][0]["span_id"]

    def test_spans_outside_context_have_no_trace_id(self):
        obs.enable()
        with trace.span("anon"):
            pass
        assert "trace_id" not in trace.tree()[-1]

    def test_telemetry_records_stamped_with_trace_id(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        telemetry.configure(path)
        obs.enable()
        request = context.new_context()
        with context.activate(request):
            telemetry.emit("probe", value=1)
        telemetry.emit("probe", value=2)
        records = telemetry.load_run(path)
        assert records[0]["trace_id"] == request.trace_id
        assert "trace_id" not in records[1]

    def test_query_stats_and_explain_footer_carry_trace_id(self):
        obs.enable()
        table = make_table(seed=7, n=512)
        db = Database([table])
        plan = explain(db, sql("SELECT city FROM t WHERE score > 10"),
                       analyze=True)
        trace_id = plan.query_stats.get("trace_id")
        assert trace_id and len(trace_id) == 32
        assert f"trace: {trace_id}" in plan.format()

    def test_stats_trace_id_absent_when_disabled(self):
        table = make_table(seed=7, n=512)
        db = Database([table])
        result = execute(db, sql("SELECT city FROM t WHERE score > 10"))
        assert result.stats is None or result.stats.trace_id is None


# ------------------------------------------------------------------ #
# metric exemplars
# ------------------------------------------------------------------ #
class TestExemplars:
    def test_observe_captures_exemplar_only_under_context(self):
        obs.enable()
        metrics.observe("lat", 0.5)
        hist = metrics.registry().histogram("lat")
        assert hist.worst_exemplars() == []
        request = context.new_context()
        with context.activate(request):
            metrics.observe("lat", 0.7)
        worst = hist.worst_exemplars()
        assert [e["trace_id"] for e in worst] == [request.trace_id]
        assert worst[0]["value"] == 0.7

    def test_bucket_reservoir_keeps_largest_values(self):
        hist = Histogram(bounds=(1.0, 10.0))
        for i in range(10):
            # all land in the same bucket; ids encode the value
            hist.observe(2.0 + i * 0.1, trace_id=f"{i:032x}", ts=float(i))
        bucket = hist.exemplars[1]
        assert len(bucket) == EXEMPLARS_PER_BUCKET
        kept = sorted(value for value, _, _ in bucket)
        assert kept == [pytest.approx(2.8), pytest.approx(2.9)]

    def test_snapshot_shape_unchanged_by_exemplars(self):
        hist = Histogram()
        hist.observe(0.5, trace_id="ab" * 16, ts=1.0)
        assert set(hist.snapshot()) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
        }

    def _random_histogram(self, rng, bounds=DEFAULT_BUCKETS):
        hist = Histogram(bounds)
        for _ in range(rng.randrange(0, 30)):
            value = 10.0 ** rng.uniform(-6, 2)
            if rng.random() < 0.7:
                hist.observe(value, trace_id=f"{rng.getrandbits(128):032x}",
                             ts=rng.random())
            else:
                hist.observe(value)
        return hist

    @staticmethod
    def _canon(hist):
        dump = hist.dump()
        dump["exemplars"] = {
            key: sorted(map(tuple, bucket))
            for key, bucket in (dump.get("exemplars") or {}).items()
        }
        dump["sum"] = pytest.approx(dump["sum"])
        return dump

    def test_merge_dump_with_exemplars_is_commutative(self):
        rng = random.Random(1234)
        for _ in range(25):
            a, b = self._random_histogram(rng), self._random_histogram(rng)
            ab, ba = Histogram(), Histogram()
            ab.merge_dump(a.dump()); ab.merge_dump(b.dump())
            ba.merge_dump(b.dump()); ba.merge_dump(a.dump())
            assert self._canon(ab) == self._canon(ba)

    def test_merge_dump_with_exemplars_is_associative(self):
        rng = random.Random(99)
        for _ in range(25):
            parts = [self._random_histogram(rng) for _ in range(3)]
            left, right = Histogram(), Histogram()
            # (a + b) + c
            inner = Histogram()
            inner.merge_dump(parts[0].dump())
            inner.merge_dump(parts[1].dump())
            left.merge_dump(inner.dump())
            left.merge_dump(parts[2].dump())
            # a + (b + c)
            inner = Histogram()
            inner.merge_dump(parts[1].dump())
            inner.merge_dump(parts[2].dump())
            right.merge_dump(parts[0].dump())
            right.merge_dump(inner.dump())
            assert self._canon(left) == self._canon(right)

    def test_foreign_ladder_merge_rebuckets_exemplars(self):
        foreign = Histogram(bounds=(0.5, 5.0))
        foreign.observe(2.0, trace_id="cd" * 16, ts=3.0)
        ours = Histogram()
        ours.merge_dump(foreign.dump())
        worst = ours.worst_exemplars()
        assert worst and worst[0]["trace_id"] == "cd" * 16


# ------------------------------------------------------------------ #
# satellite pins: percentile interpolation, load_run ordering
# ------------------------------------------------------------------ #
class TestPercentileInterpolation:
    def test_single_sample_returns_the_sample_not_the_bucket_edge(self):
        hist = Histogram()
        hist.observe(0.012)  # 12ms; bucket upper bound is ~0.0316
        for q in (50.0, 95.0, 99.0):
            assert hist.percentile(q) == pytest.approx(0.012)
            assert hist.percentile(q) not in DEFAULT_BUCKETS

    def test_interpolates_inside_winning_bucket(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (1.2, 1.4, 1.6, 1.8):  # all in the (1, 2] bucket
            hist.observe(value)
        p50 = hist.percentile(50.0)
        assert 1.0 < p50 < 2.0
        assert p50 == pytest.approx(1.5)
        assert hist.percentile(100.0) == pytest.approx(1.8)

    def test_clamped_into_observed_min_max(self):
        hist = Histogram(bounds=(10.0,))
        hist.observe(3.0)
        hist.observe(4.0)
        assert 3.0 <= hist.percentile(50.0) <= 4.0


class TestLoadRunOrdering:
    def test_colliding_timestamps_across_rotation_stay_stable(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        # Tiny byte cap: every record rotates into its own part file.
        telemetry.configure(path, max_bytes=1, max_files=8)
        obs.enable()
        for seq in range(4):
            telemetry.emit("probe", ts=100.0, seq=seq)  # colliding ts
        telemetry.configure(None)
        first = telemetry.load_run(path)
        assert [r["seq"] for r in first] == [0, 1, 2, 3]
        # Deterministic: a second load yields byte-identical order.
        assert telemetry.load_run(path) == first

    def test_sort_is_stable_within_one_file(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        with open(path, "w") as handle:
            for seq, ts in enumerate([5.0, 1.0, 5.0, 1.0]):
                handle.write(json.dumps({"ts": ts, "seq": seq}) + "\n")
        ordered = telemetry.load_run(path)
        assert [r["seq"] for r in ordered] == [1, 3, 0, 2]


# ------------------------------------------------------------------ #
# tail sampler
# ------------------------------------------------------------------ #
def _root(trace_id, duration=0.01, **attrs):
    span = trace.Span("execute")
    span.trace_id = trace_id
    span.duration_s = duration
    span.attrs.update(attrs)
    return span


class TestTailSampler:
    def test_anonymous_roots_are_ignored(self):
        sampler = TailSampler()
        assert sampler.offer(trace.Span("anon")) is None
        assert sampler.counts["offered"] == 0

    def test_watchdog_and_fallback_never_dropped(self):
        # Zero head rate, saturated window: the only survivors must be
        # the watchdog/fallback traces.
        sampler = TailSampler(head_rate=0.0, min_window=5)
        for i in range(50):
            sampler.offer(_root(f"{i:032x}", duration=0.01))
        for i in range(50, 60):
            reason = sampler.offer(
                _root(f"{i:032x}", duration=0.0,
                      watchdog_timeouts=1 if i % 2 else 0,
                      fallbacks=1)
            )
            assert reason in ("watchdog", "fallback")
        counts = sampler.counts
        assert counts["kept_watchdog"] == 5
        assert counts["kept_fallback"] == 5

    def test_watchdog_survives_eviction_pressure(self):
        sampler = TailSampler(max_traces=4, head_rate=1.0, min_window=1)
        watchdog_id = "f" * 32
        sampler.offer(_root(watchdog_id, watchdog_timeouts=1))
        for i in range(40):
            sampler.offer(_root(f"{i:032x}", duration=0.01 + i * 1e-4))
        kept_ids = {entry["trace_id"] for entry in sampler.entries()}
        assert watchdog_id in kept_ids
        assert len(kept_ids) == 4
        assert sampler.counts["evicted"] == 37

    def test_error_spans_kept(self):
        sampler = TailSampler(head_rate=0.0, min_window=1)
        sampler.offer(_root("0" * 32))  # consume warmup
        failed = _root("1" * 32)
        child = trace.Span("inner")
        child.error = "ValueError: boom"
        failed.children.append(child)
        assert sampler.offer(failed) == "error"

    def test_warmup_keeps_everything_then_slow_beats_p95(self):
        sampler = TailSampler(head_rate=0.0, min_window=3)
        for i in range(3):
            assert sampler.offer(_root(f"{i:032x}", 0.010)) == "warmup"
        assert sampler.offer(_root("a" * 32, 0.5)) == "slow"
        assert sampler.offer(_root("b" * 32, 0.001)) is None

    def test_accounting_is_exact(self):
        sampler = TailSampler(head_rate=0.3, min_window=4)
        rng = random.Random(5)
        for i in range(200):
            sampler.offer(_root(f"{rng.getrandbits(128):032x}",
                                duration=rng.random() * 0.02,
                                fallbacks=1 if i % 31 == 0 else 0))
        counts = sampler.counts
        kept = sum(v for k, v in counts.items() if k.startswith("kept_"))
        assert counts["offered"] == 200
        assert kept + counts["dropped_head"] == counts["offered"]
        assert len(sampler.entries()) == kept - counts["evicted"]

    def test_head_decision_is_deterministic(self):
        ids = [f"{i:032x}" for i in range(100)]
        first = [sampling._head_keep(i, 0.3) for i in ids]
        assert first == [sampling._head_keep(i, 0.3) for i in ids]
        assert all(sampling._head_keep(i, 1.0) for i in ids)
        assert not any(sampling._head_keep(i, 0.0) for i in ids)

    def test_run_writes_traces_json_with_accounting(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with obs.run(run_dir):
            with context.ensure(fingerprint="t"):
                with trace.span("execute"):
                    pass
        document = json.load(open(tmp_path / "run" / "traces.json"))
        assert document["counts"]["offered"] == 1
        assert document["counts"]["kept_warmup"] == 1
        assert len(document["traces"]) == 1
        assert document["traces"][0]["root"]["name"] == "execute"

    def test_head_rate_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_HEAD_RATE", "0.25")
        run_dir = str(tmp_path / "run")
        obs.start_run(run_dir)
        try:
            assert sampling.active().head_rate == 0.25
        finally:
            obs.finish_run(run_dir)


# ------------------------------------------------------------------ #
# propagation across the pool + serial fallback
# ------------------------------------------------------------------ #
class TestPropagation:
    def test_parallel_trace_stitches_worker_spans_from_two_pids(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_PARALLEL_MIN_ROWS", "256")
        run_dir = str(tmp_path / "run")
        obs.start_run(run_dir)
        parallel.set_workers(4)
        try:
            result = run_scan(seed=61)
            trace_id = result.stats.trace_id
            assert trace_id and result.stats.dispatches >= 1
            lanes = [
                record for record in trace.worker_spans()
                if record.get("trace_id") == trace_id
            ]
            pids = {record["pid"] for record in lanes}
            assert len(pids) >= 2
        finally:
            parallel.set_workers(0)
            obs.finish_run(run_dir)

        # The run artifact resolves the same trace with its worker lanes.
        from repro.obs import analyze

        entries = analyze.load_traces(run_dir)
        entry = analyze.find_trace(entries, trace_id)
        assert entry is not None
        assert len(analyze.worker_pids(entry)) >= 2

    def test_watchdog_fallback_preserves_trace_and_results(
        self, monkeypatch
    ):
        obs.enable()
        sampler = sampling.configure(head_rate=0.0, min_window=1)
        reference = run_scan(seed=45)

        monkeypatch.setenv("REPRO_PARALLEL_MIN_ROWS", "256")
        parallel.set_workers(4)
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "1.0")
        monkeypatch.setenv("REPRO_TEST_HANG_MORSEL", "1")
        hung = run_scan(seed=45)
        monkeypatch.delenv("REPRO_TEST_HANG_MORSEL")

        # Byte-identical results through the serial fallback...
        assert normalize(reference.to_rows()) == normalize(hung.to_rows())
        # ...still stamped with a trace id, with no worker lanes under it
        trace_id = hung.stats.trace_id
        assert trace_id and hung.stats.fallbacks >= 1
        assert not [
            record for record in trace.worker_spans()
            if record.get("trace_id") == trace_id
        ]
        # ...and the tail sampler kept it despite head_rate=0.
        kept = {entry["trace_id"]: entry for entry in sampler.entries()}
        assert kept[trace_id]["reason"] == "watchdog"

    def test_serial_execution_ignores_context_free_path(self):
        # Context-free + disabled obs: parallel payloads carry wire=None
        # without perturbing results.
        reference = run_scan(seed=52)
        obs.enable()
        with context.ensure(fingerprint="serial"):
            traced = run_scan(seed=52)
        assert normalize(reference.to_rows()) == normalize(traced.to_rows())


# ------------------------------------------------------------------ #
# SLO exemplar attachment
# ------------------------------------------------------------------ #
class TestSLOExemplars:
    def test_burn_alert_carries_worst_exemplar_trace_ids(self):
        obs.enable()
        slo.configure(["custom.lat.p95 < 10ms"])
        request = context.new_context()
        with context.activate(request):
            for _ in range(12):
                metrics.observe("custom.lat", 0.5)  # 500ms, violating
        alerts = slo.publish()
        burn = [a for a in alerts if a.rule == "slo_burn"]
        assert burn and request.trace_id in burn[0].message

        statuses = slo.active().evaluate()
        status = next(s for s in statuses if s["kind"] == "window")
        assert request.trace_id in status["exemplar_trace_ids"]

    def test_watch_renders_exemplar_ids_under_burn_line(self, tmp_path):
        from repro.obs.watch import render_watch

        trace_id = "e" * 32
        (tmp_path / "slo.json").write_text(json.dumps({"objectives": [{
            "kind": "window", "spec": "query.p95 < 1ms", "severity": "CRIT",
            "value": 0.5, "burn_rate": 50.0,
            "exemplar_trace_ids": [trace_id],
        }]}))
        frame = render_watch(str(tmp_path))
        assert f"worst traces: {trace_id[:16]}" in frame
        assert "repro analyze --trace" in frame

    def test_no_exemplars_without_context(self):
        obs.enable()
        slo.configure(["custom.lat.p95 < 10ms"])
        for _ in range(12):
            metrics.observe("custom.lat", 0.5)
        statuses = slo.active().evaluate()
        status = next(s for s in statuses if s["kind"] == "window")
        assert status["exemplar_trace_ids"] == []
