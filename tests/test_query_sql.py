"""Unit tests for repro.db.query and repro.db.sql."""

import pytest

from repro.db import (
    AggFunc,
    AggregateQuery,
    AggregateSpec,
    Comparison,
    JoinCondition,
    QueryError,
    SPJQuery,
    SQLSyntaxError,
    TrueExpr,
    sql,
)


class TestSPJQuery:
    def test_requires_tables(self):
        with pytest.raises(QueryError):
            SPJQuery(tables=())

    def test_duplicate_tables_rejected(self):
        with pytest.raises(QueryError, match="duplicate"):
            SPJQuery(tables=("a", "a"))

    def test_join_must_reference_from_tables(self):
        with pytest.raises(QueryError, match="not in FROM"):
            SPJQuery(tables=("a",), joins=(JoinCondition("a.x", "b.y"),))

    def test_join_condition_requires_qualified(self):
        with pytest.raises(QueryError, match="qualified"):
            JoinCondition("x", "b.y")

    def test_qualified_projection_single_table(self):
        q = SPJQuery(tables=("movies",), projection=("title",))
        assert q.qualified_projection() == ("movies.title",)

    def test_qualified_projection_multi_table_requires_prefix(self):
        q = SPJQuery(tables=("a", "b"), projection=("x",))
        with pytest.raises(QueryError, match="qualified"):
            q.qualified_projection()

    def test_with_limit(self):
        q = SPJQuery(tables=("a",)).with_limit(7)
        assert q.limit == 7

    def test_to_sql_round_trippable(self):
        q = SPJQuery(
            tables=("movies",),
            predicate=Comparison("movies.year", ">", 2000),
            projection=("movies.title",),
            order_by="movies.year",
            descending=True,
            limit=3,
        )
        text = q.to_sql()
        assert "ORDER BY movies.year DESC" in text
        assert "LIMIT 3" in text
        reparsed = sql(text)
        assert reparsed.limit == 3
        assert reparsed.descending

    def test_tokens_cover_structure(self):
        q = SPJQuery(
            tables=("a", "b"),
            joins=(JoinCondition("a.x", "b.y"),),
            predicate=Comparison("a.z", "=", 1),
            projection=("a.z",),
        )
        tokens = q.tokens()
        assert "table:a" in tokens and "table:b" in tokens
        assert "join:a.x=b.y" in tokens
        assert "proj:a.z" in tokens


class TestAggregateQuery:
    def test_requires_aggregates(self):
        with pytest.raises(QueryError):
            AggregateQuery(tables=("t",), aggregates=())

    def test_sum_requires_column(self):
        with pytest.raises(QueryError):
            AggregateSpec(func=AggFunc.SUM, column=None)

    def test_strip_aggregates_projects_group_and_agg_columns(self):
        q = AggregateQuery(
            tables=("t",),
            aggregates=(AggregateSpec(AggFunc.AVG, "t.x"),),
            group_by=("t.g",),
        )
        spj = q.strip_aggregates()
        assert not spj.is_aggregate
        assert spj.projection == ("t.g", "t.x")

    def test_strip_aggregates_count_star(self):
        q = AggregateQuery(tables=("t",), aggregates=(AggregateSpec(AggFunc.COUNT),))
        assert q.strip_aggregates().projection == ()

    def test_output_name(self):
        assert AggregateSpec(AggFunc.COUNT).output_name() == "count(*)"
        assert AggregateSpec(AggFunc.SUM, "t.x", alias="s").output_name() == "s"


class TestSQLParser:
    def test_select_star(self):
        q = sql("SELECT * FROM movies")
        assert q.tables == ("movies",)
        assert isinstance(q.predicate, TrueExpr)
        assert q.projection == ()

    def test_projection_and_modifiers(self):
        q = sql("SELECT movies.title FROM movies ORDER BY movies.year DESC LIMIT 5")
        assert q.projection == ("movies.title",)
        assert q.order_by == "movies.year"
        assert q.descending and q.limit == 5

    def test_distinct(self):
        assert sql("SELECT DISTINCT genre FROM movies").distinct

    def test_where_precedence_or_under_and(self):
        q = sql("SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)")
        text = q.predicate.to_sql()
        assert "OR" in text and "AND" in text

    def test_between_and_in(self):
        q = sql("SELECT * FROM t WHERE x BETWEEN 1 AND 5 AND g IN ('a', 'b')")
        assert "BETWEEN" in q.predicate.to_sql()
        assert "IN" in q.predicate.to_sql()

    def test_like_and_null(self):
        q = sql("SELECT * FROM t WHERE name LIKE 'A%' AND x IS NOT NULL")
        text = q.predicate.to_sql()
        assert "LIKE" in text and "IS NOT NULL" in text

    def test_string_escape(self):
        q = sql("SELECT * FROM t WHERE name = 'O''Brien'")
        assert "O'Brien" in repr(q.predicate)

    def test_join_lifting(self):
        q = sql(
            "SELECT * FROM movies, cast_info "
            "WHERE movies.id = cast_info.movie_id AND movies.year > 2000"
        )
        assert len(q.joins) == 1
        assert q.joins[0].left == "movies.id"
        assert "year" in q.predicate.to_sql()

    def test_same_table_equality_not_lifted(self):
        q = sql("SELECT * FROM t WHERE t.a = t.b")
        assert q.joins == ()

    def test_aggregate_parse(self):
        q = sql("SELECT genre, COUNT(*), AVG(rating) AS ar FROM movies GROUP BY genre")
        assert q.is_aggregate
        assert q.group_by == ("genre",)
        assert [s.func for s in q.aggregates] == [AggFunc.COUNT, AggFunc.AVG]
        assert q.aggregates[1].alias == "ar"

    def test_aggregate_rejects_order_by(self):
        with pytest.raises(SQLSyntaxError):
            sql("SELECT COUNT(*) FROM t ORDER BY x")

    def test_nonaggregated_column_must_be_grouped(self):
        with pytest.raises(SQLSyntaxError):
            sql("SELECT genre, COUNT(*) FROM movies")

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(SQLSyntaxError):
            sql("SELECT genre FROM movies GROUP BY genre")

    def test_neq_spellings(self):
        q1 = sql("SELECT * FROM t WHERE a != 1")
        q2 = sql("SELECT * FROM t WHERE a <> 1")
        assert q1.predicate.to_sql() == q2.predicate.to_sql()

    def test_empty_rejected(self):
        with pytest.raises(SQLSyntaxError):
            sql("   ")

    def test_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            sql("SELECT FROM WHERE")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(SQLSyntaxError, match="trailing"):
            sql("SELECT * FROM t LIMIT 1 extra")

    def test_semicolon_tolerated(self):
        assert sql("SELECT * FROM t;").tables == ("t",)

    def test_case_insensitive_keywords(self):
        q = sql("select * from t where a between 1 and 2 limit 3")
        assert q.limit == 3
