"""Unit tests for repro.core.estimator and repro.core.drift."""

import numpy as np
import pytest

from repro.core import AnswerabilityEstimator, DriftDetector
from repro.db import compute_database_stats, sql
from repro.embedding import QueryEmbedder


@pytest.fixture
def embedder(mini_db):
    return QueryEmbedder(dim=32, stats=compute_database_stats(mini_db))


@pytest.fixture
def training_queries():
    return [
        sql("SELECT * FROM movies WHERE movies.year > 2000"),
        sql("SELECT * FROM movies WHERE movies.year > 2005"),
        sql("SELECT * FROM movies WHERE movies.genre = 'drama'"),
        sql("SELECT * FROM movies WHERE movies.genre = 'action'"),
        sql("SELECT * FROM movies WHERE movies.rating > 7.0"),
    ]


@pytest.fixture
def estimator(embedder, training_queries):
    embeddings = embedder.embed_workload(training_queries)
    scores = [0.9, 0.8, 0.7, 0.6, 0.9]
    return AnswerabilityEstimator(
        embedder, embeddings, scores,
        calibration_embeddings=embeddings,
    )


class TestEstimator:
    def test_training_query_fully_familiar(self, estimator, training_queries):
        estimate = estimator.estimate(training_queries[0])
        assert estimate.familiarity == pytest.approx(1.0)
        assert estimate.confidence == pytest.approx(estimate.competence)

    def test_training_query_competence_near_own_score(self, estimator, training_queries):
        estimate = estimator.estimate(training_queries[0])
        assert estimate.competence > 0.7  # own score is 0.9

    def test_unrelated_query_low_confidence(self, estimator):
        foreign = sql("SELECT * FROM cast_info WHERE cast_info.actor = 'zzz'")
        estimate = estimator.estimate(foreign)
        assert estimate.confidence < 0.3
        assert not estimate.answerable

    def test_deviation_complements_familiarity(self, estimator, training_queries):
        known = estimator.deviation_confidence(training_queries[0])
        foreign = estimator.deviation_confidence(
            sql("SELECT * FROM cast_info WHERE cast_info.actor = 'zzz'")
        )
        assert known < 0.2
        assert foreign > 0.6

    def test_threshold_controls_answerable(self, embedder, training_queries):
        embeddings = embedder.embed_workload(training_queries)
        strict = AnswerabilityEstimator(
            embedder, embeddings, [0.6] * 5, threshold=0.9,
            calibration_embeddings=embeddings,
        )
        assert not strict.estimate(training_queries[0]).answerable

    def test_update_extends(self, estimator, embedder):
        new_query = sql("SELECT * FROM cast_info WHERE cast_info.actor = 'ann'")
        before = estimator.estimate(new_query).confidence
        estimator.update(embedder.embed(new_query)[None, :], [0.95])
        after = estimator.estimate(new_query).confidence
        assert after > before

    def test_update_length_mismatch(self, estimator):
        with pytest.raises(ValueError):
            estimator.update(np.zeros((2, 32)), [0.5])

    def test_mismatched_construction(self, embedder):
        with pytest.raises(ValueError):
            AnswerabilityEstimator(embedder, np.zeros((2, 32)), [0.5])

    def test_empty_construction(self, embedder):
        with pytest.raises(ValueError):
            AnswerabilityEstimator(embedder, np.zeros((0, 32)), [])

    def test_single_representative_fallback(self, embedder, training_queries):
        embeddings = embedder.embed_workload(training_queries[:1])
        estimator = AnswerabilityEstimator(embedder, embeddings, [0.8])
        estimate = estimator.estimate(training_queries[0])
        assert 0.0 <= estimate.confidence <= 1.0

    def test_confidence_bounded(self, estimator, training_queries):
        for q in training_queries:
            c = estimator.estimate(q).confidence
            assert 0.0 <= c <= 1.0


class TestDriftDetector:
    def _q(self, i):
        return sql(f"SELECT * FROM movies WHERE movies.year > {2000 + i}")

    def test_fires_after_trigger_count(self):
        detector = DriftDetector(confidence_threshold=0.8, trigger_count=3)
        assert detector.observe(self._q(0), 0.9) is None
        assert detector.observe(self._q(1), 0.95) is None
        event = detector.observe(self._q(2), 0.85)
        assert event is not None
        assert len(event.queries) == 3
        assert detector.events_fired == 1

    def test_low_confidence_does_not_count(self):
        detector = DriftDetector(trigger_count=2)
        assert detector.observe(self._q(0), 0.5) is None
        assert detector.observe(self._q(1), 0.79) is None
        assert detector.pending_count == 0

    def test_threshold_is_strict(self):
        detector = DriftDetector(confidence_threshold=0.8, trigger_count=1)
        assert detector.observe(self._q(0), 0.8) is None  # must exceed
        assert detector.observe(self._q(0), 0.81) is not None

    def test_pending_clears_after_fire(self):
        detector = DriftDetector(trigger_count=2)
        detector.observe(self._q(0), 0.9)
        event = detector.observe(self._q(1), 0.9)
        assert event is not None
        assert detector.pending_count == 0

    def test_interleaved_familiar_queries_keep_pending(self):
        detector = DriftDetector(trigger_count=2)
        detector.observe(self._q(0), 0.9)
        detector.observe(self._q(1), 0.1)  # familiar, ignored
        assert detector.pending_count == 1
        assert detector.observe(self._q(2), 0.9) is not None

    def test_reset(self):
        detector = DriftDetector(trigger_count=3)
        detector.observe(self._q(0), 0.9)
        detector.reset()
        assert detector.pending_count == 0

    def test_detector_rearms_after_event(self):
        """After firing, accumulation restarts from zero — a second event
        needs trigger_count fresh deviating queries."""
        detector = DriftDetector(trigger_count=2)
        detector.observe(self._q(0), 0.9)
        assert detector.observe(self._q(1), 0.9) is not None
        assert detector.observe(self._q(2), 0.9) is None  # only 1 pending
        event = detector.observe(self._q(3), 0.9)
        assert event is not None
        assert len(event.queries) == 2
        assert detector.events_fired == 2

    def test_pending_count_never_exceeds_trigger(self):
        """pending_count saturates at trigger_count − 1: the trigger fires
        the instant the count is reached, so pendings can't pile up."""
        detector = DriftDetector(trigger_count=3)
        for i in range(20):
            detector.observe(self._q(i), 0.95)
            assert detector.pending_count <= 2
        assert detector.events_fired == 6  # 20 // 3
        assert detector.pending_count == 2

    def test_alternating_high_low_deviation(self):
        """Low-deviation queries neither count nor reset the pendings, so
        a strictly alternating stream still fires every 2*trigger queries."""
        detector = DriftDetector(trigger_count=3)
        events = []
        for i in range(12):
            deviation = 0.9 if i % 2 == 0 else 0.1
            event = detector.observe(self._q(i), deviation)
            if event is not None:
                events.append((i, event))
        assert [i for i, _ in events] == [4, 10]  # every 3rd high-deviation
        for _, event in events:
            assert all(c > 0.8 for c in event.confidences)

    def test_reset_mid_accumulation_discards_partial_evidence(self):
        detector = DriftDetector(trigger_count=3)
        detector.observe(self._q(0), 0.9)
        detector.observe(self._q(1), 0.9)
        detector.reset()
        detector.observe(self._q(2), 0.9)
        detector.observe(self._q(3), 0.9)
        assert detector.pending_count == 2  # pre-reset pendings are gone
        assert detector.events_fired == 0
        assert detector.observe(self._q(4), 0.9) is not None

    def test_event_confidences_match_queries(self):
        detector = DriftDetector(trigger_count=2)
        detector.observe(self._q(0), 0.85)
        event = detector.observe(self._q(1), 0.95)
        assert event.confidences == [0.85, 0.95]
        assert len(event.queries) == len(event.confidences)


class TestCalibrationDegenerate:
    """_calibrate and calibration_error on degenerate workloads."""

    def _constant_estimator(self, embedder, training_queries, score):
        embeddings = embedder.embed_workload(training_queries)
        return AnswerabilityEstimator(
            embedder, embeddings, [score] * len(training_queries),
            calibration_embeddings=embeddings,
        )

    def test_constant_scores_still_normalized(self, embedder, training_queries):
        """All-equal training scores must not break the familiarity scale."""
        estimator = self._constant_estimator(embedder, training_queries, 0.7)
        assert estimator._sim_high > estimator._sim_low
        for query in training_queries:
            estimate = estimator.estimate(query)
            assert 0.0 <= estimate.confidence <= 1.0
            assert estimate.competence == pytest.approx(0.7)

    def test_all_zero_scores(self, embedder, training_queries):
        estimator = self._constant_estimator(embedder, training_queries, 0.0)
        estimate = estimator.estimate(training_queries[0])
        assert estimate.confidence == 0.0
        assert not estimate.answerable

    def test_identical_embeddings_fallback_window(self, embedder, training_queries):
        """Duplicate representatives: every LOO similarity is ~1.0, which
        would collapse the [low, high] window; _calibrate must keep a
        positive span so familiarity stays defined."""
        one = embedder.embed(training_queries[0])[None, :]
        embeddings = np.repeat(one, 4, axis=0)
        estimator = AnswerabilityEstimator(embedder, embeddings, [0.5] * 4)
        assert estimator._sim_high - estimator._sim_low >= 0.05
        estimate = estimator.estimate(training_queries[0])
        assert estimate.familiarity == pytest.approx(1.0)
        assert 0.0 <= estimate.confidence <= 1.0

    def test_single_representative_uses_default_window(self, embedder, training_queries):
        embeddings = embedder.embed_workload(training_queries[:1])
        estimator = AnswerabilityEstimator(embedder, embeddings, [0.9])
        assert (estimator._sim_low, estimator._sim_high) == (0.25, 0.75)

    def test_calibration_error_bounds(self, estimator):
        error = estimator.calibration_error()
        assert 0.0 <= error <= 1.0

    def test_calibration_error_single_representative_is_zero(
        self, embedder, training_queries
    ):
        embeddings = embedder.embed_workload(training_queries[:1])
        estimator = AnswerabilityEstimator(embedder, embeddings, [0.9])
        assert estimator.calibration_error() == 0.0

    def test_calibration_error_perfect_when_scores_match_confidence(
        self, embedder, training_queries
    ):
        """Duplicated representatives with equal scores: each LOO estimate
        sees an identical twin, so confidence == score == error 0 — unless
        the score itself can't be reproduced (score > max confidence)."""
        one = embedder.embed(training_queries[0])[None, :]
        embeddings = np.repeat(one, 3, axis=0)
        estimator = AnswerabilityEstimator(embedder, embeddings, [1.0, 1.0, 1.0])
        assert estimator.calibration_error() == pytest.approx(0.0, abs=1e-9)

    def test_calibration_error_detects_overconfident_scores(
        self, embedder, training_queries
    ):
        """Scores the neighbours can't predict show up as calibration error."""
        embeddings = embedder.embed_workload(training_queries)
        alternating = [1.0 if i % 2 == 0 else 0.0 for i in range(len(embeddings))]
        noisy = AnswerabilityEstimator(
            embedder, embeddings, alternating,
            calibration_embeddings=embeddings,
        )
        smooth = AnswerabilityEstimator(
            embedder, embeddings, [0.5] * len(embeddings),
            calibration_embeddings=embeddings,
        )
        assert noisy.calibration_error() > smooth.calibration_error()
