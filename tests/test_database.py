"""Unit tests for repro.db.database."""

import pytest

from repro.db import Database, SchemaError, sql, execute


class TestDatabase:
    def test_table_registry(self, mini_db, movies):
        assert mini_db.table_names == ["movies", "cast_info"]
        assert mini_db.table("movies") is movies
        assert "movies" in mini_db
        assert "nope" not in mini_db

    def test_duplicate_table_rejected(self, movies):
        db = Database([movies])
        with pytest.raises(SchemaError, match="already has"):
            db.add_table(movies)

    def test_unknown_table_lookup(self, mini_db):
        with pytest.raises(SchemaError, match="available"):
            mini_db.table("nope")

    def test_total_rows(self, mini_db):
        assert mini_db.total_rows() == 13

    def test_iteration(self, mini_db):
        assert [t.name for t in mini_db] == ["movies", "cast_info"]


class TestSubset:
    def test_subset_keeps_listed_rows(self, mini_db):
        sub = mini_db.subset({"movies": [0, 2], "cast_info": [1]})
        assert len(sub.table("movies")) == 2
        assert len(sub.table("cast_info")) == 1

    def test_missing_table_becomes_empty(self, mini_db):
        sub = mini_db.subset({"movies": [0]})
        assert len(sub.table("cast_info")) == 0

    def test_unknown_table_rejected(self, mini_db):
        with pytest.raises(SchemaError, match="unknown table"):
            mini_db.subset({"bogus": [0]})

    def test_subset_is_queryable(self, mini_db):
        sub = mini_db.subset({"movies": [3], "cast_info": [4]})
        q = sql(
            "SELECT * FROM movies, cast_info WHERE movies.id = cast_info.movie_id"
        )
        assert len(execute(sub, q)) == 1

    def test_subset_duplicated_ids_deduped(self, mini_db):
        sub = mini_db.subset({"movies": [1, 1, 1]})
        assert len(sub.table("movies")) == 1


class TestScale:
    def test_scale_multiplies_rows(self, mini_db):
        big = mini_db.scale(3)
        assert big.total_rows() == 3 * mini_db.total_rows()

    def test_scale_one_is_identity_size(self, mini_db):
        assert mini_db.scale(1).total_rows() == mini_db.total_rows()

    def test_scale_rejects_nonpositive(self, mini_db):
        with pytest.raises(ValueError):
            mini_db.scale(0)

    def test_scaled_rows_get_fresh_ids(self, mini_db):
        big = mini_db.scale(2)
        ids = big.table("movies").row_ids
        assert len(set(ids.tolist())) == len(ids)

    def test_scaled_query_results_scale(self, mini_db):
        q = sql("SELECT * FROM movies WHERE genre = 'drama'")
        n1 = len(execute(mini_db, q))
        n2 = len(execute(mini_db.scale(2), q))
        assert n2 == 2 * n1
