"""Unit tests for repro.db.expressions."""

import numpy as np
import pytest

from repro.db import (
    And,
    Between,
    Comparison,
    ExpressionError,
    InSet,
    IsNotNull,
    IsNull,
    Like,
    Not,
    Or,
    TrueExpr,
    conjoin,
    conjuncts,
)


@pytest.fixture
def ctx():
    return {
        "t.year": np.asarray([1999, 2005, 2010, 2020]),
        "t.rating": np.asarray([7.1, 8.2, np.nan, 9.0]),
        "t.genre": np.asarray(["drama", "action", "drama", ""], dtype=object),
    }


class TestComparison:
    def test_numeric_ops(self, ctx):
        assert list(Comparison("t.year", ">", 2005).evaluate(ctx)) == [False, False, True, True]
        assert list(Comparison("t.year", "=", 2005).evaluate(ctx)) == [False, True, False, False]
        assert list(Comparison("t.year", "!=", 2005).evaluate(ctx)) == [True, False, True, True]
        assert list(Comparison("t.year", "<=", 2005).evaluate(ctx)) == [True, True, False, False]

    def test_string_comparison(self, ctx):
        mask = Comparison("t.genre", "=", "drama").evaluate(ctx)
        assert list(mask) == [True, False, True, False]

    def test_bad_operator(self):
        with pytest.raises(ExpressionError):
            Comparison("t.year", "~", 2000)

    def test_bare_name_resolves_unambiguously(self, ctx):
        mask = Comparison("year", ">", 2009).evaluate(ctx)
        assert list(mask) == [False, False, True, True]

    def test_unknown_ref(self, ctx):
        with pytest.raises(ExpressionError, match="unknown column"):
            Comparison("t.bogus", "=", 1).evaluate(ctx)

    def test_to_sql_quotes_strings(self):
        assert Comparison("t.genre", "=", "o'brien").to_sql() == "t.genre = 'o''brien'"


class TestBetween:
    def test_inclusive(self, ctx):
        mask = Between("t.year", 2005, 2010).evaluate(ctx)
        assert list(mask) == [False, True, True, False]

    def test_sql(self):
        assert Between("t.year", 1, 2).to_sql() == "t.year BETWEEN 1 AND 2"


class TestInSet:
    def test_membership(self, ctx):
        mask = InSet("t.genre", ["drama", "scifi"]).evaluate(ctx)
        assert list(mask) == [True, False, True, False]

    def test_numeric_membership(self, ctx):
        mask = InSet("t.year", [1999, 2020]).evaluate(ctx)
        assert list(mask) == [True, False, False, True]

    def test_empty_rejected(self):
        with pytest.raises(ExpressionError):
            InSet("t.genre", [])

    def test_values_deduplicated_and_sorted(self):
        expr = InSet("t.g", ["b", "a", "b"])
        assert expr.values == ("a", "b")

    def test_equality_and_hash(self):
        assert InSet("t.g", ["a", "b"]) == InSet("t.g", ["b", "a"])
        assert hash(InSet("t.g", ["a"])) == hash(InSet("t.g", ["a"]))


class TestLike:
    def test_percent_wildcard(self, ctx):
        mask = Like("t.genre", "dra%").evaluate(ctx)
        assert list(mask) == [True, False, True, False]

    def test_underscore_wildcard(self, ctx):
        mask = Like("t.genre", "_rama").evaluate(ctx)
        assert list(mask) == [True, False, True, False]

    def test_no_wildcard_is_exact(self, ctx):
        mask = Like("t.genre", "drama").evaluate(ctx)
        assert list(mask) == [True, False, True, False]
        assert not Like("t.genre", "dram").evaluate(ctx).any()


class TestNulls:
    def test_is_null_float(self, ctx):
        assert list(IsNull("t.rating").evaluate(ctx)) == [False, False, True, False]

    def test_is_null_str(self, ctx):
        assert list(IsNull("t.genre").evaluate(ctx)) == [False, False, False, True]

    def test_is_not_null(self, ctx):
        assert list(IsNotNull("t.rating").evaluate(ctx)) == [True, True, False, True]


class TestBooleanOperators:
    def test_and(self, ctx):
        expr = And([Comparison("t.year", ">", 2000), Comparison("t.genre", "=", "drama")])
        assert list(expr.evaluate(ctx)) == [False, False, True, False]

    def test_or(self, ctx):
        expr = Or([Comparison("t.year", "<", 2000), Comparison("t.year", ">", 2015)])
        assert list(expr.evaluate(ctx)) == [True, False, False, True]

    def test_not(self, ctx):
        expr = Not(Comparison("t.genre", "=", "drama"))
        assert list(expr.evaluate(ctx)) == [False, True, False, True]

    def test_operator_overloads(self, ctx):
        expr = Comparison("t.year", ">", 2000) & ~Comparison("t.genre", "=", "drama")
        assert list(expr.evaluate(ctx)) == [False, True, False, True]

    def test_empty_and_rejected(self):
        with pytest.raises(ExpressionError):
            And([])

    def test_true_expr(self, ctx):
        assert TrueExpr().evaluate(ctx).all()

    def test_columns_deduplicated(self):
        expr = And([Comparison("t.a", ">", 1), Comparison("t.a", "<", 5), Comparison("t.b", "=", 1)])
        assert expr.columns() == ["t.a", "t.b"]


class TestConjunctHelpers:
    def test_conjuncts_flattens_nested_and(self):
        expr = And([And([Comparison("t.a", ">", 1), Comparison("t.b", ">", 2)]), Comparison("t.c", ">", 3)])
        assert len(conjuncts(expr)) == 3

    def test_conjuncts_of_true_is_empty(self):
        assert conjuncts(TrueExpr()) == []

    def test_conjoin_empty_is_true(self):
        assert isinstance(conjoin([]), TrueExpr)

    def test_conjoin_single_passthrough(self):
        part = Comparison("t.a", "=", 1)
        assert conjoin([part]) is part

    def test_conjoin_drops_true(self):
        part = Comparison("t.a", "=", 1)
        assert conjoin([TrueExpr(), part]) is part

    def test_conjoin_multiple(self):
        expr = conjoin([Comparison("t.a", "=", 1), Comparison("t.b", "=", 2)])
        assert isinstance(expr, And)


class TestTokens:
    def test_comparison_tokens_include_column_and_value(self):
        tokens = Comparison("t.year", ">", 2000).tokens()
        assert "pred:t.year>" in tokens
        assert "val:t.year=2000" in tokens

    def test_inset_tokens_one_per_value(self):
        tokens = InSet("t.g", ["a", "b"]).tokens()
        assert "val:t.g=a" in tokens and "val:t.g=b" in tokens
