"""Tests for repro.obs.log: levels, filtering, and channel discipline.

The module is the only sanctioned output path for library code:
:func:`console` for human-facing lines, :func:`log` for structured
events that land on the telemetry stream — never stdout. These tests
pin the severity-level contract (filtering, validation, the ``info``
default that keeps level-less callers emitting) and the channel
separation itself.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import log, telemetry


@pytest.fixture(autouse=True)
def clean_obs():
    def scrub():
        log.reset()
        obs.disable()
        telemetry.reset()
        telemetry.configure(None)

    scrub()
    yield
    scrub()


def _records():
    return [r for r in telemetry.records() if r.get("stream") == "log"]


class TestLevels:
    def test_default_threshold_is_info(self):
        assert log.get_level() == "info"

    def test_set_and_get_roundtrip(self):
        for level in ("debug", "info", "warn", "error"):
            log.set_level(level)
            assert log.get_level() == level

    def test_reset_restores_default(self):
        log.set_level("error")
        log.reset()
        assert log.get_level() == "info"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            log.set_level("verbose")

    def test_unknown_event_level_rejected_even_when_disabled(self):
        # A typo'd level silently vanishing into the default would hide
        # the very events someone marked important — so validation runs
        # before the enabled check.
        assert not obs.STATE.enabled
        with pytest.raises(ValueError, match="unknown log level"):
            log.log("something", level="critical")


class TestFiltering:
    def test_level_less_calls_emit_at_info(self):
        obs.enable()
        log.log("model.loaded", rows=10)
        records = _records()
        assert len(records) == 1
        assert records[0]["event"] == "model.loaded"
        assert records[0]["level"] == "info"
        assert records[0]["rows"] == 10

    def test_debug_dropped_at_default_threshold(self):
        obs.enable()
        log.log("chatter", level="debug")
        assert _records() == []

    def test_debug_passes_when_threshold_lowered(self):
        obs.enable()
        log.set_level("debug")
        log.log("chatter", level="debug")
        assert [r["level"] for r in _records()] == ["debug"]

    def test_threshold_filters_strictly_below(self):
        obs.enable()
        log.set_level("warn")
        log.log("a", level="info")
        log.log("b", level="warn")
        log.log("c", level="error")
        assert [r["level"] for r in _records()] == ["warn", "error"]

    def test_disabled_drops_everything(self):
        log.log("quiet", level="error")
        assert _records() == []


class TestChannelDiscipline:
    def test_log_never_writes_stdout(self, capsys):
        obs.enable()
        log.log("loud.event", level="error", detail="x" * 100)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_console_writes_one_stdout_line(self, capsys):
        log.console("hello")
        assert capsys.readouterr().out == "hello\n"

    def test_console_default_is_blank_line(self, capsys):
        log.console()
        assert capsys.readouterr().out == "\n"
