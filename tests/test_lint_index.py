"""Tests for the whole-program analyzer (repro.lint phase 2).

Covers the project index and call graph (cross-module resolution,
dispatcher fix-point, fork reachability), each of the four project
rules against a deliberately-violating fixture package, the content-hash
cache (hit/invalidate-on-edit), the v2 baseline fingerprints with v1
migration, the relaxed tests/benchmarks profiles, and the sarif/html
output formats.
"""

import ast
import json
from pathlib import Path

from repro.lint import run_lint
from repro.lint.callgraph import CallGraph
from repro.lint.cli import run as lint_cli_run
from repro.lint.effects import summarize_module
from repro.lint.engine import load_baseline, write_baseline
from repro.lint.index import LintCache, line_hash

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_package(root, modules):
    """Write ``{relative_path: source}`` under root; return root."""
    for relative, source in modules.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


def graph_for(root):
    summaries = {}
    for path in sorted(root.rglob("*.py")):
        display = str(path)
        tree = ast.parse(path.read_text())
        summaries[display] = summarize_module(tree, display)
    return CallGraph(summaries)


def findings_for(root, rule):
    report = run_lint([str(root)], None)
    return [f for f in report.findings if f.rule == rule]


#: A worker pool package with one violation per project rule. The
#: dispatcher lives in a different module from the task, the task's
#: hazard sits one call deeper, so every finding requires cross-module
#: call-graph resolution.
FIXTURE = {
    "proj/pool.py": (
        "import multiprocessing as mp\n"
        "\n"
        "def dispatch(task, payloads):\n"
        "    pool = mp.Pool(2)\n"
        "    result = pool.map_async(task, payloads)\n"
        "    return result.get()\n"
    ),
    "proj/tasks.py": (
        "from . import helpers\n"
        "\n"
        "def worker_task(payload):\n"
        "    return helpers.accumulate(payload)\n"
    ),
    "proj/helpers.py": (
        "_TOTALS = {}\n"
        "\n"
        "def accumulate(payload):\n"
        "    global _TOTALS\n"
        "    _TOTALS = dict(payload)\n"
        "    return _TOTALS\n"
    ),
    "proj/driver.py": (
        "from .pool import dispatch\n"
        "from .tasks import worker_task\n"
        "\n"
        "def run(payloads):\n"
        "    results = dispatch(worker_task, payloads)\n"
        "    return results\n"
    ),
}


class TestCallGraph:
    def test_cross_module_resolution_through_dispatcher(self, tmp_path):
        graph = graph_for(write_package(tmp_path, FIXTURE))
        entries = {
            graph.display_name(gid) for gid in graph.worker_entries()
        }
        # worker_task enters workers only via the dispatcher in pool.py,
        # referenced from a third module (driver.py).
        assert any(name.endswith("tasks.worker_task") for name in entries)
        reachable = {
            graph.display_name(gid) for gid in graph.worker_reachable()
        }
        # ...and the hazard one call deeper is reached across modules.
        assert any(
            name.endswith("helpers.accumulate") for name in reachable
        )

    def test_chain_text_names_the_path(self, tmp_path):
        graph = graph_for(write_package(tmp_path, FIXTURE))
        target = next(
            gid for gid in graph.worker_reachable()
            if graph.display_name(gid).endswith("helpers.accumulate")
        )
        chain = graph.chain_text(target)
        assert "worker_task" in chain and "accumulate" in chain

    def test_unresolved_calls_produce_no_edges(self, tmp_path):
        root = write_package(tmp_path, {
            "mod.py": (
                "def f(callback):\n"
                "    return callback()\n"
            ),
        })
        graph = graph_for(root)
        assert graph.edges()[next(iter(graph.edges()))] == []

    def test_method_dispatch_via_self(self, tmp_path):
        root = write_package(tmp_path, {
            "mod.py": (
                "class Runner:\n"
                "    def outer(self):\n"
                "        return self.inner()\n"
                "    def inner(self):\n"
                "        return 1\n"
            ),
        })
        graph = graph_for(root)
        edges = {
            graph.display_name(gid): [
                graph.display_name(t) for t in targets
            ]
            for gid, targets in graph.edges().items()
        }
        (outer_edges,) = [
            targets for name, targets in edges.items()
            if name.endswith("Runner.outer")
        ]
        assert any(t.endswith("Runner.inner") for t in outer_edges)


class TestForkUnsafeRule:
    def test_transitive_global_write_is_flagged(self, tmp_path):
        root = write_package(tmp_path, FIXTURE)
        findings = findings_for(root, "fork-unsafe-worker-reachable")
        assert findings, "global write two calls below the pool must flag"
        (finding,) = [
            f for f in findings if f.path.endswith("helpers.py")
        ]
        assert "_TOTALS" in finding.message
        assert finding.severity == "error"
        assert "worker" in finding.message

    def test_each_hazard_kind_is_flagged(self, tmp_path):
        hazards = {
            "lock": (
                "import threading\n"
                "_LOCK = threading.Lock()\n"
                "def task(x):\n"
                "    with _LOCK:\n"
                "        return x\n"
            ),
            "thread": (
                "import threading\n"
                "def task(x):\n"
                "    t = threading.Thread(target=print)\n"
                "    t.start()\n"
                "    return x\n"
            ),
            "fd": (
                "def task(x):\n"
                "    handle = open('/tmp/x')\n"
                "    return handle.read()\n"
            ),
            "rng": (
                "import numpy as np\n"
                "def task(x):\n"
                "    return np.random.rand(x)"
                "  # lint: disable=no-global-numpy-random\n"
            ),
        }
        pool = (
            "import multiprocessing as mp\n"
            "from .work import task\n"
            "def go(items):\n"
            "    with mp.Pool(2) as pool:\n"
            "        return pool.map_async(task, items).get()\n"
        )
        for name, work_source in hazards.items():
            root = write_package(tmp_path / name, {
                "pkg/pool.py": pool,
                "pkg/work.py": work_source,
            })
            findings = findings_for(root, "fork-unsafe-worker-reachable")
            assert findings, f"hazard kind {name!r} must be flagged"
            assert all(f.path.endswith("work.py") for f in findings)

    def test_clean_worker_is_not_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "pkg/pool.py": (
                "import multiprocessing as mp\n"
                "from .work import task\n"
                "def go(items):\n"
                "    with mp.Pool(2) as pool:\n"
                "        return pool.map_async(task, items).get()\n"
            ),
            "pkg/work.py": (
                "def task(x):\n"
                "    total = 0\n"
                "    for value in x:\n"
                "        total += value\n"
                "    return total\n"
            ),
        })
        assert not findings_for(root, "fork-unsafe-worker-reachable")

    def test_inline_suppression_applies(self, tmp_path):
        fixture = dict(FIXTURE)
        fixture["proj/helpers.py"] = (
            "_TOTALS = {}\n"
            "\n"
            "def accumulate(payload):\n"
            "    global _TOTALS\n"
            "    _TOTALS = dict(payload)"
            "  # lint: disable=fork-unsafe-worker-reachable\n"
            "    return _TOTALS\n"
        )
        root = write_package(tmp_path, fixture)
        assert not findings_for(root, "fork-unsafe-worker-reachable")


class TestShmLifecycleRule:
    def test_never_released_is_error(self, tmp_path):
        root = write_package(tmp_path, {
            "mod.py": (
                "from multiprocessing import shared_memory\n"
                "\n"
                "def leak(n):\n"
                "    block = shared_memory.SharedMemory(create=True, size=n)\n"
                "    return None\n"
            ),
        })
        (finding,) = findings_for(root, "shm-lifecycle")
        assert finding.severity == "error"
        assert "never released" in finding.message

    def test_release_outside_finally_is_warn(self, tmp_path):
        root = write_package(tmp_path, {
            "mod.py": (
                "from multiprocessing import shared_memory\n"
                "\n"
                "def risky(n):\n"
                "    block = shared_memory.SharedMemory(create=True, size=n)\n"
                "    value = bytes(block.buf[:4])\n"
                "    block.close()\n"
                "    block.unlink()\n"
                "    return value\n"
            ),
        })
        (finding,) = findings_for(root, "shm-lifecycle")
        assert finding.severity == "warn"
        assert "exception" in finding.message

    def test_finally_release_is_clean(self, tmp_path):
        root = write_package(tmp_path, {
            "mod.py": (
                "from multiprocessing import shared_memory\n"
                "\n"
                "def safe(n):\n"
                "    block = shared_memory.SharedMemory(create=True, size=n)\n"
                "    try:\n"
                "        return bytes(block.buf[:4])\n"
                "    finally:\n"
                "        block.close()\n"
                "        block.unlink()\n"
            ),
        })
        assert not findings_for(root, "shm-lifecycle")

    def test_escaping_ownership_is_clean(self, tmp_path):
        root = write_package(tmp_path, {
            "mod.py": (
                "from multiprocessing import shared_memory\n"
                "\n"
                "def make(n):\n"
                "    block = shared_memory.SharedMemory(create=True, size=n)\n"
                "    return block\n"
            ),
        })
        assert not findings_for(root, "shm-lifecycle")

    def test_attach_without_create_is_not_tracked(self, tmp_path):
        root = write_package(tmp_path, {
            "mod.py": (
                "from multiprocessing import shared_memory\n"
                "\n"
                "def attach(name):\n"
                "    block = shared_memory.SharedMemory(name=name)\n"
                "    return bytes(block.buf[:4])\n"
            ),
        })
        assert not findings_for(root, "shm-lifecycle")

    def test_unterminated_pool_is_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "mod.py": (
                "import multiprocessing as mp\n"
                "\n"
                "def leak(items):\n"
                "    pool = mp.Pool(2)\n"
                "    return pool.map(len, items)\n"
            ),
        })
        findings = findings_for(root, "shm-lifecycle")
        assert findings and "pool" in findings[0].message


class TestTelemetrySinkRule:
    def test_direct_append_write_is_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "mod.py": (
                "import os\n"
                "\n"
                "def log_line(path, text):\n"
                "    with open(path, 'a') as handle:\n"
                "        handle.write(text)\n"
                "    fd = os.open(path, os.O_WRONLY | os.O_APPEND)\n"
                "    os.write(fd, text.encode())\n"
                "    os.close(fd)\n"
            ),
        })
        findings = findings_for(root, "telemetry-sink-only")
        kinds = sorted(f.message.split("(")[1].split(")")[0]
                       for f in findings)
        assert len(findings) == 3  # open-a, os.open(O_APPEND), os.write
        assert any("os.write" in k for k in kinds)

    def test_telemetry_module_itself_is_exempt(self, tmp_path):
        root = write_package(tmp_path, {
            "obs/telemetry.py": (
                "import os\n"
                "\n"
                "def sink(fd, payload):\n"
                "    os.write(fd, payload)\n"
            ),
        })
        assert not findings_for(root, "telemetry-sink-only")

    def test_read_and_write_modes_are_clean(self, tmp_path):
        root = write_package(tmp_path, {
            "mod.py": (
                "def rewrite(path, text):\n"
                "    with open(path, 'w') as handle:\n"
                "        handle.write(text)\n"
                "    with open(path) as handle:\n"
                "        return handle.read()\n"
            ),
        })
        assert not findings_for(root, "telemetry-sink-only")


class TestQualityTelemetrySinkRule:
    """The ``quality`` telemetry stream has exactly one producer."""

    EMIT = "def emit(stream, **fields):\n    return stream\n"

    def test_rogue_quality_producer_is_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "proj/obs/telemetry.py": self.EMIT,
            "proj/serving.py": (
                "from .obs import telemetry\n"
                "\n"
                "def report(recall):\n"
                "    telemetry.emit('quality', kind='audit', recall=recall)\n"
            ),
        })
        findings = findings_for(root, "quality-telemetry-sink-only")
        assert len(findings) == 1
        assert "quality" in findings[0].message
        assert findings[0].path.endswith("serving.py")

    def test_quality_module_itself_is_exempt(self, tmp_path):
        root = write_package(tmp_path, {
            "proj/obs/telemetry.py": self.EMIT,
            "proj/obs/quality.py": (
                "from . import telemetry\n"
                "\n"
                "def record_audit(recall):\n"
                "    telemetry.emit('quality', kind='audit', recall=recall)\n"
            ),
        })
        assert not findings_for(root, "quality-telemetry-sink-only")

    def test_other_streams_are_clean(self, tmp_path):
        root = write_package(tmp_path, {
            "proj/obs/telemetry.py": self.EMIT,
            "proj/serving.py": (
                "from .obs import telemetry\n"
                "\n"
                "def report(seconds):\n"
                "    telemetry.emit('query', seconds=seconds)\n"
                "    telemetry.emit(compute_stream(), x=1)\n"
                "\n"
                "def compute_stream():\n"
                "    return 'query'\n"
            ),
        })
        assert not findings_for(root, "quality-telemetry-sink-only")

    def test_effects_capture_string_arg0(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def f(emit):\n"
            "    emit('quality', x=1)\n"
            "    emit(2, x=1)\n"
            "    emit()\n"
        )
        summary = summarize_module(ast.parse(path.read_text()), str(path))
        (record,) = [
            f for name, f in summary["functions"].items()
            if name.endswith(".f") or name == "f"
        ]
        arg0s = [call.get("arg0") for call in record["calls"]]
        assert "quality" in arg0s
        # Non-string and argument-less calls carry no arg0 key.
        assert sum(a is not None for a in arg0s) == 1


class TestFallbackRule:
    WRAPPER = (
        "import multiprocessing as mp\n"
        "\n"
        "def maybe_parallel(task, items):\n"
        "    try:\n"
        "        with mp.Pool(2) as pool:\n"
        "            return pool.map_async(task, items).get()\n"
        "    except OSError:\n"
        "        return None\n"
    )

    def test_unchecked_call_site_is_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "pkg/wrap.py": self.WRAPPER,
            "pkg/use.py": (
                "from .wrap import maybe_parallel\n"
                "\n"
                "def total(items):\n"
                "    results = maybe_parallel(len, items)\n"
                "    return sum(results)\n"
            ),
        })
        (finding,) = findings_for(root, "fallback-on-worker-error")
        assert finding.path.endswith("use.py")
        assert "None" in finding.message

    def test_none_checked_call_site_is_clean(self, tmp_path):
        root = write_package(tmp_path, {
            "pkg/wrap.py": self.WRAPPER,
            "pkg/use.py": (
                "from .wrap import maybe_parallel\n"
                "\n"
                "def total(items):\n"
                "    results = maybe_parallel(len, items)\n"
                "    if results is None:\n"
                "        results = [len(i) for i in items]\n"
                "    return sum(results)\n"
            ),
        })
        assert not findings_for(root, "fallback-on-worker-error")

    def test_try_except_call_site_is_clean(self, tmp_path):
        root = write_package(tmp_path, {
            "pkg/wrap.py": self.WRAPPER,
            "pkg/use.py": (
                "from .wrap import maybe_parallel\n"
                "\n"
                "def total(items):\n"
                "    try:\n"
                "        return sum(maybe_parallel(len, items))\n"
                "    except TypeError:\n"
                "        return sum(len(i) for i in items)\n"
            ),
        })
        assert not findings_for(root, "fallback-on-worker-error")

    def test_wrapper_of_wrapper_is_tracked(self, tmp_path):
        root = write_package(tmp_path, {
            "pkg/wrap.py": self.WRAPPER,
            "pkg/outer.py": (
                "from .wrap import maybe_parallel\n"
                "\n"
                "def maybe_outer(items):\n"
                "    result = maybe_parallel(len, items)\n"
                "    if result is None:\n"
                "        return None\n"
                "    return result\n"
            ),
            "pkg/use.py": (
                "from .outer import maybe_outer\n"
                "\n"
                "def total(items):\n"
                "    values = maybe_outer(items)\n"
                "    return sum(values)\n"
            ),
        })
        findings = findings_for(root, "fallback-on-worker-error")
        assert any(f.path.endswith("use.py") for f in findings)


class TestCache:
    def test_warm_cache_hits_and_invalidation_on_edit(self, tmp_path):
        root = write_package(tmp_path / "proj", FIXTURE)
        cache_path = tmp_path / "cache.json"

        cold = run_lint([str(root)], cache_path=str(cache_path))
        assert cold.cache_hits == 0
        assert cache_path.exists()

        warm = run_lint([str(root)], cache_path=str(cache_path))
        assert warm.cache_hits == warm.files_checked == 4
        assert [f.fingerprint for f in warm.findings] == [
            f.fingerprint for f in cold.findings
        ]

        # Edit one file: only that file recomputes, findings update.
        helpers = root / "proj" / "helpers.py"
        helpers.write_text(
            "def accumulate(payload):\n"
            "    return dict(payload)\n"
        )
        edited = run_lint([str(root)], cache_path=str(cache_path))
        assert edited.cache_hits == 3
        assert not [
            f for f in edited.findings
            if f.rule == "fork-unsafe-worker-reachable"
            and f.path.endswith("helpers.py")
        ]

    def test_cache_respects_rule_subset(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("print('x')\n")
        cache_path = tmp_path / "cache.json"
        full = run_lint([str(path)], cache_path=str(cache_path))
        assert full.findings
        subset = run_lint(
            [str(path)], ["no-silent-except"], cache_path=str(cache_path)
        )
        assert subset.cache_hits == 0  # different rules key
        assert not subset.findings

    def test_corrupt_cache_is_ignored(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("print('x')\n")
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        report = run_lint([str(path)], cache_path=str(cache_path))
        assert [f.rule for f in report.findings] == ["no-bare-print"]

    def test_cached_run_still_reports_suppressions(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("print('x')  # lint: disable=no-bare-print\n")
        cache_path = tmp_path / "cache.json"
        run_lint([str(path)], cache_path=str(cache_path))
        warm = run_lint([str(path)], cache_path=str(cache_path))
        assert warm.cache_hits == 1
        assert not warm.findings


class TestBaselineFingerprints:
    def test_edits_above_do_not_churn_the_baseline(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("print('grandfathered')\n")
        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), run_lint([str(path)]).findings)

        # Insert 5 lines above: the finding moves, its hash does not.
        path.write_text(
            "import os\n\n\nVALUE = 3\n\n" "print('grandfathered')\n"
        )
        report = run_lint([str(path)], baseline_path=str(baseline))
        assert report.findings == []
        assert report.baselined == 1

    def test_duplicate_lines_consume_one_entry_each(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("print('dup')\nprint('dup')\n")
        baseline = tmp_path / "baseline.json"
        first = run_lint([str(path)])
        assert len(first.findings) == 2
        # Baseline only the first: the identical second line must still
        # be reported (multiset, not set, semantics).
        write_baseline(str(baseline), first.findings[:1])
        report = run_lint([str(path)], baseline_path=str(baseline))
        assert report.baselined == 1
        assert len(report.findings) == 1

    def test_v1_baseline_is_migrated_by_line_content(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = tmp_path / "mod.py"
        path.write_text("x = 1\nprint('legacy')\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "findings": [
                {"path": "mod.py", "rule": "no-bare-print", "line": 2},
                {"path": "gone.py", "rule": "no-bare-print", "line": 9},
            ],
        }))
        loaded = load_baseline(str(baseline))
        legacy_hash = line_hash("print('legacy')")
        expected = f"mod.py:no-bare-print:{legacy_hash}"
        assert loaded.counts[expected] == 1
        # The entry for the deleted file is dropped, not an error.
        assert sum(loaded.counts.values()) == 1
        report = run_lint(["mod.py"], baseline_path=str(baseline))
        assert report.findings == []
        assert report.baselined == 1

    def test_written_baseline_is_v2(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("print('x')\n")
        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), run_lint([str(path)]).findings)
        payload = json.loads(baseline.read_text())
        assert payload["version"] == 2
        (entry,) = payload["findings"]
        assert set(entry) == {"path", "rule", "line_hash", "line"}
        assert entry["line_hash"] == line_hash("print('x')")


class TestProfiles:
    def test_pytest_import_allowed_under_tests(self, tmp_path):
        source = "import pytest\nimport torch\n"
        root = write_package(tmp_path, {"tests/test_x.py": source})
        report = run_lint([str(root)])
        assert [
            (f.rule, f.line) for f in report.findings
        ] == [("forbidden-import", 2)]

    def test_print_allowed_under_benchmarks(self, tmp_path):
        root = write_package(
            tmp_path, {"benchmarks/bench_x.py": "print('table')\n"}
        )
        assert not run_lint([str(root)]).findings

    def test_print_still_flagged_in_library(self, tmp_path):
        root = write_package(tmp_path, {"pkg/mod.py": "print('x')\n"})
        report = run_lint([str(root)])
        assert [f.rule for f in report.findings] == ["no-bare-print"]


class TestOutputFormats:
    def test_sarif_structure(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("print('x')\n")
        code, text = lint_cli_run(
            [str(path)], output_format="sarif", no_cache=True
        )
        assert code == 1
        sarif = json.loads(text)
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "fork-unsafe-worker-reachable" in rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "no-bare-print"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("bad.py")
        assert location["region"]["startLine"] == 1

    def test_html_is_self_contained(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("print('x')\n")
        code, text = lint_cli_run(
            [str(path)], output_format="html", no_cache=True
        )
        assert code == 1
        assert text.startswith("<!DOCTYPE html>")
        assert "<style>" in text and "no-bare-print" in text
        assert "src=" not in text and "href=" not in text  # no external assets

    def test_explain_prints_rule_documentation(self):
        code, text = lint_cli_run([], explain="fork-unsafe-worker-reachable")
        assert code == 0
        assert "whole-program" in text
        assert "rationale:" in text
        assert "fork" in text.lower()

    def test_explain_unknown_rule_is_usage_error(self):
        code, text = lint_cli_run([], explain="bogus")
        assert code == 2

    def test_strict_severity_passes_on_warn_only(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "from multiprocessing import shared_memory\n"
            "\n"
            "def risky(n):\n"
            "    block = shared_memory.SharedMemory(create=True, size=n)\n"
            "    value = bytes(block.buf[:4])\n"
            "    block.close()\n"
            "    block.unlink()\n"
            "    return value\n"
        )
        strict_code, _ = lint_cli_run(
            [str(path)], strict_severity=True, no_cache=True
        )
        default_code, _ = lint_cli_run([str(path)], no_cache=True)
        assert strict_code == 0  # the warn is reported but doesn't fail
        assert default_code == 1


class TestRepoAcceptance:
    def test_injected_global_write_fails_the_build(self, tmp_path):
        """Acceptance: copying db/parallel.py and injecting a global
        write into a worker task makes fork-unsafe-worker-reachable
        fire."""
        source = (REPO_ROOT / "src/repro/db/parallel.py").read_text()
        needle = "def _filter_task(payload):\n"
        assert needle in source
        injected = source.replace(
            needle,
            "_SEEN = {}\n\n\n"
            + needle
            + "    global _SEEN\n    _SEEN = dict(payload)\n",
        )
        root = tmp_path / "db"
        root.mkdir()
        (root / "parallel.py").write_text(injected)
        findings = findings_for(tmp_path, "fork-unsafe-worker-reachable")
        assert any("_SEEN" in f.message for f in findings)

    def test_whole_tree_lint_is_clean(self):
        """Acceptance: src+tests+benchmarks clean under the full pack
        including the project rules, with an empty baseline."""
        paths = [
            str(REPO_ROOT / name)
            for name in ("src", "tests", "benchmarks")
            if (REPO_ROOT / name).exists()
        ]
        report = run_lint(paths)
        assert report.findings == []
        assert report.files_checked > 100
