"""Unit tests for repro.embedding.relaxation.

Core invariant: a relaxed query's result is a superset of the original
query's result (relaxation only loosens conditions).
"""

import pytest

from repro.db import (
    Between,
    Comparison,
    InSet,
    compute_database_stats,
    execute,
    sql,
)
from repro.embedding import QueryRelaxer, RelaxationConfig


@pytest.fixture
def relaxer(mini_db):
    return QueryRelaxer(compute_database_stats(mini_db))


class TestRangeWidening:
    def test_between_widens(self, relaxer):
        q = sql("SELECT * FROM movies WHERE movies.year BETWEEN 2005 AND 2010")
        relaxed = relaxer.relax(q)
        (part,) = [p for p in [relaxed.predicate] if isinstance(p, Between)]
        assert part.low < 2005 and part.high > 2010

    def test_threshold_loosens_gt(self, relaxer):
        q = sql("SELECT * FROM movies WHERE movies.year > 2010")
        relaxed = relaxer.relax(q)
        assert isinstance(relaxed.predicate, Comparison)
        assert relaxed.predicate.value < 2010

    def test_threshold_loosens_lt(self, relaxer):
        q = sql("SELECT * FROM movies WHERE movies.year < 2005")
        relaxed = relaxer.relax(q)
        assert relaxed.predicate.value > 2005

    def test_numeric_equality_becomes_range(self, relaxer):
        q = sql("SELECT * FROM movies WHERE movies.year = 2005")
        relaxed = relaxer.relax(q)
        assert isinstance(relaxed.predicate, Between)


class TestEqualityGeneralization:
    def test_categorical_equality_becomes_in(self, relaxer):
        q = sql("SELECT * FROM movies WHERE movies.genre = 'scifi'")
        relaxed = relaxer.relax(q)
        assert isinstance(relaxed.predicate, InSet)
        assert "scifi" in relaxed.predicate.values
        assert len(relaxed.predicate.values) > 1

    def test_siblings_are_popular_values(self, relaxer):
        q = sql("SELECT * FROM movies WHERE movies.genre = 'scifi'")
        relaxed = relaxer.relax(q)
        assert "drama" in relaxed.predicate.values  # the most popular genre

    def test_disabled_siblings(self, mini_db):
        relaxer = QueryRelaxer(
            compute_database_stats(mini_db),
            RelaxationConfig(equality_siblings=0),
        )
        q = sql("SELECT * FROM movies WHERE movies.genre = 'scifi'")
        relaxed = relaxer.relax(q)
        assert isinstance(relaxed.predicate, Comparison)


class TestSupersetInvariant:
    QUERIES = [
        "SELECT * FROM movies WHERE movies.year BETWEEN 2004 AND 2012",
        "SELECT * FROM movies WHERE movies.genre = 'drama' AND movies.rating > 6.0",
        "SELECT * FROM movies WHERE movies.year > 2005",
        "SELECT * FROM movies, cast_info WHERE movies.id = cast_info.movie_id "
        "AND cast_info.actor = 'ann' AND movies.year < 2010",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_relaxed_result_superset(self, mini_db, relaxer, text):
        q = sql(text)
        original = set(execute(mini_db, q).provenance_keys())
        relaxed = set(execute(mini_db, relaxer.relax(q)).provenance_keys())
        assert original <= relaxed

    def test_limit_lifted(self, mini_db, relaxer):
        q = sql("SELECT * FROM movies WHERE movies.year > 2000 LIMIT 1")
        assert relaxer.relax(q).limit is None


class TestDropMostSelective:
    def test_drops_equality_first(self, mini_db):
        relaxer = QueryRelaxer(
            compute_database_stats(mini_db),
            RelaxationConfig(drop_most_selective=True, equality_siblings=0),
        )
        q = sql("SELECT * FROM movies WHERE movies.genre = 'scifi' AND movies.year > 2000")
        relaxed = relaxer.relax(q)
        text = relaxed.predicate.to_sql()
        assert "genre" not in text
        assert "year" in text

    def test_single_conjunct_never_dropped(self, mini_db):
        relaxer = QueryRelaxer(
            compute_database_stats(mini_db),
            RelaxationConfig(drop_most_selective=True),
        )
        q = sql("SELECT * FROM movies WHERE movies.year > 2000")
        relaxed = relaxer.relax(q)
        assert "year" in relaxed.predicate.to_sql()


class TestAggregateInput:
    def test_aggregate_is_stripped_then_relaxed(self, relaxer):
        agg = sql("SELECT genre, COUNT(*) FROM movies WHERE year > 2005 GROUP BY genre")
        relaxed = relaxer.relax(agg)
        assert not relaxed.is_aggregate
        assert relaxed.predicate.value < 2005
