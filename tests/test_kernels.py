"""Differential tests for the vectorized execution kernels and CSR tracker.

Every kernel in ``repro.db.kernels`` must reproduce the retained per-row
reference implementation exactly — values *and* ordering — on randomized
inputs, including NaN keys and mixed dtypes. The CSR
:class:`~repro.core.reward.CoverageTracker` must agree with the retained
:class:`~repro.core.reward.DictCoverageTracker` on every observable
(covered counts and scores) under random add/remove/reset/probe programs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reward import CoverageTracker, DictCoverageTracker, QueryCoverage
from repro.db import kernels

# ------------------------------------------------------------------ #
# key-column strategies: int / float (with NaN) / string-object / bool
# ------------------------------------------------------------------ #


def _column(draw, kind: str, n: int) -> np.ndarray:
    if kind == "int":
        return np.asarray(draw(st.lists(st.integers(-5, 5), min_size=n, max_size=n)))
    if kind == "big_int":
        values = st.sampled_from([-(10**9), -7, 0, 3, 10**9, 10**12])
        return np.asarray(draw(st.lists(values, min_size=n, max_size=n)))
    if kind == "float":
        values = st.sampled_from([-1.5, 0.0, 2.25, float("nan")])
        return np.asarray(draw(st.lists(values, min_size=n, max_size=n)))
    if kind == "str":
        values = st.sampled_from(["a", "b", "c", ""])
        return np.asarray(draw(st.lists(values, min_size=n, max_size=n)), dtype=object)
    return np.asarray(draw(st.lists(st.booleans(), min_size=n, max_size=n)))


_KINDS = ["int", "big_int", "float", "str", "bool"]


@st.composite
def _key_arrays(draw, min_rows: int = 0, max_rows: int = 30):
    n = draw(st.integers(min_rows, max_rows))
    kinds = draw(st.lists(st.sampled_from(_KINDS), min_size=1, max_size=3))
    return [_column(draw, kind, n) for kind in kinds]


@st.composite
def _key_array_pair(draw):
    left = draw(_key_arrays(min_rows=0, max_rows=25))
    n = draw(st.integers(0, 25))
    kinds = [str(a.dtype) for a in left]
    right = []
    for arr in left:
        if arr.dtype == object:
            right.append(_column(draw, "str", n))
        elif arr.dtype == np.bool_:
            right.append(_column(draw, "bool", n))
        elif np.issubdtype(arr.dtype, np.floating):
            right.append(_column(draw, "float", n))
        else:
            right.append(_column(draw, "int", n))
    assert len(kinds) == len(right)
    return left, right


# ------------------------------------------------------------------ #
# kernel vs reference
# ------------------------------------------------------------------ #


@given(pair=_key_array_pair())
@settings(max_examples=150, deadline=None)
def test_join_positions_match_reference(pair):
    build, probe = pair
    ref_probe, ref_build = kernels.reference_join_positions(build, probe)
    got_probe, got_build = kernels.join_positions(build, probe)
    np.testing.assert_array_equal(got_probe, ref_probe)
    np.testing.assert_array_equal(got_build, ref_build)


@given(arrays=_key_arrays())
@settings(max_examples=150, deadline=None)
def test_distinct_positions_match_reference(arrays):
    np.testing.assert_array_equal(
        kernels.distinct_positions(arrays),
        kernels.reference_distinct_positions(arrays),
    )


@given(arrays=_key_arrays())
@settings(max_examples=150, deadline=None)
def test_group_by_positions_match_reference(arrays):
    got = kernels.group_by_positions(arrays)
    ref = kernels.reference_group_by_positions(arrays)
    # Group enumeration order is unspecified; compare as sets of position
    # tuples (positions within each group are required to be ascending).
    got_set = {tuple(g.tolist()) for g in got}
    ref_set = {tuple(g.tolist()) for g in ref}
    assert got_set == ref_set
    for group in got:
        assert np.all(np.diff(group) > 0) or len(group) == 1


def test_nan_keys_never_join_and_stay_distinct():
    keys = [np.asarray([1.0, float("nan"), float("nan"), 1.0])]
    probe_idx, build_idx = kernels.join_positions(keys, keys)
    # Only the two 1.0 rows match (each against both), NaN never matches.
    assert sorted(zip(probe_idx.tolist(), build_idx.tolist())) == [
        (0, 0), (0, 3), (3, 0), (3, 3)
    ]
    np.testing.assert_array_equal(kernels.distinct_positions(keys), [0, 1, 2])
    assert len(kernels.group_by_positions(keys)) == 3


def test_use_reference_kernels_toggles_and_restores():
    keys = [np.asarray([1, 2, 1])]
    assert not kernels._FORCE_REFERENCE
    with kernels.use_reference_kernels():
        assert kernels._FORCE_REFERENCE
        np.testing.assert_array_equal(kernels.distinct_positions(keys), [0, 1])
    assert not kernels._FORCE_REFERENCE


def test_factorize_keys_codes_are_bounded():
    rng = np.random.default_rng(0)
    arrays = [
        rng.integers(-(10**12), 10**12, size=200),
        rng.integers(0, 10**9, size=200),
        rng.integers(0, 50, size=200),
    ]
    codes, n_codes = kernels.factorize_keys(arrays)
    assert codes.min() >= 0
    assert codes.max() < n_codes
    assert n_codes <= kernels._code_limit(200)


# ------------------------------------------------------------------ #
# CSR CoverageTracker vs dict reference
# ------------------------------------------------------------------ #

_KEYS = [(t, i) for t in ("a", "b") for i in range(6)]


@st.composite
def _coverages(draw):
    n_queries = draw(st.integers(1, 4))
    out = []
    for q in range(n_queries):
        n_rows = draw(st.integers(0, 5))
        requirements = []
        for _ in range(n_rows):
            width = draw(st.integers(1, 3))
            requirements.append(
                tuple(draw(st.sampled_from(_KEYS)) for _ in range(width))
            )
        out.append(
            QueryCoverage(
                name=f"q{q}",
                weight=draw(st.floats(0.25, 2.0, allow_nan=False)),
                denominator=max(n_rows, draw(st.integers(1, 6))),
                requirements=requirements,
            )
        )
    return out


_PROGRAM_OPS = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "add_batch", "remove_batch",
                         "reset", "score_with", "probe"]),
        st.lists(st.sampled_from(_KEYS + [("zz", 99)]), min_size=0, max_size=12),
    ),
    min_size=1,
    max_size=20,
)


def _assert_trackers_agree(csr: CoverageTracker, ref: DictCoverageTracker):
    np.testing.assert_array_equal(csr.covered_counts(), ref.covered_counts())
    assert csr.batch_score() == pytest.approx(ref.batch_score())
    for q in range(csr.n_queries):
        assert csr.query_score(q) == pytest.approx(ref.query_score(q))


@given(coverages=_coverages(), program=_PROGRAM_OPS)
@settings(max_examples=120, deadline=None)
def test_csr_tracker_matches_dict_tracker(coverages, program):
    csr = CoverageTracker(coverages)
    ref = DictCoverageTracker(coverages)
    for op, keys in program:
        if op == "add":
            for key in keys:
                csr.add_key(key)
                ref.add_key(key)
        elif op == "remove":
            for key in keys:
                csr.remove_key(key)
                ref.remove_key(key)
        elif op == "add_batch":
            csr.add_keys(keys)
            ref.add_keys(keys)
        elif op == "remove_batch":
            csr.remove_keys(keys)
            ref.remove_keys(keys)
        elif op == "reset":
            csr.reset()
            ref.reset()
        elif op == "score_with":
            assert csr.score_with_keys(keys) == pytest.approx(
                ref.score_with_keys(keys)
            )
        elif op == "probe":
            before = csr.batch_score()
            probe = csr.probe_add_score(keys)
            # probe must not mutate observable state...
            assert csr.batch_score() == pytest.approx(before)
            # ...and must equal the add-then-score value of the reference.
            ref_probe = ref.score_with_keys(
                list(ref._present.keys()) + list(keys)
            )
            assert probe == pytest.approx(ref_probe)
        _assert_trackers_agree(csr, ref)


@given(coverages=_coverages(), batch=st.lists(st.sampled_from(_KEYS), max_size=15))
@settings(max_examples=80, deadline=None)
def test_batch_equals_scalar_loop(coverages, batch):
    """add_keys/remove_keys must equal the per-key scalar loop exactly."""
    batched = CoverageTracker(coverages)
    scalar = CoverageTracker(coverages)
    batched.add_keys(batch)
    for key in batch:
        scalar.add_key(key)
    np.testing.assert_array_equal(batched.covered_counts(), scalar.covered_counts())
    half = batch[: len(batch) // 2]
    batched.remove_keys(half)
    for key in half:
        scalar.remove_key(key)
    np.testing.assert_array_equal(batched.covered_counts(), scalar.covered_counts())
    assert batched.batch_score() == pytest.approx(scalar.batch_score())
