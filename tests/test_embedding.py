"""Unit tests for repro.embedding (text, query, tuple embedders, clustering)."""

import numpy as np
import pytest

from repro.db import Comparison, SPJQuery, compute_database_stats, sql
from repro.embedding import (
    QueryEmbedder,
    TokenHasher,
    TupleEmbedder,
    cosine_similarity,
    cosine_similarity_matrix,
    kmeans,
    kmedoids,
    select_representatives,
)


class TestTokenHasher:
    def test_deterministic(self):
        a = TokenHasher().token_vector("hello")
        b = TokenHasher().token_vector("hello")
        assert np.allclose(a, b)

    def test_distinct_tokens_differ(self):
        hasher = TokenHasher()
        assert not np.allclose(hasher.token_vector("a"), hasher.token_vector("b"))

    def test_unit_norm(self):
        v = TokenHasher().token_vector("anything")
        assert abs(np.linalg.norm(v) - 1.0) < 1e-12

    def test_embed_empty_is_zero(self):
        assert np.allclose(TokenHasher().embed([]), 0.0)

    def test_embed_normalized(self):
        v = TokenHasher().embed(["a", "b", "c"])
        assert abs(np.linalg.norm(v) - 1.0) < 1e-9

    def test_shared_tokens_increase_similarity(self):
        hasher = TokenHasher()
        base = hasher.embed(["t1", "t2", "t3", "t4"])
        near = hasher.embed(["t1", "t2", "t3", "x"])
        far = hasher.embed(["y1", "y2", "y3", "y4"])
        assert cosine_similarity(base, near) > cosine_similarity(base, far)

    def test_weights_shift_embedding(self):
        hasher = TokenHasher()
        unweighted = hasher.embed(["a", "b"])
        weighted = hasher.embed(["a", "b"], weights=[10.0, 1.0])
        assert cosine_similarity(weighted, hasher.token_vector("a")) > cosine_similarity(
            unweighted, hasher.token_vector("a")
        )

    def test_weights_length_check(self):
        with pytest.raises(ValueError):
            TokenHasher().embed(["a"], weights=[1.0, 2.0])

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            TokenHasher(dim=1)

    def test_embed_many_shape(self):
        mat = TokenHasher(dim=16).embed_many([["a"], ["b"], ["c"]])
        assert mat.shape == (3, 16)


class TestCosine:
    def test_zero_vector_similarity(self):
        assert cosine_similarity(np.zeros(4), np.ones(4)) == 0.0

    def test_matrix_shape(self):
        a = np.random.default_rng(0).standard_normal((3, 8))
        b = np.random.default_rng(1).standard_normal((5, 8))
        assert cosine_similarity_matrix(a, b).shape == (3, 5)

    def test_matrix_self_similarity_diagonal(self):
        a = np.random.default_rng(0).standard_normal((4, 8))
        sims = cosine_similarity_matrix(a, a)
        assert np.allclose(np.diag(sims), 1.0)


class TestQueryEmbedder:
    def test_same_query_same_vector(self, mini_db):
        stats = compute_database_stats(mini_db)
        embedder = QueryEmbedder(stats=stats)
        q = sql("SELECT * FROM movies WHERE movies.year > 2000")
        assert np.allclose(embedder.embed(q), embedder.embed(q))

    def test_similar_constants_closer_than_different_shape(self, mini_db):
        stats = compute_database_stats(mini_db)
        embedder = QueryEmbedder(stats=stats)
        a = sql("SELECT * FROM movies WHERE movies.year > 2000")
        b = sql("SELECT * FROM movies WHERE movies.year > 2001")
        c = sql("SELECT * FROM cast_info WHERE cast_info.actor = 'ann'")
        va, vb, vc = embedder.embed(a), embedder.embed(b), embedder.embed(c)
        assert cosine_similarity(va, vb) > cosine_similarity(va, vc)

    def test_bucket_tokens_from_stats(self, mini_db):
        stats = compute_database_stats(mini_db)
        embedder = QueryEmbedder(stats=stats)
        tokens = embedder.tokens(sql("SELECT * FROM movies WHERE movies.year > 2005"))
        assert any(t.startswith("bucket:") for t in tokens)

    def test_no_stats_no_buckets(self):
        embedder = QueryEmbedder()
        tokens = embedder.tokens(sql("SELECT * FROM movies WHERE movies.year > 2005"))
        assert not any(t.startswith("bucket:") for t in tokens)

    def test_aggregate_embeds_via_spj_core(self, mini_db):
        stats = compute_database_stats(mini_db)
        embedder = QueryEmbedder(stats=stats)
        agg = sql("SELECT genre, COUNT(*) FROM movies GROUP BY genre")
        tokens = embedder.tokens(agg)
        assert "agg:count" in tokens
        assert "table:movies" in tokens

    def test_workload_matrix(self, mini_db):
        embedder = QueryEmbedder(dim=32)
        queries = [sql("SELECT * FROM movies"), sql("SELECT * FROM cast_info")]
        assert embedder.embed_workload(queries).shape == (2, 32)


class TestTupleEmbedder:
    def test_row_tokens_include_column_names(self, movies, mini_db):
        stats = compute_database_stats(mini_db)
        embedder = TupleEmbedder(stats=stats)
        tokens = embedder.row_tokens(movies, 0)
        assert "col:movies.genre" in tokens
        assert "val:movies.genre=drama" in tokens
        assert "table:movies" in tokens

    def test_similar_rows_closer(self, movies, mini_db):
        stats = compute_database_stats(mini_db)
        embedder = TupleEmbedder(stats=stats)
        # Rows 1 and 4 share genre=action and year=2005; row 3 is a 2020
        # scifi title, so it shares neither value token nor year bucket.
        v1 = embedder.embed_row(movies, 1)
        v4 = embedder.embed_row(movies, 4)
        v3 = embedder.embed_row(movies, 3)
        assert cosine_similarity(v1, v4) > cosine_similarity(v1, v3)

    def test_embed_table_shape(self, movies):
        embedder = TupleEmbedder(dim=16)
        assert embedder.embed_table(movies).shape == (6, 16)
        assert embedder.embed_table(movies, [1, 3]).shape == (2, 16)

    def test_group_embedding_normalized(self, movies, cast):
        embedder = TupleEmbedder()
        v = embedder.embed_group([(movies, 0), (cast, 0)])
        assert abs(np.linalg.norm(v) - 1.0) < 1e-9

    def test_empty_group_zero(self, movies):
        assert np.allclose(TupleEmbedder().embed_group([]), 0.0)


class TestClustering:
    def _blobs(self, rng):
        a = rng.normal(0, 0.1, size=(20, 4))
        b = rng.normal(5, 0.1, size=(20, 4))
        return np.vstack([a, b])

    def test_kmeans_separates_blobs(self, rng):
        points = self._blobs(rng)
        result = kmeans(points, 2, rng)
        labels_a = set(result.labels[:20].tolist())
        labels_b = set(result.labels[20:].tolist())
        assert len(labels_a) == 1 and len(labels_b) == 1
        assert labels_a != labels_b

    def test_kmeans_k_clipped(self, rng):
        points = rng.standard_normal((3, 2))
        assert kmeans(points, 10, rng).k == 3

    def test_kmeans_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 2)), 2, rng)

    def test_medoids_are_members(self, rng):
        points = self._blobs(rng)
        result = kmeans(points, 2, rng)
        for c in range(2):
            assert result.medoids[c] in result.members(result.labels[result.medoids[c]])

    def test_kmedoids_separates_blobs(self, rng):
        points = self._blobs(rng)
        result = kmedoids(points, 2, rng)
        assert result.labels[0] != result.labels[-1]
        assert len(set(result.medoids.tolist())) == 2

    def test_select_representatives_bounds(self, rng):
        points = rng.standard_normal((30, 4))
        reps = select_representatives(points, 5, rng)
        assert 1 <= len(reps) <= 5
        assert all(0 <= r < 30 for r in reps)

    def test_select_representatives_all_when_few(self, rng):
        points = rng.standard_normal((3, 4))
        assert select_representatives(points, 10, rng) == [0, 1, 2]

    def test_select_representatives_empty(self, rng):
        assert select_representatives(np.zeros((0, 4)), 3, rng) == []
