"""Unit tests for repro.rl: layers, gradients, PPO, rollouts, collection."""

import numpy as np
import pytest

from repro.rl import (
    MLP,
    ActorNetwork,
    Adam,
    CriticNetwork,
    Environment,
    MultiActorCollector,
    PPOConfig,
    PPOUpdater,
    RolloutBuffer,
    Trajectory,
    discounted_returns,
    entropy_of,
    gae_advantages,
    make_actor_specs,
    masked_log_softmax,
    softmax,
)


class TestMLP:
    def test_shapes(self, rng):
        net = MLP([4, 8, 3], rng)
        out = net.predict(np.zeros((5, 4)))
        assert out.shape == (5, 3)

    def test_needs_two_sizes(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_gradient_check(self, rng):
        """Finite-difference check of backward() on a scalar loss."""
        net = MLP([3, 5, 2], rng)
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 2))

        def loss_of():
            return 0.5 * float(np.sum((net.predict(x) - target) ** 2))

        out, cache = net.forward(x)
        weight_grads, bias_grads = net.backward(cache, out - target)
        grads = weight_grads + bias_grads
        params = net.parameters()
        epsilon = 1e-6
        for param, grad in zip(params, grads):
            flat_index = np.unravel_index(
                int(rng.integers(param.size)), param.shape
            )
            original = param[flat_index]
            param[flat_index] = original + epsilon
            up = loss_of()
            param[flat_index] = original - epsilon
            down = loss_of()
            param[flat_index] = original
            numeric = (up - down) / (2 * epsilon)
            assert abs(numeric - grad[flat_index]) < 1e-4, "gradient mismatch"

    def test_copy_from_and_clone(self, rng):
        a = MLP([3, 4, 2], rng)
        b = a.clone()
        assert all(np.allclose(x, y) for x, y in zip(a.parameters(), b.parameters()))
        b.weights[0][0, 0] += 1.0
        assert not np.allclose(a.weights[0], b.weights[0])

    def test_copy_shape_mismatch(self, rng):
        a = MLP([3, 4, 2], rng)
        b = MLP([3, 5, 2], rng)
        with pytest.raises(ValueError):
            a.copy_from(b)


class TestAdam:
    def test_minimizes_quadratic(self):
        param = np.asarray([5.0])
        optimizer = Adam([param], learning_rate=0.1)
        for _ in range(200):
            optimizer.step([2 * param])
        assert abs(param[0]) < 0.05

    def test_gradient_count_check(self):
        param = np.zeros(2)
        optimizer = Adam([param])
        with pytest.raises(ValueError):
            optimizer.step([np.zeros(2), np.zeros(2)])


class TestSoftmaxMasking:
    def test_softmax_sums_to_one(self):
        p = softmax(np.asarray([[1.0, 2.0, 3.0]]))
        assert abs(p.sum() - 1.0) < 1e-12

    def test_masked_log_softmax_invalid_is_neg_inf(self):
        logits = np.asarray([[1.0, 2.0, 3.0]])
        mask = np.asarray([[True, False, True]])
        lp = masked_log_softmax(logits, mask)
        assert lp[0, 1] == -np.inf
        assert abs(np.exp(lp[0, [0, 2]]).sum() - 1.0) < 1e-12

    def test_all_masked_rejected(self):
        with pytest.raises(ValueError):
            masked_log_softmax(np.zeros((1, 3)), np.zeros((1, 3), dtype=bool))

    def test_extreme_logits_stable(self):
        lp = masked_log_softmax(np.asarray([[1e4, -1e4]]), np.ones((1, 2), dtype=bool))
        assert np.isfinite(lp[0, 0])


class TestReturnsAdvantages:
    def test_discounted_returns(self):
        returns = discounted_returns([1.0, 1.0, 1.0], gamma=0.5)
        assert np.allclose(returns, [1.75, 1.5, 1.0])

    def test_gamma_one_is_suffix_sum(self):
        returns = discounted_returns([1.0, 2.0, 3.0], gamma=1.0)
        assert np.allclose(returns, [6.0, 5.0, 3.0])

    def test_gae_zero_lambda_is_td(self):
        rewards = [1.0, 0.0]
        values = [0.5, 0.25]
        adv = gae_advantages(rewards, values, gamma=1.0, lam=0.0)
        assert np.allclose(adv, [1 + 0.25 - 0.5, 0 + 0 - 0.25])

    def test_gae_shapes(self):
        adv = gae_advantages([1.0] * 5, [0.0] * 5, 0.99, 0.95)
        assert adv.shape == (5,)


class TestPolicyNetworks:
    def test_sample_respects_mask(self, rng):
        actor = ActorNetwork(6, rng, hidden=(8,))
        mask = np.asarray([True, False, True, False, False, False])
        for _ in range(30):
            decision = actor.sample(np.zeros(6), mask, rng)
            assert mask[decision.action]

    def test_greedy_respects_mask(self, rng):
        actor = ActorNetwork(4, rng, hidden=(8,))
        mask = np.asarray([False, False, True, False])
        assert actor.greedy(np.zeros(4), mask) == 2

    def test_log_prob_consistency(self, rng):
        actor = ActorNetwork(5, rng, hidden=(8,))
        mask = np.ones(5, dtype=bool)
        decision = actor.sample(np.zeros(5), mask, rng)
        assert abs(np.exp(decision.log_prob) - decision.probabilities[decision.action]) < 1e-9

    def test_temperature_flattens(self, rng):
        actor = ActorNetwork(5, rng, hidden=(8,))
        mask = np.ones(5, dtype=bool)
        state = rng.standard_normal(5)
        cold = np.exp(actor.log_probs(state[None], mask[None], temperature=0.1)[0])
        hot = np.exp(actor.log_probs(state[None], mask[None], temperature=10.0)[0])
        assert entropy_of(hot) > entropy_of(cold)

    def test_critic_scalar_output(self, rng):
        critic = CriticNetwork(5, rng, hidden=(8,))
        values = critic.value(np.zeros((3, 5)))
        assert values.shape == (3,)

    def test_clone_independent(self, rng):
        actor = ActorNetwork(4, rng, hidden=(8,))
        clone = actor.clone()
        clone.net.weights[0][0, 0] += 10.0
        assert not np.allclose(actor.net.weights[0], clone.net.weights[0])


class _BanditEnv(Environment):
    """3-armed bandit as an episodic env: one step per episode."""

    REWARDS = [0.1, 0.9, 0.2]

    @property
    def n_actions(self):
        return 3

    def reset(self):
        return np.zeros(3), np.ones(3, dtype=bool)

    def step(self, action):
        return np.zeros(3), self.REWARDS[action], True, np.zeros(3, dtype=bool)


def _train_bandit(config: PPOConfig, n_iterations: int = 40, seed: int = 3) -> float:
    rng = np.random.default_rng(seed)
    actor = ActorNetwork(3, rng, hidden=(16,))
    critic = CriticNetwork(3, rng, hidden=(16,)) if config.use_critic else None
    updater = PPOUpdater(actor, critic, config, rng=np.random.default_rng(seed + 1))
    collector = MultiActorCollector(
        _BanditEnv, actor, critic, make_actor_specs(2, seed=seed + 2)
    )
    reward = 0.0
    for _ in range(n_iterations):
        buffer = RolloutBuffer()
        reward = collector.collect(8, buffer)
        updater.update(buffer.build(use_critic=config.use_critic))
    return reward


class TestPPOVariants:
    def test_ppo_learns_bandit(self):
        config = PPOConfig(learning_rate=5e-3, update_epochs=4, minibatch_size=16)
        assert _train_bandit(config) > 0.7

    def test_a2c_learns_bandit(self):
        config = PPOConfig(learning_rate=5e-3, use_clip=False)
        assert _train_bandit(config) > 0.7

    def test_reinforce_learns_bandit(self):
        config = PPOConfig(learning_rate=5e-3, use_clip=False, use_critic=False)
        assert _train_bandit(config) > 0.6

    def test_use_critic_requires_critic(self, rng):
        actor = ActorNetwork(3, rng)
        with pytest.raises(ValueError):
            PPOUpdater(actor, None, PPOConfig(use_critic=True))

    def test_variant_names(self):
        assert PPOConfig().variant_name() == "ppo"
        assert PPOConfig(use_clip=False).variant_name() == "a2c"
        assert PPOConfig(use_clip=False, use_critic=False).variant_name() == "reinforce"

    def test_update_stats_populated(self, rng):
        config = PPOConfig(learning_rate=1e-3)
        actor = ActorNetwork(3, rng, hidden=(8,))
        critic = CriticNetwork(3, rng, hidden=(8,))
        updater = PPOUpdater(actor, critic, config, rng=rng)
        collector = MultiActorCollector(
            _BanditEnv, actor, critic, make_actor_specs(1, seed=0)
        )
        buffer = RolloutBuffer()
        collector.collect(4, buffer)
        stats = updater.update(buffer.build())
        assert stats.n_samples == 4
        assert stats.entropy > 0


class TestRolloutBuffer:
    def _trajectory(self, n=3):
        trajectory = Trajectory()
        for i in range(n):
            trajectory.append(
                state=np.zeros(2), action=i % 2, reward=1.0,
                log_prob=-0.5, value=0.1, mask=np.ones(2, dtype=bool),
            )
        return trajectory

    def test_empty_trajectory_rejected(self):
        buffer = RolloutBuffer()
        with pytest.raises(ValueError):
            buffer.add(Trajectory())

    def test_build_empty_rejected(self):
        with pytest.raises(ValueError):
            RolloutBuffer().build()

    def test_flatten_counts(self):
        buffer = RolloutBuffer()
        buffer.add(self._trajectory(3))
        buffer.add(self._trajectory(2))
        assert len(buffer) == 5
        assert buffer.n_trajectories == 2
        batch = buffer.build()
        assert len(batch) == 5

    def test_advantage_normalization(self):
        buffer = RolloutBuffer()
        buffer.add(self._trajectory(10))
        batch = buffer.build(normalize_advantages=True)
        assert abs(batch.advantages.mean()) < 1e-9

    def test_reinforce_advantages_are_returns(self):
        buffer = RolloutBuffer(gamma=1.0)
        buffer.add(self._trajectory(3))
        batch = buffer.build(use_critic=False, normalize_advantages=False)
        assert np.allclose(batch.advantages, [3.0, 2.0, 1.0])

    def test_mean_episode_reward(self):
        buffer = RolloutBuffer()
        buffer.add(self._trajectory(3))
        assert buffer.mean_episode_reward == pytest.approx(3.0)


class TestActorSpecs:
    def test_temperature_spread(self):
        specs = make_actor_specs(4, seed=0)
        temperatures = [s.temperature for s in specs]
        assert temperatures == sorted(temperatures)
        assert temperatures[0] < 1.0 < temperatures[-1]

    def test_single_actor_neutral(self):
        specs = make_actor_specs(1, seed=0)
        assert specs[0].temperature == 1.0

    def test_independent_rngs(self):
        specs = make_actor_specs(2, seed=0)
        a = specs[0].rng.integers(0, 1000, 5)
        b = specs[1].rng.integers(0, 1000, 5)
        assert not np.array_equal(a, b)

    def test_zero_actors_rejected(self):
        with pytest.raises(ValueError):
            make_actor_specs(0, seed=0)
