"""Tests for the subset-selector baselines (RAN..VAE)."""

import numpy as np
import pytest

from repro.baselines import (
    baseline_names,
    make_baseline,
    plan_signature,
    skyline_layers,
)
from repro.core import score
from repro.db import execute, sql


@pytest.fixture(scope="module")
def split(tiny_flights):
    train, test = tiny_flights.workload.split(0.3, np.random.default_rng(5))
    return train, test


K = 80
F = 50


def _run(name, bundle, train, **kwargs):
    selector = make_baseline(name)
    rng = np.random.default_rng(42)
    return selector, selector.select(bundle.db, train, K, F, rng, **kwargs)


class TestRegistry:
    def test_all_names_constructible(self):
        for name in baseline_names():
            assert make_baseline(name).name == name

    def test_case_insensitive(self):
        assert make_baseline("ran").name == "RAN"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown baseline"):
            make_baseline("NOPE")


class TestBudgetInvariant:
    @pytest.mark.parametrize("name", ["RAN", "TOP", "CACH", "QRD", "VERD", "QUIK"])
    def test_subset_within_budget(self, name, tiny_flights, split):
        train, _ = split
        _, result = _run(name, tiny_flights, train)
        assert result.approximation is not None
        assert 0 < result.approximation.total_size() <= K

    @pytest.mark.parametrize("name", ["BRT", "GRE"])
    def test_search_methods_within_budget(self, name, tiny_flights, split):
        train, _ = split
        _, result = _run(name, tiny_flights, train, time_budget=1.0)
        assert result.approximation.total_size() <= K

    @pytest.mark.parametrize("name", ["RAN", "TOP", "CACH", "QRD", "VERD", "QUIK"])
    def test_subset_rows_come_from_database(self, name, tiny_flights, split):
        train, _ = split
        _, result = _run(name, tiny_flights, train)
        for table_name, ids in result.approximation.rows.items():
            base_ids = set(tiny_flights.db.table(table_name).row_ids.tolist())
            assert ids <= base_ids


class TestQualityOrdering:
    def test_workload_aware_beats_random(self, tiny_flights, split):
        """TOP/QUIK/CACH know the workload; RAN does not."""
        train, test = split
        scores = {}
        for name in ("RAN", "TOP", "QUIK", "CACH"):
            _, result = _run(name, tiny_flights, train)
            scores[name] = score(tiny_flights.db, result.database, test, F)
        best_aware = max(scores["TOP"], scores["QUIK"], scores["CACH"])
        assert best_aware >= scores["RAN"]

    def test_greedy_beats_random_given_time(self, tiny_flights, split):
        train, test = split
        _, greedy_result = _run("GRE", tiny_flights, train, time_budget=20.0)
        _, random_result = _run("RAN", tiny_flights, train)
        g = score(tiny_flights.db, greedy_result.database, test, F)
        r = score(tiny_flights.db, random_result.database, test, F)
        assert g >= r


class TestTimeBudgets:
    def test_brt_respects_budget(self, tiny_flights, split):
        import time

        train, _ = split
        # Measuring a real wall-clock budget is the point of this test.
        start = time.perf_counter()  # lint: disable=no-wallclock-in-library
        _, result = _run("BRT", tiny_flights, train, time_budget=0.5)
        assert time.perf_counter() - start < 5.0  # lint: disable=no-wallclock-in-library
        assert not result.completed  # BRT always runs out, as in the paper

    def test_gre_flags_incomplete_on_tiny_budget(self, tiny_flights, split):
        train, _ = split
        _, result = _run("GRE", tiny_flights, train, time_budget=0.001)
        assert not result.completed


class TestCacheBaseline:
    def test_extra_metrics_reported(self, tiny_flights, split):
        train, _ = split
        _, result = _run("CACH", tiny_flights, train)
        assert "hit_rate" in result.extra
        assert 0.0 <= result.extra["hit_rate"] <= 1.0


class TestVerdict:
    def test_sampling_fractions_recorded(self, tiny_flights, split):
        train, _ = split
        _, result = _run("VERD", tiny_flights, train)
        fractions = result.extra["sampling_fractions"]
        assert fractions
        for fraction in fractions.values():
            assert 0 < fraction <= 1


class TestQuickR:
    def test_plan_signature_groups_same_shape(self):
        a = sql("SELECT * FROM t WHERE t.x > 1")
        b = sql("SELECT * FROM t WHERE t.x > 99")
        c = sql("SELECT * FROM t WHERE t.y > 1")
        assert plan_signature(a) == plan_signature(b)
        assert plan_signature(a) != plan_signature(c)

    def test_catalog_size_reported(self, tiny_flights, split):
        train, _ = split
        _, result = _run("QUIK", tiny_flights, train)
        assert result.extra["n_signatures"] >= 1


class TestSkyline:
    def test_layers_maximal_first(self):
        features = np.asarray([
            [1.0, 1.0],
            [2.0, 2.0],   # dominates everything
            [0.5, 3.0],   # incomparable with [2,2]? no: 0.5<2 but 3>2 -> layer 1
            [0.4, 0.4],
        ])
        order = skyline_layers(features, max_rows=4)
        first_layer = set(order[:2])
        assert first_layer == {1, 2}
        assert order[-1] == 3

    def test_max_rows_respected(self):
        features = np.random.default_rng(0).standard_normal((20, 3))
        assert len(skyline_layers(features, max_rows=7)) == 7

    def test_runs_on_flights(self, tiny_flights, split):
        train, _ = split
        _, result = _run("SKY", tiny_flights, train)
        assert result.approximation.total_size() <= K


class TestVAE:
    def test_produces_synthetic_database(self, tiny_flights, split):
        train, _ = split
        selector, result = _run("VAE", tiny_flights, train)
        assert result.approximation is None
        assert result.extra.get("generative")
        # Synthetic database is queryable and roughly budget-sized.
        total = result.database.total_rows()
        assert 0 < total <= 2 * K

    def test_synthetic_tuples_score_near_zero(self, tiny_flights, split):
        train, test = split
        _, result = _run("VAE", tiny_flights, train)
        value = score(tiny_flights.db, result.database, test, F)
        assert value < 0.1  # the paper's core finding about generative AQP

    def test_regenerate_requires_select(self, tiny_flights):
        from repro.baselines import VAEBaseline

        vae = VAEBaseline()
        with pytest.raises(RuntimeError):
            vae.regenerate(tiny_flights.db, K, np.random.default_rng(0))

    def test_regenerate_fresh_database(self, tiny_flights, split):
        train, _ = split
        selector, _ = _run("VAE", tiny_flights, train)
        regenerated = selector.regenerate(tiny_flights.db, K, np.random.default_rng(9))
        assert regenerated.total_rows() > 0
