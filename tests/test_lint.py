"""Tests for the AST project linter (repro.lint).

Each rule gets an inline-source fixture: a positive hit (correct rule
id, file and line), plus checks that inline suppressions, the baseline
file, JSON output, and exit codes behave as documented. The final test
pins the acceptance invariant: the repo's own ``src/`` tree is clean
under the full rule pack with an empty baseline.
"""

import json
from pathlib import Path

import pytest

from repro.lint import (
    RULES,
    UnknownRuleError,
    engine,
    run_lint,
    write_baseline,
)
from repro.lint.cli import run as lint_cli_run

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(tmp_path, source, rules=None, filename="module.py"):
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return run_lint([str(path)], rules)


def rule_lines(report, rule):
    return [(f.rule, f.line) for f in report.findings if f.rule == rule]


class TestRulePack:
    def test_no_global_numpy_random_hit(self, tmp_path):
        report = lint_source(tmp_path, (
            "import numpy as np\n"
            "\n"
            "def f():\n"
            "    return np.random.rand(3)\n"
        ))
        assert rule_lines(report, "no-global-numpy-random") == [
            ("no-global-numpy-random", 4)
        ]

    def test_no_global_numpy_random_from_import(self, tmp_path):
        report = lint_source(tmp_path, (
            "from numpy.random import shuffle\n"
            "shuffle([1, 2])\n"
        ))
        assert rule_lines(report, "no-global-numpy-random") == [
            ("no-global-numpy-random", 2)
        ]

    def test_generator_construction_is_allowed(self, tmp_path):
        report = lint_source(tmp_path, (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
            "seq = np.random.SeedSequence(1)\n"
            "x = rng.random(3)\n"
        ))
        assert not report.findings

    def test_forbidden_import_hit(self, tmp_path):
        report = lint_source(tmp_path, (
            "import torch\n"
            "from pandas import DataFrame\n"
            "import numpy as np\n"
            "import os\n"
        ))
        assert rule_lines(report, "forbidden-import") == [
            ("forbidden-import", 1),
            ("forbidden-import", 2),
        ]

    def test_relative_imports_are_allowed(self, tmp_path):
        report = lint_source(
            tmp_path, "from . import sibling\nfrom ..pkg import thing\n"
        )
        assert not report.findings

    def test_no_bare_print_hit_and_exemptions(self, tmp_path):
        source = "print('hello')\n"
        report = lint_source(tmp_path, source)
        assert rule_lines(report, "no-bare-print") == [("no-bare-print", 1)]
        # The CLI entry point and the console implementation are exempt.
        assert not lint_source(tmp_path, source, filename="__main__.py").findings
        assert not lint_source(tmp_path, source, filename="obs/log.py").findings

    def test_no_silent_except_hit(self, tmp_path):
        report = lint_source(tmp_path, (
            "try:\n"
            "    x = 1\n"
            "except:\n"
            "    pass\n"
            "try:\n"
            "    y = 2\n"
            "except Exception:\n"
            "    pass\n"
        ))
        assert rule_lines(report, "no-silent-except") == [
            ("no-silent-except", 3),
            ("no-silent-except", 7),
        ]

    def test_handled_or_narrow_except_is_allowed(self, tmp_path):
        report = lint_source(tmp_path, (
            "try:\n"
            "    x = 1\n"
            "except ValueError:\n"
            "    pass\n"
            "except Exception:\n"
            "    raise RuntimeError('context')\n"
        ))
        assert not report.findings

    def test_no_wallclock_hit(self, tmp_path):
        report = lint_source(tmp_path, (
            "import time\n"
            "from time import perf_counter\n"
            "a = time.time()\n"
            "b = perf_counter()\n"
        ))
        assert rule_lines(report, "no-wallclock-in-library") == [
            ("no-wallclock-in-library", 3),
            ("no-wallclock-in-library", 4),
        ]

    def test_wallclock_exempt_under_obs_and_bench(self, tmp_path):
        source = "import time\nstart = time.perf_counter()\n"
        for directory in ("obs", "bench"):
            report = lint_source(
                tmp_path, source, filename=f"{directory}/timing.py"
            )
            assert not report.findings

    def test_obs_clock_import_is_allowed(self, tmp_path):
        report = lint_source(tmp_path, (
            "from repro.obs.clock import perf_counter\n"
            "start = perf_counter()\n"
        ))
        assert not report.findings

    def test_no_mutable_default_arg_hit(self, tmp_path):
        report = lint_source(tmp_path, (
            "def f(xs=[]):\n"
            "    return xs\n"
            "\n"
            "def g(mapping=dict()):\n"
            "    return mapping\n"
            "\n"
            "def ok(xs=None, n=3, name='x'):\n"
            "    return xs\n"
        ))
        assert rule_lines(report, "no-mutable-default-arg") == [
            ("no-mutable-default-arg", 1),
            ("no-mutable-default-arg", 4),
        ]


class TestEngine:
    def test_inline_suppression_honored(self, tmp_path):
        report = lint_source(
            tmp_path, "print('x')  # lint: disable=no-bare-print\n"
        )
        assert not report.findings

    def test_blanket_suppression_honored(self, tmp_path):
        report = lint_source(tmp_path, (
            "import time\n"
            "print(time.time())  # lint: disable\n"
        ))
        assert not report.findings

    def test_suppression_inside_string_is_not_a_directive(self, tmp_path):
        report = lint_source(
            tmp_path, "print('# lint: disable=no-bare-print')\n"
        )
        assert rule_lines(report, "no-bare-print") == [("no-bare-print", 1)]

    def test_suppression_is_rule_specific(self, tmp_path):
        report = lint_source(
            tmp_path, "print('x')  # lint: disable=no-silent-except\n"
        )
        assert rule_lines(report, "no-bare-print") == [("no-bare-print", 1)]

    def test_baseline_filters_grandfathered_findings(self, tmp_path):
        path = tmp_path / "legacy.py"
        path.write_text("print('grandfathered')\n")
        first = run_lint([str(path)])
        assert first.exit_code == 1
        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), first.findings)
        second = run_lint([str(path)], baseline_path=str(baseline))
        assert second.exit_code == 0
        assert second.findings == []
        assert second.baselined == 1

    def test_baseline_does_not_hide_new_findings(self, tmp_path):
        path = tmp_path / "legacy.py"
        path.write_text("print('old')\n")
        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), run_lint([str(path)]).findings)
        path.write_text("print('old')\nprint('new')\n")
        report = run_lint([str(path)], baseline_path=str(baseline))
        assert [f.line for f in report.findings] == [2]
        assert report.baselined == 1

    def test_malformed_baseline_raises(self, tmp_path):
        baseline = tmp_path / "bad.json"
        baseline.write_text("[1, 2, 3]")
        with pytest.raises(engine.BaselineError):
            run_lint([str(tmp_path)], baseline_path=str(baseline))

    def test_unknown_rule_raises(self, tmp_path):
        with pytest.raises(UnknownRuleError):
            run_lint([str(tmp_path)], ["no-such-rule"])

    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        report = lint_source(tmp_path, "def broken(:\n")
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert report.exit_code == 1

    def test_rule_subset_runs_only_those_rules(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import torch\nprint('x')\n",
            rules=["no-bare-print"],
        )
        assert {f.rule for f in report.findings} == {"no-bare-print"}


class TestCliLayer:
    def test_json_output_schema(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("print('x')\n")
        code, text = lint_cli_run([str(path)], as_json=True, no_cache=True)
        assert code == 1
        payload = json.loads(text)
        assert set(payload) == {
            "version", "rules", "files_checked", "baselined",
            "errors", "warnings", "findings",
        }
        assert payload["errors"] == 1
        assert payload["warnings"] == 0
        (finding,) = payload["findings"]
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "severity", "line_hash"
        }
        assert finding["rule"] == "no-bare-print"
        assert finding["line"] == 1
        assert finding["line_hash"]
        assert finding["path"].endswith("bad.py")

    def test_human_output_has_file_line_rule(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("\nprint('x')\n")
        code, text = lint_cli_run([str(path)], no_cache=True)
        assert code == 1
        assert "bad.py:2:1: no-bare-print error:" in text

    def test_exit_zero_on_clean_tree(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text("import numpy as np\n")
        code, text = lint_cli_run([str(path)], no_cache=True)
        assert code == 0
        assert "OK" in text

    def test_exit_two_on_unknown_rule(self, tmp_path):
        code, text = lint_cli_run([str(tmp_path)], rules="bogus-rule")
        assert code == 2
        assert "bogus-rule" in text

    def test_write_baseline_then_clean(self, tmp_path):
        path = tmp_path / "legacy.py"
        path.write_text("print('x')\n")
        baseline = tmp_path / "baseline.json"
        code, _ = lint_cli_run(
            [str(path)], baseline=str(baseline), write_baseline=True,
            no_cache=True,
        )
        assert code == 0
        code, _ = lint_cli_run(
            [str(path)], baseline=str(baseline), no_cache=True
        )
        assert code == 0

    def test_list_rules_mentions_full_pack(self):
        code, text = lint_cli_run([], list_rules=True)
        assert code == 0
        for name in RULES:
            assert name in text


class TestRepoIsClean:
    def test_src_tree_has_no_findings(self):
        """Acceptance: the merged tree lints clean with an empty baseline."""
        report = run_lint([str(REPO_ROOT / "src")])
        assert report.findings == []
        assert report.files_checked > 70

    def test_committed_baseline_is_empty(self):
        baseline = engine.load_baseline(
            str(REPO_ROOT / "lint_baseline.json")
        )
        assert baseline.empty

    def test_one_violation_of_each_rule_is_caught(self, tmp_path):
        """Acceptance: a fixture seeding one violation per shipped rule
        yields exactly one finding per rule, each at the right line."""
        source = (
            "import numpy as np\n"                       # 1
            "import time\n"                              # 2
            "import torch\n"                             # 3  forbidden-import
            "\n"
            "def f(xs=[]):\n"                            # 5  mutable default
            "    print(np.random.rand(2))\n"             # 6  print + global rng
            "    started = time.perf_counter()\n"        # 7  wallclock
            "    try:\n"
            "        return started\n"
            "    except Exception:\n"                    # 10 silent except
            "        pass\n"
        )
        report = lint_source(tmp_path, source)
        by_rule = {f.rule: f.line for f in report.findings}
        assert by_rule == {
            "forbidden-import": 3,
            "no-mutable-default-arg": 5,
            "no-bare-print": 6,
            "no-global-numpy-random": 6,
            "no-wallclock-in-library": 7,
            "no-silent-except": 10,
        }
        assert report.exit_code == 1
