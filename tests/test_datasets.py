"""Tests for the synthetic dataset bundles and workload helpers."""

import numpy as np
import pytest

from repro.datasets import (
    Workload,
    load_flights,
    load_imdb,
    load_mas,
)
from repro.datasets.synthetic import (
    skewed_foreign_keys,
    synthetic_names,
    year_column,
    zipf_choice,
    zipf_weights,
)
from repro.datasets.workloads import PooledSampler
from repro.db import execute, execute_aggregate, sql


class TestSyntheticPrimitives:
    def test_zipf_weights_normalized_decreasing(self):
        weights = zipf_weights(10)
        assert abs(weights.sum() - 1.0) < 1e-12
        assert all(weights[i] >= weights[i + 1] for i in range(9))

    def test_zipf_choice_skew(self, rng):
        picks = zipf_choice(list("abcdefghij"), 2000, rng, exponent=1.2)
        counts = {v: picks.count(v) for v in set(picks)}
        assert counts["a"] > counts.get("j", 0)

    def test_skewed_foreign_keys_in_range(self, rng):
        fks = skewed_foreign_keys(500, 40, rng)
        assert fks.min() >= 0 and fks.max() < 40

    def test_skewed_foreign_keys_heavy_tail(self, rng):
        fks = skewed_foreign_keys(2000, 100, rng)
        counts = np.bincount(fks, minlength=100)
        assert counts.max() > 3 * np.median(counts[counts > 0])

    def test_names_unique(self, rng):
        names = synthetic_names(200, rng)
        assert len(set(names)) == 200

    def test_year_column_bounds(self, rng):
        years = year_column(500, rng, low=1990, high=2020, mode=2010)
        assert years.min() >= 1990 and years.max() <= 2020

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestPooledSampler:
    def test_reuses_from_pool(self):
        rng = np.random.default_rng(0)
        sampler = PooledSampler(rng, reuse_probability=1.0)
        counter = iter(range(100))
        values = [sampler.draw(("k",), lambda: next(counter)) for _ in range(10)]
        assert set(values) == {0}

    def test_no_reuse_generates_fresh(self):
        rng = np.random.default_rng(0)
        sampler = PooledSampler(rng, reuse_probability=0.0, pool_limit=100)
        counter = iter(range(100))
        values = [sampler.draw(("k",), lambda: next(counter)) for _ in range(10)]
        assert values == list(range(10))

    def test_pool_limit_caps_distinct(self):
        rng = np.random.default_rng(0)
        sampler = PooledSampler(rng, reuse_probability=0.0, pool_limit=3)
        counter = iter(range(100))
        values = [sampler.draw(("k",), lambda: next(counter)) for _ in range(50)]
        assert len(set(values)) == 3

    def test_keys_independent(self):
        rng = np.random.default_rng(0)
        sampler = PooledSampler(rng, reuse_probability=1.0)
        a = sampler.draw(("a",), lambda: "A")
        b = sampler.draw(("b",), lambda: "B")
        assert (a, b) == ("A", "B")

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            PooledSampler(np.random.default_rng(0), reuse_probability=1.5)


class TestWorkloadContainer:
    def test_weights_normalized(self):
        workload = Workload(
            [sql("SELECT * FROM t"), sql("SELECT * FROM u")], np.asarray([2.0, 2.0])
        )
        assert np.allclose(workload.weights, [0.5, 0.5])

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            Workload([sql("SELECT * FROM t")], np.asarray([0.5, 0.5]))

    def test_split_partitions(self, rng):
        queries = [sql(f"SELECT * FROM t WHERE t.x = {i}") for i in range(10)]
        workload = Workload(queries)
        train, test = workload.split(0.3, rng)
        assert len(train) == 7 and len(test) == 3
        train_names = {q.to_sql() for q in train}
        test_names = {q.to_sql() for q in test}
        assert not train_names & test_names

    def test_split_needs_two(self, rng):
        with pytest.raises(ValueError):
            Workload([sql("SELECT * FROM t")]).split(0.5, rng)

    def test_spj_only_strips_aggregates(self):
        workload = Workload([
            sql("SELECT genre, COUNT(*) FROM movies GROUP BY genre"),
            sql("SELECT * FROM movies"),
        ])
        stripped = workload.spj_only()
        assert all(not q.is_aggregate for q in stripped)

    def test_subset(self):
        queries = [sql(f"SELECT * FROM t WHERE t.x = {i}") for i in range(5)]
        workload = Workload(queries)
        sub = workload.subset([0, 2])
        assert len(sub) == 2


@pytest.mark.parametrize("loader,tables", [
    (load_imdb, {"title", "company", "movie_companies", "person", "cast_info", "movie_info"}),
    (load_mas, {"author", "venue", "publication", "writes"}),
    (load_flights, {"carriers", "flights"}),
])
class TestBundles:
    def test_schema_and_workloads(self, loader, tables):
        bundle = loader(scale=0.1, n_queries=10, n_aggregate_queries=6)
        assert set(bundle.db.table_names) == tables
        assert len(bundle.workload) == 10
        assert len(bundle.aggregate_workload) == 6
        assert set(bundle.stats) == tables

    def test_workload_executable(self, loader, tables):
        bundle = loader(scale=0.1, n_queries=10, n_aggregate_queries=6)
        for query in bundle.workload:
            execute(bundle.db, query)
        for query in bundle.aggregate_workload:
            execute_aggregate(bundle.db, query)

    def test_deterministic(self, loader, tables):
        a = loader(scale=0.1, n_queries=6, n_aggregate_queries=4)
        b = loader(scale=0.1, n_queries=6, n_aggregate_queries=4)
        assert [q.to_sql() for q in a.workload] == [q.to_sql() for q in b.workload]
        for name in tables:
            ta, tb = a.db.table(name), b.db.table(name)
            assert len(ta) == len(tb)

    def test_scale_changes_size(self, loader, tables):
        small = loader(scale=0.1, n_queries=4, n_aggregate_queries=4)
        large = loader(scale=0.3, n_queries=4, n_aggregate_queries=4)
        assert large.db.total_rows() > small.db.total_rows()

    def test_scale_validation(self, loader, tables):
        with pytest.raises(ValueError):
            loader(scale=0.0)


class TestWorkloadCharacter:
    def test_imdb_result_sizes_spread(self, tiny_imdb):
        sizes = [len(execute(tiny_imdb.db, q)) for q in tiny_imdb.workload]
        assert min(sizes) < 20
        assert max(sizes) > 50

    def test_imdb_has_joins_and_single_table(self, tiny_imdb):
        n_tables = [len(q.tables) for q in tiny_imdb.workload]
        assert 1 in n_tables
        assert any(n >= 2 for n in n_tables)

    def test_flights_aggregate_classes_balanced(self, tiny_flights):
        from repro.db import AggFunc

        funcs = [q.aggregates[0].func for q in tiny_flights.aggregate_workload]
        assert {AggFunc.COUNT, AggFunc.SUM, AggFunc.AVG} <= set(funcs)
        grouped = [q for q in tiny_flights.aggregate_workload if q.group_by]
        assert len(grouped) == len(tiny_flights.aggregate_workload) // 2

    def test_workloads_share_hot_predicates(self, tiny_imdb):
        """The pooled sampler must create predicate overlap across queries."""
        texts = [q.predicate.to_sql() for q in tiny_imdb.workload]
        conjunct_counts: dict[str, int] = {}
        for text in texts:
            for part in text.strip("()").split(" AND "):
                conjunct_counts[part] = conjunct_counts.get(part, 0) + 1
        assert max(conjunct_counts.values()) >= 3
