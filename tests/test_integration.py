"""Integration tests: the full system, end to end, on each dataset.

Small RL budgets keep these fast; learning quality is the benchmarks' job.
The assertions here are about cross-module contracts: trained subsets are
real sub-databases, Eq. 1 agrees across code paths, the ablation variants
all train, and the session lifecycle (estimate → answer → drift →
fine-tune) holds together.
"""

import numpy as np
import pytest

from repro.core import (
    ASQPConfig,
    ASQPSystem,
    ASQPTrainer,
    CoverageTracker,
    score,
)
from repro.db import execute, sql


def _config(**overrides):
    defaults = dict(
        memory_budget=100,
        n_iterations=4,
        n_actors=2,
        episodes_per_actor=1,
        action_space_target=60,
        n_query_representatives=8,
        n_candidate_rollouts=2,
        learning_rate=1e-3,
        seed=21,
    )
    defaults.update(overrides)
    return ASQPConfig(**defaults)


@pytest.mark.parametrize("bundle_fixture", ["tiny_imdb", "tiny_mas", "tiny_flights"])
def test_end_to_end_per_dataset(bundle_fixture, request):
    bundle = request.getfixturevalue(bundle_fixture)
    train, test = bundle.workload.split(0.3, np.random.default_rng(1))
    model = ASQPTrainer(bundle.db, train, _config()).train()
    approx = model.approximation_set()
    assert 0 < approx.total_size() <= 100

    sub = approx.to_database(bundle.db)
    # Every kept tuple is a real base tuple.
    for table in sub:
        base = set(bundle.db.table(table.name).row_ids.tolist())
        assert set(table.row_ids.tolist()) <= base

    value = score(bundle.db, sub, test, frame_size=50)
    assert 0.0 <= value <= 1.0


def test_tracker_score_agrees_with_executed_score(tiny_imdb):
    """Eq. 1 via CoverageTracker tracks Eq. 1 via query execution.

    The tracker works at provenance granularity while executed scoring
    deduplicates projected tuples (shrinking numerator *and* denominator),
    so the two agree exactly for SELECT-* queries and stay close otherwise.
    """
    train, _ = tiny_imdb.workload.split(0.3, np.random.default_rng(2))
    model = ASQPTrainer(tiny_imdb.db, train, _config()).train()
    approx = model.approximation_set()

    tracker = CoverageTracker(model.coverages)
    tracker.add_keys(approx.keys())
    incremental = tracker.batch_score()

    from repro.datasets import Workload

    rep_workload = Workload(
        list(model.preprocessed.representatives),
        model.preprocessed.representative_weights.copy(),
    )
    executed = score(
        tiny_imdb.db, approx.to_database(tiny_imdb.db), rep_workload, frame_size=50
    )
    assert abs(incremental - executed) < 0.25


@pytest.mark.parametrize("environment", ["gsl", "drp", "drp+gsl"])
def test_ablation_environments_train(tiny_flights, environment):
    config = _config(environment=environment, drp_horizon=10)
    model = ASQPTrainer(tiny_flights.db, tiny_flights.workload, config).train()
    assert model.approximation_set().total_size() > 0


@pytest.mark.parametrize("use_ppo,use_ac", [(True, True), (False, True), (False, False)])
def test_ablation_agents_train(tiny_flights, use_ppo, use_ac):
    config = _config(use_ppo_clip=use_ppo, use_actor_critic=use_ac)
    model = ASQPTrainer(tiny_flights.db, tiny_flights.workload, config).train()
    assert len(model.history) > 0
    assert model.approximation_set().total_size() > 0


def test_trained_beats_empty_and_is_bounded_by_full(tiny_imdb):
    train, test = tiny_imdb.workload.split(0.3, np.random.default_rng(3))
    model = ASQPTrainer(tiny_imdb.db, train, _config(memory_budget=200)).train()
    sub = model.approximation_database()
    trained_score = score(tiny_imdb.db, sub, test, 50)
    empty_score = score(tiny_imdb.db, tiny_imdb.db.subset({}), test, 50)
    full_score = score(tiny_imdb.db, tiny_imdb.db, test, 50)
    assert empty_score <= trained_score <= full_score
    assert full_score == pytest.approx(1.0)
    assert trained_score > 0.0


def test_session_full_lifecycle(tiny_flights):
    config = _config(
        drift_trigger_count=2, fine_tune_iterations=1, seed=33,
    )
    session = ASQPSystem(config).fit(tiny_flights.db, tiny_flights.workload)

    # Phase 1: known queries answered (either path), outcomes sane.
    for query in list(tiny_flights.workload)[:5]:
        outcome = session.query(query)
        assert outcome.elapsed_seconds < 5.0

    # Phase 2: drifted queries eventually trigger fine-tuning.
    drifted = [
        sql("SELECT * FROM carriers WHERE carriers.low_cost = 1"),
        sql("SELECT * FROM carriers WHERE carriers.low_cost = 0"),
        sql("SELECT carriers.name FROM carriers WHERE carriers.code = 'AA'"),
    ]
    fine_tuned = False
    for query in drifted:
        outcome = session.query(query)
        fine_tuned = fine_tuned or outcome.fine_tuned
    assert fine_tuned

    # Phase 3: after fine-tuning the drifted interest is more answerable.
    estimate = session.estimator.estimate(drifted[0])
    assert estimate.familiarity > 0.5

    # The refreshed approximation set is still a genuine sub-database.
    for table in session.approx_db:
        base = set(tiny_flights.db.table(table.name).row_ids.tolist())
        assert set(table.row_ids.tolist()) <= base


def test_aggregate_queries_answerable_from_subset(tiny_flights):
    session = ASQPSystem(_config(seed=44)).fit(tiny_flights.db, tiny_flights.workload)
    agg = tiny_flights.aggregate_workload.queries[0]
    outcome = session.query(agg, confidence_threshold=0.0)  # force approx path
    assert outcome.used_approximation
    assert hasattr(outcome.result, "rows")
