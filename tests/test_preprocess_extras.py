"""Deeper tests for preprocessing internals: pool split, caps, embeddings."""

import numpy as np
import pytest

from repro.core import ASQPConfig, build_coverage, preprocess
from repro.core.preprocess import MAX_REQUIREMENT_ROWS, embed_actions
from repro.db import Comparison, SPJQuery, sql
from repro.embedding import TupleEmbedder


def _config(**overrides):
    defaults = dict(
        memory_budget=60,
        action_space_target=40,
        n_query_representatives=5,
        seed=3,
    )
    defaults.update(overrides)
    return ASQPConfig(**defaults)


class TestExactExtensionSplit:
    def test_actions_partition_by_parity(self, tiny_imdb):
        """Even source codes = exact rows, odd = relaxation extensions."""
        prep = preprocess(tiny_imdb.db, tiny_imdb.workload, _config())
        sources = {action.source_query for action in prep.action_space}
        assert any(code % 2 == 0 for code in sources), "no exact actions"
        # Relaxation should add at least some extension rows on this data.
        assert any(code % 2 == 1 for code in sources), "no extension actions"

    def test_exact_share_zero_yields_extension_heavy_space(self, tiny_imdb):
        lopsided = preprocess(
            tiny_imdb.db, tiny_imdb.workload, _config(exact_row_share=0.05)
        )
        balanced = preprocess(
            tiny_imdb.db, tiny_imdb.workload, _config(exact_row_share=0.95)
        )
        def exact_fraction(prep):
            codes = [a.source_query for a in prep.action_space]
            return sum(1 for c in codes if c % 2 == 0) / len(codes)
        assert exact_fraction(balanced) > exact_fraction(lopsided)

    def test_exact_actions_cover_representative_results(self, tiny_imdb):
        """Tuples of even-coded actions appear in some coverage requirement."""
        prep = preprocess(tiny_imdb.db, tiny_imdb.workload, _config())
        required = {
            key
            for coverage in prep.coverages
            for requirement in coverage.requirements
            for key in requirement
        }
        for action in prep.action_space:
            if action.source_query % 2 == 0:
                assert set(action.keys) <= required


class TestCoverageCaps:
    def test_requirements_capped(self, mini_db, rng):
        # Fabricate a query with a big result by scaling the database.
        big = mini_db.scale(MAX_REQUIREMENT_ROWS)  # 6 * cap rows in movies
        query = sql("SELECT * FROM movies")
        coverage = build_coverage(big, query, 1.0, frame_size=50, rng=rng)
        assert len(coverage.requirements) == MAX_REQUIREMENT_ROWS
        # The denominator still reflects the frame cap, not the sample.
        assert coverage.denominator == 50

    def test_empty_query_coverage(self, mini_db, rng):
        query = sql("SELECT * FROM movies WHERE movies.year > 9999")
        coverage = build_coverage(mini_db, query, 1.0, frame_size=50, rng=rng)
        assert coverage.is_empty
        assert coverage.requirements == []


class TestEmbedActions:
    def test_shapes_and_norms(self, tiny_imdb):
        prep = preprocess(tiny_imdb.db, tiny_imdb.workload, _config())
        vectors = prep.action_space.embeddings
        norms = np.linalg.norm(vectors, axis=1)
        assert vectors.shape[1] == _config().embedding_dim
        assert np.all((norms > 0.99) & (norms < 1.01))

    def test_embed_actions_standalone(self, tiny_imdb):
        from repro.core import Action

        table = tiny_imdb.db.table("title")
        actions = [
            Action(keys=(("title", int(table.row_ids[0])),)),
            Action(keys=(("title", int(table.row_ids[1])),
                         ("title", int(table.row_ids[2])))),
        ]
        embedder = TupleEmbedder(dim=16)
        vectors = embed_actions(tiny_imdb.db, actions, embedder)
        assert vectors.shape == (2, 16)


class TestWeightingAndLimits:
    def test_representative_weights_follow_workload(self, tiny_imdb):
        prep = preprocess(tiny_imdb.db, tiny_imdb.workload, _config())
        assert (prep.representative_weights > 0).all()
        assert prep.representative_weights.sum() == pytest.approx(1.0)

    def test_limit_queries_handled(self, tiny_imdb):
        """LIMITed workload queries go through relaxation (limit lifted)."""
        from repro.datasets import Workload

        limited = Workload(
            [q.with_limit(3) for q in list(tiny_imdb.workload)[:6]]
        )
        prep = preprocess(tiny_imdb.db, limited, _config(n_query_representatives=3))
        assert len(prep.action_space) > 0
        for relaxed in prep.relaxed_representatives:
            assert relaxed.limit is None
