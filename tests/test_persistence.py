"""Tests for trained-model save/load (repro.core.persistence)."""

import numpy as np
import pytest

from repro.core import (
    ASQPConfig,
    ASQPSession,
    ASQPTrainer,
    load_model,
    save_model,
)


@pytest.fixture(scope="module")
def trained(tiny_flights):
    config = ASQPConfig(
        memory_budget=60, n_iterations=2, n_actors=2, episodes_per_actor=1,
        action_space_target=40, n_query_representatives=5,
        n_candidate_rollouts=1, learning_rate=1e-3, seed=8,
    )
    return ASQPTrainer(tiny_flights.db, tiny_flights.workload, config).train()


class TestRoundTrip:
    def test_same_approximation_set(self, trained, tiny_flights, tmp_path):
        save_model(trained, str(tmp_path / "model"))
        loaded = load_model(str(tmp_path / "model"), tiny_flights.db)
        assert loaded.approximation_set().keys() == trained.approximation_set().keys()

    def test_config_and_history_preserved(self, trained, tiny_flights, tmp_path):
        save_model(trained, str(tmp_path / "model"))
        loaded = load_model(str(tmp_path / "model"), tiny_flights.db)
        assert loaded.config == trained.config
        assert len(loaded.history) == len(trained.history)
        assert loaded.setup_seconds == trained.setup_seconds
        assert loaded.fine_tune_count == trained.fine_tune_count

    def test_action_space_preserved(self, trained, tiny_flights, tmp_path):
        save_model(trained, str(tmp_path / "model"))
        loaded = load_model(str(tmp_path / "model"), tiny_flights.db)
        assert len(loaded.action_space) == len(trained.action_space)
        assert loaded.action_space.keys_of(0) == trained.action_space.keys_of(0)
        assert np.allclose(
            loaded.action_space.embeddings, trained.action_space.embeddings
        )

    def test_coverages_rebuilt_equivalent(self, trained, tiny_flights, tmp_path):
        save_model(trained, str(tmp_path / "model"))
        loaded = load_model(str(tmp_path / "model"), tiny_flights.db)
        assert len(loaded.coverages) == len(trained.coverages)
        for a, b in zip(loaded.coverages, trained.coverages):
            assert a.denominator == b.denominator
            assert sorted(a.requirements) == sorted(b.requirements)

    def test_loaded_model_opens_session(self, trained, tiny_flights, tmp_path):
        save_model(trained, str(tmp_path / "model"))
        loaded = load_model(str(tmp_path / "model"), tiny_flights.db)
        session = ASQPSession(loaded, auto_fine_tune=False)
        outcome = session.query(tiny_flights.workload.queries[0])
        assert outcome is not None

    def test_training_scores_match(self, trained, tiny_flights, tmp_path):
        save_model(trained, str(tmp_path / "model"))
        loaded = load_model(str(tmp_path / "model"), tiny_flights.db)
        assert np.allclose(loaded.training_scores(), trained.training_scores())

    def test_version_check(self, trained, tiny_flights, tmp_path):
        import json, os

        save_model(trained, str(tmp_path / "model"))
        path = tmp_path / "model" / "config.json"
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_model(str(tmp_path / "model"), tiny_flights.db)
