"""Unit tests for repro.core.config."""

import pytest

from repro.core import ASQPConfig


class TestValidation:
    def test_defaults_valid(self):
        config = ASQPConfig()
        assert config.memory_budget == 1000
        assert config.frame_size == 50
        assert config.n_query_representatives is None  # all (paper §6.1)

    def test_bad_budget(self):
        with pytest.raises(ValueError, match="memory budget"):
            ASQPConfig(memory_budget=0)

    def test_bad_frame(self):
        with pytest.raises(ValueError, match="frame size"):
            ASQPConfig(frame_size=0)

    def test_bad_training_fraction(self):
        with pytest.raises(ValueError):
            ASQPConfig(training_fraction=0.0)
        with pytest.raises(ValueError):
            ASQPConfig(training_fraction=1.5)

    def test_bad_environment(self):
        with pytest.raises(ValueError, match="environment"):
            ASQPConfig(environment="nope")

    def test_bad_group_size(self):
        with pytest.raises(ValueError):
            ASQPConfig(group_size=0)

    def test_no_ppo_zeroes_kl(self):
        config = ASQPConfig(use_ppo_clip=False, kl_coef=0.5)
        assert config.kl_coef == 0.0


class TestPresets:
    def test_light_is_faster_profile(self):
        light = ASQPConfig.light()
        full = ASQPConfig()
        assert light.training_fraction < full.training_fraction
        assert light.learning_rate > full.learning_rate
        assert light.n_iterations < full.n_iterations

    def test_light_accepts_overrides(self):
        light = ASQPConfig.light(memory_budget=77)
        assert light.memory_budget == 77

    def test_adaptive_endpoints(self):
        lightest = ASQPConfig.adaptive(0.0)
        fullest = ASQPConfig.adaptive(1.0)
        assert lightest.training_fraction == pytest.approx(0.25)
        assert fullest.training_fraction == pytest.approx(1.0)
        assert lightest.n_iterations < fullest.n_iterations
        assert lightest.learning_rate > fullest.learning_rate

    def test_adaptive_clamps(self):
        assert ASQPConfig.adaptive(-1.0).training_fraction == pytest.approx(0.25)
        assert ASQPConfig.adaptive(2.0).training_fraction == pytest.approx(1.0)

    def test_adaptive_monotone_in_budget(self):
        fractions = [ASQPConfig.adaptive(f).training_fraction for f in (0.0, 0.5, 1.0)]
        assert fractions == sorted(fractions)


class TestLabels:
    def test_variant_labels(self):
        assert ASQPConfig().variant_label == "ASQP-RL"
        assert ASQPConfig(use_ppo_clip=False).variant_label == "ASQP-RL -ppo"
        assert (
            ASQPConfig(use_ppo_clip=False, use_actor_critic=False).variant_label
            == "ASQP-RL -ppo -ac"
        )

    def test_with_overrides(self):
        config = ASQPConfig().with_overrides(memory_budget=5)
        assert config.memory_budget == 5
