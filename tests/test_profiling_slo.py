"""Tests for continuous profiling, SLO tracking, and telemetry retention.

Covers the sampling profiler (collapsed stacks, flamegraph HTML, span
attribution, the unique-stack cap), the tracemalloc memory tracker
(epoch gauges, leak verdicts, inactive no-ops), the declarative SLO
layer (spec parsing, burn-rate alerting into the health pipeline,
escalation dedup), telemetry rotation boundaries (byte cap, exact line
cap, replay across the rotated set), and the ``obs.run`` context
manager's flush-on-exception guarantee.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.obs import (
    health,
    memory,
    metrics,
    profiler,
    slo,
    telemetry,
    trace,
)


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends disabled with empty state."""

    def scrub():
        profiler.stop()
        memory.stop()
        slo.clear()
        obs.disable()
        trace.reset()
        metrics.reset()
        telemetry.reset()
        telemetry.configure(None)
        health.reset()

    scrub()
    yield
    scrub()


def _busy_loop(seconds: float) -> int:
    from repro.obs.clock import perf_counter

    deadline = perf_counter() + seconds
    total = 0
    while perf_counter() < deadline:
        total += sum(range(128))
    return total


def _shape_a() -> int:
    return sum(range(256))


def _shape_b() -> int:
    return sum(range(256))


def _busy_two_shapes(seconds: float) -> int:
    """Busy loop whose sampled leaf frame alternates between two shapes."""
    from repro.obs.clock import perf_counter

    deadline = perf_counter() + seconds
    total = 0
    while perf_counter() < deadline:
        total += _shape_a() + _shape_b()
    return total


# ------------------------------------------------------------------ #
# sampling profiler
# ------------------------------------------------------------------ #
class TestSamplingProfiler:
    def test_collapsed_stacks_and_artifacts(self, tmp_path):
        prof = profiler.SamplingProfiler(hz=400)
        prof.start()
        _busy_loop(0.3)
        prof.stop()
        assert prof.sample_count > 10
        collapsed = prof.collapsed()
        assert collapsed
        # Every line is `frame;frame;... count`.
        for line in collapsed.splitlines():
            stack_text, _, count_text = line.rpartition(" ")
            assert stack_text and count_text.isdigit()
        # The busy loop's own frame shows up somewhere.
        assert "_busy_loop" in collapsed

        collapsed_path = tmp_path / "p.txt"
        flame_path = tmp_path / "f.html"
        prof.write_collapsed(str(collapsed_path))
        prof.write_flamegraph(str(flame_path))
        assert collapsed_path.read_text() == collapsed
        html = flame_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "const DATA" in html and "_busy_loop" in html

    def test_parse_collapsed_round_trip(self):
        prof = profiler.SamplingProfiler(hz=400)
        prof.start()
        _busy_loop(0.2)
        prof.stop()
        parsed = profiler.parse_collapsed(prof.collapsed())
        assert parsed == prof.stack_counts()
        # Aggregations over the parsed dict match the live views.
        assert profiler.span_samples_of(parsed) == prof.span_samples()
        assert dict(
            (frame, samples)
            for frame, samples, _ in profiler.hot_functions_of(parsed)
        ) == dict(
            (frame, samples) for frame, samples, _ in prof.hot_functions()
        )

    def test_samples_attributed_to_active_span(self):
        obs.enable()
        prof = profiler.SamplingProfiler(hz=400)
        prof.start()
        with trace.span("unit.work"):
            _busy_loop(0.3)
        prof.stop()
        spans = prof.span_samples()
        assert spans.get("unit.work", 0) > 0
        # And the collapsed text carries the span frame at stack root.
        assert "span:unit.work;" in prof.collapsed()

    def test_hot_functions_rank_the_busy_frame(self):
        prof = profiler.SamplingProfiler(hz=400)
        prof.start()
        _busy_loop(0.3)
        prof.stop()
        hot = prof.hot_functions(n=5)
        assert hot
        frames = [frame for frame, _, _ in hot]
        assert any("_busy_loop" in frame or "sum" in frame for frame in frames)
        fractions = [fraction for _, _, fraction in hot]
        assert all(0.0 <= fraction <= 1.0 for fraction in fractions)
        assert fractions == sorted(fractions, reverse=True)

    def test_unique_stack_cap_aggregates_overflow(self):
        prof = profiler.SamplingProfiler(hz=500, max_unique_stacks=1)
        prof.start()
        # The two leaf shapes guarantee >1 distinct sampled stack, so
        # everything past the first shape must fold into (overflow).
        _busy_two_shapes(0.4)
        prof.stop()
        counts = prof.stack_counts()
        assert len(counts) <= prof.max_unique_stacks + 1
        assert prof.dropped_stacks > 0
        assert counts.get((profiler.OVERFLOW_FRAME,), 0) == prof.dropped_stacks

    def test_module_singleton_start_stop(self):
        first = profiler.start(hz=200)
        assert profiler.is_active()
        assert profiler.start(hz=999) is first  # idempotent
        stopped = profiler.stop()
        assert stopped is first
        assert not profiler.is_active()
        assert profiler.stop() is None

    def test_summary_shape(self):
        prof = profiler.SamplingProfiler(hz=300)
        prof.start()
        _busy_loop(0.1)
        prof.stop()
        summary = prof.summary()
        assert summary["hz"] == 300
        assert summary["samples"] == prof.sample_count
        assert summary["duration_s"] > 0
        assert isinstance(summary["span_samples"], dict)


# ------------------------------------------------------------------ #
# memory tracker
# ------------------------------------------------------------------ #
class TestMemoryTracker:
    def test_inactive_mark_epoch_is_noop(self):
        assert not memory.is_active()
        assert memory.mark_epoch("anything") == 0

    def test_epoch_marks_set_gauges(self):
        obs.enable()
        memory.start()
        blocks = [bytes(4096) for _ in range(16)]
        memory.mark_epoch("unit.phase")
        blocks.extend(bytes(4096) for _ in range(16))
        growth = memory.mark_epoch("unit.phase")
        memory.stop()
        assert growth > 0
        registry = metrics.registry()
        assert registry.gauge("memory.tracemalloc.current_kb") > 0
        assert registry.gauge("memory.rss_kb") > 0
        assert registry.gauge("memory.epoch.unit.phase.growth_kb") > 0
        assert blocks  # keep the allocations alive until here

    def test_leak_check_flags_monotone_growth(self):
        tracker = memory.MemoryTracker()
        tracker.start()
        hoard = []
        for _ in range(5):
            hoard.append(bytes(64 * 1024))
            tracker.mark_epoch("leaky")
        verdict = tracker.leak_check("leaky", min_epochs=4)
        assert verdict["suspect"] is True
        assert verdict["growth_bytes"] > 0
        tracker.stop()
        assert hoard

    def test_leak_check_verdict_logic(self):
        from collections import deque

        tracker = memory.MemoryTracker()
        # Flat and shrinking histories are not suspects; too few epochs
        # never are, regardless of shape.
        tracker._epochs["flat"] = deque([1000, 1000, 1000, 1000, 1000])
        assert tracker.leak_check("flat", min_epochs=4)["suspect"] is False
        tracker._epochs["shrinking"] = deque([5000, 4000, 3000, 2000])
        assert tracker.leak_check("shrinking", min_epochs=4)["suspect"] is False
        tracker._epochs["young"] = deque([1000, 2000])
        assert tracker.leak_check("young", min_epochs=4)["suspect"] is False
        tracker._epochs["growing"] = deque([1000, 2000, 3000, 4000])
        verdict = tracker.leak_check("growing", min_epochs=4)
        assert verdict["suspect"] is True
        assert verdict["growth_bytes"] == 3000

    def test_summary_and_json(self, tmp_path):
        tracker = memory.MemoryTracker()
        tracker.start()
        data = [bytes(8192) for _ in range(8)]
        tracker.mark_epoch("phase")
        path = tmp_path / "memory.json"
        tracker.write_json(str(path))
        tracker.stop()
        doc = json.loads(path.read_text())
        assert doc["tracing"] is True
        assert doc["current_kb"] > 0
        assert "phase" in doc["epochs"]
        assert isinstance(doc["top_allocators"], list)
        assert data

    def test_phase_table_is_bounded(self):
        tracker = memory.MemoryTracker()
        tracker.start()
        for i in range(memory.MAX_PHASES + 10):
            tracker.mark_epoch(f"phase_{i}")
        assert len(tracker._epochs) <= memory.MAX_PHASES
        tracker.stop()


# ------------------------------------------------------------------ #
# SLO parsing
# ------------------------------------------------------------------ #
class TestObjectiveParsing:
    def test_latency_spec_with_alias_and_unit(self):
        objective = slo.parse_objective("query.p95 < 250ms")
        assert objective.metric == "session.query.seconds"
        assert objective.agg == "p95"
        assert objective.op == "<"
        assert objective.threshold == pytest.approx(0.25)
        assert objective.target == pytest.approx(0.99)
        assert objective.windowed

    def test_gauge_spec(self):
        objective = slo.parse_objective("estimator.calibration_error < 0.1")
        assert objective.agg == "value"
        assert not objective.windowed
        assert objective.metric == "estimator.calibration_error"

    def test_explicit_target_and_units(self):
        objective = slo.parse_objective("executor.p99 <= 1500us @ 99.9%")
        assert objective.metric == "executor.query.seconds"
        assert objective.agg == "p99"
        assert objective.threshold == pytest.approx(0.0015)
        assert objective.target == pytest.approx(0.999)

    def test_bad_specs_raise(self):
        with pytest.raises(ValueError):
            slo.parse_objective("not a spec")
        with pytest.raises(ValueError):
            slo.parse_objective("query.p95 < 250ms @ 150%")

    def test_compliance_operators(self):
        lt = slo.parse_objective("m.p50 < 1")
        assert lt.complies(0.5) and not lt.complies(1.0)
        ge = slo.parse_objective("coverage >= 0.9")
        assert ge.complies(0.95) and not ge.complies(0.5)


# ------------------------------------------------------------------ #
# SLO burn-rate alerting
# ------------------------------------------------------------------ #
class TestSLOTracker:
    def test_violated_latency_slo_raises_crit_health_alert(self):
        """Pinned: a sustained gross violation must land CRIT in health."""
        obs.enable()
        slo.configure(["query.p95 < 10ms"])
        for _ in range(20):
            metrics.observe("session.query.seconds", 0.5)
        alerts = slo.publish()
        assert any(a.severity == health.CRIT for a in alerts)
        assert any(a.rule == "slo_burn" for a in alerts)
        monitor = health.active_monitor()
        assert monitor.counts()[health.CRIT] >= 1
        assert monitor.worst_severity() == health.CRIT
        # The alert reached the telemetry stream too.
        health_records = telemetry.records("health")
        assert any(
            r.get("rule") == "slo_burn" and r.get("severity") == health.CRIT
            for r in health_records
        )

    def test_within_budget_run_stays_quiet(self):
        obs.enable()
        slo.configure(["query.p95 < 250ms"])
        for _ in range(50):
            metrics.observe("session.query.seconds", 0.01)
        assert slo.publish() == []
        assert health.active_monitor().counts()[health.CRIT] == 0
        status = slo.active().evaluate()[0]
        assert status["ok"] and status["severity"] is None
        assert status["burn_rate"] == 0.0

    def test_min_samples_gate_blocks_early_alerts(self):
        obs.enable()
        slo.configure(["query.p95 < 10ms"])
        for _ in range(slo.MIN_SAMPLES - 1):
            metrics.observe("session.query.seconds", 0.5)
        assert slo.publish() == []

    def test_publish_dedup_and_escalation(self):
        obs.enable()
        tracker = slo.configure(["query.p95 < 10ms"])
        for _ in range(20):
            metrics.observe("session.query.seconds", 0.5)
        first = tracker.publish()
        assert len(first) == 1
        # Re-evaluating the same state publishes nothing new.
        assert tracker.publish() == []
        assert health.active_monitor().counts()[health.CRIT] == 1

    def test_gauge_objective_warn_and_crit(self):
        obs.enable()
        tracker = slo.configure(["estimator.calibration_error < 0.1"])
        metrics.set_gauge("estimator.calibration_error", 0.15)
        warned = tracker.publish()
        assert [a.severity for a in warned] == [health.WARN]
        # 2x past the threshold escalates to CRIT (dedup allows escalation).
        metrics.set_gauge("estimator.calibration_error", 0.25)
        escalated = tracker.publish()
        assert [a.severity for a in escalated] == [health.CRIT]
        assert tracker.publish() == []

    def test_sample_hook_detached_on_clear(self):
        obs.enable()
        tracker = slo.configure(["query.p95 < 250ms"])
        metrics.observe("session.query.seconds", 0.01)
        assert len(tracker._samples["session.query.seconds"]) == 1
        slo.clear()
        metrics.observe("session.query.seconds", 0.01)
        assert len(tracker._samples["session.query.seconds"]) == 1

    def test_summary_written_as_json(self, tmp_path):
        obs.enable()
        slo.configure(["query.p95 < 250ms"])
        metrics.observe("session.query.seconds", 0.01)
        path = tmp_path / "slo.json"
        slo.write_json(str(path))
        doc = json.loads(path.read_text())
        assert doc["objectives"][0]["spec"] == "query.p95 < 250ms"
        assert doc["objectives"][0]["n_samples"] == 1


# ------------------------------------------------------------------ #
# telemetry rotation
# ------------------------------------------------------------------ #
class TestTelemetryRotation:
    def _emit(self, n, payload="x" * 40):
        for i in range(n):
            telemetry.emit("unit", index=i, payload=payload)

    def test_byte_cap_rotates_and_deletes_beyond_max_files(self, tmp_path):
        obs.enable()
        path = str(tmp_path / "telemetry.jsonl")
        telemetry.configure(path, max_bytes=400, max_files=3)
        self._emit(60)
        names = sorted(os.listdir(tmp_path))
        assert "telemetry.jsonl" in names
        assert "telemetry.1.jsonl" in names
        # Never more than max_files rotated siblings + the active file.
        assert len(names) <= 4
        for name in names:
            assert os.path.getsize(tmp_path / name) <= 400 + 120

    def test_record_exactly_at_cap_stays_then_next_rotates(
        self, tmp_path, monkeypatch
    ):
        obs.enable()
        # Pin the wall clock so every record serializes to the same size
        # (a float timestamp's repr length varies from call to call).
        monkeypatch.setattr(telemetry.time, "time", lambda: 1700000000.0)
        path = str(tmp_path / "telemetry.jsonl")
        # Measure one record's serialized size, then cap at exactly two.
        telemetry.configure(path)
        telemetry.emit("unit", index=0, payload="y" * 10)
        record_size = os.path.getsize(path)
        telemetry.configure(path, max_bytes=2 * record_size)
        telemetry.reset()
        self._emit(2, payload="y" * 10)
        # Two records == exactly the cap: no rotation yet.
        assert not os.path.exists(str(tmp_path / "telemetry.1.jsonl"))
        assert len(telemetry.load_jsonl(path)) == 2
        self._emit(1, payload="y" * 10)
        # The third record tripped the rotation and opened a fresh file.
        assert os.path.exists(str(tmp_path / "telemetry.1.jsonl"))
        assert len(telemetry.load_jsonl(path)) == 1

    def test_line_cap_boundary(self, tmp_path):
        obs.enable()
        path = str(tmp_path / "telemetry.jsonl")
        telemetry.configure(path, max_lines=5)
        self._emit(5)
        assert not os.path.exists(str(tmp_path / "telemetry.1.jsonl"))
        self._emit(1)
        assert len(telemetry.load_jsonl(str(tmp_path / "telemetry.1.jsonl"))) == 5
        assert len(telemetry.load_jsonl(path)) == 1

    def test_oversized_first_record_is_never_dropped(self, tmp_path):
        obs.enable()
        path = str(tmp_path / "telemetry.jsonl")
        telemetry.configure(path, max_bytes=50)
        telemetry.emit("unit", payload="z" * 500)  # alone exceeds the cap
        records = telemetry.load_jsonl(path)
        assert len(records) == 1 and records[0]["payload"] == "z" * 500

    def test_load_run_reads_rotated_set_oldest_first(self, tmp_path):
        obs.enable()
        path = str(tmp_path / "telemetry.jsonl")
        telemetry.configure(path, max_lines=4, max_files=8)
        self._emit(11)
        combined = telemetry.load_run(path)
        assert [r["index"] for r in combined] == list(range(11))
        assert [r["seq"] for r in combined] == sorted(
            r["seq"] for r in combined
        )
        parts = telemetry.rotated_paths(path)
        assert parts[-1] == path and len(parts) == 3

    def test_health_replay_sees_records_across_rotation(self, tmp_path):
        obs.enable()
        path = str(tmp_path / "telemetry.jsonl")
        telemetry.configure(path, max_lines=2, max_files=16)
        base = dict(
            mean_episode_reward=1.0, policy_loss=0.1, value_loss=0.1,
            entropy=1.0, clip_fraction=0.1, explained_variance=0.5,
            grad_norm=1.0,
        )
        for i in range(6):
            telemetry.emit("train.update", iteration=i, kl_divergence=0.01,
                           **base)
        telemetry.emit("train.update", iteration=6, kl_divergence=5.0, **base)
        monitor = health.replay(telemetry.load_run(path))
        crits = [a for a in monitor.alerts if a.severity == health.CRIT]
        assert any(a.rule == "kl_spike" and a.iteration == 6 for a in crits)

    def test_configure_clears_stale_rotations_only(self, tmp_path):
        obs.enable()
        path = str(tmp_path / "telemetry.jsonl")
        telemetry.configure(path, max_lines=1)
        self._emit(4)
        unrelated = tmp_path / "telemetry.backup.jsonl"
        unrelated.write_text("{}\n")
        telemetry.configure(path, max_lines=1)
        names = sorted(os.listdir(tmp_path))
        assert names == ["telemetry.backup.jsonl", "telemetry.jsonl"]
        assert os.path.getsize(tmp_path / "telemetry.jsonl") == 0

    def test_concurrent_writers_never_interleave_partial_lines(self, tmp_path):
        # Two forked processes append to the same sink while it rotates.
        # The in-process lock cannot coordinate them — the O_APPEND
        # single-write discipline in ``emit`` must (a buffered text
        # handle splits payloads past its 8 KiB buffer, so the large
        # payload below would interleave under the old write path).
        # Concurrent rotation renames may clobber *whole files*, so the
        # assertions are about line atomicity, not record counts.
        obs.enable()
        path = str(tmp_path / "telemetry.jsonl")
        telemetry.configure(path, max_bytes=64_000, max_files=32)

        import multiprocessing as mp

        context = mp.get_context("fork")

        def hammer(marker: str) -> None:
            # Fork children inherit the configured sink + enabled state.
            payload = marker * 20_000  # ≫ the 8 KiB stdio buffer
            for index in range(12):
                try:
                    telemetry.emit(
                        "writer", marker=marker, index=index, payload=payload
                    )
                except FileNotFoundError:
                    # Lost a rotation rename race with the sibling
                    # writer — out of scope here; keep appending.
                    continue
            os._exit(0)

        children = [
            context.Process(target=hammer, args=(marker,))
            for marker in ("A", "B")
        ]
        for child in children:
            child.start()
        for child in children:
            child.join(timeout=60)
            assert child.exitcode == 0

        paths = [tmp_path / name for name in os.listdir(tmp_path)]
        assert len(paths) > 1  # rotation happened under contention
        markers_seen = set()
        for file_path in paths:
            raw = file_path.read_bytes()
            assert raw.endswith(b"\n") or raw == b""
            for line in raw.splitlines():
                record = json.loads(line)  # every line is complete JSON
                assert record["payload"] == record["marker"] * 20_000
                markers_seen.add(record["marker"])
        assert markers_seen == {"A", "B"}


# ------------------------------------------------------------------ #
# obs.run context manager
# ------------------------------------------------------------------ #
class TestRunContextManager:
    def test_artifacts_flush_even_when_the_block_raises(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with pytest.raises(RuntimeError, match="boom"):
            with obs.run(run_dir):
                with trace.span("doomed.work"):
                    metrics.add("unit.counter")
                    telemetry.emit("unit", step=1)
                    raise RuntimeError("boom")
        # Everything the run recorded before the crash is on disk.
        assert not obs.is_enabled()
        records = telemetry.load_run(os.path.join(run_dir, obs.TELEMETRY_FILE))
        assert any(r.get("stream") == "unit" for r in records)
        with open(os.path.join(run_dir, obs.METRICS_FILE)) as handle:
            snap = json.load(handle)
        assert snap["counters"]["unit.counter"] == 1.0
        with open(os.path.join(run_dir, obs.TRACE_FILE)) as handle:
            tree = json.load(handle)
        doomed = next(n for n in tree if n["name"] == "doomed.work")
        assert "RuntimeError" in doomed.get("error", "")

    def test_run_tears_down_profiler_memory_slo_on_exception(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with pytest.raises(ValueError):
            with obs.run(
                run_dir,
                profile=True,
                memory_tracking=True,
                slo_objectives=["query.p95 < 250ms"],
            ):
                assert profiler.is_active()
                assert memory.is_active()
                assert slo.is_active()
                raise ValueError("abandon run")
        assert not profiler.is_active()
        assert not memory.is_active()
        assert not slo.is_active()
        assert not obs.is_enabled()
        for name in (obs.PROFILE_COLLAPSED_FILE, obs.MEMORY_FILE, obs.SLO_FILE):
            assert os.path.exists(os.path.join(run_dir, name))

    def test_profiled_session_run_attributes_executor_work(self, tiny_flights):
        """End to end: executor kernels appear in a profiled run's stacks."""
        from repro.db.executor import execute

        prof = profiler.SamplingProfiler(hz=400)
        obs.enable()
        prof.start()
        queries = list(tiny_flights.workload)[:4]
        from repro.obs.clock import perf_counter

        deadline = perf_counter() + 0.8
        while perf_counter() < deadline:
            for query in queries:
                execute(tiny_flights.db, query)
        prof.stop()
        collapsed = prof.collapsed()
        assert "repro/db/executor.py" in collapsed
        spans = prof.span_samples()
        executor_samples = sum(
            count for name, count in spans.items() if name.startswith("execute")
        )
        assert executor_samples > 0


# ------------------------------------------------------------------ #
# health monitor retention
# ------------------------------------------------------------------ #
class TestHealthRetention:
    def test_alert_ring_is_bounded_but_counts_accumulate(self):
        monitor = health.HealthMonitor()
        for i in range(health.MAX_ALERTS + 50):
            monitor.publish([
                health.Alert(health.WARN, "unit_rule", f"alert {i}")
            ])
        assert len(monitor.alerts) == health.MAX_ALERTS
        assert monitor.counts()[health.WARN] == health.MAX_ALERTS + 50
        assert monitor.worst_severity() == health.WARN
