"""Morsel-driven parallelism: parallel results must equal serial exactly.

Every dispatchable operator — scan filter, hash-join probe, group-by —
is run twice on the same data, once with ``REPRO_WORKERS=0`` (serial)
and once through a 4-worker pool with the morsel floor lowered so the
small fixtures actually dispatch. Row order, row ids, and values must
be byte-identical: morsels are contiguous ranges concatenated back in
morsel order, so parallelism is never allowed to reorder anything.
"""

import numpy as np
import pytest

from repro.db import Database, execute, execute_aggregate, sql
from repro.db import kernels
from repro.db import parallel

from tests.test_columnstore import _comparable, make_table

N_ROWS = 6_000


@pytest.fixture
def pool4(monkeypatch):
    """4 workers with a tiny morsel floor; serial + clean pool afterwards."""
    monkeypatch.setenv("REPRO_PARALLEL_MIN_ROWS", "256")
    parallel.set_workers(4)
    try:
        yield
    finally:
        parallel.set_workers(0)
        parallel.shutdown()


def assert_same_row_ids(serial, par) -> None:
    assert serial.row_ids.keys() == par.row_ids.keys()
    for table, ids in serial.row_ids.items():
        np.testing.assert_array_equal(ids, par.row_ids[table])


def serial_then_parallel(fn):
    parallel.set_workers(0)
    serial = fn()
    parallel.set_workers(4)
    try:
        parallel_result = fn()
    finally:
        parallel.set_workers(0)
    return serial, parallel_result


# ------------------------------------------------------------------ #
# knobs
# ------------------------------------------------------------------ #
def test_worker_count_env_knob(monkeypatch):
    parallel.set_workers(None)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert parallel.worker_count() == 0
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert parallel.worker_count() == 3
    monkeypatch.setenv("REPRO_WORKERS", "junk")
    assert parallel.worker_count() == 0
    parallel.set_workers(2)
    assert parallel.worker_count() == 2  # programmatic override wins
    parallel.set_workers(0)


def test_min_parallel_rows_env_knob(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL_MIN_ROWS", raising=False)
    assert parallel.min_parallel_rows() == parallel.DEFAULT_MIN_ROWS
    monkeypatch.setenv("REPRO_PARALLEL_MIN_ROWS", "512")
    assert parallel.min_parallel_rows() == 512


def test_morsel_seeds_deterministic_and_distinct():
    first = parallel.morsel_seeds(42, 8)
    second = parallel.morsel_seeds(42, 8)
    assert first == second
    assert len(set(first)) == 8
    assert parallel.morsel_seeds(43, 8) != first


def test_morsel_ranges_cover_exactly():
    ranges = parallel._morsel_ranges(1000, 4)
    assert ranges[0][0] == 0 and ranges[-1][1] == 1000
    covered = sum(stop - start for start, stop in ranges)
    assert covered == 1000
    for (_, prev_stop), (start, _) in zip(ranges, ranges[1:]):
        assert start == prev_stop  # contiguous, in order


# ------------------------------------------------------------------ #
# kernel-level identity
# ------------------------------------------------------------------ #
def test_parallel_join_identical_to_serial(pool4):
    rng = np.random.default_rng(21)
    build = [rng.integers(0, 800, size=N_ROWS), rng.integers(0, 9, size=N_ROWS)]
    probe = [rng.integers(0, 800, size=N_ROWS), rng.integers(0, 9, size=N_ROWS)]
    serial, par = serial_then_parallel(
        lambda: kernels.join_positions(build, probe)
    )
    np.testing.assert_array_equal(serial[0], par[0])
    np.testing.assert_array_equal(serial[1], par[1])


def test_parallel_group_by_identical_to_serial(pool4):
    rng = np.random.default_rng(22)
    arrays = [rng.integers(0, 300, size=N_ROWS), rng.integers(0, 5, size=N_ROWS)]
    serial, par = serial_then_parallel(
        lambda: kernels.group_by_positions(arrays)
    )
    assert len(serial) == len(par)
    for s, p in zip(serial, par):
        np.testing.assert_array_equal(s, p)


def test_group_by_falls_back_on_high_cardinality(pool4):
    # n_codes > 4 * n_rows: the scatter-merge would allocate more than it
    # saves, so the kernel must fall back to the serial path (identical
    # output either way).
    rng = np.random.default_rng(23)
    arrays = [rng.integers(0, 2**31 - 1, size=400, dtype=np.int64)]
    serial, par = serial_then_parallel(
        lambda: kernels.group_by_positions(arrays)
    )
    assert len(serial) == len(par)
    for s, p in zip(serial, par):
        np.testing.assert_array_equal(s, p)


# ------------------------------------------------------------------ #
# executor-level identity (REPRO_WORKERS=0 vs 4)
# ------------------------------------------------------------------ #
FILTERS = [
    "city = 'blue'",
    "city BETWEEN 'amber' AND 'cyan'",
    "score > 10 AND city != 'drab'",
    "temp IS NOT NULL",
]


@pytest.mark.parametrize("where", FILTERS)
def test_parallel_scan_identical_to_serial(pool4, where):
    table = make_table(seed=31, n=N_ROWS)
    db = Database([table])
    query = sql(f"SELECT city, score, temp FROM t WHERE {where}")
    serial, par = serial_then_parallel(lambda: execute(db, query))
    assert_same_row_ids(serial, par)
    normalize = lambda rows: [
        {key: _comparable(value) for key, value in row.items()} for row in rows
    ]
    assert normalize(serial.to_rows()) == normalize(par.to_rows())


def test_parallel_join_query_identical_to_serial(pool4):
    left = make_table(seed=32, n=N_ROWS, name="l")
    right = make_table(seed=33, n=N_ROWS // 2, name="r")
    db = Database([left, right])
    query = sql(
        "SELECT l.city, r.score FROM l, r "
        "WHERE l.score = r.score AND l.score IS NOT NULL"
    )
    serial, par = serial_then_parallel(lambda: execute(db, query))
    assert_same_row_ids(serial, par)
    assert serial.n_rows == par.n_rows


def test_parallel_aggregate_identical_to_serial(pool4):
    table = make_table(seed=34, n=N_ROWS)
    db = Database([table])
    query = sql("SELECT city, COUNT(*), AVG(temp) FROM t GROUP BY city")
    serial, par = serial_then_parallel(lambda: execute_aggregate(db, query))
    assert serial.as_mapping().keys() == par.as_mapping().keys()
    for key, aggs in serial.as_mapping().items():
        for name, value in aggs.items():
            other = par.as_mapping()[key][name]
            if isinstance(value, float) and np.isnan(value):
                assert np.isnan(other)
            else:
                assert value == other


def test_small_inputs_stay_serial(pool4, monkeypatch):
    # Below the morsel floor nothing dispatches — no pool round trip.
    monkeypatch.setenv("REPRO_PARALLEL_MIN_ROWS", "1000000")
    rng = np.random.default_rng(35)
    context = {"x": rng.integers(0, 10, size=64)}
    query = sql("SELECT city FROM t WHERE score > 0")
    assert parallel.maybe_parallel_filter(query.predicate, context) is None


def test_object_dtype_filter_falls_back(pool4):
    values = np.asarray(["a"] * N_ROWS, dtype=object)
    query = sql("SELECT city FROM t WHERE city = 'a'")
    assert (
        parallel.maybe_parallel_filter(query.predicate, {"city": values}) is None
    )
