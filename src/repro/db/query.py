"""Query object model: SPJ queries and aggregate queries.

ASQP-RL's problem definition (paper §3) is over select-project-join (SPJ)
queries; aggregate queries appear twice — in the input workload (rewritten
to SPJ by dropping aggregation, paper §3 "Aggregate Queries") and at
inference time (paper §4.4, evaluated in §6.4).

Queries are plain data objects. Execution lives in
:mod:`repro.db.executor`; SQL-text parsing in :mod:`repro.db.sql`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from .expressions import Expression, TrueExpr


class QueryError(ValueError):
    """Raised for structurally invalid queries."""


@dataclass(frozen=True)
class JoinCondition:
    """An equi-join ``left = right`` between two qualified column refs."""

    left: str
    right: str

    def __post_init__(self) -> None:
        for ref in (self.left, self.right):
            if "." not in ref:
                raise QueryError(f"join condition needs qualified refs, got {ref!r}")

    @property
    def left_table(self) -> str:
        return self.left.split(".", 1)[0]

    @property
    def right_table(self) -> str:
        return self.right.split(".", 1)[0]

    def to_sql(self) -> str:
        return f"{self.left} = {self.right}"


def _qualify(ref: str, tables: Sequence[str]) -> str:
    """Qualify a bare column ref when the query touches a single table."""
    if "." in ref:
        return ref
    if len(tables) == 1:
        return f"{tables[0]}.{ref}"
    raise QueryError(
        f"column ref {ref!r} must be table-qualified in a multi-table query"
    )


@dataclass(frozen=True)
class SPJQuery:
    """A select-project-join query.

    Parameters
    ----------
    tables:
        Tables in the FROM clause (no aliases; table names are unique).
    predicate:
        Selection predicate over qualified column refs.
    joins:
        Equi-join conditions connecting the tables.
    projection:
        Qualified column refs to output; empty means ``SELECT *``.
    order_by / descending / limit / distinct:
        Standard modifiers. ``limit`` is applied after ordering.
    name:
        Optional label used in workload files and logs.
    """

    tables: Tuple[str, ...]
    predicate: Expression = field(default_factory=TrueExpr)
    joins: Tuple[JoinCondition, ...] = ()
    projection: Tuple[str, ...] = ()
    order_by: Optional[str] = None
    descending: bool = False
    limit: Optional[int] = None
    distinct: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if not self.tables:
            raise QueryError("a query must reference at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise QueryError(f"duplicate tables in FROM clause: {self.tables}")
        for join in self.joins:
            for table in (join.left_table, join.right_table):
                if table not in self.tables:
                    raise QueryError(
                        f"join condition {join.to_sql()!r} references table "
                        f"{table!r} not in FROM {self.tables}"
                    )

    # -------------------------------------------------------------- #
    @property
    def is_aggregate(self) -> bool:
        return False

    def qualified_projection(self) -> Tuple[str, ...]:
        return tuple(_qualify(ref, self.tables) for ref in self.projection)

    def with_limit(self, limit: Optional[int]) -> "SPJQuery":
        return replace(self, limit=limit)

    def with_predicate(self, predicate: Expression) -> "SPJQuery":
        return replace(self, predicate=predicate)

    def to_sql(self) -> str:
        cols = ", ".join(self.projection) if self.projection else "*"
        select = "SELECT DISTINCT" if self.distinct else "SELECT"
        sql = f"{select} {cols} FROM {', '.join(self.tables)}"
        where_parts = [join.to_sql() for join in self.joins]
        if not isinstance(self.predicate, TrueExpr):
            where_parts.append(self.predicate.to_sql())
        if where_parts:
            sql += " WHERE " + " AND ".join(where_parts)
        if self.order_by:
            sql += f" ORDER BY {self.order_by}" + (" DESC" if self.descending else "")
        if self.limit is not None:
            sql += f" LIMIT {self.limit}"
        return sql

    def tokens(self) -> list[str]:
        """Structural tokens for the query embedder."""
        tokens = [f"table:{t}" for t in self.tables]
        tokens += [f"join:{j.left}={j.right}" for j in self.joins]
        tokens += self.predicate.tokens()
        tokens += [f"proj:{c}" for c in self.projection]
        return tokens

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f"{self.name}: " if self.name else ""
        return f"SPJQuery({label}{self.to_sql()})"


class AggFunc(enum.Enum):
    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output, e.g. ``SUM(flights.dep_delay) AS total_delay``."""

    func: AggFunc
    column: Optional[str] = None  # None => COUNT(*)
    alias: str = ""

    def __post_init__(self) -> None:
        if self.func is not AggFunc.COUNT and self.column is None:
            raise QueryError(f"{self.func.value} requires a column")

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        target = self.column if self.column else "*"
        return f"{self.func.value.lower()}({target})"

    def to_sql(self) -> str:
        target = self.column if self.column else "*"
        sql = f"{self.func.value}({target})"
        if self.alias:
            sql += f" AS {self.alias}"
        return sql


@dataclass(frozen=True)
class AggregateQuery:
    """An aggregate query with optional GROUP BY over an SPJ core.

    ``strip_aggregates()`` implements the paper's rewrite: drop aggregation
    and grouping, and select the columns the aggregates / grouping touch.
    """

    tables: Tuple[str, ...]
    aggregates: Tuple[AggregateSpec, ...]
    predicate: Expression = field(default_factory=TrueExpr)
    joins: Tuple[JoinCondition, ...] = ()
    group_by: Tuple[str, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise QueryError("an aggregate query needs at least one aggregate")
        # Reuse SPJ validation for tables/joins.
        SPJQuery(tables=self.tables, joins=self.joins)

    @property
    def is_aggregate(self) -> bool:
        return True

    def strip_aggregates(self) -> SPJQuery:
        """Rewrite to the SPJ query the paper trains on (§3)."""
        projection: list[str] = []
        for ref in self.group_by:
            if ref not in projection:
                projection.append(ref)
        for spec in self.aggregates:
            if spec.column and spec.column not in projection:
                projection.append(spec.column)
        return SPJQuery(
            tables=self.tables,
            predicate=self.predicate,
            joins=self.joins,
            projection=tuple(projection),
            name=(self.name + ":spj") if self.name else "",
        )

    def to_sql(self) -> str:
        cols = list(self.group_by) + [spec.to_sql() for spec in self.aggregates]
        sql = f"SELECT {', '.join(cols)} FROM {', '.join(self.tables)}"
        where_parts = [join.to_sql() for join in self.joins]
        if not isinstance(self.predicate, TrueExpr):
            where_parts.append(self.predicate.to_sql())
        if where_parts:
            sql += " WHERE " + " AND ".join(where_parts)
        if self.group_by:
            sql += " GROUP BY " + ", ".join(self.group_by)
        return sql

    def tokens(self) -> list[str]:
        tokens = self.strip_aggregates().tokens()
        tokens += [f"agg:{spec.func.value.lower()}" for spec in self.aggregates]
        tokens += [f"group:{ref}" for ref in self.group_by]
        return tokens

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f"{self.name}: " if self.name else ""
        return f"AggregateQuery({label}{self.to_sql()})"


def joins_between(
    joins: Sequence[JoinCondition], table: str, joined: set[str]
) -> list[JoinCondition]:
    """Join conditions linking ``table`` to any already-joined table.

    The executor and the planner both expand the join graph one table at
    a time; this is the shared "which equi-conditions become usable when
    ``table`` joins the intermediate" predicate.
    """
    return [
        j
        for j in joins
        if (j.left_table == table and j.right_table in joined)
        or (j.right_table == table and j.left_table in joined)
    ]


Query = SPJQuery  # the workload type used throughout the core package
