"""An LRU tuple cache simulating a database buffer cache.

Substrate for the CACH baseline (paper §6.1 baseline 5): the cache holds
tuples touched by recently executed queries, evicting least-recently-used
entries when the memory budget ``k`` (total tuples) is exceeded. The
"realistic use case" footnote of the paper — interleaved queries from users
with different interests — is modelled by feeding the cache a shuffled
query stream.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterable, Optional, Tuple

from ..obs import metrics as _metrics
from ..obs.runtime import STATE as _OBS

TupleKey = Tuple[str, int]  # (table name, base row id)

# (query SQL, ((table, encoding_version), ...)) — the physical identity of
# everything a cached result depends on.
ResultKey = Tuple[str, Tuple[Tuple[str, int], ...]]


class LRUTupleCache:
    """Fixed-capacity LRU cache of ``(table, row_id)`` tuple keys."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[TupleKey, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Counter totals already published to the metrics registry.
        self._published = (0, 0, 0)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: TupleKey) -> bool:
        return key in self._entries

    def _touch(self, key: TupleKey) -> bool:
        hit = key in self._entries
        if hit:
            self._entries.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
            self._entries[key] = None
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return hit

    def touch(self, key: TupleKey) -> bool:
        """Access a tuple: insert or refresh it. Returns True on a hit."""
        hit = self._touch(key)
        if _OBS.enabled:
            self._publish_delta()
        return hit

    def touch_many(self, keys: Iterable[TupleKey]) -> int:
        """Access a batch of tuples (deduplicated); returns the hit count."""
        hits = 0
        seen: set[TupleKey] = set()
        for key in keys:
            if key in seen:
                continue
            seen.add(key)
            if self._touch(key):
                hits += 1
        if _OBS.enabled:
            self._publish_delta()
        return hits

    def _publish_delta(self) -> None:
        """Sync the registry's cache counters to this cache's totals.

        Counters accumulate deltas since the last publish, so several
        caches in one process aggregate into one registry series.
        """
        registry = _metrics.registry()
        registry.add("cache.hits", self.hits - self._published[0])
        registry.add("cache.misses", self.misses - self._published[1])
        registry.add("cache.evictions", self.evictions - self._published[2])
        registry.set_gauge("cache.size", len(self._entries))
        self._published = (self.hits, self.misses, self.evictions)

    def cache_stats(self) -> dict[str, float]:
        """Lifetime statistics of this cache (standalone accessor)."""
        return {
            "capacity": float(self.capacity),
            "size": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "hit_rate": self.hit_rate,
        }

    def contents(self) -> dict[str, list[int]]:
        """Current cache contents grouped by table (row ids sorted)."""
        grouped: dict[str, list[int]] = {}
        for table_name, row_id in self._entries:
            grouped.setdefault(table_name, []).append(row_id)
        return {table: sorted(ids) for table, ids in grouped.items()}

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """LRU cache of executed query results, keyed on encoding versions.

    A cached result is only valid for the exact physical state of the
    tables it was computed from. The key therefore combines the query's
    SQL text with the ``encoding_version`` of every table in its FROM
    clause; rebuilding or re-encoding a table bumps its version (see
    :class:`repro.db.table.Table`), so stale entries simply stop
    matching instead of being served.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[ResultKey, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(self, db: Any, query: Any) -> ResultKey:
        """The cache key binding *query* to the tables' current encodings."""
        versions = tuple(
            (name, db.table(name).encoding_version) for name in query.tables
        )
        return (query.to_sql(), versions)

    def lookup(self, key: ResultKey) -> Optional[Any]:
        """Fetch a cached result, refreshing its LRU position. None on miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        if _OBS.enabled:
            registry = _metrics.registry()
            registry.add("result_cache.hits" if entry is not None else "result_cache.misses", 1)
            registry.set_gauge("result_cache.size", len(self._entries))
        return entry

    def store(self, key: ResultKey, result: Any) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            if _OBS.enabled:
                _metrics.registry().add("result_cache.evictions", 1)

    def cache_stats(self) -> dict[str, float]:
        total = self.hits + self.misses
        return {
            "capacity": float(self.capacity),
            "size": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "hit_rate": self.hits / total if total else 0.0,
        }


def execute_cached(db: Any, query: Any, cache: ResultCache) -> Any:
    """Execute *query* through *cache*, reusing results while valid.

    Dispatches to :func:`repro.db.executor.execute` or
    :func:`~repro.db.executor.execute_aggregate` by query type. A hit is
    returned as-is (results are immutable once decoded); any change to a
    referenced table's encoding version forces a fresh execution.
    """
    from . import executor
    from .query import AggregateQuery

    key = cache.key_for(db, query)
    hit = cache.lookup(key)
    if hit is not None:
        return hit
    if isinstance(query, AggregateQuery):
        result: Any = executor.execute_aggregate(db, query)
    else:
        result = executor.execute(db, query)
    cache.store(key, result)
    return result
