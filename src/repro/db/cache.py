"""An LRU tuple cache simulating a database buffer cache.

Substrate for the CACH baseline (paper §6.1 baseline 5): the cache holds
tuples touched by recently executed queries, evicting least-recently-used
entries when the memory budget ``k`` (total tuples) is exceeded. The
"realistic use case" footnote of the paper — interleaved queries from users
with different interests — is modelled by feeding the cache a shuffled
query stream.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Tuple

from ..obs import metrics as _metrics
from ..obs.runtime import STATE as _OBS

TupleKey = Tuple[str, int]  # (table name, base row id)


class LRUTupleCache:
    """Fixed-capacity LRU cache of ``(table, row_id)`` tuple keys."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[TupleKey, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Counter totals already published to the metrics registry.
        self._published = (0, 0, 0)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: TupleKey) -> bool:
        return key in self._entries

    def _touch(self, key: TupleKey) -> bool:
        hit = key in self._entries
        if hit:
            self._entries.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
            self._entries[key] = None
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return hit

    def touch(self, key: TupleKey) -> bool:
        """Access a tuple: insert or refresh it. Returns True on a hit."""
        hit = self._touch(key)
        if _OBS.enabled:
            self._publish_delta()
        return hit

    def touch_many(self, keys: Iterable[TupleKey]) -> int:
        """Access a batch of tuples (deduplicated); returns the hit count."""
        hits = 0
        seen: set[TupleKey] = set()
        for key in keys:
            if key in seen:
                continue
            seen.add(key)
            if self._touch(key):
                hits += 1
        if _OBS.enabled:
            self._publish_delta()
        return hits

    def _publish_delta(self) -> None:
        """Sync the registry's cache counters to this cache's totals.

        Counters accumulate deltas since the last publish, so several
        caches in one process aggregate into one registry series.
        """
        registry = _metrics.registry()
        registry.add("cache.hits", self.hits - self._published[0])
        registry.add("cache.misses", self.misses - self._published[1])
        registry.add("cache.evictions", self.evictions - self._published[2])
        registry.set_gauge("cache.size", len(self._entries))
        self._published = (self.hits, self.misses, self.evictions)

    def cache_stats(self) -> dict[str, float]:
        """Lifetime statistics of this cache (standalone accessor)."""
        return {
            "capacity": float(self.capacity),
            "size": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "hit_rate": self.hit_rate,
        }

    def contents(self) -> dict[str, list[int]]:
        """Current cache contents grouped by table (row ids sorted)."""
        grouped: dict[str, list[int]] = {}
        for table_name, row_id in self._entries:
            grouped.setdefault(table_name, []).append(row_id)
        return {table: sorted(ids) for table, ids in grouped.items()}

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
