"""An LRU tuple cache simulating a database buffer cache.

Substrate for the CACH baseline (paper §6.1 baseline 5): the cache holds
tuples touched by recently executed queries, evicting least-recently-used
entries when the memory budget ``k`` (total tuples) is exceeded. The
"realistic use case" footnote of the paper — interleaved queries from users
with different interests — is modelled by feeding the cache a shuffled
query stream.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Tuple

TupleKey = Tuple[str, int]  # (table name, base row id)


class LRUTupleCache:
    """Fixed-capacity LRU cache of ``(table, row_id)`` tuple keys."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[TupleKey, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: TupleKey) -> bool:
        return key in self._entries

    def touch(self, key: TupleKey) -> bool:
        """Access a tuple: insert or refresh it. Returns True on a hit."""
        hit = key in self._entries
        if hit:
            self._entries.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
            self._entries[key] = None
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return hit

    def touch_many(self, keys: Iterable[TupleKey]) -> int:
        """Access a batch of tuples (deduplicated); returns the hit count."""
        hits = 0
        seen: set[TupleKey] = set()
        for key in keys:
            if key in seen:
                continue
            seen.add(key)
            if self.touch(key):
                hits += 1
        return hits

    def contents(self) -> dict[str, list[int]]:
        """Current cache contents grouped by table (row ids sorted)."""
        grouped: dict[str, list[int]] = {}
        for table_name, row_id in self._entries:
            grouped.setdefault(table_name, []).append(row_id)
        return {table: sorted(ids) for table, ids in grouped.items()}

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
