"""Compressed column-store table.

A :class:`Table` owns one *encoded* column per schema column plus a stable
integer *row id* per row. Row ids are positions in the base table and
survive into subsets taken with :meth:`Table.take`, which is how
approximation sets remember which base tuples they contain.

Storage encodings (the compressed column store):

* ``STR`` columns are **dictionary-encoded** (:class:`DictEncoded`): a
  lexicographically sorted dictionary of distinct strings plus one
  ``int32`` code per row. Because the dictionary is sorted, code order
  equals string order, so equality *and* range predicates, joins, sorts,
  and DISTINCT can all run directly on the codes — strings materialize
  only at projection time (late materialization).
* ``INT`` columns are **bit-width reduced** (:class:`IntPacked`): values
  are stored as unsigned offsets from the column minimum in the narrowest
  unsigned dtype that fits; NULL sentinels take a reserved code one past
  the value span. Columns whose span does not fit ``uint32`` stay plain.
* ``FLOAT`` columns are stored plain (``float64``).

:meth:`Table.column` decodes on demand and caches the decoded array, so
every pre-column-store consumer keeps working unchanged; the executor
reads codes through :meth:`Table.encoding` / :meth:`Table.raw_column` and
never pays the decode on its hot paths. :meth:`Table.take` subsets codes
directly (an ``int32`` gather instead of an object-array gather), which
is what makes derived sub-databases cheap.

Every table carries a process-unique :attr:`Table.encoding_version`; a
rebuilt or re-encoded table gets a fresh version, which is what the
query-result cache keys on to invalidate stale entries.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from .schema import INT_NULL, Column, ColumnType, SchemaError, TableSchema

#: Process-wide monotonically increasing encoding version source. Every
#: constructed Table (including subsets) draws a fresh version, so any
#: rebuild / re-encode observably changes the version.
_ENCODING_VERSIONS = itertools.count(1)


class DictEncoded:
    """A dictionary-encoded string column.

    ``dictionary`` is the sorted array of distinct values (object dtype,
    ascending by Python string order — identical to numpy ``U`` order for
    well-formed text), ``codes`` is one ``int32`` per row indexing into
    it. Equal values have equal codes and code order equals value order.
    """

    __slots__ = ("codes", "dictionary")

    def __init__(self, codes: np.ndarray, dictionary: np.ndarray) -> None:
        self.codes = codes
        self.dictionary = dictionary

    @classmethod
    def from_values(cls, values: np.ndarray) -> "DictEncoded":
        if len(values) == 0:
            dictionary = np.empty(0, dtype=object)
            codes = np.zeros(0, dtype=np.int32)
        else:
            dictionary, inverse = np.unique(values, return_inverse=True)
            codes = inverse.astype(np.int32, copy=False).reshape(-1)
        codes.setflags(write=False)
        dictionary.setflags(write=False)
        return cls(codes, dictionary)

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def n_values(self) -> int:
        return len(self.dictionary)

    def decode(self) -> np.ndarray:
        if len(self.dictionary) == 0:
            return np.empty(len(self.codes), dtype=object)
        return self.dictionary[self.codes]

    def take(self, positions: np.ndarray) -> "DictEncoded":
        codes = self.codes[positions]
        codes.setflags(write=False)
        return DictEncoded(codes, self.dictionary)

    def encoded_nbytes(self) -> int:
        return int(self.codes.nbytes) + sum(
            _STR_OBJECT_OVERHEAD + len(value) for value in self.dictionary
        )

    def plain_nbytes(self) -> int:
        if len(self.dictionary) == 0:
            return 8 * len(self.codes)
        lengths = np.fromiter(
            (len(value) for value in self.dictionary),
            dtype=np.int64,
            count=len(self.dictionary),
        )
        counts = np.bincount(self.codes, minlength=len(self.dictionary))
        return int(8 * len(self.codes) + ((_STR_OBJECT_OVERHEAD + lengths) * counts).sum())


#: Approximate per-object overhead of a CPython str, used only for the
#: compression-ratio accounting (never for correctness).
_STR_OBJECT_OVERHEAD = 49


class IntPacked:
    """A bit-width-reduced integer column.

    Non-null values are stored as ``value - base`` in the narrowest
    unsigned dtype whose range covers the span; NULL sentinels
    (:data:`repro.db.schema.INT_NULL`) are stored as the reserved code
    ``span`` (one past the largest offset).
    """

    __slots__ = ("codes", "base", "null_code")

    def __init__(self, codes: np.ndarray, base: int, null_code: int) -> None:
        self.codes = codes
        self.base = base
        self.null_code = null_code

    @classmethod
    def from_values(cls, values: np.ndarray) -> "Optional[IntPacked]":
        """Pack an int64 array, or return None when packing cannot win."""
        n = len(values)
        nulls = values == INT_NULL
        any_null = bool(nulls.any())
        valid = values[~nulls] if any_null else values
        if len(valid) == 0:
            base, span = 0, 0
        else:
            base = int(valid.min())
            span = int(valid.max()) - base
        null_code = span + 1 if any_null else span
        for dtype in (np.uint8, np.uint16, np.uint32):
            if null_code <= np.iinfo(dtype).max:
                codes = np.empty(n, dtype=dtype)
                if any_null:
                    np.subtract(values, base, out=codes, casting="unsafe",
                                where=~nulls)
                    codes[nulls] = null_code
                else:
                    np.subtract(values, base, out=codes, casting="unsafe")
                codes.setflags(write=False)
                return cls(codes, base, null_code if any_null else -1)
        return None

    def __len__(self) -> int:
        return len(self.codes)

    def decode(self) -> np.ndarray:
        out = self.codes.astype(np.int64)
        out += self.base
        if self.null_code >= 0:
            out[self.codes == self.null_code] = INT_NULL
        out.setflags(write=False)
        return out

    def take(self, positions: np.ndarray) -> "IntPacked":
        codes = self.codes[positions]
        codes.setflags(write=False)
        return IntPacked(codes, self.base, self.null_code)

    def encoded_nbytes(self) -> int:
        return int(self.codes.nbytes)

    def plain_nbytes(self) -> int:
        return 8 * len(self.codes)


#: What a column slot may hold: a plain numpy array or an encoding.
ColumnStorage = Union[np.ndarray, DictEncoded, IntPacked]


def _encode_column(column: Column, array: np.ndarray) -> ColumnStorage:
    if column.ctype is ColumnType.STR:
        return DictEncoded.from_values(array)
    if column.ctype is ColumnType.INT:
        packed = IntPacked.from_values(array)
        if packed is not None:
            return packed
    array.setflags(write=False)
    return array


class Table:
    """An immutable in-memory table over the compressed column store.

    Parameters
    ----------
    schema:
        The table schema.
    columns:
        Mapping from column name to a sequence of values (all the same
        length). Values are coerced to the column's storage dtype and
        encoded (dictionary / bit-width reduction) on construction.
    row_ids:
        Optional explicit row ids. Defaults to ``arange(n)``; subsets carry
        the ids of the base rows they came from.
    """

    def __init__(
        self,
        schema: TableSchema,
        columns: Mapping[str, Sequence],
        row_ids: Optional[np.ndarray] = None,
    ) -> None:
        self.schema = schema
        missing = [c.name for c in schema.columns if c.name not in columns]
        if missing:
            raise SchemaError(f"table {schema.name!r}: missing columns {missing}")
        extra = [name for name in columns if not schema.has_column(name)]
        if extra:
            raise SchemaError(f"table {schema.name!r}: unknown columns {extra}")

        self._store: dict[str, ColumnStorage] = {}
        n_rows: Optional[int] = None
        for column in schema.columns:
            array = column.coerce(columns[column.name])
            if n_rows is None:
                n_rows = len(array)
            elif len(array) != n_rows:
                raise SchemaError(
                    f"table {schema.name!r}: column {column.name!r} has "
                    f"{len(array)} values, expected {n_rows}"
                )
            self._store[column.name] = _encode_column(column, array)
        self._finish_init(int(n_rows or 0), row_ids)

    def _finish_init(self, n_rows: int, row_ids: Optional[np.ndarray]) -> None:
        self._n_rows = n_rows
        self._decoded: dict[str, np.ndarray] = {}
        self._zone_maps: dict[int, object] = {}
        self.encoding_version = next(_ENCODING_VERSIONS)
        if row_ids is None:
            row_ids = np.arange(self._n_rows, dtype=np.int64)
        else:
            row_ids = np.asarray(row_ids, dtype=np.int64)
            if len(row_ids) != self._n_rows:
                raise SchemaError(
                    f"table {self.schema.name!r}: {len(row_ids)} row ids for "
                    f"{self._n_rows} rows"
                )
        row_ids.setflags(write=False)
        self.row_ids = row_ids

    @classmethod
    def _from_store(
        cls,
        schema: TableSchema,
        store: dict[str, ColumnStorage],
        n_rows: int,
        row_ids: Optional[np.ndarray],
    ) -> "Table":
        """Internal fast path: build a table from already-encoded columns."""
        table = cls.__new__(cls)
        table.schema = schema
        table._store = store
        table._finish_init(n_rows, row_ids)
        return table

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return self._n_rows

    def column(self, name: str) -> np.ndarray:
        """The decoded value array of a column (read-only, cached)."""
        self.schema.column(name)  # validates the name
        cached = self._decoded.get(name)
        if cached is not None:
            return cached
        storage = self._store[name]
        if isinstance(storage, np.ndarray):
            array = storage
        else:
            array = storage.decode()
            array.setflags(write=False)
        self._decoded[name] = array
        return array

    def encoding(self, name: str) -> Optional[ColumnStorage]:
        """The encoding object of a column (None when stored plain)."""
        self.schema.column(name)
        storage = self._store[name]
        return None if isinstance(storage, np.ndarray) else storage

    def raw_column(self, name: str) -> np.ndarray:
        """The physical array of a column: codes when encoded, else values.

        For dictionary columns this is the ``int32`` code array (compare
        with :attr:`DictEncoded.dictionary` order); for packed ints the
        unsigned offsets. Use :meth:`column` for decoded values.
        """
        self.schema.column(name)
        storage = self._store[name]
        return storage if isinstance(storage, np.ndarray) else storage.codes

    def dictionary(self, name: str) -> Optional[np.ndarray]:
        """The sorted dictionary of a dict-encoded column, else None."""
        storage = self._store.get(name)
        if isinstance(storage, DictEncoded):
            return storage.dictionary
        return None

    def row(self, index: int) -> dict[str, object]:
        """Materialize one row (by position, not row id) as a dict."""
        if not 0 <= index < self._n_rows:
            raise IndexError(
                f"table {self.name!r}: row {index} out of range 0..{self._n_rows - 1}"
            )
        return {name: self.column(name)[index] for name in self.schema.column_names}

    def rows(self) -> Iterator[dict[str, object]]:
        """Iterate over all rows as dicts. Intended for tests and display."""
        for index in range(self._n_rows):
            yield self.row(index)

    def null_mask(self, name: str) -> np.ndarray:
        column = self.schema.column(name)
        return column.null_mask(self.column(name))

    # ------------------------------------------------------------------ #
    # storage accounting / zone maps
    # ------------------------------------------------------------------ #
    def compression_stats(self) -> dict[str, float]:
        """Approximate plain vs encoded byte sizes and the overall ratio.

        String sizes are estimated from dictionary entry lengths plus a
        fixed per-object overhead — an accounting aid for the benchmark
        record, not an allocator-accurate measurement.
        """
        plain = 0
        encoded = 0
        for name in self.schema.column_names:
            storage = self._store[name]
            if isinstance(storage, np.ndarray):
                plain += int(storage.nbytes)
                encoded += int(storage.nbytes)
            else:
                plain += storage.plain_nbytes()
                encoded += storage.encoded_nbytes()
        return {
            "plain_bytes": float(plain),
            "encoded_bytes": float(encoded),
            "ratio": float(plain) / float(encoded) if encoded else 1.0,
        }

    def zone_maps(self, block_rows: Optional[int] = None):
        """Per-column min/max block statistics (built lazily, cached).

        See :class:`repro.db.statistics.TableZoneMaps`; the executor
        consults these to prune scan blocks, the planner to tighten
        cardinality estimates.
        """
        from .statistics import DEFAULT_BLOCK_ROWS, build_zone_maps

        rows = int(block_rows) if block_rows else DEFAULT_BLOCK_ROWS
        cached = self._zone_maps.get(rows)
        if cached is None:
            cached = self._zone_maps[rows] = build_zone_maps(self, block_rows=rows)
        return cached

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #
    def take(self, positions: np.ndarray) -> "Table":
        """A new table containing the rows at ``positions`` (in order).

        Row ids are carried through, so a subset of a subset still refers
        to base-table rows. Subsetting operates directly on the encoded
        codes (dictionaries are shared, not copied).
        """
        positions = np.asarray(positions, dtype=np.int64)
        store: dict[str, ColumnStorage] = {}
        for name, storage in self._store.items():
            if isinstance(storage, np.ndarray):
                taken = storage[positions]
                taken.setflags(write=False)
                store[name] = taken
            else:
                store[name] = storage.take(positions)
        return Table._from_store(
            self.schema, store, len(positions), self.row_ids[positions]
        )

    def filter_mask(self, mask: np.ndarray) -> "Table":
        """A new table keeping rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self._n_rows:
            raise ValueError(
                f"table {self.name!r}: mask length {len(mask)} != {self._n_rows} rows"
            )
        return self.take(np.flatnonzero(mask))

    def subset_by_row_ids(self, keep_ids: Iterable[int]) -> "Table":
        """A new table keeping rows whose *row id* is in ``keep_ids``."""
        keep = np.asarray(sorted(set(int(i) for i in keep_ids)), dtype=np.int64)
        mask = np.isin(self.row_ids, keep)
        return self.filter_mask(mask)

    def head(self, n: int = 10) -> "Table":
        return self.take(np.arange(min(n, self._n_rows)))

    # ------------------------------------------------------------------ #
    # display
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, rows={self._n_rows}, cols={self.schema.column_names})"

    def _repr_html_(self) -> str:
        """Jupyter rendering (the paper targets notebook EDA sessions)."""
        limit = 10
        names = self.schema.column_names
        columns = {name: self.column(name) for name in names}
        rows = [
            [columns[name][i] for name in names]
            for i in range(min(limit, self._n_rows))
        ]
        caption = f"{self.name} — {self._n_rows} rows"
        if self._n_rows > limit:
            caption += f" (showing {limit})"
        return render_html_table(names, rows, caption=caption)

    def to_text(self, limit: int = 10) -> str:
        """A small fixed-width rendering, for examples and debugging."""
        names = self.schema.column_names
        columns = {name: self.column(name) for name in names}
        shown = [
            [str(columns[name][i]) for name in names]
            for i in range(min(limit, self._n_rows))
        ]
        widths = [
            max(len(name), *(len(row[j]) for row in shown)) if shown else len(name)
            for j, name in enumerate(names)
        ]
        header = " | ".join(name.ljust(widths[j]) for j, name in enumerate(names))
        rule = "-+-".join("-" * width for width in widths)
        lines = [header, rule]
        for row in shown:
            lines.append(" | ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if self._n_rows > limit:
            lines.append(f"... ({self._n_rows - limit} more rows)")
        return "\n".join(lines)


def table_from_rows(schema: TableSchema, rows: Sequence[Mapping[str, object]]) -> Table:
    """Build a :class:`Table` from a sequence of row dicts."""
    columns: dict[str, list] = {column.name: [] for column in schema.columns}
    for row in rows:
        for column in schema.columns:
            if column.name not in row:
                raise SchemaError(
                    f"table {schema.name!r}: row missing column {column.name!r}"
                )
            columns[column.name].append(row[column.name])
    return Table(schema, columns)


def _html_escape(value: object) -> str:
    text = str(value)
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def render_html_table(headers, rows, caption: str = "") -> str:
    """Minimal HTML table used by the Jupyter reprs (no styling deps)."""
    parts = ["<table>"]
    if caption:
        parts.append(f"<caption>{_html_escape(caption)}</caption>")
    parts.append(
        "<thead><tr>"
        + "".join(f"<th>{_html_escape(h)}</th>" for h in headers)
        + "</tr></thead><tbody>"
    )
    for row in rows:
        parts.append(
            "<tr>" + "".join(f"<td>{_html_escape(v)}</td>" for v in row) + "</tr>"
        )
    parts.append("</tbody></table>")
    return "".join(parts)
