"""Column-store table.

A :class:`Table` owns one numpy array per column plus a stable integer
*row id* per row. Row ids are positions in the base table and survive into
subsets taken with :meth:`Table.take`, which is how approximation sets
remember which base tuples they contain.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np

from .schema import Column, SchemaError, TableSchema


class Table:
    """An immutable in-memory table.

    Parameters
    ----------
    schema:
        The table schema.
    columns:
        Mapping from column name to a sequence of values (all the same
        length). Values are coerced to the column's storage dtype.
    row_ids:
        Optional explicit row ids. Defaults to ``arange(n)``; subsets carry
        the ids of the base rows they came from.
    """

    def __init__(
        self,
        schema: TableSchema,
        columns: Mapping[str, Sequence],
        row_ids: Optional[np.ndarray] = None,
    ) -> None:
        self.schema = schema
        missing = [c.name for c in schema.columns if c.name not in columns]
        if missing:
            raise SchemaError(f"table {schema.name!r}: missing columns {missing}")
        extra = [name for name in columns if not schema.has_column(name)]
        if extra:
            raise SchemaError(f"table {schema.name!r}: unknown columns {extra}")

        self._data: dict[str, np.ndarray] = {}
        n_rows: Optional[int] = None
        for column in schema.columns:
            array = column.coerce(columns[column.name])
            if n_rows is None:
                n_rows = len(array)
            elif len(array) != n_rows:
                raise SchemaError(
                    f"table {schema.name!r}: column {column.name!r} has "
                    f"{len(array)} values, expected {n_rows}"
                )
            array.setflags(write=False)
            self._data[column.name] = array
        self._n_rows = int(n_rows or 0)

        if row_ids is None:
            row_ids = np.arange(self._n_rows, dtype=np.int64)
        else:
            row_ids = np.asarray(row_ids, dtype=np.int64)
            if len(row_ids) != self._n_rows:
                raise SchemaError(
                    f"table {schema.name!r}: {len(row_ids)} row ids for "
                    f"{self._n_rows} rows"
                )
        row_ids.setflags(write=False)
        self.row_ids = row_ids

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return self._n_rows

    def column(self, name: str) -> np.ndarray:
        """The storage array of a column (read-only view)."""
        self.schema.column(name)  # validates the name
        return self._data[name]

    def row(self, index: int) -> dict[str, object]:
        """Materialize one row (by position, not row id) as a dict."""
        if not 0 <= index < self._n_rows:
            raise IndexError(
                f"table {self.name!r}: row {index} out of range 0..{self._n_rows - 1}"
            )
        return {name: array[index] for name, array in self._data.items()}

    def rows(self) -> Iterator[dict[str, object]]:
        """Iterate over all rows as dicts. Intended for tests and display."""
        for index in range(self._n_rows):
            yield self.row(index)

    def null_mask(self, name: str) -> np.ndarray:
        column = self.schema.column(name)
        return column.null_mask(self._data[name])

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #
    def take(self, positions: np.ndarray) -> "Table":
        """A new table containing the rows at ``positions`` (in order).

        Row ids are carried through, so a subset of a subset still refers
        to base-table rows.
        """
        positions = np.asarray(positions, dtype=np.int64)
        data = {name: array[positions] for name, array in self._data.items()}
        return Table(self.schema, data, row_ids=self.row_ids[positions])

    def filter_mask(self, mask: np.ndarray) -> "Table":
        """A new table keeping rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self._n_rows:
            raise ValueError(
                f"table {self.name!r}: mask length {len(mask)} != {self._n_rows} rows"
            )
        return self.take(np.flatnonzero(mask))

    def subset_by_row_ids(self, keep_ids: Iterable[int]) -> "Table":
        """A new table keeping rows whose *row id* is in ``keep_ids``."""
        keep = np.asarray(sorted(set(int(i) for i in keep_ids)), dtype=np.int64)
        mask = np.isin(self.row_ids, keep)
        return self.filter_mask(mask)

    def head(self, n: int = 10) -> "Table":
        return self.take(np.arange(min(n, self._n_rows)))

    # ------------------------------------------------------------------ #
    # display
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, rows={self._n_rows}, cols={self.schema.column_names})"

    def _repr_html_(self) -> str:
        """Jupyter rendering (the paper targets notebook EDA sessions)."""
        limit = 10
        names = self.schema.column_names
        rows = [
            [self._data[name][i] for name in names]
            for i in range(min(limit, self._n_rows))
        ]
        caption = f"{self.name} — {self._n_rows} rows"
        if self._n_rows > limit:
            caption += f" (showing {limit})"
        return render_html_table(names, rows, caption=caption)

    def to_text(self, limit: int = 10) -> str:
        """A small fixed-width rendering, for examples and debugging."""
        names = self.schema.column_names
        shown = [
            [str(self._data[name][i]) for name in names]
            for i in range(min(limit, self._n_rows))
        ]
        widths = [
            max(len(name), *(len(row[j]) for row in shown)) if shown else len(name)
            for j, name in enumerate(names)
        ]
        header = " | ".join(name.ljust(widths[j]) for j, name in enumerate(names))
        rule = "-+-".join("-" * width for width in widths)
        lines = [header, rule]
        for row in shown:
            lines.append(" | ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if self._n_rows > limit:
            lines.append(f"... ({self._n_rows - limit} more rows)")
        return "\n".join(lines)


def table_from_rows(schema: TableSchema, rows: Sequence[Mapping[str, object]]) -> Table:
    """Build a :class:`Table` from a sequence of row dicts."""
    columns: dict[str, list] = {column.name: [] for column in schema.columns}
    for row in rows:
        for column in schema.columns:
            if column.name not in row:
                raise SchemaError(
                    f"table {schema.name!r}: row missing column {column.name!r}"
                )
            columns[column.name].append(row[column.name])
    return Table(schema, columns)


def _html_escape(value: object) -> str:
    text = str(value)
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def render_html_table(headers, rows, caption: str = "") -> str:
    """Minimal HTML table used by the Jupyter reprs (no styling deps)."""
    parts = ["<table>"]
    if caption:
        parts.append(f"<caption>{_html_escape(caption)}</caption>")
    parts.append(
        "<thead><tr>"
        + "".join(f"<th>{_html_escape(h)}</th>" for h in headers)
        + "</tr></thead><tbody>"
    )
    for row in rows:
        parts.append(
            "<tr>" + "".join(f"<td>{_html_escape(v)}</td>" for v in row) + "</tr>"
        )
    parts.append("</tbody></table>")
    return "".join(parts)
