"""A small SQL parser for the query subset ASQP-RL works with.

Grammar (case-insensitive keywords)::

    query     := SELECT [DISTINCT] select_list FROM table_list
                 [WHERE predicate] [GROUP BY refs] [ORDER BY ref [DESC]]
                 [LIMIT int]
    select_list := '*' | item (',' item)*
    item      := ref | AGG '(' (ref | '*') ')' [AS name]
    predicate := disjunction of conjunctions with NOT and parentheses;
                 atoms are comparisons, BETWEEN, IN (...), LIKE,
                 IS [NOT] NULL, and equi-join conditions ref = ref.

Equi-join atoms between columns of *different* tables are lifted out of the
WHERE clause into :class:`~repro.db.query.JoinCondition` objects (only when
they appear as top-level conjuncts, which matches how the benchmark
workloads are written).
"""

from __future__ import annotations

import re
from typing import Optional, Union

from .expressions import (
    Between,
    Comparison,
    Expression,
    InSet,
    IsNotNull,
    IsNull,
    Like,
    Not,
    Or,
    TrueExpr,
    conjoin,
    conjuncts,
)
from .query import AggFunc, AggregateQuery, AggregateSpec, JoinCondition, QueryError, SPJQuery


class SQLSyntaxError(ValueError):
    """Raised when the SQL text cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*'            # string literal
      | -?\d+\.\d+(?:[eE][+-]?\d+)?   # float (optional sign/exponent)
      | -?\d+(?:[eE][+-]?\d+)?         # int / scientific

      | [A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?   # ident / ref
      | <= | >= | != | <> | = | < | >
      | \( | \) | , | \*
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "order",
    "limit", "and", "or", "not", "between", "in", "like", "is", "null",
    "as", "desc", "asc",
}

_AGG_FUNCS = {f.value.lower(): f for f in AggFunc}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    text = text.strip().rstrip(";")
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise SQLSyntaxError(f"cannot tokenize SQL at: {text[pos:pos + 30]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ---------------- token helpers ----------------
    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def peek_kw(self) -> Optional[str]:
        token = self.peek()
        return token.lower() if token and token.lower() in _KEYWORDS else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of SQL")
        self.pos += 1
        return token

    def expect_kw(self, keyword: str) -> None:
        token = self.next()
        if token.lower() != keyword:
            raise SQLSyntaxError(f"expected {keyword.upper()}, got {token!r}")

    def accept_kw(self, keyword: str) -> bool:
        if self.peek() is not None and self.peek().lower() == keyword:
            self.pos += 1
            return True
        return False

    def accept(self, literal: str) -> bool:
        if self.peek() == literal:
            self.pos += 1
            return True
        return False

    # ---------------- grammar ----------------
    def parse_query(self) -> Union[SPJQuery, AggregateQuery]:
        self.expect_kw("select")
        distinct = self.accept_kw("distinct")
        plain_refs, agg_specs, star = self._select_list()
        self.expect_kw("from")
        tables = self._table_list()

        predicate: Expression = TrueExpr()
        if self.accept_kw("where"):
            predicate = self._disjunction()

        group_by: list[str] = []
        if self.accept_kw("group"):
            self.expect_kw("by")
            group_by = self._ref_list()

        order_by: Optional[str] = None
        descending = False
        if self.accept_kw("order"):
            self.expect_kw("by")
            order_by = self._ref()
            if self.accept_kw("desc"):
                descending = True
            else:
                self.accept_kw("asc")

        limit: Optional[int] = None
        if self.accept_kw("limit"):
            token = self.next()
            if not token.isdigit():
                raise SQLSyntaxError(f"LIMIT expects an integer, got {token!r}")
            limit = int(token)

        if self.peek() is not None:
            raise SQLSyntaxError(f"trailing tokens: {self.tokens[self.pos:]}")

        joins, residual = _lift_joins(predicate, tables)

        if agg_specs:
            if order_by or limit or distinct or star:
                raise SQLSyntaxError(
                    "aggregate queries support only WHERE and GROUP BY modifiers"
                )
            if plain_refs and set(plain_refs) - set(group_by):
                raise SQLSyntaxError(
                    "non-aggregated select columns must appear in GROUP BY"
                )
            return AggregateQuery(
                tables=tuple(tables),
                aggregates=tuple(agg_specs),
                predicate=residual,
                joins=tuple(joins),
                group_by=tuple(group_by),
            )

        if group_by:
            raise SQLSyntaxError("GROUP BY without aggregates is not supported")
        return SPJQuery(
            tables=tuple(tables),
            predicate=residual,
            joins=tuple(joins),
            projection=() if star else tuple(plain_refs),
            order_by=order_by,
            descending=descending,
            limit=limit,
            distinct=distinct,
        )

    def _select_list(self) -> tuple[list[str], list[AggregateSpec], bool]:
        if self.accept("*"):
            return [], [], True
        refs: list[str] = []
        aggs: list[AggregateSpec] = []
        while True:
            token = self.peek()
            if token is not None and token.lower() in _AGG_FUNCS and self.tokens[
                self.pos + 1 : self.pos + 2
            ] == ["("]:
                func = _AGG_FUNCS[self.next().lower()]
                self.expect_token("(")
                column = None if self.accept("*") else self._ref()
                self.expect_token(")")
                alias = ""
                if self.accept_kw("as"):
                    alias = self.next()
                aggs.append(AggregateSpec(func=func, column=column, alias=alias))
            else:
                refs.append(self._ref())
            if not self.accept(","):
                break
        return refs, aggs, False

    def expect_token(self, literal: str) -> None:
        token = self.next()
        if token != literal:
            raise SQLSyntaxError(f"expected {literal!r}, got {token!r}")

    def _table_list(self) -> list[str]:
        tables = [self._ident()]
        while self.accept(","):
            tables.append(self._ident())
        return tables

    def _ref_list(self) -> list[str]:
        refs = [self._ref()]
        while self.accept(","):
            refs.append(self._ref())
        return refs

    def _ident(self) -> str:
        token = self.next()
        if not re.match(r"^[A-Za-z_][A-Za-z_0-9]*$", token):
            raise SQLSyntaxError(f"expected identifier, got {token!r}")
        return token

    def _ref(self) -> str:
        token = self.next()
        if not re.match(r"^[A-Za-z_][A-Za-z_0-9]*(\.[A-Za-z_][A-Za-z_0-9]*)?$", token):
            raise SQLSyntaxError(f"expected column reference, got {token!r}")
        return token

    # predicates ------------------------------------------------------
    def _disjunction(self) -> Expression:
        parts = [self._conjunction()]
        while self.accept_kw("or"):
            parts.append(self._conjunction())
        return parts[0] if len(parts) == 1 else Or(parts)

    def _conjunction(self) -> Expression:
        parts = [self._unary()]
        while self.accept_kw("and"):
            parts.append(self._unary())
        return conjoin(parts)

    def _unary(self) -> Expression:
        if self.accept_kw("not"):
            return Not(self._unary())
        if self.accept("("):
            inner = self._disjunction()
            self.expect_token(")")
            return inner
        return self._atom()

    def _atom(self) -> Expression:
        column = self._ref()
        token = self.peek()
        if token is None:
            raise SQLSyntaxError(f"dangling column {column!r} in predicate")

        if token.lower() == "between":
            self.next()
            low = self._literal()
            self.expect_kw("and")
            high = self._literal()
            return Between(column, low, high)
        if token.lower() == "in":
            self.next()
            self.expect_token("(")
            values = [self._literal()]
            while self.accept(","):
                values.append(self._literal())
            self.expect_token(")")
            return InSet(column, values)
        if token.lower() == "like":
            self.next()
            pattern = self._literal()
            if not isinstance(pattern, str):
                raise SQLSyntaxError("LIKE expects a string pattern")
            return Like(column, pattern)
        if token.lower() == "is":
            self.next()
            if self.accept_kw("not"):
                self.expect_kw("null")
                return IsNotNull(column)
            self.expect_kw("null")
            return IsNull(column)

        op = self.next()
        if op == "<>":
            op = "!="
        if op not in ("=", "!=", "<", "<=", ">", ">="):
            raise SQLSyntaxError(f"unsupported operator {op!r}")
        # Either a join condition (ref on the right) or a literal comparison.
        right = self.peek()
        if right is not None and re.match(
            r"^[A-Za-z_][A-Za-z_0-9]*\.[A-Za-z_][A-Za-z_0-9]*$", right
        ):
            self.next()
            if op != "=":
                raise SQLSyntaxError("only equi-joins between columns are supported")
            return _JoinAtom(column, right)
        return Comparison(column, op, self._literal())

    def _literal(self) -> Union[int, float, str]:
        token = self.next()
        if token.startswith("'"):
            return token[1:-1].replace("''", "'")
        if re.match(r"^-?\d+\.\d+(?:[eE][+-]?\d+)?$", token) or re.match(
            r"^-?\d+[eE][+-]?\d+$", token
        ):
            return float(token)
        if re.match(r"^-?\d+$", token):
            return int(token)
        raise SQLSyntaxError(f"expected literal, got {token!r}")


class _JoinAtom(Comparison):
    """Marker for ``ref = ref`` atoms, lifted into JoinConditions later."""

    def __init__(self, left: str, right: str) -> None:
        super().__init__(left, "=", right)
        self.right_ref = right

    def evaluate(self, context):  # pragma: no cover - lifted before evaluation
        left = context[self.column]
        right = context[self.right_ref]
        return left == right


def _lift_joins(
    predicate: Expression, tables: list[str]
) -> tuple[list[JoinCondition], Expression]:
    joins: list[JoinCondition] = []
    rest: list[Expression] = []
    for part in conjuncts(predicate):
        if isinstance(part, _JoinAtom):
            left_table = part.column.split(".", 1)[0]
            right_table = part.right_ref.split(".", 1)[0]
            if left_table != right_table:
                joins.append(JoinCondition(part.column, part.right_ref))
                continue
        rest.append(part)
    return joins, conjoin(rest)


_EXPLAIN_RE = re.compile(r"^\s*explain(\s+analyze)?\s+", re.IGNORECASE)


def split_explain(text: str) -> tuple[str, bool, bool]:
    """Strip a leading ``EXPLAIN [ANALYZE]`` prefix from SQL text.

    Returns ``(rest, is_explain, is_analyze)``; the prefix itself is not
    part of the query grammar — callers route stripped text through
    :func:`sql` and hand the query to :func:`repro.db.executor.explain`.
    """
    match = _EXPLAIN_RE.match(text)
    if not match:
        return text, False, False
    return text[match.end():], True, bool(match.group(1))


def sql(text: str) -> Union[SPJQuery, AggregateQuery]:
    """Parse SQL text into an :class:`SPJQuery` or :class:`AggregateQuery`.

    >>> sql("SELECT * FROM movies WHERE year > 2000 LIMIT 5").limit
    5
    """
    tokens = _tokenize(text)
    if not tokens:
        raise SQLSyntaxError("empty SQL text")
    try:
        return _Parser(tokens).parse_query()
    except QueryError as exc:
        raise SQLSyntaxError(str(exc)) from exc
