"""Query execution: filters, hash equi-joins, projection, aggregation.

The executor is deliberately simple but real: predicate pushdown to base
tables, statistics-driven join ordering over the join graph, and joins /
distinct / aggregation running on the shared vectorized kernels in
:mod:`repro.db.kernels` (multi-column key factorization + sort /
``searchsorted``). It executes the same :class:`~repro.db.query.SPJQuery`
objects against the full database and against approximation-set
sub-databases, which is what Eq. 1 of the paper compares.
"""

from __future__ import annotations

import hashlib
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..obs.clock import perf_counter, process_time
from . import kernels
from . import parallel as _parallel
from ..obs import context as _context
from ..obs import memory as _memory
from ..obs import metrics as _metrics
from ..obs import telemetry as _telemetry
from ..obs import trace as _trace
from ..obs.runtime import STATE as _OBS
from .database import Database
from .expressions import (
    Expression,
    TrueExpr,
    conjoin,
    conjuncts,
    rewrite_for_codes,
)
from .plan import PlanNode, QueryPlan, q_error
from .query import (
    AggFunc,
    AggregateQuery,
    JoinCondition,
    QueryError,
    SPJQuery,
    joins_between,
)
from .statistics import (
    DEFAULT_CONJUNCT_SELECTIVITY,
    estimate_ndv,
    estimate_predicate_selectivity,
    estimated_join_cardinality,
    zone_map_block_mask,
)


@dataclass
class QueryStats:
    """Per-query resource accounting envelope (DESIGN.md §11).

    Attached to :attr:`ResultSet.stats` by the observed execution path
    and surfaced in EXPLAIN ANALYZE and the ``repro report`` parallel
    section. ``cpu_seconds`` is the parent's ``process_time`` delta plus
    summed worker busy time — child CPU is invisible to the parent's
    clock, and morsel tasks are CPU-bound, so worker wall≈cpu.
    ``skew_ratio`` is max/mean per-worker busy time (1.0 when the query
    never dispatched); a straggler is a morsel task whose busy time
    exceeded twice the query's mean task time.
    """

    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    rows_scanned: int = 0
    rows_produced: int = 0
    dispatches: int = 0
    morsels: int = 0
    fallbacks: int = 0
    fallback_reasons: dict[str, int] = field(default_factory=dict)
    watchdog_timeouts: int = 0
    worker_busy: dict[str, float] = field(default_factory=dict)
    worker_busy_seconds: float = 0.0
    skew_ratio: float = 1.0
    stragglers: int = 0
    #: 128-bit request trace id (repro.obs.context) — the handle that
    #: resolves this query in `repro analyze --trace`.
    trace_id: Optional[str] = None
    #: Shadow-audit outcome (repro.obs.quality): stamped by the session
    #: when this answer was re-measured against the full database.
    audited: bool = False
    audit_recall: Optional[float] = None
    audit_agg_rel_error: Optional[float] = None

    def to_dict(self) -> dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "audited": self.audited,
            "audit_recall": self.audit_recall,
            "audit_agg_rel_error": self.audit_agg_rel_error,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "rows_scanned": self.rows_scanned,
            "rows_produced": self.rows_produced,
            "dispatches": self.dispatches,
            "morsels": self.morsels,
            "fallbacks": self.fallbacks,
            "fallback_reasons": dict(self.fallback_reasons),
            "watchdog_timeouts": self.watchdog_timeouts,
            "worker_busy": dict(self.worker_busy),
            "worker_busy_seconds": self.worker_busy_seconds,
            "skew_ratio": self.skew_ratio,
            "stragglers": self.stragglers,
        }


@dataclass
class ResultSet:
    """A relational intermediate / final result.

    ``columns`` maps qualified refs (``"table.column"``) to value arrays;
    ``row_ids`` maps each base table to the base row id contributing to each
    output row. All arrays share the same length.

    Late materialization: while a query runs, dictionary-encoded string
    columns stay as ``int32`` code arrays in ``columns`` with their sorted
    dictionaries in ``encodings`` — predicates, join keys, sorts, and
    DISTINCT all compare codes. :meth:`column` decodes transparently (and
    caches), and :meth:`decode_all` materializes everything at the public
    execution boundary, so callers only ever see real values.
    """

    columns: dict[str, np.ndarray]
    row_ids: dict[str, np.ndarray]
    n_rows: int
    encodings: dict[str, np.ndarray] = field(default_factory=dict)
    #: Per-query resource accounting, attached by the observed execution
    #: path (None on internal intermediates and unobserved runs).
    stats: Optional[QueryStats] = field(default=None, repr=False, compare=False)
    _decoded: dict[str, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __len__(self) -> int:
        return self.n_rows

    def resolve(self, ref: str) -> str:
        """The qualified key a (possibly bare) ref denotes, or raise."""
        if ref in self.columns:
            return ref
        matches = [key for key in self.columns if key.endswith("." + ref)]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise QueryError(
                f"column reference {ref!r} is ambiguous; matches {sorted(matches)}"
            )
        raise QueryError(f"result has no column {ref!r}; available: {sorted(self.columns)}")

    def column(self, ref: str) -> np.ndarray:
        """Decoded values of a column (dictionary columns materialize)."""
        key = self.resolve(ref)
        dictionary = self.encodings.get(key)
        if dictionary is None:
            return self.columns[key]
        cached = self._decoded.get(key)
        if cached is None:
            cached = self._decoded[key] = _decode_codes(
                dictionary, self.columns[key]
            )
        return cached

    def internal_column(self, ref: str) -> np.ndarray:
        """Physical array of a column: codes when encoded, else values."""
        return self.columns[self.resolve(ref)]

    def decode_all(self) -> "ResultSet":
        """A fully materialized copy (no-op when nothing is encoded)."""
        if not self.encodings:
            return self
        columns = {
            key: (
                _decode_codes(self.encodings[key], array)
                if key in self.encodings
                else array
            )
            for key, array in self.columns.items()
        }
        return ResultSet(
            columns=columns,
            row_ids=self.row_ids,
            n_rows=self.n_rows,
            stats=self.stats,
        )

    def decoded_context(self) -> dict[str, np.ndarray]:
        """A fully decoded {ref: values} view for predicate evaluation."""
        return {key: self.column(key) for key in self.columns}

    def take(self, positions: np.ndarray) -> "ResultSet":
        positions = np.asarray(positions, dtype=np.int64)
        return ResultSet(
            columns={ref: arr[positions] for ref, arr in self.columns.items()},
            row_ids={t: arr[positions] for t, arr in self.row_ids.items()},
            n_rows=len(positions),
            encodings=self.encodings,
        )

    def tuple_keys(self) -> list[tuple]:
        """Hashable identity per output row (projected values)."""
        refs = sorted(self.columns)
        arrays = [self.column(ref) for ref in refs]
        return [tuple(arr[i] for arr in arrays) for i in range(self.n_rows)]

    def provenance_keys(self) -> list[tuple]:
        """Hashable identity per output row by base-row provenance."""
        tables = sorted(self.row_ids)
        arrays = [self.row_ids[t] for t in tables]
        return [tuple(int(arr[i]) for arr in arrays) for i in range(self.n_rows)]

    def to_rows(self) -> list[dict[str, object]]:
        refs = list(self.columns)
        arrays = {ref: self.column(ref) for ref in refs}
        return [
            {ref: arrays[ref][i] for ref in refs} for i in range(self.n_rows)
        ]

    def _repr_html_(self) -> str:
        """Jupyter rendering of the first rows."""
        from .table import render_html_table

        refs = list(self.columns)
        arrays = {ref: self.column(ref) for ref in refs}
        limit = 20
        rows = [
            [arrays[ref][i] for ref in refs]
            for i in range(min(limit, self.n_rows))
        ]
        caption = f"{self.n_rows} rows"
        if self.n_rows > limit:
            caption += f" (showing {limit})"
        return render_html_table(refs, rows, caption=caption)


def _decode_codes(dictionary: np.ndarray, codes: np.ndarray) -> np.ndarray:
    if len(dictionary) == 0:
        return np.empty(len(codes), dtype=object)
    return dictionary[codes]


@dataclass
class AggregateResult:
    """Result of an aggregate query: one row per group."""

    group_columns: Tuple[str, ...]
    agg_names: Tuple[str, ...]
    rows: list[dict[str, object]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def as_mapping(self) -> dict[tuple, dict[str, float]]:
        """Map group-key tuple -> {aggregate name: value}."""
        mapping: dict[tuple, dict[str, float]] = {}
        for row in self.rows:
            key = tuple(row[c] for c in self.group_columns)
            mapping[key] = {name: row[name] for name in self.agg_names}
        return mapping

    def _repr_html_(self) -> str:
        """Jupyter rendering of the grouped answer."""
        from .table import render_html_table

        headers = list(self.group_columns) + list(self.agg_names)
        rows = [[row[h] for h in headers] for row in self.rows[:50]]
        return render_html_table(headers, rows, caption=f"{len(self.rows)} groups")


class ExecutionError(RuntimeError):
    """Raised when a query cannot be executed against a database."""


def _base_context(db: Database, table_name: str) -> ResultSet:
    """Encoded scan context: dictionary columns enter as code arrays.

    Integer and float columns come in decoded (bit-unpacking is cached on
    the table; the ``INT_NULL`` sentinel must keep its native ordering for
    predicate semantics), string columns as ``int32`` codes plus their
    sorted dictionaries — the executor's late-materialization contract.
    """
    table = db.table(table_name)
    columns: dict[str, np.ndarray] = {}
    encodings: dict[str, np.ndarray] = {}
    for name in table.schema.column_names:
        ref = f"{table_name}.{name}"
        dictionary = table.dictionary(name)
        if dictionary is not None:
            columns[ref] = table.raw_column(name)
            encodings[ref] = dictionary
        else:
            columns[ref] = table.column(name)
    return ResultSet(
        columns=columns,
        row_ids={table_name: table.row_ids},
        n_rows=len(table),
        encodings=encodings,
    )


def _rewrite_predicate(predicate: Expression, result: ResultSet):
    """The predicate in the result's physical value space, or None.

    With no encoded columns the physical space is the value space and the
    predicate passes through; otherwise string atoms are rewritten to
    dictionary codes (:func:`repro.db.expressions.rewrite_for_codes`),
    and ``None`` means "not rewritable — evaluate on decoded values".
    """
    if not result.encodings:
        return predicate
    return rewrite_for_codes(predicate, result.encodings, list(result.columns))


def _predicate_context(
    result: ResultSet, predicate: Expression
) -> Optional[dict[str, np.ndarray]]:
    """The subset of physical columns a predicate touches, or None when a
    ref cannot be uniquely resolved (evaluation will raise the error)."""
    context: dict[str, np.ndarray] = {}
    for ref in predicate.columns():
        try:
            key = result.resolve(ref)
        except QueryError:
            return None
        context[key] = result.columns[key]
    return context


def _filter_positions(result: ResultSet, predicate: Expression) -> np.ndarray:
    """Positions of rows satisfying the predicate (physical-space eval).

    Rewrites into code space when possible, then tries the morsel-parallel
    scan (only ever on non-object arrays); any fallback evaluates the
    appropriate form serially.
    """
    rewritten = _rewrite_predicate(predicate, result)
    if rewritten is None:
        return np.flatnonzero(predicate.evaluate(result.decoded_context()))
    context = _predicate_context(result, rewritten)
    if context is not None and context:
        positions = _parallel.maybe_parallel_filter(rewritten, context)
        if positions is not None:
            return positions
    return np.flatnonzero(rewritten.evaluate(result.columns))


#: Pruning is only attempted above this many rows — below it the block
#: mask costs more than the scan it saves.
_PRUNE_MIN_ROWS = 4096


def _scan_filter(
    table, context: ResultSet, predicate: Expression
) -> tuple[ResultSet, dict]:
    """Filter a base-table scan, consulting zone maps to skip blocks.

    Returns the filtered context plus a detail dict (blocks total/pruned,
    selectivity cap) surfaced by EXPLAIN and the scan metrics. Pruning is
    strictly conservative: a pruned block provably contains no matching
    row, so the result is identical to the unpruned scan.
    """
    detail: dict = {}
    rewritten = _rewrite_predicate(predicate, context)
    if rewritten is None or len(context) < _PRUNE_MIN_ROWS:
        return context.take(_filter_positions(context, predicate)), detail

    zmaps = table.zone_maps()
    column_maps = {
        f"{table.name}.{name}": zone for name, zone in zmaps.columns.items()
    }
    block_mask = zone_map_block_mask(rewritten, column_maps, zmaps.n_blocks)
    kept_blocks = int(block_mask.sum())
    detail["blocks_total"] = zmaps.n_blocks
    detail["blocks_pruned"] = zmaps.n_blocks - kept_blocks
    if _OBS.enabled:
        registry = _metrics.registry()
        registry.add("scan.blocks_total", zmaps.n_blocks)
        registry.add("scan.blocks_pruned", zmaps.n_blocks - kept_blocks)

    if kept_blocks == 0:
        return context.take(np.zeros(0, dtype=np.int64)), detail
    if kept_blocks == zmaps.n_blocks:
        return context.take(_filter_positions(context, predicate)), detail

    # Evaluate only the candidate rows of the surviving blocks.
    blocks = np.flatnonzero(block_mask)
    starts = blocks * zmaps.block_rows
    stops = np.minimum(starts + zmaps.block_rows, zmaps.n_rows)
    candidates = np.concatenate(
        [np.arange(a, b, dtype=np.int64) for a, b in zip(starts, stops)]
    )
    eval_context = _predicate_context(context, rewritten)
    if eval_context is None:
        return context.take(_filter_positions(context, predicate)), detail
    sliced = {key: array[candidates] for key, array in eval_context.items()}
    mask = rewritten.evaluate(sliced)
    return context.take(candidates[np.flatnonzero(mask)]), detail


def _zone_map_detail(
    table, context: ResultSet, predicate: Expression
) -> dict:
    """Blocks total/pruned for a scan predicate, without executing it.

    The estimate-only EXPLAIN path: same zone-map consultation as
    :func:`_scan_filter`, surfacing pruning in the plan before any data
    is touched (and tightening the filter's cardinality estimate).
    """
    detail: dict = {}
    rewritten = _rewrite_predicate(predicate, context)
    if rewritten is None or len(context) < _PRUNE_MIN_ROWS:
        return detail
    zmaps = table.zone_maps()
    if zmaps.n_blocks == 0:
        return detail
    column_maps = {
        f"{table.name}.{name}": zone for name, zone in zmaps.columns.items()
    }
    block_mask = zone_map_block_mask(rewritten, column_maps, zmaps.n_blocks)
    detail["blocks_total"] = zmaps.n_blocks
    detail["blocks_pruned"] = zmaps.n_blocks - int(block_mask.sum())
    return detail


def _scan_selectivity(
    context: ResultSet, predicate: Expression, detail: dict
) -> float:
    """Planner selectivity estimate in whichever space evaluates cheaply,
    capped by the zone-map bound when blocks were pruned."""
    rewritten = _rewrite_predicate(predicate, context)
    if rewritten is None:
        estimate = estimate_predicate_selectivity(
            predicate, context.decoded_context()
        )
    else:
        estimate = estimate_predicate_selectivity(rewritten, context.columns)
    blocks_total = detail.get("blocks_total")
    if blocks_total:
        kept_fraction = (blocks_total - detail["blocks_pruned"]) / blocks_total
        estimate = min(estimate, max(kept_fraction, 0.0))
    return estimate


def _tables_of(expression: Expression) -> set[str]:
    return {ref.split(".", 1)[0] for ref in expression.columns() if "." in ref}


def _pushdown(predicate: Expression, tables: Sequence[str]) -> tuple[dict[str, Expression], Expression]:
    """Split a predicate into per-table conjuncts plus a residual.

    Conjuncts touching exactly one table are applied before joining; the
    rest (multi-table or OR-of-multi-table) run on the joined context.
    """
    per_table: dict[str, list[Expression]] = {t: [] for t in tables}
    residual: list[Expression] = []
    for part in conjuncts(predicate):
        touched = _tables_of(part)
        if len(touched) == 1 and next(iter(touched)) in per_table:
            per_table[next(iter(touched))].append(part)
        elif not touched and len(tables) == 1:
            # Bare (unqualified) refs in a single-table query can only
            # mean that table — push down so the scan sees zone maps.
            per_table[tables[0]].append(part)
        else:
            residual.append(part)
    return (
        {t: conjoin(parts) for t, parts in per_table.items()},
        conjoin(residual),
    )


def _join_order(
    tables: Sequence[str],
    joins: Sequence[JoinCondition],
    contexts: Optional[dict[str, "ResultSet"]] = None,
    sizes: Optional[dict[str, float]] = None,
) -> tuple[list[str], dict[str, float]]:
    """Statistics-driven greedy connected ordering over the join graph.

    With per-table ``contexts`` (post-pushdown), starts from the smallest
    input and repeatedly expands to the connected table with the smallest
    estimated output cardinality (the classic ``|L|·|R| / max(NDV)``
    equi-join estimate). Without contexts, falls back to the listed-order
    greedy connected walk.

    Returns ``(order, estimates)`` where ``estimates[table]`` is the
    estimated intermediate cardinality after that table joins — the same
    numbers the ordering decision used, re-surfaced by EXPLAIN and the
    passive per-join q-error metric. ``sizes`` overrides the per-table
    input cardinalities (the estimate-only planner passes estimated
    post-filter sizes instead of materialized context lengths).
    """
    if len(tables) <= 1:
        return list(tables), {}
    adjacency: dict[str, set[str]] = {t: set() for t in tables}
    for join in joins:
        adjacency[join.left_table].add(join.right_table)
        adjacency[join.right_table].add(join.left_table)

    if contexts is None:
        order = [tables[0]]
        remaining = [t for t in tables[1:]]
        while remaining:
            connected = [t for t in remaining if any(n in order for n in adjacency[t])]
            nxt = connected[0] if connected else remaining[0]
            order.append(nxt)
            remaining.remove(nxt)
        return order, {}

    if sizes is None:
        sizes = {t: float(len(contexts[t])) for t in tables}
    ndv_cache: dict[str, int] = {}

    def _ndv(ref: str) -> int:
        if ref not in ndv_cache:
            table = ref.split(".", 1)[0]
            array = contexts[table].columns.get(ref)
            ndv_cache[ref] = estimate_ndv(array) if array is not None else 1
        return ndv_cache[ref]

    start = min(tables, key=lambda t: sizes[t])
    order = [start]
    joined = {start}
    remaining = [t for t in tables if t != start]
    est_rows = float(sizes[start])
    estimates: dict[str, float] = {}
    while remaining:
        best: Optional[str] = None
        best_est = np.inf
        for t in remaining:
            usable = joins_between(joins, t, joined)
            if not usable:
                continue
            first = usable[0]
            est = estimated_join_cardinality(
                est_rows, _ndv(first.left), sizes[t], _ndv(first.right)
            )
            for j in usable[1:]:  # extra equi-conditions filter further
                est /= max(_ndv(j.left), _ndv(j.right), 1)
            if est < best_est:
                best, best_est = t, est
        if best is None:  # disconnected: cheapest cross product
            best = min(remaining, key=lambda t: sizes[t])
            best_est = est_rows * max(sizes[best], 1)
        order.append(best)
        joined.add(best)
        remaining.remove(best)
        est_rows = max(best_est, 1.0)
        estimates[best] = est_rows
    return order, estimates


def _hash_join(left: ResultSet, right: ResultSet, conditions: Sequence[JoinCondition]) -> ResultSet:
    """Inner equi-join of two contexts on one or more conditions."""
    with _trace.span("execute.hash_join") as sp:
        if sp:
            sp.set(conditions=[c.to_sql() for c in conditions])
            sp.count("rows_in", len(left) + len(right))
        out = _hash_join_impl(left, right, conditions)
        if sp:
            sp.count("rows_out", len(out))
            _metrics.registry().add("executor.join.rows_in", len(left) + len(right))
            _metrics.registry().add("executor.join.rows_out", len(out))
    return out


def _aligned_key_pair(
    left: ResultSet, left_ref: str, right: ResultSet, right_ref: str
) -> tuple[np.ndarray, np.ndarray]:
    """One join condition's key arrays in a shared comparable space.

    Dictionary-encoded keys on both sides are aligned through a merged
    sorted dictionary (:func:`repro.db.kernels.merge_dictionaries`) so
    the join compares small integer codes instead of strings; a mixed
    encoded/plain pair decodes the encoded side.
    """
    left_array = left.columns[left_ref]
    right_array = right.columns[right_ref]
    left_dict = left.encodings.get(left_ref)
    right_dict = right.encodings.get(right_ref)
    if left_dict is not None and right_dict is not None:
        _, left_map, right_map = kernels.merge_dictionaries(left_dict, right_dict)
        return left_map[left_array], right_map[right_array]
    if left_dict is not None:
        return _decode_codes(left_dict, left_array), right_array
    if right_dict is not None:
        return left_array, _decode_codes(right_dict, right_array)
    return left_array, right_array


def _hash_join_impl(left: ResultSet, right: ResultSet, conditions: Sequence[JoinCondition]) -> ResultSet:
    left_keys = []
    right_keys = []
    for cond in conditions:
        if cond.left in left.columns and cond.right in right.columns:
            l_key, r_key = _aligned_key_pair(left, cond.left, right, cond.right)
        elif cond.right in left.columns and cond.left in right.columns:
            l_key, r_key = _aligned_key_pair(left, cond.right, right, cond.left)
        else:
            raise ExecutionError(
                f"join condition {cond.to_sql()!r} does not span the two inputs"
            )
        left_keys.append(l_key)
        right_keys.append(r_key)

    # Build on the smaller side, probe with the larger (as the per-row
    # hash join did); the kernel preserves its bucket emission order.
    swap = len(right) < len(left)
    build, probe = (right, left) if swap else (left, right)
    build_keys = right_keys if swap else left_keys
    probe_keys = left_keys if swap else right_keys

    probe_idx, build_idx = kernels.join_positions(build_keys, probe_keys)
    probe_part = probe.take(probe_idx)
    build_part = build.take(build_idx)
    left_part, right_part = (build_part, probe_part) if swap else (probe_part, build_part)

    columns = dict(left_part.columns)
    columns.update(right_part.columns)
    row_ids = dict(left_part.row_ids)
    row_ids.update(right_part.row_ids)
    encodings = dict(left_part.encodings)
    encodings.update(right_part.encodings)
    return ResultSet(
        columns=columns, row_ids=row_ids, n_rows=len(probe_idx),
        encodings=encodings,
    )


def _distinct_positions(result: ResultSet, refs: Sequence[str]) -> np.ndarray:
    # Physical arrays: codes have the same equality structure as their
    # values, so DISTINCT never needs to materialize strings.
    arrays = [result.internal_column(ref) for ref in refs]
    return kernels.distinct_positions(arrays)


def execute(db: Database, query: SPJQuery) -> ResultSet:
    """Execute an SPJ query against a database.

    The returned result is fully materialized — encoded columns decode at
    this boundary (the aggregate path keeps the encoded form internally).
    """
    return _execute_observed(db, query).decode_all()


def _query_fingerprint(query) -> str:
    """Short stable query id — attributes fallback/watchdog telemetry."""
    digest = hashlib.sha1(query.to_sql().encode("utf-8"))
    return digest.hexdigest()[:12]


def _rows_scanned(db: Database, query) -> int:
    """Base rows entering the scans (pre-filter table cardinalities)."""
    return sum(
        len(db.table(table)) for table in query.tables if db.has_table(table)
    )


def _finish_query_stats(
    db: Database, query, wall: float, cpu: float, rows_out: int
) -> QueryStats:
    """Close parallel accounting and build the QueryStats envelope.

    Emits one ``parallel`` telemetry record per query that touched the
    pool (dispatched or fell back) — the stream ``repro watch`` renders
    worker-utilization bars from.
    """
    summary = _parallel.end_query_accounting() or {}
    stats = QueryStats(
        wall_seconds=wall,
        cpu_seconds=cpu + summary.get("worker_busy_seconds", 0.0),
        rows_scanned=_rows_scanned(db, query),
        rows_produced=rows_out,
        dispatches=summary.get("dispatches", 0),
        morsels=summary.get("morsels", 0),
        fallbacks=summary.get("fallbacks", 0),
        fallback_reasons=summary.get("fallback_reasons", {}),
        watchdog_timeouts=summary.get("watchdog_timeouts", 0),
        worker_busy=summary.get("worker_busy", {}),
        worker_busy_seconds=summary.get("worker_busy_seconds", 0.0),
        skew_ratio=summary.get("skew_ratio", 1.0),
        stragglers=summary.get("stragglers", 0),
    )
    if stats.dispatches or stats.fallbacks:
        _telemetry.emit(
            "parallel",
            event="query",
            query=summary.get("fingerprint"),
            wall_seconds=stats.wall_seconds,
            cpu_seconds=stats.cpu_seconds,
            rows_scanned=stats.rows_scanned,
            rows_produced=stats.rows_produced,
            dispatches=stats.dispatches,
            morsels=stats.morsels,
            fallbacks=stats.fallbacks,
            watchdog_timeouts=stats.watchdog_timeouts,
            workers=len(stats.worker_busy),
            worker_busy=stats.worker_busy,
            worker_busy_seconds=stats.worker_busy_seconds,
            skew_ratio=stats.skew_ratio,
            stragglers=stats.stragglers,
        )
        registry = _metrics.registry()
        registry.observe("parallel.query.skew_ratio", stats.skew_ratio)
        if stats.stragglers:
            registry.add("parallel.stragglers", float(stats.stragglers))
    return stats


def _execute_observed(db: Database, query: SPJQuery) -> ResultSet:
    """Execution plus observability, returning the encoded result.

    Opens (or joins) a request context for the query, so every span,
    telemetry record, and histogram exemplar recorded underneath shares
    one trace id — the causal handle ``repro analyze`` resolves later.
    """
    if not _OBS.enabled:
        return _execute_impl(db, query)
    fingerprint = _query_fingerprint(query)
    with _context.ensure(fingerprint=fingerprint) as request, \
            _trace.span("execute") as sp:
        sp.set(tables=list(query.tables), fingerprint=fingerprint)
        _parallel.begin_query_accounting(fingerprint)
        start = perf_counter()
        cpu_start = process_time()
        try:
            result = _execute_impl(db, query)
        except BaseException:
            _parallel.end_query_accounting()
            raise
        wall = perf_counter() - start
        result.stats = _finish_query_stats(
            db, query, wall, process_time() - cpu_start, result.n_rows
        )
        result.stats.trace_id = request.trace_id
        # Stamp dispatch/fallback tallies onto the root span: the tail
        # sampler's keep decision (repro.obs.sampling) reads them.
        sp.set(
            fallbacks=result.stats.fallbacks,
            watchdog_timeouts=result.stats.watchdog_timeouts,
            dispatches=result.stats.dispatches,
        )
        sp.count("rows_out", result.n_rows)
        registry = _metrics.registry()
        registry.add("executor.queries")
        registry.add("executor.rows_out", result.n_rows)
        # Module-level observe, not registry.observe: the SLO tracker's
        # sample hook taps the former, and `executor.p95 < ...`
        # objectives must see every execution.
        _metrics.observe("executor.query.seconds", wall)
        _memory.mark_epoch("executor.query")
    return result


class _PlanCapture:
    """Mutable holder threaded through ``_execute_impl`` in ANALYZE mode.

    When present, every execution stage appends a :class:`PlanNode` with
    its estimate, actual row count, and wall time; ``root`` ends up as
    the full operator tree. The normal execution path passes ``None``
    and pays one ``is None`` check per stage.
    """

    __slots__ = ("root",)

    def __init__(self) -> None:
        self.root: Optional[PlanNode] = None


def _execute_impl(
    db: Database, query: SPJQuery, capture: Optional[_PlanCapture] = None
) -> ResultSet:
    for table in query.tables:
        if not db.has_table(table):
            raise ExecutionError(
                f"query references unknown table {table!r}; database has {db.table_names}"
            )

    table_nodes: dict[str, PlanNode] = {}
    with _trace.span("execute.pushdown") as sp:
        per_table, residual = _pushdown(query.predicate, query.tables)
        contexts: dict[str, ResultSet] = {}
        rows_in = 0
        for table in query.tables:
            stage_start = perf_counter() if capture is not None else 0.0
            context = _base_context(db, table)
            base_rows = len(context)
            rows_in += base_rows
            predicate = per_table.get(table, TrueExpr())
            if capture is not None:
                node = PlanNode(
                    op="scan",
                    label=table,
                    estimated_rows=float(base_rows),
                    actual_rows=base_rows,
                    seconds=perf_counter() - stage_start,
                )
            if not isinstance(predicate, TrueExpr):
                unfiltered = context
                stage_start = perf_counter() if capture is not None else 0.0
                context, scan_detail = _scan_filter(
                    db.table(table), context, predicate
                )
                if capture is not None:
                    selectivity = _scan_selectivity(
                        unfiltered, predicate, scan_detail
                    )
                    node = PlanNode(
                        op="filter",
                        label=predicate.to_sql(),
                        estimated_rows=selectivity * base_rows,
                        actual_rows=len(context),
                        seconds=perf_counter() - stage_start,
                        detail=scan_detail,
                        children=[node],
                    )
            contexts[table] = context
            if capture is not None:
                table_nodes[table] = node
        if sp:
            sp.count("rows_in", rows_in)
            sp.count("rows_out", sum(len(c) for c in contexts.values()))

    with _trace.span("execute.join_order") as sp:
        order, join_estimates = _join_order(query.tables, query.joins, contexts)
        if sp:
            sp.set(order=list(order))
    current = contexts[order[0]]
    current_node = table_nodes.get(order[0])
    joined = {order[0]}
    pending = list(query.joins)
    track_joins = capture is not None or _OBS.enabled
    for table in order[1:]:
        usable = joins_between(pending, table, joined)
        estimate = join_estimates.get(table) if track_joins else None
        stage_start = perf_counter() if capture is not None else 0.0
        if usable:
            current = _hash_join(current, contexts[table], usable)
            for j in usable:
                pending.remove(j)
            op, label = "hash_join", " AND ".join(j.to_sql() for j in usable)
        else:
            current = _cross_join(current, contexts[table])
            op, label = "cross_join", ""
        if estimate is not None and _OBS.enabled:
            # Passive estimator-accuracy tracking: one q-error sample per
            # executed join, independent of EXPLAIN mode (`repro stats`
            # surfaces the histogram).
            _metrics.observe(
                "executor.join.q_error", q_error(estimate, len(current))
            )
        if capture is not None:
            current_node = PlanNode(
                op=op,
                label=label,
                estimated_rows=estimate,
                actual_rows=len(current),
                seconds=perf_counter() - stage_start,
                children=[n for n in (current_node, table_nodes.get(table)) if n],
            )
        joined.add(table)
        # Apply any join condition that became fully available.
        newly = [
            j
            for j in pending
            if j.left_table in joined and j.right_table in joined
        ]
        for j in newly:
            stage_start = perf_counter() if capture is not None else 0.0
            rows_before = len(current)
            left_key, right_key = _aligned_key_pair(
                current, j.left, current, j.right
            )
            mask = left_key == right_key
            current = current.take(np.flatnonzero(mask))
            pending.remove(j)
            if capture is not None:
                ndv = max(
                    estimate_ndv(current.columns[j.left]) if len(current) else 1, 1
                )
                current_node = PlanNode(
                    op="join_filter",
                    label=j.to_sql(),
                    estimated_rows=rows_before / ndv,
                    actual_rows=len(current),
                    seconds=perf_counter() - stage_start,
                    children=[n for n in (current_node,) if n],
                )

    if not isinstance(residual, TrueExpr):
        with _trace.span("execute.residual_filter") as sp:
            if sp:
                sp.count("rows_in", len(current))
            if capture is not None:
                selectivity = _scan_selectivity(current, residual, {})
            stage_start = perf_counter() if capture is not None else 0.0
            rows_before = len(current)
            current = current.take(_filter_positions(current, residual))
            if capture is not None:
                current_node = PlanNode(
                    op="filter",
                    label=residual.to_sql(),
                    estimated_rows=selectivity * rows_before,
                    actual_rows=len(current),
                    seconds=perf_counter() - stage_start,
                    children=[n for n in (current_node,) if n],
                )
            if sp:
                sp.count("rows_out", len(current))

    # Sort on the full context (ORDER BY may reference non-projected
    # columns), then project, then dedupe (stable, keeps sort order).
    if query.order_by:
        stage_start = perf_counter() if capture is not None else 0.0
        # Sorted dictionaries make code order equal value order, so ORDER
        # BY on an encoded column argsorts the int32 codes directly.
        key = current.internal_column(_order_ref(query, current))
        if key.dtype == object:
            key = np.asarray([str(v) for v in key], dtype="U")
        positions = np.argsort(key, kind="stable")
        if query.descending:
            positions = positions[::-1]
        current = current.take(positions)
        if capture is not None:
            current_node = PlanNode(
                op="sort",
                label=query.order_by + (" DESC" if query.descending else ""),
                estimated_rows=float(len(current)),
                actual_rows=len(current),
                seconds=perf_counter() - stage_start,
                children=[n for n in (current_node,) if n],
            )

    projection = query.qualified_projection()
    if projection:
        stage_start = perf_counter() if capture is not None else 0.0
        resolved = {ref: current.resolve(ref) for ref in projection}
        current = ResultSet(
            columns={
                ref: current.columns[key] for ref, key in resolved.items()
            },
            row_ids=current.row_ids,
            n_rows=len(current),
            encodings={
                ref: current.encodings[key]
                for ref, key in resolved.items()
                if key in current.encodings
            },
        )
        if capture is not None:
            current_node = PlanNode(
                op="project",
                label=", ".join(projection),
                estimated_rows=float(len(current)),
                actual_rows=len(current),
                seconds=perf_counter() - stage_start,
                children=[n for n in (current_node,) if n],
            )

    if query.distinct:
        with _trace.span("execute.distinct") as sp:
            if sp:
                sp.count("rows_in", len(current))
            refs = list(current.columns)
            if capture is not None:
                estimate = _estimate_distinct(current, refs, len(current))
            stage_start = perf_counter() if capture is not None else 0.0
            current = current.take(_distinct_positions(current, refs))
            if capture is not None:
                current_node = PlanNode(
                    op="distinct",
                    label=", ".join(refs),
                    estimated_rows=estimate,
                    actual_rows=len(current),
                    seconds=perf_counter() - stage_start,
                    children=[n for n in (current_node,) if n],
                )
            if sp:
                sp.count("rows_out", len(current))

    if query.limit is not None:
        estimate = min(query.limit, len(current))
        current = current.take(np.arange(min(query.limit, len(current))))
        if capture is not None:
            current_node = PlanNode(
                op="limit",
                label=str(query.limit),
                estimated_rows=float(estimate),
                actual_rows=len(current),
                children=[n for n in (current_node,) if n],
            )

    if capture is not None:
        capture.root = current_node
    return current


def _estimate_distinct(
    result: ResultSet, refs: Sequence[str], rows_in: int
) -> float:
    """NDV-product estimate of a distinct output, capped at the input."""
    product = 1.0
    for ref in refs:
        if ref in result.columns:
            product *= max(estimate_ndv(result.columns[ref]), 1)
        if product >= rows_in:
            return float(max(rows_in, 1))
    return float(max(min(product, rows_in), 1))


def _order_ref(query: SPJQuery, result: ResultSet) -> str:
    ref = query.order_by
    assert ref is not None
    if "." in ref or len(query.tables) > 1:
        return ref
    return f"{query.tables[0]}.{ref}"


def _cross_join(left: ResultSet, right: ResultSet) -> ResultSet:
    left_idx = np.repeat(np.arange(len(left)), len(right))
    right_idx = np.tile(np.arange(len(right)), len(left))
    left_part = left.take(left_idx)
    right_part = right.take(right_idx)
    columns = dict(left_part.columns)
    columns.update(right_part.columns)
    row_ids = dict(left_part.row_ids)
    row_ids.update(right_part.row_ids)
    encodings = dict(left_part.encodings)
    encodings.update(right_part.encodings)
    return ResultSet(
        columns=columns, row_ids=row_ids, n_rows=len(left_idx),
        encodings=encodings,
    )


# ------------------------------------------------------------------ #
# EXPLAIN / EXPLAIN ANALYZE
# ------------------------------------------------------------------ #
def explain(
    db: Database,
    query: "SPJQuery | AggregateQuery",
    analyze: bool = False,
) -> QueryPlan:
    """Build the operator tree for a query (optionally executing it).

    Plain EXPLAIN estimates every operator's cardinality from statistics
    (sampled filter selectivities, NDV-based join estimates) without
    running joins or materializing intermediates. EXPLAIN ANALYZE runs
    the query through the normal execution path while recording each
    operator's actual row count, q-error, and wall time; the executed
    result rides along on :attr:`QueryPlan.result`, and one ``plan``
    telemetry record is emitted when observability is enabled.

    The two modes can pick different join orders on the margin: ANALYZE
    orders joins from materialized post-pushdown cardinalities (what the
    executor always does), while estimate-only EXPLAIN substitutes
    sampled selectivity estimates — the plan the optimizer would commit
    to before touching any data.
    """
    if isinstance(query, AggregateQuery):
        return _explain_aggregate(db, query, analyze)
    if not analyze:
        return QueryPlan(query.to_sql(), _estimate_only_plan(db, query))
    capture = _PlanCapture()
    fingerprint = _query_fingerprint(query)
    with ExitStack() as stack:
        request = None
        if _OBS.enabled:
            # Same identity layer as _execute_observed: one request
            # context per ANALYZE run, trace id into stats and footer.
            request = stack.enter_context(
                _context.ensure(fingerprint=fingerprint)
            )
            _parallel.begin_query_accounting(fingerprint)
        start = perf_counter()
        cpu_start = process_time()
        with _trace.span("execute.explain_analyze") as sp:
            try:
                result = _execute_impl(db, query, capture)
            except BaseException:
                _parallel.end_query_accounting()
                raise
            wall = perf_counter() - start
            if _OBS.enabled:
                result.stats = _finish_query_stats(
                    db, query, wall, process_time() - cpu_start, result.n_rows
                )
                result.stats.trace_id = request.trace_id
                sp.set(
                    fingerprint=fingerprint,
                    fallbacks=result.stats.fallbacks,
                    watchdog_timeouts=result.stats.watchdog_timeouts,
                    dispatches=result.stats.dispatches,
                )
            if sp:
                sp.count("rows_out", result.n_rows)
    plan = QueryPlan(
        query.to_sql(),
        capture.root,
        analyze=True,
        total_seconds=wall,
        result=result.decode_all(),
        query_stats=result.stats.to_dict() if result.stats else None,
    )
    _emit_plan_telemetry(plan)
    return plan


def _estimate_only_plan(db: Database, query: SPJQuery) -> PlanNode:
    """The estimated operator tree, built without executing any operator."""
    for table in query.tables:
        if not db.has_table(table):
            raise ExecutionError(
                f"query references unknown table {table!r}; database has {db.table_names}"
            )
    per_table, residual = _pushdown(query.predicate, query.tables)
    contexts: dict[str, ResultSet] = {}
    table_nodes: dict[str, PlanNode] = {}
    est_sizes: dict[str, float] = {}
    for table in query.tables:
        context = _base_context(db, table)
        base_rows = len(context)
        node = PlanNode("scan", table, estimated_rows=float(base_rows))
        estimate = float(base_rows)
        predicate = per_table.get(table, TrueExpr())
        if not isinstance(predicate, TrueExpr):
            detail = _zone_map_detail(db.table(table), context, predicate)
            selectivity = _scan_selectivity(context, predicate, detail)
            estimate = selectivity * base_rows
            node = PlanNode(
                "filter", predicate.to_sql(), estimated_rows=estimate,
                detail=detail, children=[node],
            )
        contexts[table] = context
        table_nodes[table] = node
        est_sizes[table] = max(estimate, 1.0)

    order, estimates = _join_order(
        query.tables, query.joins, contexts, sizes=est_sizes
    )
    current_node = table_nodes[order[0]]
    est_rows = est_sizes[order[0]]
    joined = {order[0]}
    pending = list(query.joins)
    for table in order[1:]:
        usable = joins_between(pending, table, joined)
        est_rows = max(estimates.get(table, est_rows * est_sizes[table]), 1.0)
        if usable:
            for j in usable:
                pending.remove(j)
            op, label = "hash_join", " AND ".join(j.to_sql() for j in usable)
        else:
            op, label = "cross_join", ""
        current_node = PlanNode(
            op, label, estimated_rows=est_rows,
            children=[current_node, table_nodes[table]],
        )
        joined.add(table)
        newly = [
            j for j in pending
            if j.left_table in joined and j.right_table in joined
        ]
        for j in newly:
            pending.remove(j)
            ndv = max(
                estimate_ndv(contexts[j.left_table].columns[j.left]),
                estimate_ndv(contexts[j.right_table].columns[j.right]),
                1,
            )
            est_rows = max(est_rows / ndv, 1.0)
            current_node = PlanNode(
                "join_filter", j.to_sql(), estimated_rows=est_rows,
                children=[current_node],
            )

    if not isinstance(residual, TrueExpr):
        est_rows *= DEFAULT_CONJUNCT_SELECTIVITY ** len(conjuncts(residual))
        est_rows = max(est_rows, 1.0)
        current_node = PlanNode(
            "filter", residual.to_sql(), estimated_rows=est_rows,
            children=[current_node],
        )
    if query.order_by:
        current_node = PlanNode(
            "sort",
            query.order_by + (" DESC" if query.descending else ""),
            estimated_rows=est_rows,
            children=[current_node],
        )
    projection = query.qualified_projection()
    if projection:
        current_node = PlanNode(
            "project", ", ".join(projection), estimated_rows=est_rows,
            children=[current_node],
        )
    if query.distinct:
        current_node = PlanNode(
            "distinct", estimated_rows=est_rows, children=[current_node]
        )
    if query.limit is not None:
        est_rows = min(float(query.limit), est_rows)
        current_node = PlanNode(
            "limit", str(query.limit), estimated_rows=est_rows,
            children=[current_node],
        )
    return current_node


def _explain_aggregate(
    db: Database, query: AggregateQuery, analyze: bool
) -> QueryPlan:
    core = SPJQuery(
        tables=query.tables, predicate=query.predicate, joins=query.joins
    )
    label = ", ".join(spec.to_sql() for spec in query.aggregates)
    if query.group_by:
        label += " GROUP BY " + ", ".join(query.group_by)
    if not analyze:
        child = _estimate_only_plan(db, core)
        cap = child.estimated_rows if child.estimated_rows is not None else np.inf
        root = PlanNode(
            "aggregate", label,
            estimated_rows=_estimate_groups(db, query, cap),
            children=[child],
        )
        return QueryPlan(query.to_sql(), root)
    capture = _PlanCapture()
    start = perf_counter()
    with _trace.span("execute.explain_analyze"):
        result = _execute_aggregate_impl(db, query, capture)
    total = perf_counter() - start
    child = capture.root
    child_seconds = sum(
        node.seconds or 0.0 for node in (child.walk() if child else ())
    )
    cap = child.actual_rows if child and child.actual_rows is not None else np.inf
    root = PlanNode(
        "aggregate", label,
        estimated_rows=_estimate_groups(db, query, cap),
        actual_rows=len(result),
        seconds=max(total - child_seconds, 0.0),
        children=[child] if child else [],
    )
    plan = QueryPlan(
        query.to_sql(), root, analyze=True, total_seconds=total, result=result
    )
    _emit_plan_telemetry(plan)
    return plan


def _estimate_groups(db: Database, query: AggregateQuery, cap: float) -> float:
    """Estimated group count: NDV product of the grouping columns."""
    if not query.group_by:
        return 1.0
    product = 1.0
    for ref in query.group_by:
        qualified = _qualify_ref(ref, query)
        table, column = qualified.split(".", 1)
        # Physical arrays: dictionary codes have the same NDV as values.
        product *= max(estimate_ndv(db.table(table).raw_column(column)), 1)
    return float(max(min(product, cap), 1.0))


def _emit_plan_telemetry(plan: QueryPlan) -> None:
    if not _OBS.enabled:
        return
    _telemetry.emit(
        "plan",
        sql=plan.query_sql[:200],
        total_seconds=plan.total_seconds,
        max_q_error=plan.max_q_error(),
        operators=plan.operator_stats(),
    )
    _metrics.add("executor.explain_analyze")


# ------------------------------------------------------------------ #
# aggregation
# ------------------------------------------------------------------ #
def execute_aggregate(db: Database, query: AggregateQuery) -> AggregateResult:
    """Execute an aggregate query (hash aggregation over the SPJ core)."""
    if not _OBS.enabled:
        return _execute_aggregate_impl(db, query)
    with _trace.span("execute.aggregate") as sp:
        result = _execute_aggregate_impl(db, query)
        sp.count("groups_out", len(result))
        _metrics.registry().add("executor.aggregate_queries")
    return result


def _execute_aggregate_impl(
    db: Database, query: AggregateQuery, capture: Optional[_PlanCapture] = None
) -> AggregateResult:
    core = SPJQuery(tables=query.tables, predicate=query.predicate, joins=query.joins)
    if capture is not None:
        flat = _execute_impl(db, core, capture)
    else:
        flat = _execute_observed(db, core)

    group_refs = tuple(_qualify_ref(ref, query) for ref in query.group_by)
    agg_names = tuple(spec.output_name() for spec in query.aggregates)
    result = AggregateResult(group_columns=query.group_by, agg_names=agg_names)

    if group_refs:
        # Group on the physical arrays (codes group exactly like their
        # values); only each group's representative key decodes.
        keys = [flat.resolve(ref) for ref in group_refs]
        key_arrays = [flat.columns[key] for key in keys]
        dictionaries = [flat.encodings.get(key) for key in keys]
        # Positions within each group are ascending, so group[0] is the
        # first occurrence and yields the representative key values.
        groups = []
        for positions in kernels.group_by_positions(key_arrays):
            first = positions[0]
            rep = tuple(
                dic[arr[first]] if dic is not None else arr[first]
                for arr, dic in zip(key_arrays, dictionaries)
            )
            groups.append((rep, positions))
    else:
        groups = [((), np.arange(len(flat), dtype=np.int64))]

    for key, idx in sorted(groups, key=lambda kv: str(kv[0])):
        row: dict[str, object] = {
            col: key[j] for j, col in enumerate(query.group_by)
        }
        for spec, name in zip(query.aggregates, agg_names):
            row[name] = _compute_aggregate(flat, spec, idx, query)
        result.rows.append(row)
    return result


def _qualify_ref(ref: str, query: AggregateQuery) -> str:
    if "." in ref:
        return ref
    if len(query.tables) == 1:
        return f"{query.tables[0]}.{ref}"
    raise QueryError(f"aggregate ref {ref!r} must be qualified")


def _compute_aggregate(
    flat: ResultSet, spec, idx: np.ndarray, query: AggregateQuery
) -> float:
    if spec.func is AggFunc.COUNT and spec.column is None:
        return float(len(idx))
    ref = _qualify_ref(spec.column, query)
    values = flat.column(ref)[idx]
    if spec.func is AggFunc.COUNT:
        return float(len(values))
    if len(values) == 0:
        return float("nan")
    values = np.asarray(values, dtype=np.float64)
    if spec.func is AggFunc.SUM:
        return float(np.sum(values))
    if spec.func is AggFunc.AVG:
        return float(np.mean(values))
    if spec.func is AggFunc.MIN:
        return float(np.min(values))
    if spec.func is AggFunc.MAX:
        return float(np.max(values))
    raise QueryError(f"unsupported aggregate {spec.func}")


# ------------------------------------------------------------------ #
# timing helper
# ------------------------------------------------------------------ #
class TimedExecution(NamedTuple):
    """Result of :func:`timed_execute`: rows, latency, and throughput."""

    result: ResultSet
    seconds: float
    rows_per_second: float


def timed_execute(db: Database, query: SPJQuery) -> TimedExecution:
    """Execute and return ``(result, elapsed_seconds, rows_per_second)``."""
    start = perf_counter()
    result = execute(db, query)
    elapsed = perf_counter() - start
    throughput = result.n_rows / elapsed if elapsed > 0 else 0.0
    return TimedExecution(result, elapsed, throughput)
