"""Query execution: filters, hash equi-joins, projection, aggregation.

The executor is deliberately simple but real: predicate pushdown to base
tables, statistics-driven join ordering over the join graph, and joins /
distinct / aggregation running on the shared vectorized kernels in
:mod:`repro.db.kernels` (multi-column key factorization + sort /
``searchsorted``). It executes the same :class:`~repro.db.query.SPJQuery`
objects against the full database and against approximation-set
sub-databases, which is what Eq. 1 of the paper compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..obs.clock import perf_counter
from . import kernels
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs.runtime import STATE as _OBS
from .database import Database
from .expressions import Expression, TrueExpr, conjoin, conjuncts
from .query import AggFunc, AggregateQuery, JoinCondition, QueryError, SPJQuery
from .statistics import estimate_ndv, estimated_join_cardinality


@dataclass
class ResultSet:
    """A relational intermediate / final result.

    ``columns`` maps qualified refs (``"table.column"``) to value arrays;
    ``row_ids`` maps each base table to the base row id contributing to each
    output row. All arrays share the same length.
    """

    columns: dict[str, np.ndarray]
    row_ids: dict[str, np.ndarray]
    n_rows: int

    def __len__(self) -> int:
        return self.n_rows

    def column(self, ref: str) -> np.ndarray:
        if ref in self.columns:
            return self.columns[ref]
        matches = [key for key in self.columns if key.endswith("." + ref)]
        if len(matches) == 1:
            return self.columns[matches[0]]
        if len(matches) > 1:
            raise QueryError(
                f"column reference {ref!r} is ambiguous; matches {sorted(matches)}"
            )
        raise QueryError(f"result has no column {ref!r}; available: {sorted(self.columns)}")

    def take(self, positions: np.ndarray) -> "ResultSet":
        positions = np.asarray(positions, dtype=np.int64)
        return ResultSet(
            columns={ref: arr[positions] for ref, arr in self.columns.items()},
            row_ids={t: arr[positions] for t, arr in self.row_ids.items()},
            n_rows=len(positions),
        )

    def tuple_keys(self) -> list[tuple]:
        """Hashable identity per output row (projected values)."""
        refs = sorted(self.columns)
        arrays = [self.columns[ref] for ref in refs]
        return [tuple(arr[i] for arr in arrays) for i in range(self.n_rows)]

    def provenance_keys(self) -> list[tuple]:
        """Hashable identity per output row by base-row provenance."""
        tables = sorted(self.row_ids)
        arrays = [self.row_ids[t] for t in tables]
        return [tuple(int(arr[i]) for arr in arrays) for i in range(self.n_rows)]

    def to_rows(self) -> list[dict[str, object]]:
        refs = list(self.columns)
        return [
            {ref: self.columns[ref][i] for ref in refs} for i in range(self.n_rows)
        ]

    def _repr_html_(self) -> str:
        """Jupyter rendering of the first rows."""
        from .table import render_html_table

        refs = list(self.columns)
        limit = 20
        rows = [
            [self.columns[ref][i] for ref in refs]
            for i in range(min(limit, self.n_rows))
        ]
        caption = f"{self.n_rows} rows"
        if self.n_rows > limit:
            caption += f" (showing {limit})"
        return render_html_table(refs, rows, caption=caption)


@dataclass
class AggregateResult:
    """Result of an aggregate query: one row per group."""

    group_columns: Tuple[str, ...]
    agg_names: Tuple[str, ...]
    rows: list[dict[str, object]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def as_mapping(self) -> dict[tuple, dict[str, float]]:
        """Map group-key tuple -> {aggregate name: value}."""
        mapping: dict[tuple, dict[str, float]] = {}
        for row in self.rows:
            key = tuple(row[c] for c in self.group_columns)
            mapping[key] = {name: row[name] for name in self.agg_names}
        return mapping

    def _repr_html_(self) -> str:
        """Jupyter rendering of the grouped answer."""
        from .table import render_html_table

        headers = list(self.group_columns) + list(self.agg_names)
        rows = [[row[h] for h in headers] for row in self.rows[:50]]
        return render_html_table(headers, rows, caption=f"{len(self.rows)} groups")


class ExecutionError(RuntimeError):
    """Raised when a query cannot be executed against a database."""


def _base_context(db: Database, table_name: str) -> ResultSet:
    table = db.table(table_name)
    columns = {
        f"{table_name}.{name}": table.column(name)
        for name in table.schema.column_names
    }
    return ResultSet(
        columns=columns,
        row_ids={table_name: table.row_ids},
        n_rows=len(table),
    )


def _tables_of(expression: Expression) -> set[str]:
    return {ref.split(".", 1)[0] for ref in expression.columns() if "." in ref}


def _pushdown(predicate: Expression, tables: Sequence[str]) -> tuple[dict[str, Expression], Expression]:
    """Split a predicate into per-table conjuncts plus a residual.

    Conjuncts touching exactly one table are applied before joining; the
    rest (multi-table or OR-of-multi-table) run on the joined context.
    """
    per_table: dict[str, list[Expression]] = {t: [] for t in tables}
    residual: list[Expression] = []
    for part in conjuncts(predicate):
        touched = _tables_of(part)
        if len(touched) == 1:
            per_table[next(iter(touched))].append(part)
        else:
            residual.append(part)
    return (
        {t: conjoin(parts) for t, parts in per_table.items()},
        conjoin(residual),
    )


def _join_order(
    tables: Sequence[str],
    joins: Sequence[JoinCondition],
    contexts: Optional[dict[str, "ResultSet"]] = None,
) -> list[str]:
    """Statistics-driven greedy connected ordering over the join graph.

    With per-table ``contexts`` (post-pushdown), starts from the smallest
    input and repeatedly expands to the connected table with the smallest
    estimated output cardinality (the classic ``|L|·|R| / max(NDV)``
    equi-join estimate). Without contexts, falls back to the listed-order
    greedy connected walk.
    """
    if len(tables) <= 1:
        return list(tables)
    adjacency: dict[str, set[str]] = {t: set() for t in tables}
    for join in joins:
        adjacency[join.left_table].add(join.right_table)
        adjacency[join.right_table].add(join.left_table)

    if contexts is None:
        order = [tables[0]]
        remaining = [t for t in tables[1:]]
        while remaining:
            connected = [t for t in remaining if any(n in order for n in adjacency[t])]
            nxt = connected[0] if connected else remaining[0]
            order.append(nxt)
            remaining.remove(nxt)
        return order

    sizes = {t: len(contexts[t]) for t in tables}
    ndv_cache: dict[str, int] = {}

    def _ndv(ref: str) -> int:
        if ref not in ndv_cache:
            table = ref.split(".", 1)[0]
            array = contexts[table].columns.get(ref)
            ndv_cache[ref] = estimate_ndv(array) if array is not None else 1
        return ndv_cache[ref]

    start = min(tables, key=lambda t: sizes[t])
    order = [start]
    joined = {start}
    remaining = [t for t in tables if t != start]
    est_rows = float(sizes[start])
    while remaining:
        best: Optional[str] = None
        best_est = np.inf
        for t in remaining:
            usable = [
                j
                for j in joins
                if (j.left_table == t and j.right_table in joined)
                or (j.right_table == t and j.left_table in joined)
            ]
            if not usable:
                continue
            first = usable[0]
            est = estimated_join_cardinality(
                est_rows, _ndv(first.left), sizes[t], _ndv(first.right)
            )
            for j in usable[1:]:  # extra equi-conditions filter further
                est /= max(_ndv(j.left), _ndv(j.right), 1)
            if est < best_est:
                best, best_est = t, est
        if best is None:  # disconnected: cheapest cross product
            best = min(remaining, key=lambda t: sizes[t])
            best_est = est_rows * max(sizes[best], 1)
        order.append(best)
        joined.add(best)
        remaining.remove(best)
        est_rows = max(best_est, 1.0)
    return order


def _hash_join(left: ResultSet, right: ResultSet, conditions: Sequence[JoinCondition]) -> ResultSet:
    """Inner equi-join of two contexts on one or more conditions."""
    with _trace.span("execute.hash_join") as sp:
        if sp:
            sp.set(conditions=[c.to_sql() for c in conditions])
            sp.count("rows_in", len(left) + len(right))
        out = _hash_join_impl(left, right, conditions)
        if sp:
            sp.count("rows_out", len(out))
            _metrics.registry().add("executor.join.rows_in", len(left) + len(right))
            _metrics.registry().add("executor.join.rows_out", len(out))
    return out


def _hash_join_impl(left: ResultSet, right: ResultSet, conditions: Sequence[JoinCondition]) -> ResultSet:
    left_keys = []
    right_keys = []
    for cond in conditions:
        if cond.left in left.columns and cond.right in right.columns:
            left_keys.append(left.columns[cond.left])
            right_keys.append(right.columns[cond.right])
        elif cond.right in left.columns and cond.left in right.columns:
            left_keys.append(left.columns[cond.right])
            right_keys.append(right.columns[cond.left])
        else:
            raise ExecutionError(
                f"join condition {cond.to_sql()!r} does not span the two inputs"
            )

    # Build on the smaller side, probe with the larger (as the per-row
    # hash join did); the kernel preserves its bucket emission order.
    swap = len(right) < len(left)
    build, probe = (right, left) if swap else (left, right)
    build_keys = right_keys if swap else left_keys
    probe_keys = left_keys if swap else right_keys

    probe_idx, build_idx = kernels.join_positions(build_keys, probe_keys)
    probe_part = probe.take(probe_idx)
    build_part = build.take(build_idx)
    left_part, right_part = (build_part, probe_part) if swap else (probe_part, build_part)

    columns = dict(left_part.columns)
    columns.update(right_part.columns)
    row_ids = dict(left_part.row_ids)
    row_ids.update(right_part.row_ids)
    return ResultSet(columns=columns, row_ids=row_ids, n_rows=len(probe_idx))


def _distinct_positions(result: ResultSet, refs: Sequence[str]) -> np.ndarray:
    arrays = [result.column(ref) for ref in refs]
    return kernels.distinct_positions(arrays)


def execute(db: Database, query: SPJQuery) -> ResultSet:
    """Execute an SPJ query against a database."""
    if not _OBS.enabled:
        return _execute_impl(db, query)
    with _trace.span("execute") as sp:
        sp.set(tables=list(query.tables))
        start = perf_counter()
        result = _execute_impl(db, query)
        sp.count("rows_out", result.n_rows)
        registry = _metrics.registry()
        registry.add("executor.queries")
        registry.add("executor.rows_out", result.n_rows)
        registry.observe("executor.query.seconds", perf_counter() - start)
    return result


def _execute_impl(db: Database, query: SPJQuery) -> ResultSet:
    for table in query.tables:
        if not db.has_table(table):
            raise ExecutionError(
                f"query references unknown table {table!r}; database has {db.table_names}"
            )

    with _trace.span("execute.pushdown") as sp:
        per_table, residual = _pushdown(query.predicate, query.tables)
        contexts: dict[str, ResultSet] = {}
        rows_in = 0
        for table in query.tables:
            context = _base_context(db, table)
            rows_in += len(context)
            predicate = per_table.get(table, TrueExpr())
            if not isinstance(predicate, TrueExpr):
                mask = predicate.evaluate(context.columns)
                context = context.take(np.flatnonzero(mask))
            contexts[table] = context
        if sp:
            sp.count("rows_in", rows_in)
            sp.count("rows_out", sum(len(c) for c in contexts.values()))

    with _trace.span("execute.join_order") as sp:
        order = _join_order(query.tables, query.joins, contexts)
        if sp:
            sp.set(order=list(order))
    current = contexts[order[0]]
    joined = {order[0]}
    pending = list(query.joins)
    for table in order[1:]:
        usable = [
            j
            for j in pending
            if (j.left_table == table and j.right_table in joined)
            or (j.right_table == table and j.left_table in joined)
        ]
        if usable:
            current = _hash_join(current, contexts[table], usable)
            for j in usable:
                pending.remove(j)
        else:
            current = _cross_join(current, contexts[table])
        joined.add(table)
        # Apply any join condition that became fully available.
        newly = [
            j
            for j in pending
            if j.left_table in joined and j.right_table in joined
        ]
        for j in newly:
            mask = current.columns[j.left] == current.columns[j.right]
            current = current.take(np.flatnonzero(mask))
            pending.remove(j)

    if not isinstance(residual, TrueExpr):
        with _trace.span("execute.residual_filter") as sp:
            if sp:
                sp.count("rows_in", len(current))
            mask = residual.evaluate(current.columns)
            current = current.take(np.flatnonzero(mask))
            if sp:
                sp.count("rows_out", len(current))

    # Sort on the full context (ORDER BY may reference non-projected
    # columns), then project, then dedupe (stable, keeps sort order).
    if query.order_by:
        key = current.column(_order_ref(query, current))
        if key.dtype == object:
            key = np.asarray([str(v) for v in key], dtype="U")
        positions = np.argsort(key, kind="stable")
        if query.descending:
            positions = positions[::-1]
        current = current.take(positions)

    projection = query.qualified_projection()
    if projection:
        current = ResultSet(
            columns={ref: current.column(ref) for ref in projection},
            row_ids=current.row_ids,
            n_rows=len(current),
        )

    if query.distinct:
        with _trace.span("execute.distinct") as sp:
            if sp:
                sp.count("rows_in", len(current))
            refs = list(current.columns)
            current = current.take(_distinct_positions(current, refs))
            if sp:
                sp.count("rows_out", len(current))

    if query.limit is not None:
        current = current.take(np.arange(min(query.limit, len(current))))

    return current


def _order_ref(query: SPJQuery, result: ResultSet) -> str:
    ref = query.order_by
    assert ref is not None
    if "." in ref or len(query.tables) > 1:
        return ref
    return f"{query.tables[0]}.{ref}"


def _cross_join(left: ResultSet, right: ResultSet) -> ResultSet:
    left_idx = np.repeat(np.arange(len(left)), len(right))
    right_idx = np.tile(np.arange(len(right)), len(left))
    left_part = left.take(left_idx)
    right_part = right.take(right_idx)
    columns = dict(left_part.columns)
    columns.update(right_part.columns)
    row_ids = dict(left_part.row_ids)
    row_ids.update(right_part.row_ids)
    return ResultSet(columns=columns, row_ids=row_ids, n_rows=len(left_idx))


# ------------------------------------------------------------------ #
# aggregation
# ------------------------------------------------------------------ #
def execute_aggregate(db: Database, query: AggregateQuery) -> AggregateResult:
    """Execute an aggregate query (hash aggregation over the SPJ core)."""
    if not _OBS.enabled:
        return _execute_aggregate_impl(db, query)
    with _trace.span("execute.aggregate") as sp:
        result = _execute_aggregate_impl(db, query)
        sp.count("groups_out", len(result))
        _metrics.registry().add("executor.aggregate_queries")
    return result


def _execute_aggregate_impl(db: Database, query: AggregateQuery) -> AggregateResult:
    core = SPJQuery(tables=query.tables, predicate=query.predicate, joins=query.joins)
    flat = execute(db, core)

    group_refs = tuple(_qualify_ref(ref, query) for ref in query.group_by)
    agg_names = tuple(spec.output_name() for spec in query.aggregates)
    result = AggregateResult(group_columns=query.group_by, agg_names=agg_names)

    if group_refs:
        key_arrays = [flat.column(ref) for ref in group_refs]
        # Positions within each group are ascending, so group[0] is the
        # first occurrence and yields the representative key values.
        groups = [
            (tuple(arr[positions[0]] for arr in key_arrays), positions)
            for positions in kernels.group_by_positions(key_arrays)
        ]
    else:
        groups = [((), np.arange(len(flat), dtype=np.int64))]

    for key, idx in sorted(groups, key=lambda kv: str(kv[0])):
        row: dict[str, object] = {
            col: key[j] for j, col in enumerate(query.group_by)
        }
        for spec, name in zip(query.aggregates, agg_names):
            row[name] = _compute_aggregate(flat, spec, idx, query)
        result.rows.append(row)
    return result


def _qualify_ref(ref: str, query: AggregateQuery) -> str:
    if "." in ref:
        return ref
    if len(query.tables) == 1:
        return f"{query.tables[0]}.{ref}"
    raise QueryError(f"aggregate ref {ref!r} must be qualified")


def _compute_aggregate(
    flat: ResultSet, spec, idx: np.ndarray, query: AggregateQuery
) -> float:
    if spec.func is AggFunc.COUNT and spec.column is None:
        return float(len(idx))
    ref = _qualify_ref(spec.column, query)
    values = flat.column(ref)[idx]
    if spec.func is AggFunc.COUNT:
        return float(len(values))
    if len(values) == 0:
        return float("nan")
    values = np.asarray(values, dtype=np.float64)
    if spec.func is AggFunc.SUM:
        return float(np.sum(values))
    if spec.func is AggFunc.AVG:
        return float(np.mean(values))
    if spec.func is AggFunc.MIN:
        return float(np.min(values))
    if spec.func is AggFunc.MAX:
        return float(np.max(values))
    raise QueryError(f"unsupported aggregate {spec.func}")


# ------------------------------------------------------------------ #
# timing helper
# ------------------------------------------------------------------ #
class TimedExecution(NamedTuple):
    """Result of :func:`timed_execute`: rows, latency, and throughput."""

    result: ResultSet
    seconds: float
    rows_per_second: float


def timed_execute(db: Database, query: SPJQuery) -> TimedExecution:
    """Execute and return ``(result, elapsed_seconds, rows_per_second)``."""
    start = perf_counter()
    result = execute(db, query)
    elapsed = perf_counter() - start
    throughput = result.n_rows / elapsed if elapsed > 0 else 0.0
    return TimedExecution(result, elapsed, throughput)
