"""A named collection of tables plus derivation of sub-databases.

An *approximation set* in ASQP-RL is exactly a sub-database: the same
schema with per-table subsets of rows (identified by base row ids). Both
the full data and every candidate approximation set are :class:`Database`
objects, so queries run through one executor for both.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

import numpy as np

from .schema import SchemaError
from .table import Table


class Database:
    """A set of uniquely named tables."""

    def __init__(self, tables: Iterable[Table] = (), name: str = "db") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        for table in tables:
            self.add_table(table)

    def add_table(self, table: Table) -> None:
        if table.name in self._tables:
            raise SchemaError(f"database {self.name!r} already has table {table.name!r}")
        self._tables[table.name] = table

    def replace_table(self, table: Table) -> None:
        """Swap in a rebuilt version of an existing table.

        The replacement carries a fresh ``encoding_version``, so result
        caches keyed on it (:class:`repro.db.cache.ResultCache`) stop
        matching entries computed from the old physical layout.
        """
        if table.name not in self._tables:
            raise SchemaError(
                f"database {self.name!r} has no table {table.name!r} to replace"
            )
        self._tables[table.name] = table

    # -------------------------------------------------------------- #
    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(
                f"database {self.name!r} has no table {name!r}; "
                f"available: {self.table_names}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self):
        return iter(self._tables.values())

    def total_rows(self) -> int:
        return sum(len(table) for table in self._tables.values())

    # -------------------------------------------------------------- #
    def subset(
        self,
        row_ids: Mapping[str, Iterable[int]],
        name: Optional[str] = None,
    ) -> "Database":
        """Build the sub-database keeping the given base row ids per table.

        Tables absent from ``row_ids`` become empty (the approximation set
        simply holds no tuples from them); unknown table names are an error.
        """
        for table_name in row_ids:
            if table_name not in self._tables:
                raise SchemaError(
                    f"subset references unknown table {table_name!r}; "
                    f"available: {self.table_names}"
                )
        tables = []
        for table in self._tables.values():
            keep = row_ids.get(table.name, ())
            tables.append(table.subset_by_row_ids(keep))
        return Database(tables, name=name or f"{self.name}:subset")

    def scale(self, factor: int, name: Optional[str] = None) -> "Database":
        """Blow up every table by duplicating it ``factor`` times.

        Used by the Figure-4 "problem justification" experiment, which
        measures direct-query latency on progressively larger copies of the
        data. Duplicated rows get fresh row ids.
        """
        if factor < 1:
            raise ValueError(f"scale factor must be >= 1, got {factor}")
        tables = []
        for table in self._tables.values():
            positions = np.tile(np.arange(len(table)), factor)
            blown = table.take(positions)
            blown = Table(
                blown.schema,
                {c: blown.column(c) for c in blown.schema.column_names},
                row_ids=np.arange(len(blown)),
            )
            tables.append(blown)
        return Database(tables, name=name or f"{self.name}:x{factor}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        summary = ", ".join(f"{t.name}({len(t)})" for t in self._tables.values())
        return f"Database({self.name!r}: {summary})"
