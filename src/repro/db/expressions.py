"""Predicate expression AST with vectorized evaluation.

Predicates are evaluated against a *row context*: a mapping from qualified
column reference ``"table.column"`` (or bare ``"column"`` for single-table
queries) to a numpy array of values, all of the same length. The executor
builds such contexts for base tables and join intermediates.

Supported forms::

    Comparison(col, op, value)      op in {=, !=, <, <=, >, >=}
    Between(col, low, high)         inclusive range
    InSet(col, {v1, v2, ...})
    Like(col, pattern)              SQL LIKE with % and _
    IsNull(col) / IsNotNull(col)
    And(p1, p2, ...), Or(p1, p2, ...), Not(p)
    TrueExpr()                      matches everything

Every node renders back to SQL text via ``to_sql()`` and exposes
``columns()`` (the column refs it touches) and ``tokens()`` (structural
tokens used by the embedding substrate).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Union

import numpy as np

Value = Union[int, float, str]

_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class ExpressionError(ValueError):
    """Raised for malformed predicates or evaluation against a bad context."""


def _sql_literal(value: Value) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        return repr(float(value))
    return str(int(value))


def _context_column(context: Mapping[str, np.ndarray], ref: str) -> np.ndarray:
    if ref in context:
        return context[ref]
    # Allow bare-name lookup when the qualified ref is unambiguous.
    if "." not in ref:
        matches = [key for key in context if key.endswith("." + ref)]
        if len(matches) == 1:
            return context[matches[0]]
        if len(matches) > 1:
            raise ExpressionError(f"ambiguous column reference {ref!r}: {matches}")
    raise ExpressionError(f"unknown column reference {ref!r}; context has {sorted(context)}")


class Expression:
    """Base class for all predicate nodes."""

    def evaluate(self, context: Mapping[str, np.ndarray]) -> np.ndarray:
        """Boolean mask over the context rows."""
        raise NotImplementedError

    def to_sql(self) -> str:
        raise NotImplementedError

    def columns(self) -> list[str]:
        """Column references this predicate touches (with duplicates removed)."""
        raise NotImplementedError

    def tokens(self) -> list[str]:
        """Structural tokens for the embedding substrate."""
        raise NotImplementedError

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "Expression") -> "And":
        return And([self, other])

    def __or__(self, other: "Expression") -> "Or":
        return Or([self, other])

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class TrueExpr(Expression):
    """A predicate satisfied by every row."""

    def evaluate(self, context: Mapping[str, np.ndarray]) -> np.ndarray:
        n = len(next(iter(context.values()))) if context else 0
        return np.ones(n, dtype=bool)

    def to_sql(self) -> str:
        return "TRUE"

    def columns(self) -> list[str]:
        return []

    def tokens(self) -> list[str]:
        return ["true"]


@dataclass(frozen=True)
class FalseExpr(Expression):
    """A predicate satisfied by no row.

    Produced by :func:`rewrite_for_codes` when a literal provably falls
    outside a column's dictionary (e.g. ``genre = 'nope'`` against a
    dictionary without ``'nope'``) — the scan can then skip every block.
    """

    def evaluate(self, context: Mapping[str, np.ndarray]) -> np.ndarray:
        n = len(next(iter(context.values()))) if context else 0
        return np.zeros(n, dtype=bool)

    def to_sql(self) -> str:
        return "FALSE"

    def columns(self) -> list[str]:
        return []

    def tokens(self) -> list[str]:
        return ["false"]


@dataclass(frozen=True)
class Comparison(Expression):
    column: str
    op: str
    value: Value

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ExpressionError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, context: Mapping[str, np.ndarray]) -> np.ndarray:
        array = _context_column(context, self.column)
        compare = _COMPARATORS[self.op]
        if array.dtype == object:
            values = np.asarray([str(v) for v in array], dtype="U")
            result = compare(values, str(self.value))
        else:
            with np.errstate(invalid="ignore"):
                result = compare(array, self.value)
        return np.asarray(result, dtype=bool)

    def to_sql(self) -> str:
        return f"{self.column} {self.op} {_sql_literal(self.value)}"

    def columns(self) -> list[str]:
        return [self.column]

    def tokens(self) -> list[str]:
        return [f"pred:{self.column}{self.op}", f"val:{self.column}={self.value}"]


@dataclass(frozen=True)
class Between(Expression):
    column: str
    low: Value
    high: Value

    def evaluate(self, context: Mapping[str, np.ndarray]) -> np.ndarray:
        array = _context_column(context, self.column)
        if array.dtype == object:
            values = np.asarray([str(v) for v in array], dtype="U")
            return (values >= str(self.low)) & (values <= str(self.high))
        with np.errstate(invalid="ignore"):
            return np.asarray((array >= self.low) & (array <= self.high), dtype=bool)

    def to_sql(self) -> str:
        return f"{self.column} BETWEEN {_sql_literal(self.low)} AND {_sql_literal(self.high)}"

    def columns(self) -> list[str]:
        return [self.column]

    def tokens(self) -> list[str]:
        return [
            f"pred:{self.column}between",
            f"val:{self.column}>={self.low}",
            f"val:{self.column}<={self.high}",
        ]


class InSet(Expression):
    """``column IN (v1, v2, ...)``."""

    def __init__(self, column: str, values: Iterable[Value]) -> None:
        self.column = column
        self.values = tuple(sorted(set(values), key=str))
        if not self.values:
            raise ExpressionError(f"IN-set for {column!r} must be non-empty")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, InSet)
            and self.column == other.column
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash((self.column, self.values))

    def evaluate(self, context: Mapping[str, np.ndarray]) -> np.ndarray:
        array = _context_column(context, self.column)
        if array.dtype == object:
            wanted = {str(v) for v in self.values}
            return np.asarray([str(v) in wanted for v in array], dtype=bool)
        return np.isin(array, np.asarray(self.values))

    def to_sql(self) -> str:
        inner = ", ".join(_sql_literal(v) for v in self.values)
        return f"{self.column} IN ({inner})"

    def columns(self) -> list[str]:
        return [self.column]

    def tokens(self) -> list[str]:
        return [f"pred:{self.column}in"] + [f"val:{self.column}={v}" for v in self.values]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InSet({self.column!r}, {self.values!r})"


@dataclass(frozen=True)
class Like(Expression):
    """SQL LIKE: ``%`` matches any run, ``_`` any single character."""

    column: str
    pattern: str

    def _regex(self) -> re.Pattern:
        # re.escape leaves % and _ untouched (they are not regex-special),
        # so the wildcard substitution happens on the escaped text directly.
        escaped = re.escape(self.pattern)
        regex = escaped.replace("%", ".*").replace("_", ".")
        return re.compile(f"^{regex}$")

    def evaluate(self, context: Mapping[str, np.ndarray]) -> np.ndarray:
        array = _context_column(context, self.column)
        regex = self._regex()
        return np.asarray(
            [bool(regex.match(str(value))) for value in array], dtype=bool
        )

    def to_sql(self) -> str:
        return f"{self.column} LIKE {_sql_literal(self.pattern)}"

    def columns(self) -> list[str]:
        return [self.column]

    def tokens(self) -> list[str]:
        return [f"pred:{self.column}like", f"val:{self.column}~{self.pattern}"]


@dataclass(frozen=True)
class IsNull(Expression):
    column: str

    def evaluate(self, context: Mapping[str, np.ndarray]) -> np.ndarray:
        array = _context_column(context, self.column)
        if array.dtype == object:
            return np.asarray([str(v) == "" for v in array], dtype=bool)
        if np.issubdtype(array.dtype, np.floating):
            return np.isnan(array)
        from .schema import INT_NULL

        return array == INT_NULL

    def to_sql(self) -> str:
        return f"{self.column} IS NULL"

    def columns(self) -> list[str]:
        return [self.column]

    def tokens(self) -> list[str]:
        return [f"pred:{self.column}isnull"]


@dataclass(frozen=True)
class IsNotNull(Expression):
    column: str

    def evaluate(self, context: Mapping[str, np.ndarray]) -> np.ndarray:
        return ~IsNull(self.column).evaluate(context)

    def to_sql(self) -> str:
        return f"{self.column} IS NOT NULL"

    def columns(self) -> list[str]:
        return [self.column]

    def tokens(self) -> list[str]:
        return [f"pred:{self.column}notnull"]


class And(Expression):
    def __init__(self, operands: Sequence[Expression]) -> None:
        if not operands:
            raise ExpressionError("AND needs at least one operand")
        self.operands = tuple(operands)

    def evaluate(self, context: Mapping[str, np.ndarray]) -> np.ndarray:
        result = self.operands[0].evaluate(context)
        for operand in self.operands[1:]:
            result = result & operand.evaluate(context)
        return result

    def to_sql(self) -> str:
        return "(" + " AND ".join(op.to_sql() for op in self.operands) + ")"

    def columns(self) -> list[str]:
        seen: list[str] = []
        for operand in self.operands:
            for ref in operand.columns():
                if ref not in seen:
                    seen.append(ref)
        return seen

    def tokens(self) -> list[str]:
        tokens: list[str] = []
        for operand in self.operands:
            tokens.extend(operand.tokens())
        return tokens

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.operands == other.operands

    def __hash__(self) -> int:
        return hash(("and", self.operands))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"And({list(self.operands)!r})"


class Or(Expression):
    def __init__(self, operands: Sequence[Expression]) -> None:
        if not operands:
            raise ExpressionError("OR needs at least one operand")
        self.operands = tuple(operands)

    def evaluate(self, context: Mapping[str, np.ndarray]) -> np.ndarray:
        result = self.operands[0].evaluate(context)
        for operand in self.operands[1:]:
            result = result | operand.evaluate(context)
        return result

    def to_sql(self) -> str:
        return "(" + " OR ".join(op.to_sql() for op in self.operands) + ")"

    def columns(self) -> list[str]:
        seen: list[str] = []
        for operand in self.operands:
            for ref in operand.columns():
                if ref not in seen:
                    seen.append(ref)
        return seen

    def tokens(self) -> list[str]:
        tokens = ["or"]
        for operand in self.operands:
            tokens.extend(operand.tokens())
        return tokens

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and self.operands == other.operands

    def __hash__(self) -> int:
        return hash(("or", self.operands))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Or({list(self.operands)!r})"


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression

    def evaluate(self, context: Mapping[str, np.ndarray]) -> np.ndarray:
        return ~self.operand.evaluate(context)

    def to_sql(self) -> str:
        return f"NOT ({self.operand.to_sql()})"

    def columns(self) -> list[str]:
        return self.operand.columns()

    def tokens(self) -> list[str]:
        return ["not"] + self.operand.tokens()


def conjuncts(expression: Expression) -> list[Expression]:
    """Flatten nested ANDs into a list of conjuncts."""
    if isinstance(expression, And):
        result: list[Expression] = []
        for operand in expression.operands:
            result.extend(conjuncts(operand))
        return result
    if isinstance(expression, TrueExpr):
        return []
    return [expression]


def conjoin(parts: Sequence[Expression]) -> Expression:
    """Combine predicates with AND, simplifying the 0- and 1-element cases."""
    parts = [p for p in parts if not isinstance(p, TrueExpr)]
    if not parts:
        return TrueExpr()
    if len(parts) == 1:
        return parts[0]
    return And(parts)


# --------------------------------------------------------------------- #
# code-space rewriting (late materialization)
# --------------------------------------------------------------------- #

def _resolve_ref(ref: str, refs) -> Optional[str]:
    """Resolve a possibly-bare ref against the context's qualified refs.

    Returns the qualified ref, or None when the ref is unknown or
    ambiguous (callers then fall back to the decoded evaluation path,
    which reports the error with identical wording).
    """
    if ref in refs:
        return ref
    if "." not in ref:
        matches = [key for key in refs if key.endswith("." + ref)]
        if len(matches) == 1:
            return matches[0]
    return None


def _dictionary_code(dictionary: np.ndarray, value: str) -> Optional[int]:
    """The code of ``value`` in a sorted dictionary, or None when absent."""
    index = int(np.searchsorted(dictionary, value))
    if index < len(dictionary) and str(dictionary[index]) == value:
        return index
    return None


def _rewrite_atom(node: Expression, dictionary: np.ndarray) -> Expression:
    """Rewrite one single-column atom into code space.

    The dictionary is sorted, so code order equals string order and every
    string comparison maps to an integer comparison on the codes — range
    bounds come from ``searchsorted``, equality from exact lookup.
    """
    n = len(dictionary)
    if isinstance(node, Comparison):
        value = str(node.value)
        if node.op == "=":
            code = _dictionary_code(dictionary, value)
            return FalseExpr() if code is None else Comparison(node.column, "=", code)
        if node.op == "!=":
            code = _dictionary_code(dictionary, value)
            return TrueExpr() if code is None else Comparison(node.column, "!=", code)
        if node.op == "<":
            bound = int(np.searchsorted(dictionary, value, side="left"))
            return FalseExpr() if bound == 0 else Comparison(node.column, "<", bound)
        if node.op == "<=":
            bound = int(np.searchsorted(dictionary, value, side="right"))
            return FalseExpr() if bound == 0 else Comparison(node.column, "<", bound)
        if node.op == ">":
            bound = int(np.searchsorted(dictionary, value, side="right"))
            return FalseExpr() if bound >= n else Comparison(node.column, ">=", bound)
        # ">="
        bound = int(np.searchsorted(dictionary, value, side="left"))
        return FalseExpr() if bound >= n else Comparison(node.column, ">=", bound)
    if isinstance(node, Between):
        low = int(np.searchsorted(dictionary, str(node.low), side="left"))
        high = int(np.searchsorted(dictionary, str(node.high), side="right")) - 1
        if low > high:
            return FalseExpr()
        return Between(node.column, low, high)
    if isinstance(node, InSet):
        codes = []
        for value in node.values:
            code = _dictionary_code(dictionary, str(value))
            if code is not None:
                codes.append(code)
        return FalseExpr() if not codes else InSet(node.column, codes)
    if isinstance(node, Like):
        regex = node._regex()
        codes = [
            index for index in range(n) if regex.match(str(dictionary[index]))
        ]
        if not codes:
            return FalseExpr()
        if len(codes) == n:
            return TrueExpr()
        return InSet(node.column, codes)
    if isinstance(node, IsNull):
        # STR NULL is the empty string — an ordinary dictionary entry.
        code = _dictionary_code(dictionary, "")
        return FalseExpr() if code is None else Comparison(node.column, "=", code)
    if isinstance(node, IsNotNull):
        code = _dictionary_code(dictionary, "")
        return TrueExpr() if code is None else Comparison(node.column, "!=", code)
    raise ExpressionError(f"cannot rewrite {type(node).__name__} into code space")


def rewrite_for_codes(
    expression: Expression,
    dictionaries: Mapping[str, np.ndarray],
    refs,
) -> Optional[Expression]:
    """Rewrite a predicate to evaluate against dictionary *codes*.

    ``dictionaries`` maps qualified column refs to their sorted
    dictionaries; ``refs`` is the full set of qualified refs the runtime
    context will contain (needed to resolve bare column names the same
    way evaluation does). Atoms on non-dictionary columns pass through
    unchanged — the runtime context holds their plain decoded arrays.

    Returns the rewritten expression, or ``None`` when any part cannot
    be rewritten safely (unknown node types, ambiguous bare refs) — the
    caller then evaluates the original predicate on decoded values.
    """
    if isinstance(expression, (TrueExpr, FalseExpr)):
        return expression
    if isinstance(expression, And):
        parts = [rewrite_for_codes(op, dictionaries, refs) for op in expression.operands]
        if any(part is None for part in parts):
            return None
        if any(isinstance(part, FalseExpr) for part in parts):
            return FalseExpr()
        kept = [part for part in parts if not isinstance(part, TrueExpr)]
        return conjoin(kept)
    if isinstance(expression, Or):
        parts = [rewrite_for_codes(op, dictionaries, refs) for op in expression.operands]
        if any(part is None for part in parts):
            return None
        if any(isinstance(part, TrueExpr) for part in parts):
            return TrueExpr()
        kept = [part for part in parts if not isinstance(part, FalseExpr)]
        if not kept:
            return FalseExpr()
        return kept[0] if len(kept) == 1 else Or(kept)
    if isinstance(expression, Not):
        inner = rewrite_for_codes(expression.operand, dictionaries, refs)
        if inner is None:
            return None
        if isinstance(inner, TrueExpr):
            return FalseExpr()
        if isinstance(inner, FalseExpr):
            return TrueExpr()
        return Not(inner)
    if isinstance(
        expression, (Comparison, Between, InSet, Like, IsNull, IsNotNull)
    ):
        resolved = _resolve_ref(expression.column, refs)
        if resolved is None:
            return None
        dictionary = dictionaries.get(resolved)
        if dictionary is None:
            return expression
        return _rewrite_atom(expression, dictionary)
    return None
