"""Schema objects for the in-memory relational engine.

The engine is a small column-store: a :class:`TableSchema` describes typed
columns, and :class:`repro.db.table.Table` stores one numpy array per column.
Three logical column types cover everything the ASQP-RL benchmarks need:

* ``INT`` — stored as ``numpy.int64``
* ``FLOAT`` — stored as ``numpy.float64``
* ``STR`` — stored as a numpy object array of Python strings

Nullability is modelled with sentinel values (``INT_NULL``, ``nan``, ``""``)
so every column stays a flat numpy array and predicate evaluation remains
vectorized.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

#: Sentinel used for NULL integers (numpy int arrays cannot hold NaN).
INT_NULL = np.iinfo(np.int64).min


class ColumnType(enum.Enum):
    """Logical type of a column."""

    INT = "int"
    FLOAT = "float"
    STR = "str"

    @property
    def dtype(self) -> np.dtype:
        """The numpy dtype used to store this logical type."""
        if self is ColumnType.INT:
            return np.dtype(np.int64)
        if self is ColumnType.FLOAT:
            return np.dtype(np.float64)
        return np.dtype(object)

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INT, ColumnType.FLOAT)


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    ctype:
        Logical :class:`ColumnType`.
    nullable:
        Whether NULL sentinels may appear.
    """

    name: str
    ctype: ColumnType
    nullable: bool = False

    def coerce(self, values: Sequence) -> np.ndarray:
        """Coerce ``values`` into this column's storage array.

        Raises
        ------
        TypeError
            If a value cannot be represented in the column type.
        """
        if self.ctype is ColumnType.INT:
            try:
                return np.asarray(values, dtype=np.int64)
            except (ValueError, OverflowError) as exc:
                raise TypeError(
                    f"column {self.name!r}: cannot coerce values to INT: {exc}"
                ) from exc
        if self.ctype is ColumnType.FLOAT:
            try:
                return np.asarray(values, dtype=np.float64)
            except ValueError as exc:
                raise TypeError(
                    f"column {self.name!r}: cannot coerce values to FLOAT: {exc}"
                ) from exc
        arr = np.empty(len(values), dtype=object)
        for i, value in enumerate(values):
            if value is None:
                arr[i] = ""
            elif isinstance(value, str):
                arr[i] = value
            else:
                arr[i] = str(value)
        return arr

    def null_mask(self, array: np.ndarray) -> np.ndarray:
        """Boolean mask of NULL entries in a storage array of this column."""
        if self.ctype is ColumnType.INT:
            return array == INT_NULL
        if self.ctype is ColumnType.FLOAT:
            return np.isnan(array)
        return np.asarray([value == "" for value in array], dtype=bool)


class SchemaError(ValueError):
    """Raised for malformed schemas or schema/data mismatches."""


@dataclass
class ForeignKey:
    """A foreign-key edge: ``table.column`` references ``ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str


@dataclass
class TableSchema:
    """Ordered collection of columns plus key metadata for one table.

    Parameters
    ----------
    name:
        Table name, unique within a database.
    columns:
        Ordered columns. The first column is conventionally the primary key
        in the bundled benchmark schemas, but ``primary_key`` is explicit.
    primary_key:
        Name of the primary-key column, or ``None`` for keyless tables.
    foreign_keys:
        Outgoing foreign-key edges, used by the dataset generators and by
        the workload generator to produce joinable queries.
    """

    name: str
    columns: Sequence[Column]
    primary_key: Optional[str] = None
    foreign_keys: Sequence[ForeignKey] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {self.name!r}: duplicate column names in {names}")
        if not names:
            raise SchemaError(f"table {self.name!r}: a table needs at least one column")
        if self.primary_key is not None and self.primary_key not in names:
            raise SchemaError(
                f"table {self.name!r}: primary key {self.primary_key!r} is not a column"
            )
        for fk in self.foreign_keys:
            if fk.column not in names:
                raise SchemaError(
                    f"table {self.name!r}: foreign key column {fk.column!r} is not a column"
                )
        self._by_name = {column.name: column for column in self.columns}

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        """Look up a column by name, raising :class:`SchemaError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {self.column_names}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def numeric_columns(self) -> list[Column]:
        return [column for column in self.columns if column.ctype.is_numeric]

    def categorical_columns(self) -> list[Column]:
        return [column for column in self.columns if column.ctype is ColumnType.STR]
