"""Query plans: the operator tree behind EXPLAIN / EXPLAIN ANALYZE.

The executor assembles an explicit operator tree for every query it can
run — scan → pushdown filter → ordered hash joins → residual filter →
sort/project/distinct/limit, with an aggregate node on top for GROUP BY
queries. Each :class:`PlanNode` carries the *estimated* output
cardinality (from :mod:`repro.db.statistics`: NDV-based equi-join
estimates and sampled predicate selectivities) and, in ANALYZE mode, the
*actual* row count and per-operator wall time, so the classic AQP
diagnostic — the q-error between estimate and reality — is visible per
operator (cf. DeepDB-style per-operator cardinality accounting).

Rendering mirrors PostgreSQL's ``EXPLAIN``: one line per operator,
children indented under an ``->`` arrow, with a ``(est=… act=… q=… t=…)``
annotation. :meth:`QueryPlan.to_dict` is the JSON form the ``plan``
telemetry stream and ``repro explain --json`` emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


def q_error(estimated: float, actual: float) -> float:
    """The q-error between an estimated and an actual cardinality.

    Defined as ``max(est/act, act/est)`` with both sides clamped to at
    least one row (the standard convention, which keeps empty results
    from producing infinities); always >= 1, with 1 meaning exact.
    """
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


@dataclass
class PlanNode:
    """One operator in a query plan tree."""

    op: str                              # scan | filter | hash_join | ...
    label: str = ""                      # table name, predicate, join conds
    estimated_rows: Optional[float] = None
    actual_rows: Optional[int] = None
    seconds: Optional[float] = None
    detail: dict[str, Any] = field(default_factory=dict)
    children: list["PlanNode"] = field(default_factory=list)

    @property
    def q(self) -> Optional[float]:
        """q-error of this operator (None unless both sides are known)."""
        if self.estimated_rows is None or self.actual_rows is None:
            return None
        return q_error(self.estimated_rows, self.actual_rows)

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {"op": self.op}
        if self.label:
            record["label"] = self.label
        if self.estimated_rows is not None:
            record["estimated_rows"] = round(float(self.estimated_rows), 2)
        if self.actual_rows is not None:
            record["actual_rows"] = int(self.actual_rows)
        if self.q is not None:
            record["q_error"] = round(self.q, 3)
        if self.seconds is not None:
            record["seconds"] = self.seconds
        if self.detail:
            record["detail"] = dict(self.detail)
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record


@dataclass
class QueryPlan:
    """A whole plan: the operator tree plus run-level info."""

    query_sql: str
    root: PlanNode
    analyze: bool = False
    total_seconds: Optional[float] = None
    result: Optional[object] = None      # ResultSet / AggregateResult (ANALYZE)
    #: QueryStats.to_dict() from the executed run (ANALYZE under obs):
    #: wall vs cpu time, morsel/dispatch counts, per-worker busy, skew.
    query_stats: Optional[dict[str, Any]] = None

    def operators(self) -> list[PlanNode]:
        return list(self.root.walk())

    def max_q_error(self) -> Optional[float]:
        values = [node.q for node in self.root.walk() if node.q is not None]
        return max(values) if values else None

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "sql": self.query_sql,
            "analyze": self.analyze,
            "plan": self.root.to_dict(),
        }
        if self.total_seconds is not None:
            record["total_seconds"] = self.total_seconds
        if self.max_q_error() is not None:
            record["max_q_error"] = round(self.max_q_error(), 3)
        if self.query_stats is not None:
            record["query_stats"] = dict(self.query_stats)
        return record

    def operator_stats(self) -> list[dict[str, Any]]:
        """Flat per-operator rows (the ``plan`` telemetry payload)."""
        rows = []
        for node in self.root.walk():
            row: dict[str, Any] = {"op": node.op, "label": node.label}
            if node.estimated_rows is not None:
                row["estimated_rows"] = round(float(node.estimated_rows), 2)
            if node.actual_rows is not None:
                row["actual_rows"] = int(node.actual_rows)
            if node.q is not None:
                row["q_error"] = round(node.q, 3)
            if node.seconds is not None:
                row["seconds"] = node.seconds
            rows.append(row)
        return rows

    # -- rendering --------------------------------------------------- #
    def format(self) -> str:
        """PostgreSQL-style text rendering of the plan."""
        header = "EXPLAIN ANALYZE" if self.analyze else "EXPLAIN"
        lines = [f"{header}: {self.query_sql}"]

        def annotate(node: PlanNode) -> str:
            parts = []
            if node.estimated_rows is not None:
                parts.append(f"est={node.estimated_rows:.0f}")
            if node.actual_rows is not None:
                parts.append(f"act={node.actual_rows}")
            if node.q is not None:
                parts.append(f"q={node.q:.2f}")
            if node.seconds is not None:
                parts.append(f"t={node.seconds * 1e3:.2f}ms")
            if "blocks_total" in node.detail:
                parts.append(
                    f"blocks={node.detail['blocks_total'] - node.detail['blocks_pruned']}"
                    f"/{node.detail['blocks_total']}"
                    f" pruned={node.detail['blocks_pruned']}"
                )
            for key, value in node.detail.items():
                if key not in ("blocks_total", "blocks_pruned"):
                    parts.append(f"{key}={value}")
            return f"  ({' '.join(parts)})" if parts else ""

        def render(node: PlanNode, depth: int) -> None:
            indent = "  " * depth + ("-> " if depth else "")
            title = node.op + (f" {node.label}" if node.label else "")
            lines.append(f"{indent}{title}{annotate(node)}")
            for child in node.children:
                render(child, depth + 1)

        render(self.root, 0)
        if self.total_seconds is not None:
            lines.append(f"total: {self.total_seconds * 1e3:.2f} ms")
        stats = self.query_stats
        if stats:
            if stats.get("trace_id"):
                lines.append(f"trace: {stats['trace_id']}")
            lines.append(
                "timing:"
                f" wall={stats.get('wall_seconds', 0.0) * 1e3:.2f} ms"
                f" cpu={stats.get('cpu_seconds', 0.0) * 1e3:.2f} ms"
                f" scanned={stats.get('rows_scanned', 0)}"
                f" produced={stats.get('rows_produced', 0)}"
            )
            if stats.get("dispatches"):
                lines.append(
                    "parallel:"
                    f" dispatches={stats.get('dispatches', 0)}"
                    f" morsels={stats.get('morsels', 0)}"
                    f" workers={len(stats.get('worker_busy') or {})}"
                    f" busy={stats.get('worker_busy_seconds', 0.0) * 1e3:.2f} ms"
                    f" skew={stats.get('skew_ratio', 1.0):.2f}"
                    f" stragglers={stats.get('stragglers', 0)}"
                )
            if stats.get("fallbacks"):
                reasons = ", ".join(
                    f"{reason}×{count}"
                    for reason, count in sorted(
                        (stats.get("fallback_reasons") or {}).items()
                    )
                )
                lines.append(
                    f"parallel fallbacks: {stats.get('fallbacks', 0)}"
                    + (f" ({reasons})" if reasons else "")
                )
        return "\n".join(lines)
