"""Morsel-driven parallel execution over shared-memory numpy arrays.

The executor's three parallelizable loops — predicate scans, hash-join
probes, and group-by partitioning — are split into fixed-size row-range
*morsels* dispatched across a lazily created ``multiprocessing`` worker
pool. Input arrays travel through ``multiprocessing.shared_memory``
blocks (one copy in, zero-copy views in every worker); results come back
per morsel and are concatenated in morsel order, which reproduces the
serial output exactly because every parallel kernel here is independent
across row ranges and morsels tile the input contiguously.

Scheduling and fallback rules (see DESIGN.md §10):

* the worker count comes from :func:`set_workers` or the
  ``REPRO_WORKERS`` environment variable; ``0``/``1``/unset mean serial;
* inputs smaller than ``REPRO_PARALLEL_MIN_ROWS`` (default
  ``32768``) run serially — morsel dispatch overhead dominates below
  that;
* object-dtype arrays never parallelize (they cannot live in shared
  memory) — string predicates must be rewritten to dictionary codes
  first, which the executor does;
* any pool failure (spawn refused, worker crash, shared-memory
  exhaustion) increments ``parallel.fallbacks``, emits an attributable
  ``parallel`` telemetry event, and the caller runs the serial path —
  parallelism is strictly an optimization, never a correctness
  dependency.

Cross-process observability (DESIGN.md §11): workers run with the
global observability stack disabled (their registries would be lost on
exit), but every morsel task records spans/counters into a private
:class:`repro.obs.worker.TaskRecorder` and ships the export back
piggybacked on its result. The parent stitches those records into the
trace as per-worker lanes, merges the metrics into its registry, and
folds busy time into the active query's accounting (skew ratio,
stragglers, per-worker busy — surfaced as ``QueryStats``).

A watchdog guards every dispatch: workers heartbeat at task start/end
over a ``SimpleQueue``, and if no signal arrives for
``REPRO_TASK_TIMEOUT`` seconds (default 30, ``0`` disables) the parent
cancels the dispatch, recycles the pool, records
``parallel.watchdog.*`` metrics plus a CRIT health event, and the query
completes on the serial path — a stuck worker degrades, never wedges.

Workers contain no wall-clock-as-data or global-RNG use; morsels that
ever need randomness must derive it from an explicit per-morsel seed in
the task payload (:func:`morsel_seeds` spawns them deterministically).
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import time
from multiprocessing import shared_memory
from typing import Any, Optional, Sequence

import numpy as np

from ..obs import context as _context
from ..obs import health as _health
from ..obs import metrics as _metrics
from ..obs import telemetry as _telemetry
from ..obs import trace as _trace
from ..obs import worker as _worker
from ..obs.clock import perf_counter
from ..obs.runtime import STATE as _OBS

#: Below this many input rows the serial path always wins.
DEFAULT_MIN_ROWS = 32_768

#: Morsels per worker per dispatch — small enough to balance skew,
#: large enough that per-morsel overhead stays negligible.
_MORSELS_PER_WORKER = 4

#: Default hung-task deadline (seconds without any worker heartbeat).
DEFAULT_TASK_TIMEOUT = 30.0

#: Watchdog poll slice while a dispatch is in flight.
_WATCHDOG_POLL_S = 0.05

#: A dispatch's task is a straggler when its busy time exceeds this
#: multiple of the query's mean task busy time.
STRAGGLER_RATIO = 2.0

_CONFIGURED_WORKERS: Optional[int] = None
_POOL = None
_POOL_WORKERS = 0
_POOL_GENERATION = 0

#: Heartbeat channel. In the parent this is the receiving end; in a
#: worker it is the same (inherited) queue, used by :func:`_beat`.
_HEARTBEATS = None


def set_workers(count: Optional[int]) -> None:
    """Configure the worker count programmatically (None = use env)."""
    global _CONFIGURED_WORKERS
    _CONFIGURED_WORKERS = None if count is None else max(0, int(count))


def worker_count() -> int:
    """Effective worker count: config override, else ``REPRO_WORKERS``."""
    if _CONFIGURED_WORKERS is not None:
        return _CONFIGURED_WORKERS
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        return 0


def min_parallel_rows() -> int:
    raw = os.environ.get("REPRO_PARALLEL_MIN_ROWS", "").strip()
    if not raw:
        return DEFAULT_MIN_ROWS
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_MIN_ROWS


def task_timeout() -> float:
    """Hung-task deadline in seconds (``REPRO_TASK_TIMEOUT``; 0 = off)."""
    raw = os.environ.get("REPRO_TASK_TIMEOUT", "").strip()
    if not raw:
        return DEFAULT_TASK_TIMEOUT
    try:
        return max(0.0, float(raw))
    except ValueError:
        return DEFAULT_TASK_TIMEOUT


def pool_generation() -> int:
    """Monotonic pool lifetime counter (bumped on every (re)build)."""
    return _POOL_GENERATION


def morsel_seeds(entropy: int, n_morsels: int) -> list[int]:
    """Deterministic per-morsel RNG seeds (spawned, never global state).

    Morsel tasks that need randomness must take one of these in their
    payload and build ``np.random.default_rng(seed)`` locally — workers
    must never touch the global numpy RNG.
    """
    sequence = np.random.SeedSequence(entropy)
    return [int(child.generate_state(1)[0]) for child in sequence.spawn(n_morsels)]


def shutdown() -> None:
    """Terminate the worker pool (idempotent; re-created lazily).

    Also zeroes the ``parallel.pool.workers`` gauge so utilization math
    over a metrics snapshot cannot attribute busy time to a pool that no
    longer exists; ``parallel.pool.generation`` stays at the last built
    generation and marks the lifetime boundary.
    """
    global _POOL, _POOL_WORKERS, _HEARTBEATS
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_WORKERS = 0
        if _HEARTBEATS is not None:
            try:
                _HEARTBEATS.close()
            except OSError:
                pass  # channel fds already torn down with the pool
            _HEARTBEATS = None
        if _OBS.enabled:
            registry = _metrics.registry()
            registry.set_gauge("parallel.pool.workers", 0.0)
            registry.set_gauge("parallel.pool.generation", float(_POOL_GENERATION))


atexit.register(shutdown)


def _worker_init(heartbeats=None) -> None:
    """Runs in each worker: observability off (registries die with the
    worker; morsel tasks record into TaskRecorders shipped back to the
    parent instead) and the heartbeat queue installed for _beat()."""
    global _HEARTBEATS
    # Worker-side globals are the *point* of the initializer: they mutate
    # the worker's post-fork copy, never the parent's.
    _OBS.enabled = False  # lint: disable=fork-unsafe-worker-reachable
    _HEARTBEATS = heartbeats  # lint: disable=fork-unsafe-worker-reachable


def _get_pool(workers: int):
    global _POOL, _POOL_WORKERS, _POOL_GENERATION, _HEARTBEATS
    if _POOL is not None and _POOL_WORKERS != workers:
        shutdown()
    if _POOL is None:
        methods = mp.get_all_start_methods()
        context = mp.get_context("fork" if "fork" in methods else "spawn")
        try:
            heartbeats = context.SimpleQueue()
            _POOL = context.Pool(
                processes=workers,
                initializer=_worker_init,
                initargs=(heartbeats,),
            )
        except (OSError, ValueError):
            _record_fallback("pool_unavailable")
            return None
        _HEARTBEATS = heartbeats
        _POOL_WORKERS = workers
        _POOL_GENERATION += 1
        if _OBS.enabled:
            registry = _metrics.registry()
            registry.set_gauge("parallel.pool.workers", float(workers))
            registry.set_gauge("parallel.pool.generation", float(_POOL_GENERATION))
    return _POOL


# ------------------------------------------------------------------ #
# per-query accounting
# ------------------------------------------------------------------ #
class _QueryAccounting:
    """Parallel-execution tallies for one query (parent-side only)."""

    __slots__ = (
        "fingerprint",
        "dispatches",
        "morsels",
        "rows",
        "fallbacks",
        "fallback_reasons",
        "watchdog_timeouts",
        "worker_busy",
        "task_busy",
    )

    def __init__(self, fingerprint: Optional[str]) -> None:
        self.fingerprint = fingerprint
        self.dispatches = 0
        self.morsels = 0
        self.rows = 0
        self.fallbacks = 0
        self.fallback_reasons: dict[str, int] = {}
        self.watchdog_timeouts = 0
        self.worker_busy: dict[int, float] = {}
        self.task_busy: list[float] = []

    def summary(self) -> dict[str, Any]:
        busy_values = list(self.worker_busy.values())
        skew_ratio = 1.0
        if busy_values:
            mean_busy = sum(busy_values) / len(busy_values)
            if mean_busy > 0.0:
                skew_ratio = max(busy_values) / mean_busy
        stragglers = 0
        if len(self.task_busy) >= 4:
            mean_task = sum(self.task_busy) / len(self.task_busy)
            if mean_task > 0.0:
                stragglers = sum(
                    1
                    for seconds in self.task_busy
                    if seconds > STRAGGLER_RATIO * mean_task
                )
        return {
            "fingerprint": self.fingerprint,
            "dispatches": self.dispatches,
            "morsels": self.morsels,
            "rows": self.rows,
            "fallbacks": self.fallbacks,
            "fallback_reasons": dict(self.fallback_reasons),
            "watchdog_timeouts": self.watchdog_timeouts,
            "worker_busy": {str(pid): s for pid, s in self.worker_busy.items()},
            "worker_busy_seconds": sum(busy_values),
            "skew_ratio": skew_ratio,
            "stragglers": stragglers,
        }


_ACCOUNTING: Optional[_QueryAccounting] = None


def begin_query_accounting(fingerprint: Optional[str] = None) -> None:
    """Start tallying parallel activity for one query (executor-facing)."""
    global _ACCOUNTING
    _ACCOUNTING = _QueryAccounting(fingerprint)


def end_query_accounting() -> Optional[dict[str, Any]]:
    """Close the active tally; its summary dict, or None if never begun."""
    global _ACCOUNTING
    accounting = _ACCOUNTING
    _ACCOUNTING = None
    if accounting is None:
        return None
    return accounting.summary()


def _record_fallback(reason: str) -> None:
    accounting = _ACCOUNTING
    if accounting is not None:
        accounting.fallbacks += 1
        accounting.fallback_reasons[reason] = (
            accounting.fallback_reasons.get(reason, 0) + 1
        )
    if _OBS.enabled:
        registry = _metrics.registry()
        registry.add("parallel.fallbacks")
        registry.add(f"parallel.fallbacks.{reason}")
        _telemetry.emit(
            "parallel",
            event="fallback",
            reason=reason,
            query=accounting.fingerprint if accounting is not None else None,
        )


def _record_watchdog_timeout(deadline: float, n_morsels: int) -> None:
    accounting = _ACCOUNTING
    if accounting is not None:
        accounting.watchdog_timeouts += 1
    _record_fallback("watchdog_timeout")
    if _OBS.enabled:
        registry = _metrics.registry()
        registry.add("parallel.watchdog.timeouts")
        _telemetry.emit(
            "parallel",
            event="watchdog_timeout",
            timeout_s=deadline,
            morsels=n_morsels,
            pool_generation=_POOL_GENERATION,
            query=accounting.fingerprint if accounting is not None else None,
        )
        _health.active_monitor().publish(
            [
                _health.Alert(
                    severity=_health.CRIT,
                    rule="parallel.watchdog.hung_task",
                    message=(
                        f"morsel dispatch exceeded the {deadline:g}s heartbeat "
                        "deadline; pool recycled, query completed serially"
                    ),
                    value=deadline,
                    threshold=deadline,
                )
            ]
        )


def _record_dispatch(
    n_morsels: int,
    n_rows: int,
    seconds: float,
    records: list[dict[str, Any]],
) -> None:
    busy = _worker.busy_by_pid(records) if records else {}
    accounting = _ACCOUNTING
    if accounting is not None:
        accounting.dispatches += 1
        accounting.morsels += n_morsels
        accounting.rows += n_rows
        for pid, busy_s in busy.items():
            accounting.worker_busy[pid] = (
                accounting.worker_busy.get(pid, 0.0) + busy_s
            )
        accounting.task_busy.extend(
            float(record.get("busy_s", 0.0)) for record in records
        )
    if _OBS.enabled:
        registry = _metrics.registry()
        registry.observe("parallel.morsels", float(n_morsels))
        registry.add("parallel.dispatches")
        registry.add("parallel.rows", float(n_rows))
        registry.observe("parallel.dispatch.seconds", seconds)
        if records:
            registry.merge(_worker.combine_metrics(records))
            for record in records:
                registry.observe(
                    "parallel.worker.task.seconds",
                    float(record.get("busy_s", 0.0)),
                )
                spans = record.get("spans") or []
                if spans:
                    # The trace id relayed through the task envelope wins;
                    # record_worker_spans falls back to the context active
                    # at stitch time (same dispatch, same request).
                    _trace.record_worker_spans(
                        int(record.get("pid", 0)),
                        spans,
                        trace_id=record.get("trace_id"),
                    )


def _morsel_ranges(n_rows: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous row ranges tiling [0, n_rows)."""
    target = max(1, -(-n_rows // (workers * _MORSELS_PER_WORKER)))
    starts = range(0, n_rows, target)
    return [(start, min(start + target, n_rows)) for start in starts]


# ------------------------------------------------------------------ #
# shared-memory transport
# ------------------------------------------------------------------ #
class _ShmArrays:
    """Copies arrays into shared-memory blocks for zero-copy worker views.

    The parent owns the blocks: created here, closed *and unlinked* in
    :meth:`release` (always call it in a ``finally``). Workers attach by
    name and detach per task.
    """

    def __init__(self, arrays: dict[str, np.ndarray]) -> None:
        self.blocks: list[shared_memory.SharedMemory] = []
        self.descriptors: dict[str, tuple[str, tuple, str]] = {}
        try:
            for key, array in arrays.items():
                array = np.ascontiguousarray(array)
                block = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                self.blocks.append(block)
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
                view[...] = array
                del view
                self.descriptors[key] = (block.name, array.shape, array.dtype.str)
        except Exception:
            self.release()
            raise

    def release(self) -> None:
        for block in self.blocks:
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:
                pass  # already unlinked (double-release)
        self.blocks = []


def _attach(descriptor) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Worker side: map a shared block as a read-only numpy view.

    Attaching must not register the block with the resource tracker: the
    parent owns create/unlink, and an extra worker-side registration
    either double-unlinks (spawn) or unbalances the fork-shared tracker.
    Python < 3.13 registers unconditionally on attach, so registration is
    suppressed for the duration of the constructor.
    """
    from multiprocessing import resource_tracker

    name, shape, dtype = descriptor
    original_register = resource_tracker.register
    # Monkeypatching the tracker is worker-local by design (see docstring):
    # the fork copy diverges from the parent on purpose, and the finally
    # restores it before any task code can observe the patch.
    resource_tracker.register = _noop_register  # lint: disable=fork-unsafe-worker-reachable
    try:
        block = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register  # lint: disable=fork-unsafe-worker-reachable
    view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf)
    view.setflags(write=False)
    return view, block


def _noop_register(name, rtype) -> None:
    return None


def _detach(handles: list[shared_memory.SharedMemory]) -> None:
    for block in handles:
        block.close()


# ------------------------------------------------------------------ #
# worker task bodies (module-level: picklable under spawn and fork)
# ------------------------------------------------------------------ #
def _beat(task: str, event: str) -> None:
    """Worker side: post a liveness signal to the parent's watchdog."""
    queue = _HEARTBEATS
    if queue is None:
        return
    try:
        queue.put((os.getpid(), task, event))
    except (OSError, ValueError):
        pass  # a dead channel must never fail the task itself


def _maybe_test_hang() -> None:
    """Test-only hook: REPRO_TEST_HANG_MORSEL wedges the task forever.

    Exercises the watchdog end to end (deadline → cancel → pool recycle
    → serial fallback). Lives only in worker task bodies, so the serial
    path that completes the query is unaffected.
    """
    if os.environ.get("REPRO_TEST_HANG_MORSEL"):
        while True:
            time.sleep(0.25)


def _filter_task(payload):
    descriptors, predicate, start, stop, wire = payload
    _beat("filter", "start")
    _maybe_test_hang()
    recorder = _worker.TaskRecorder(wire)
    with recorder.span("parallel.filter_morsel", start=start, stop=stop) as sp:
        handles = []
        context = {}
        for ref, descriptor in descriptors.items():
            view, block = _attach(descriptor)
            handles.append(block)
            context[ref] = view[start:stop]
            del view
        mask = predicate.evaluate(context)
        positions = np.flatnonzero(mask).astype(np.int64)
        positions += start
        del mask, context
        _detach(handles)
        sp.count("rows_in", stop - start)
        sp.count("rows_out", len(positions))
    recorder.add("parallel.worker.morsels")
    recorder.add("parallel.worker.rows", stop - start)
    _beat("filter", "done")
    return positions, recorder.export()


def _probe_task(payload):
    from . import kernels

    descriptors, start, stop, wire = payload
    _beat("probe", "start")
    _maybe_test_hang()
    recorder = _worker.TaskRecorder(wire)
    with recorder.span("parallel.probe_morsel", start=start, stop=stop) as sp:
        handles = []
        views = {}
        for key, descriptor in descriptors.items():
            view, block = _attach(descriptor)
            handles.append(block)
            views[key] = view
            del view
        probe_idx, build_idx = kernels.probe_factorized(
            views["probe_codes"][start:stop],
            views["order"],
            views["code_starts"],
            views["code_counts"],
        )
        probe_idx = probe_idx + start
        build_idx = np.array(build_idx)
        del views
        _detach(handles)
        sp.count("rows_in", stop - start)
        sp.count("rows_out", len(probe_idx))
    recorder.add("parallel.worker.morsels")
    recorder.add("parallel.worker.rows", stop - start)
    _beat("probe", "done")
    return (probe_idx, build_idx), recorder.export()


def _group_task(payload):
    descriptors, n_codes, start, stop, wire = payload
    _beat("group", "start")
    _maybe_test_hang()
    recorder = _worker.TaskRecorder(wire)
    with recorder.span("parallel.group_morsel", start=start, stop=stop) as sp:
        handles = []
        view, block = _attach(descriptors["codes"])
        handles.append(block)
        codes = view[start:stop]
        counts = np.bincount(codes, minlength=n_codes)
        order = np.argsort(codes, kind="stable").astype(np.int64)
        order += start
        del codes, view
        _detach(handles)
        sp.count("rows_in", stop - start)
    recorder.add("parallel.worker.morsels")
    recorder.add("parallel.worker.rows", stop - start)
    _beat("group", "done")
    return (counts, order), recorder.export()


# ------------------------------------------------------------------ #
# dispatch entry points (return None -> caller runs the serial path)
# ------------------------------------------------------------------ #
def _drain_heartbeats() -> int:
    """Parent side: consume queued worker beats; how many were pending."""
    queue = _HEARTBEATS
    if queue is None:
        return 0
    drained = 0
    try:
        while not queue.empty():
            queue.get()
            drained += 1
    except (OSError, ValueError, EOFError):
        pass  # channel torn down mid-drain (pool recycle) — stop counting
    return drained


def _await_dispatch(pending, deadline: float, n_morsels: int):
    """Wait for a dispatch under the watchdog; results or None on hang.

    The deadline is measured from the *last worker signal* (any task
    start/done heartbeat), not from dispatch start: a busy pool making
    steady progress through many morsels never trips it, while a wedged
    worker goes silent and does. On timeout the pool is recycled (which
    cancels the in-flight dispatch) and the caller falls back serially.
    """
    if deadline <= 0.0:
        return pending.get()
    last_signal = perf_counter()
    while True:
        pending.wait(_WATCHDOG_POLL_S)
        if pending.ready():
            _drain_heartbeats()
            return pending.get()
        if _drain_heartbeats():
            last_signal = perf_counter()
        if perf_counter() - last_signal > deadline:
            _record_watchdog_timeout(deadline, n_morsels)
            shutdown()  # terminates workers -> cancels the dispatch
            return None


def _dispatch(task, payloads, n_rows: int):
    """Run payloads on the pool; None on any failure (serial fallback)."""
    workers = worker_count()
    pool = _get_pool(workers)
    if pool is None:
        return None
    started = perf_counter()
    try:
        pending = pool.map_async(task, payloads)
        raw = _await_dispatch(pending, task_timeout(), len(payloads))
    except Exception:
        _record_fallback("dispatch_error")
        shutdown()  # a crashed worker poisons the pool; rebuild lazily
        return None
    if raw is None:
        return None  # watchdog fired: already recorded, pool recycled
    results = [item for item, _record in raw]
    records = [record for _item, record in raw]
    _record_dispatch(len(payloads), n_rows, perf_counter() - started, records)
    return results


def _parallel_eligible(n_rows: int) -> bool:
    return worker_count() >= 2 and n_rows >= min_parallel_rows()


def maybe_parallel_filter(
    predicate, context: dict[str, np.ndarray]
) -> Optional[np.ndarray]:
    """Evaluate a predicate across morsels; matching positions, or None.

    Only attempted when every referenced array is shared-memory friendly
    (no object dtype); the executor guarantees this by rewriting string
    predicates into dictionary-code space first.
    """
    if not context:
        return None
    n_rows = len(next(iter(context.values())))
    if not _parallel_eligible(n_rows):
        return None
    if any(array.dtype == object for array in context.values()):
        _record_fallback("object_dtype")
        return None
    ranges = _morsel_ranges(n_rows, worker_count())
    if len(ranges) < 2:
        return None
    shm = _ShmArrays(context)
    try:
        # The active request context travels with every task envelope so
        # worker spans stitch under the originating query's trace id.
        wire = _context.current_wire()
        payloads = [
            (shm.descriptors, predicate, start, stop, wire)
            for start, stop in ranges
        ]
        results = _dispatch(_filter_task, payloads, n_rows)
    finally:
        shm.release()
    if results is None:
        return None
    return np.concatenate(results) if results else np.zeros(0, dtype=np.int64)


def maybe_parallel_probe(
    probe_codes: np.ndarray,
    order: np.ndarray,
    code_starts: np.ndarray,
    code_counts: np.ndarray,
) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """Morsel-parallel hash-join probe; ``(probe_idx, build_idx)`` or None.

    Morsels tile the probe side; each worker probes its slice against the
    full (shared) build index. Concatenating per-morsel outputs in morsel
    order reproduces the serial probe order exactly.
    """
    n_rows = len(probe_codes)
    if not _parallel_eligible(n_rows):
        return None
    ranges = _morsel_ranges(n_rows, worker_count())
    if len(ranges) < 2:
        return None
    shm = _ShmArrays(
        {
            "probe_codes": probe_codes,
            "order": order,
            "code_starts": code_starts,
            "code_counts": code_counts,
        }
    )
    try:
        wire = _context.current_wire()
        payloads = [
            (shm.descriptors, start, stop, wire) for start, stop in ranges
        ]
        results = _dispatch(_probe_task, payloads, n_rows)
    finally:
        shm.release()
    if results is None:
        return None
    probe_idx = np.concatenate([r[0] for r in results])
    build_idx = np.concatenate([r[1] for r in results])
    return probe_idx, build_idx


def maybe_parallel_group_by(
    codes: np.ndarray, n_codes: int
) -> Optional[list[np.ndarray]]:
    """Morsel-parallel grouping; list of position arrays or None.

    Each worker stable-argsorts its morsel's codes and counts per-code
    occupancy; the parent scatters every morsel's sorted run into the
    global group layout. Groups come out enumerated in ascending code
    order with ascending positions inside each group — identical to the
    serial ``argsort`` + ``split`` kernel.
    """
    n_rows = len(codes)
    if not _parallel_eligible(n_rows):
        return None
    # Dense per-morsel bincounts dominate when codes are much wider than
    # the input; the serial kernel's single argsort wins there.
    if n_codes > 4 * max(n_rows, 1):
        _record_fallback("wide_code_range")
        return None
    ranges = _morsel_ranges(n_rows, worker_count())
    if len(ranges) < 2:
        return None
    shm = _ShmArrays({"codes": np.ascontiguousarray(codes)})
    try:
        wire = _context.current_wire()
        payloads = [
            (shm.descriptors, n_codes, start, stop, wire)
            for start, stop in ranges
        ]
        results = _dispatch(_group_task, payloads, n_rows)
    finally:
        shm.release()
    if results is None:
        return None
    counts = np.stack([result[0] for result in results])  # (morsels, codes)
    totals = counts.sum(axis=0)
    code_start = np.concatenate(([0], np.cumsum(totals[:-1])))
    prior = np.cumsum(counts, axis=0) - counts  # rows before morsel m per code
    merged = np.empty(n_rows, dtype=np.int64)
    for m, (_, order) in enumerate(results):
        local = counts[m]
        present = np.flatnonzero(local)
        if len(present) == 0:
            continue
        sizes = local[present]
        run_starts = code_start[present] + prior[m, present]
        run_offsets = np.cumsum(sizes) - sizes
        within = np.arange(len(order), dtype=np.int64) - np.repeat(
            run_offsets, sizes
        )
        merged[np.repeat(run_starts, sizes) + within] = order
    boundaries = np.cumsum(totals[np.flatnonzero(totals)])[:-1]
    return np.split(merged, boundaries)
