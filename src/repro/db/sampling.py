"""Sampling primitives.

``variational_subsample`` is the stand-in for VerdictDB's variational
subsampling (paper Alg. 1 line 4): it reduces the output of the executed
query representatives to a tractable action-space seed while preserving
per-stratum representation — rare strata keep at least one member, and
inclusion probabilities are retained so downstream consumers (the Verdict
baseline) can rescale aggregate answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence

import numpy as np

from .table import Table


def uniform_sample(n_rows: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Positions of a uniform sample without replacement (clipped to n_rows)."""
    if n_rows <= 0 or size <= 0:
        return np.empty(0, dtype=np.int64)
    size = min(size, n_rows)
    return np.sort(rng.choice(n_rows, size=size, replace=False)).astype(np.int64)


def reservoir_sample(
    stream: Sequence[int], size: int, rng: np.random.Generator
) -> list[int]:
    """Classic reservoir sampling over an arbitrary stream of items."""
    reservoir: list[int] = []
    for i, item in enumerate(stream):
        if len(reservoir) < size:
            reservoir.append(item)
        else:
            j = int(rng.integers(0, i + 1))
            if j < size:
                reservoir[j] = item
    return reservoir


@dataclass
class SubsampleResult:
    """Outcome of a stratified subsample.

    ``positions`` index into the input; ``inclusion_probability[i]`` is the
    probability with which position ``positions[i]`` was kept — the
    Horvitz–Thompson weight ``1/p`` rescales aggregates computed on the
    sample back to the population.
    """

    positions: np.ndarray
    inclusion_probability: np.ndarray

    def __len__(self) -> int:
        return len(self.positions)


def variational_subsample(
    keys: Sequence[Hashable],
    target_size: int,
    rng: np.random.Generator,
    min_per_stratum: int = 1,
) -> SubsampleResult:
    """Stratified probabilistic subsampling.

    Parameters
    ----------
    keys:
        One stratum key per input position (e.g. which query representative
        produced the tuple, or a group-by key).
    target_size:
        Desired total sample size. Every stratum keeps at least
        ``min_per_stratum`` members (so the result can exceed the target
        when there are many tiny strata).
    rng:
        Source of randomness.
    """
    n = len(keys)
    if n == 0 or target_size <= 0:
        return SubsampleResult(
            positions=np.empty(0, dtype=np.int64),
            inclusion_probability=np.empty(0, dtype=np.float64),
        )
    if target_size >= n:
        return SubsampleResult(
            positions=np.arange(n, dtype=np.int64),
            inclusion_probability=np.ones(n, dtype=np.float64),
        )

    strata: dict[Hashable, list[int]] = {}
    for position, key in enumerate(keys):
        strata.setdefault(key, []).append(position)

    # Allocate the budget proportionally to sqrt(stratum size): small strata
    # are over-represented relative to their population share, which is the
    # behaviour the paper relies on (tuples from small query results matter
    # more, challenge C3).
    sizes = {key: len(positions) for key, positions in strata.items()}
    weights = {key: np.sqrt(size) for key, size in sizes.items()}
    total_weight = sum(weights.values())

    positions_out: list[int] = []
    probabilities: list[float] = []
    for key, members in strata.items():
        quota = max(
            min(min_per_stratum, sizes[key]),
            int(round(target_size * weights[key] / total_weight)),
        )
        quota = min(quota, sizes[key])
        member_array = np.asarray(members, dtype=np.int64)
        picked = rng.choice(member_array, size=quota, replace=False)
        probability = quota / sizes[key]
        positions_out.extend(int(p) for p in picked)
        probabilities.extend([probability] * quota)

    order = np.argsort(positions_out)
    return SubsampleResult(
        positions=np.asarray(positions_out, dtype=np.int64)[order],
        inclusion_probability=np.asarray(probabilities, dtype=np.float64)[order],
    )


def stratified_table_sample(
    table: Table,
    stratify_by: Optional[str],
    target_size: int,
    rng: np.random.Generator,
) -> Table:
    """Stratified (or uniform, if ``stratify_by`` is None) sample of a table."""
    if stratify_by is None:
        return table.take(uniform_sample(len(table), target_size, rng))
    keys = [str(v) for v in table.column(stratify_by)]
    result = variational_subsample(keys, target_size, rng)
    return table.take(result.positions)
