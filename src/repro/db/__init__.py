"""In-memory column-store relational engine.

This package is the substrate the paper ran on PostgreSQL: typed tables,
vectorized predicates, hash equi-joins, aggregation, a small SQL parser,
statistics, sampling primitives, and an LRU cache model.
"""

from .cache import LRUTupleCache
from .database import Database
from .executor import (
    AggregateResult,
    ExecutionError,
    ResultSet,
    TimedExecution,
    execute,
    execute_aggregate,
    explain,
    timed_execute,
)
from .expressions import (
    And,
    Between,
    Comparison,
    Expression,
    ExpressionError,
    InSet,
    IsNotNull,
    IsNull,
    Like,
    Not,
    Or,
    TrueExpr,
    conjoin,
    conjuncts,
)
from .query import (
    AggFunc,
    AggregateQuery,
    AggregateSpec,
    JoinCondition,
    Query,
    QueryError,
    SPJQuery,
)
from .sampling import (
    SubsampleResult,
    stratified_table_sample,
    uniform_sample,
    variational_subsample,
)
from .plan import PlanNode, QueryPlan, q_error
from .schema import INT_NULL, Column, ColumnType, ForeignKey, SchemaError, TableSchema
from .sql import SQLSyntaxError, split_explain, sql
from .statistics import (
    CategoricalStats,
    NumericStats,
    TableStats,
    compute_database_stats,
    compute_table_stats,
    estimate_ndv,
    estimate_predicate_selectivity,
    estimated_join_cardinality,
)
from .table import Table, table_from_rows

__all__ = [
    "AggFunc",
    "AggregateQuery",
    "AggregateResult",
    "AggregateSpec",
    "And",
    "Between",
    "CategoricalStats",
    "Column",
    "ColumnType",
    "Comparison",
    "Database",
    "ExecutionError",
    "Expression",
    "ExpressionError",
    "ForeignKey",
    "INT_NULL",
    "InSet",
    "IsNotNull",
    "IsNull",
    "JoinCondition",
    "LRUTupleCache",
    "Like",
    "Not",
    "NumericStats",
    "Or",
    "PlanNode",
    "Query",
    "QueryPlan",
    "QueryError",
    "ResultSet",
    "SPJQuery",
    "SQLSyntaxError",
    "SchemaError",
    "SubsampleResult",
    "Table",
    "TableSchema",
    "TableStats",
    "TimedExecution",
    "TrueExpr",
    "compute_database_stats",
    "compute_table_stats",
    "conjoin",
    "conjuncts",
    "estimate_ndv",
    "estimate_predicate_selectivity",
    "estimated_join_cardinality",
    "execute",
    "execute_aggregate",
    "explain",
    "q_error",
    "split_explain",
    "sql",
    "stratified_table_sample",
    "table_from_rows",
    "timed_execute",
    "uniform_sample",
    "variational_subsample",
]
