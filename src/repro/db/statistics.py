"""Per-table / per-column statistics.

Used by four consumers:

* the **workload generator** (paper §4.5, "Unknown Query Workloads"):
  means/stds of numeric columns and popularity-weighted categorical samples
  feed the query templates;
* the **QuickR baseline**, which keeps a catalog of per-table samples and
  statistics;
* the **skyline baseline**, which ranks categorical values by frequency;
* the **executor's join ordering**, which uses cheap NDV / row-count
  estimates (:func:`estimate_ndv`, :func:`estimated_join_cardinality`)
  to expand the join graph smallest-estimated-cardinality first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from .database import Database
from .table import Table


@dataclass
class NumericStats:
    """Summary statistics of a numeric column (NULLs excluded)."""

    count: int
    n_null: int
    mean: float
    std: float
    minimum: float
    maximum: float
    quantiles: dict[float, float] = field(default_factory=dict)

    @property
    def value_range(self) -> float:
        return self.maximum - self.minimum


@dataclass
class CategoricalStats:
    """Frequency table of a categorical column."""

    count: int
    n_null: int
    n_distinct: int
    frequencies: dict[str, int] = field(default_factory=dict)

    def top_values(self, n: int) -> list[str]:
        ranked = sorted(self.frequencies.items(), key=lambda kv: (-kv[1], kv[0]))
        return [value for value, _ in ranked[:n]]

    def sample_weighted(self, rng: np.random.Generator, n: int) -> list[str]:
        """Sample values proportionally to popularity (with replacement)."""
        values = list(self.frequencies)
        weights = np.asarray([self.frequencies[v] for v in values], dtype=np.float64)
        weights /= weights.sum()
        picks = rng.choice(len(values), size=n, p=weights)
        return [values[i] for i in picks]


@dataclass
class TableStats:
    """All column statistics of one table."""

    table_name: str
    n_rows: int
    numeric: dict[str, NumericStats] = field(default_factory=dict)
    categorical: dict[str, CategoricalStats] = field(default_factory=dict)


_DEFAULT_QUANTILES = (0.1, 0.25, 0.5, 0.75, 0.9)


def compute_table_stats(table: Table, max_distinct: int = 10_000) -> TableStats:
    """Scan a table once and summarize every column."""
    stats = TableStats(table_name=table.name, n_rows=len(table))
    for column in table.schema.columns:
        array = table.column(column.name)
        nulls = column.null_mask(array)
        n_null = int(nulls.sum())
        if column.ctype.is_numeric:
            values = np.asarray(array[~nulls], dtype=np.float64)
            if len(values) == 0:
                values = np.zeros(1)
            stats.numeric[column.name] = NumericStats(
                count=len(array) - n_null,
                n_null=n_null,
                mean=float(values.mean()),
                std=float(values.std()),
                minimum=float(values.min()),
                maximum=float(values.max()),
                quantiles={
                    q: float(np.quantile(values, q)) for q in _DEFAULT_QUANTILES
                },
            )
        else:
            frequencies: dict[str, int] = {}
            for value in array[~nulls]:
                key = str(value)
                frequencies[key] = frequencies.get(key, 0) + 1
                if len(frequencies) > max_distinct:
                    break
            stats.categorical[column.name] = CategoricalStats(
                count=len(array) - n_null,
                n_null=n_null,
                n_distinct=len(frequencies),
                frequencies=frequencies,
            )
    return stats


def compute_database_stats(db: Database) -> dict[str, TableStats]:
    """Statistics for every table in the database."""
    return {table.name: compute_table_stats(table) for table in db}


#: Above this many rows, NDV is estimated from a strided sample.
_NDV_SAMPLE_CAP = 8192


def estimate_ndv(array, sample_cap: int = _NDV_SAMPLE_CAP) -> int:
    """Cheap number-of-distinct-values estimate of one column.

    Exact (one ``np.unique`` pass) up to ``sample_cap`` rows; above that,
    a deterministic strided sample is scanned and the sample's distinct
    ratio is linearly extrapolated — a first-order estimate that is
    cheap, deterministic, and accurate enough to order equi-joins.
    """
    values = np.asarray(array)
    n = len(values)
    if n == 0:
        return 0
    if n > sample_cap:
        stride = -(-n // sample_cap)  # ceil
        sample = values[::stride]
    else:
        sample = values
    try:
        distinct = len(np.unique(sample))
    except TypeError:  # unsortable object mix
        distinct = len(set(sample.tolist()))
    if len(sample) == n:
        return distinct
    return max(distinct, int(distinct * n / len(sample)))


def estimated_join_cardinality(
    n_left: float, ndv_left: int, n_right: float, ndv_right: int
) -> float:
    """Classic equi-join size estimate: ``|L|·|R| / max(NDV(l), NDV(r))``."""
    return (n_left * n_right) / max(ndv_left, ndv_right, 1)


#: Above this many rows, predicate selectivity is estimated on a sample.
_SELECTIVITY_SAMPLE_CAP = 1024

#: Fallback per-conjunct selectivity when no input arrays are available
#: (e.g. estimating a residual multi-table filter before any join ran).
DEFAULT_CONJUNCT_SELECTIVITY = 1.0 / 3.0


def estimate_predicate_selectivity(
    predicate,
    columns: dict,
    sample_cap: int = _SELECTIVITY_SAMPLE_CAP,
) -> float:
    """Estimated fraction of rows a predicate keeps, from a strided sample.

    Evaluates the predicate on up to ``sample_cap`` evenly strided rows of
    the given column arrays — the planner's selectivity estimate for
    EXPLAIN's filter nodes. Deterministic, cheap (one vectorized evaluate
    on <= ``sample_cap`` rows), and clamped away from exactly zero so
    downstream cardinality estimates never collapse to nothing.
    """
    refs = [ref for ref in predicate.columns() if ref in columns]
    if not refs:
        return 1.0
    n = len(columns[refs[0]])
    if n == 0:
        return 1.0
    stride = max(1, -(-n // sample_cap))  # ceil(n / cap)
    sampled = {ref: array[::stride] for ref, array in columns.items()}
    mask = predicate.evaluate(sampled)
    kept = float(np.count_nonzero(mask))
    total = max(1, len(next(iter(sampled.values()))))
    return max(kept / total, 0.5 / n)


def column_selectivity(table: Table, column_name: str, value) -> float:
    """Fraction of rows of ``table`` where ``column = value``."""
    array = table.column(column_name)
    if len(array) == 0:
        return 0.0
    if array.dtype == object:
        hits = sum(1 for v in array if str(v) == str(value))
    else:
        hits = int(np.sum(array == value))
    return hits / len(array)
