"""Per-table / per-column statistics.

Used by four consumers:

* the **workload generator** (paper §4.5, "Unknown Query Workloads"):
  means/stds of numeric columns and popularity-weighted categorical samples
  feed the query templates;
* the **QuickR baseline**, which keeps a catalog of per-table samples and
  statistics;
* the **skyline baseline**, which ranks categorical values by frequency;
* the **executor's join ordering**, which uses cheap NDV / row-count
  estimates (:func:`estimate_ndv`, :func:`estimated_join_cardinality`)
  to expand the join graph smallest-estimated-cardinality first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .database import Database
from .table import Table


@dataclass
class NumericStats:
    """Summary statistics of a numeric column (NULLs excluded)."""

    count: int
    n_null: int
    mean: float
    std: float
    minimum: float
    maximum: float
    quantiles: dict[float, float] = field(default_factory=dict)

    @property
    def value_range(self) -> float:
        return self.maximum - self.minimum


@dataclass
class CategoricalStats:
    """Frequency table of a categorical column."""

    count: int
    n_null: int
    n_distinct: int
    frequencies: dict[str, int] = field(default_factory=dict)

    def top_values(self, n: int) -> list[str]:
        ranked = sorted(self.frequencies.items(), key=lambda kv: (-kv[1], kv[0]))
        return [value for value, _ in ranked[:n]]

    def sample_weighted(self, rng: np.random.Generator, n: int) -> list[str]:
        """Sample values proportionally to popularity (with replacement)."""
        values = list(self.frequencies)
        weights = np.asarray([self.frequencies[v] for v in values], dtype=np.float64)
        weights /= weights.sum()
        picks = rng.choice(len(values), size=n, p=weights)
        return [values[i] for i in picks]


@dataclass
class TableStats:
    """All column statistics of one table."""

    table_name: str
    n_rows: int
    numeric: dict[str, NumericStats] = field(default_factory=dict)
    categorical: dict[str, CategoricalStats] = field(default_factory=dict)


_DEFAULT_QUANTILES = (0.1, 0.25, 0.5, 0.75, 0.9)


def compute_table_stats(table: Table, max_distinct: int = 10_000) -> TableStats:
    """Scan a table once and summarize every column."""
    stats = TableStats(table_name=table.name, n_rows=len(table))
    for column in table.schema.columns:
        array = table.column(column.name)
        nulls = column.null_mask(array)
        n_null = int(nulls.sum())
        if column.ctype.is_numeric:
            values = np.asarray(array[~nulls], dtype=np.float64)
            if len(values) == 0:
                values = np.zeros(1)
            stats.numeric[column.name] = NumericStats(
                count=len(array) - n_null,
                n_null=n_null,
                mean=float(values.mean()),
                std=float(values.std()),
                minimum=float(values.min()),
                maximum=float(values.max()),
                quantiles={
                    q: float(np.quantile(values, q)) for q in _DEFAULT_QUANTILES
                },
            )
        else:
            frequencies: dict[str, int] = {}
            for value in array[~nulls]:
                key = str(value)
                frequencies[key] = frequencies.get(key, 0) + 1
                if len(frequencies) > max_distinct:
                    break
            stats.categorical[column.name] = CategoricalStats(
                count=len(array) - n_null,
                n_null=n_null,
                n_distinct=len(frequencies),
                frequencies=frequencies,
            )
    return stats


def compute_database_stats(db: Database) -> dict[str, TableStats]:
    """Statistics for every table in the database."""
    return {table.name: compute_table_stats(table) for table in db}


#: Above this many rows, NDV is estimated from a strided sample.
_NDV_SAMPLE_CAP = 8192


def estimate_ndv(array, sample_cap: int = _NDV_SAMPLE_CAP) -> int:
    """Cheap number-of-distinct-values estimate of one column.

    Exact (one ``np.unique`` pass) up to ``sample_cap`` rows; above that,
    a deterministic strided sample is scanned and the sample's distinct
    ratio is linearly extrapolated — a first-order estimate that is
    cheap, deterministic, and accurate enough to order equi-joins.
    """
    values = np.asarray(array)
    n = len(values)
    if n == 0:
        return 0
    if n > sample_cap:
        stride = -(-n // sample_cap)  # ceil
        sample = values[::stride]
    else:
        sample = values
    try:
        distinct = len(np.unique(sample))
    except TypeError:  # unsortable object mix
        distinct = len(set(sample.tolist()))
    if len(sample) == n:
        return distinct
    return max(distinct, int(distinct * n / len(sample)))


def estimated_join_cardinality(
    n_left: float, ndv_left: int, n_right: float, ndv_right: int
) -> float:
    """Classic equi-join size estimate: ``|L|·|R| / max(NDV(l), NDV(r))``."""
    return (n_left * n_right) / max(ndv_left, ndv_right, 1)


#: Above this many rows, predicate selectivity is estimated on a sample.
_SELECTIVITY_SAMPLE_CAP = 1024

#: Fallback per-conjunct selectivity when no input arrays are available
#: (e.g. estimating a residual multi-table filter before any join ran).
DEFAULT_CONJUNCT_SELECTIVITY = 1.0 / 3.0


def estimate_predicate_selectivity(
    predicate,
    columns: dict,
    sample_cap: int = _SELECTIVITY_SAMPLE_CAP,
) -> float:
    """Estimated fraction of rows a predicate keeps, from a strided sample.

    Evaluates the predicate on up to ``sample_cap`` evenly strided rows of
    the given column arrays — the planner's selectivity estimate for
    EXPLAIN's filter nodes. Deterministic, cheap (one vectorized evaluate
    on <= ``sample_cap`` rows), and clamped away from exactly zero so
    downstream cardinality estimates never collapse to nothing.
    """
    refs = [ref for ref in predicate.columns() if ref in columns]
    if not refs:
        return 1.0
    n = len(columns[refs[0]])
    if n == 0:
        return 1.0
    stride = max(1, -(-n // sample_cap))  # ceil(n / cap)
    sampled = {ref: array[::stride] for ref, array in columns.items()}
    mask = predicate.evaluate(sampled)
    kept = float(np.count_nonzero(mask))
    total = max(1, len(next(iter(sampled.values()))))
    return max(kept / total, 0.5 / n)


# --------------------------------------------------------------------- #
# zone maps (block-level min/max) for scan pruning
# --------------------------------------------------------------------- #

#: Rows per zone-map block. Small enough that selective predicates skip
#: most of a large table, large enough that per-block overhead is noise.
DEFAULT_BLOCK_ROWS = 4096


@dataclass
class ColumnZoneMap:
    """Per-block min/max (and NaN presence) of one physical column.

    For dictionary-encoded string columns the statistics are over the
    *codes* — valid because the dictionary is sorted, so code order equals
    value order and code-space predicates compare directly. For integer
    columns they are over decoded ``int64`` values *including* the
    ``INT_NULL`` sentinel, exactly matching the engine's comparison
    semantics (the sentinel compares as a very small ordinary value).
    """

    mins: np.ndarray
    maxs: np.ndarray
    has_nan: Optional[np.ndarray] = None


@dataclass
class TableZoneMaps:
    """Zone maps of every column of one table, at a fixed block size."""

    block_rows: int
    n_rows: int
    n_blocks: int
    columns: dict[str, ColumnZoneMap] = field(default_factory=dict)

    def block_bounds(self, block: int) -> tuple[int, int]:
        start = block * self.block_rows
        return start, min(start + self.block_rows, self.n_rows)


def _column_zone_map(values: np.ndarray, starts: np.ndarray) -> ColumnZoneMap:
    if np.issubdtype(values.dtype, np.floating):
        with np.errstate(invalid="ignore"):
            mins = np.fmin.reduceat(values, starts)
            maxs = np.fmax.reduceat(values, starts)
            nan_counts = np.add.reduceat(np.isnan(values).astype(np.int64), starts)
        return ColumnZoneMap(mins=mins, maxs=maxs, has_nan=nan_counts > 0)
    mins = np.minimum.reduceat(values, starts)
    maxs = np.maximum.reduceat(values, starts)
    return ColumnZoneMap(mins=mins, maxs=maxs)


def build_zone_maps(table: Table, block_rows: int = DEFAULT_BLOCK_ROWS) -> TableZoneMaps:
    """Build per-block min/max statistics for every column of a table.

    One ``reduceat`` pass per column; string columns are profiled in code
    space (see :class:`ColumnZoneMap`), numeric columns in value space.
    """
    n_rows = len(table)
    n_blocks = -(-n_rows // block_rows) if n_rows else 0
    maps = TableZoneMaps(block_rows=block_rows, n_rows=n_rows, n_blocks=n_blocks)
    if n_blocks == 0:
        return maps
    starts = np.arange(n_blocks, dtype=np.int64) * block_rows
    for column in table.schema.columns:
        if column.ctype.name == "STR":
            encoding = table.encoding(column.name)
            if encoding is None:
                continue  # plain object column: no cheap block stats
            values = encoding.codes
        else:
            values = table.column(column.name)
        maps.columns[column.name] = _column_zone_map(values, starts)
    return maps


def _atom_block_mask(node, zone: ColumnZoneMap) -> Optional[np.ndarray]:
    """Blocks that *may* contain a matching row for one atom, else None.

    Strictly conservative: a True entry means "cannot rule out", a False
    entry means "provably no row in this block satisfies the atom".
    """
    from . import expressions as E

    mins, maxs = zone.mins, zone.maxs
    with np.errstate(invalid="ignore"):
        if isinstance(node, E.Comparison):
            value = node.value
            if isinstance(value, str):
                return None  # string atom against a non-code zone map
            if node.op == "=":
                return (mins <= value) & (maxs >= value)
            if node.op == "!=":
                keep = ~((mins == value) & (maxs == value))
                if zone.has_nan is not None:
                    keep |= zone.has_nan  # NaN != v is True
                return keep
            if node.op == "<":
                return mins < value
            if node.op == "<=":
                return mins <= value
            if node.op == ">":
                return maxs > value
            if node.op == ">=":
                return maxs >= value
            return None
        if isinstance(node, E.Between):
            if isinstance(node.low, str) or isinstance(node.high, str):
                return None
            return (maxs >= node.low) & (mins <= node.high)
        if isinstance(node, E.InSet):
            if any(isinstance(v, str) for v in node.values):
                return None
            lo = min(node.values)
            hi = max(node.values)
            return (maxs >= lo) & (mins <= hi)
        if isinstance(node, E.IsNull):
            if zone.has_nan is not None:
                return zone.has_nan.copy()
            if np.issubdtype(mins.dtype, np.integer):
                from .schema import INT_NULL

                return mins == INT_NULL
            return None
        if isinstance(node, E.IsNotNull):
            if zone.has_nan is not None:
                return ~np.isnan(mins)  # all-NaN blocks have fmin == NaN
            if np.issubdtype(mins.dtype, np.integer):
                from .schema import INT_NULL

                return maxs != INT_NULL
            return None
    return None


def zone_map_block_mask(
    predicate,
    column_maps: dict,
    n_blocks: int,
) -> np.ndarray:
    """Conservative keep-mask over scan blocks for a (rewritten) predicate.

    ``column_maps`` maps *qualified* column refs to :class:`ColumnZoneMap`
    objects in the same value space the predicate literals are in — i.e.
    code space for dictionary columns after
    :func:`repro.db.expressions.rewrite_for_codes`, raw value space
    otherwise. Unknown atoms, NOT, and unresolvable refs keep all blocks.
    """
    from . import expressions as E

    all_blocks = np.ones(n_blocks, dtype=bool)
    if isinstance(predicate, E.TrueExpr):
        return all_blocks
    if isinstance(predicate, E.FalseExpr):
        return np.zeros(n_blocks, dtype=bool)
    if isinstance(predicate, E.And):
        mask = all_blocks
        for operand in predicate.operands:
            mask = mask & zone_map_block_mask(operand, column_maps, n_blocks)
        return mask
    if isinstance(predicate, E.Or):
        mask = np.zeros(n_blocks, dtype=bool)
        for operand in predicate.operands:
            mask = mask | zone_map_block_mask(operand, column_maps, n_blocks)
        return mask
    if isinstance(
        predicate, (E.Comparison, E.Between, E.InSet, E.IsNull, E.IsNotNull)
    ):
        refs = list(column_maps)
        resolved = E._resolve_ref(predicate.column, refs)
        if resolved is None:
            return all_blocks
        zone = column_maps[resolved]
        atom_mask = _atom_block_mask(predicate, zone)
        return all_blocks if atom_mask is None else np.asarray(atom_mask, dtype=bool)
    # NOT, LIKE (only reaches here un-rewritten), unknown nodes: no pruning.
    return all_blocks


def zone_map_selectivity_cap(
    block_mask: np.ndarray, zmaps: TableZoneMaps
) -> float:
    """Upper bound on predicate selectivity implied by pruned blocks.

    If only ``k`` of ``n`` blocks can contain matches, selectivity is at
    most (rows in kept blocks) / n_rows — used to clamp the planner's
    sampled estimate.
    """
    if zmaps.n_rows == 0 or zmaps.n_blocks == 0:
        return 1.0
    kept_rows = 0
    for block in np.flatnonzero(block_mask):
        start, stop = zmaps.block_bounds(int(block))
        kept_rows += stop - start
    return kept_rows / zmaps.n_rows


def column_selectivity(table: Table, column_name: str, value) -> float:
    """Fraction of rows of ``table`` where ``column = value``."""
    array = table.column(column_name)
    if len(array) == 0:
        return 0.0
    if array.dtype == object:
        hits = sum(1 for v in array if str(v) == str(value))
    else:
        hits = int(np.sum(array == value))
    return hits / len(array)
