"""Vectorized execution kernels shared by the relational executor.

The executor's three inner loops — hash-join bucket building/probing,
stable ``DISTINCT``, and hash-aggregation grouping — all reduce to one
primitive: *multi-column key factorization*. :func:`factorize_keys`
encodes a tuple of key columns into bounded dense ``int64`` codes (equal
row tuples ⇔ equal codes), after which joins become a stable argsort +
``bincount``-indexed bucket lookup, distinct becomes a
first-occurrence scan over sorted codes, and grouping becomes a stable
argsort + split. Integer key columns take a sort-free min/max offset
path; bounded code ranges let every downstream step use ``bincount``
instead of hashing or ``searchsorted``.

Every kernel reproduces the row ordering of the original per-row
implementations exactly:

* joins emit matches in probe-row order, ascending build position within
  a key group (the dict-of-buckets order);
* distinct keeps the first occurrence of each key, in input order;
* group positions are ascending within each group.

Float ``NaN`` keys follow Python hashing semantics of the old per-row
code — ``NaN`` never equals anything, including itself — so ``NaN`` rows
never join, are always distinct, and each form their own group.

The pre-vectorization per-row implementations are retained below as
``reference_*`` functions. They are the ground truth for the
differential tests (``tests/test_kernels.py``,
``tests/test_executor_reference.py``) and the baseline side of
``benchmarks/bench_kernels.py``. :func:`use_reference_kernels` forces the
executor through them, which lets the tests assert byte-identical
results end to end.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from ..contracts import dtype_contract, shape_contract
from ..obs.clock import perf_counter
from ..obs import metrics as _metrics
from ..obs.runtime import STATE as _OBS

_FORCE_REFERENCE = False


def _timed(metric: str, size: Optional[Callable] = None):
    """Record a latency histogram (and optional output-size counter) per
    call — one flag check and zero allocation when observability is off.

    The timing wraps whichever implementation actually runs, so inside
    :func:`use_reference_kernels` the reference path is what gets timed.
    """

    def wrap(fn):
        @functools.wraps(fn)
        def inner(*args):
            if not _OBS.enabled:
                return fn(*args)
            start = perf_counter()
            out = fn(*args)
            registry = _metrics.registry()
            registry.observe(metric + ".seconds", perf_counter() - start)
            registry.add(metric + ".calls")
            if size is not None:
                registry.add(metric + ".rows", size(out))
            return out

        return inner

    return wrap


@contextmanager
def use_reference_kernels() -> Iterator[None]:
    """Route all kernel entry points through the per-row reference
    implementations (for differential testing and benchmarking)."""
    global _FORCE_REFERENCE
    previous = _FORCE_REFERENCE
    _FORCE_REFERENCE = True
    try:
        yield
    finally:
        _FORCE_REFERENCE = previous


# ------------------------------------------------------------------ #
# key factorization
# ------------------------------------------------------------------ #
def _code_limit(n: int) -> int:
    """Largest code range we allow before re-densifying.

    Bounded ranges keep the ``bincount`` arrays used by the join kernel
    small; 8 codes per row (min 64k) is cheap in memory and avoids the
    sort that densification costs.
    """
    return max(1 << 16, 8 * n)


def _encode_column(values: np.ndarray) -> tuple[np.ndarray, int, np.ndarray | None]:
    """Encode one key column as bounded non-negative codes.

    Returns ``(codes, n_codes, nan_mask)`` where ``nan_mask`` marks float
    ``NaN`` entries (``None`` when the dtype cannot hold NaN). NaN rows
    receive a placeholder code here; :func:`factorize_keys` reassigns
    them unique never-matching codes at the end.
    """
    values = np.asarray(values)
    n = len(values)
    if n == 0:
        return np.zeros(0, dtype=np.int64), 1, None

    if values.dtype == object:
        # First-occurrence interning uses exactly Python's ==/hash like
        # the old per-row tuples did, and beats sorting object arrays.
        # The C-level map() assigns the running position as the default,
        # so repeated values leave holes: n bounds the code range.
        table: dict = {}
        codes = np.fromiter(
            map(table.setdefault, values, _counter()), dtype=np.int64, count=n
        )
        return codes, n, None

    if values.dtype == np.bool_:
        return values.astype(np.int64), 2, None

    nan_mask: np.ndarray | None = None
    if np.issubdtype(values.dtype, np.floating):
        isnan = np.isnan(values)
        if isnan.any():
            nan_mask = isnan
    elif np.issubdtype(values.dtype, np.integer):
        # Sort-free path: offset into the value span when it is dense
        # enough (the common case for id columns).
        vmin = int(values.min())
        vmax = int(values.max())
        span = vmax - vmin + 1
        if span <= _code_limit(n):
            return values.astype(np.int64) - vmin, span, None

    _, inverse = np.unique(values, return_inverse=True)
    codes = inverse.astype(np.int64, copy=False).reshape(-1)
    return codes, int(codes.max()) + 1, nan_mask


def _counter() -> Iterator[int]:
    i = 0
    while True:
        yield i
        i += 1


def _redensify(codes: np.ndarray) -> tuple[np.ndarray, int]:
    _, inverse = np.unique(codes, return_inverse=True)
    codes = inverse.astype(np.int64, copy=False).reshape(-1)
    return codes, (int(codes.max()) + 1 if len(codes) else 1)


@_timed("kernel.factorize_keys", size=lambda out: len(out[0]))
@shape_contract(arrays=[("n",)], returns=(("n",), None))
@dtype_contract(returns=("i", None))
def factorize_keys(arrays: Sequence[np.ndarray]) -> tuple[np.ndarray, int]:
    """Encode a tuple of equal-length key columns into bounded codes.

    Returns ``(codes, n_codes)`` with ``codes`` in ``[0, n_codes)`` and
    ``n_codes <= max(2**16, 8 * n_rows) + n_nan_rows``. Rows with equal
    key tuples get equal codes; rows containing a float ``NaN`` get
    unique codes (NaN != NaN, matching per-row hashing).
    """
    arrays = [np.asarray(a) for a in arrays]
    if not arrays:
        return np.zeros(0, dtype=np.int64), 1
    n = len(arrays[0])
    limit = _code_limit(n)
    codes = np.zeros(n, dtype=np.int64)
    radix = 1
    invalid: np.ndarray | None = None
    for array in arrays:
        col_codes, col_n, nan_mask = _encode_column(array)
        if radix * col_n > limit:
            codes, radix = _redensify(codes)
        if radix * col_n > limit:  # still too wide: combine then densify
            codes = codes * col_n + col_codes
            codes, radix = _redensify(codes)
        else:
            codes = codes * col_n + col_codes
            radix *= col_n
        if nan_mask is not None:
            invalid = nan_mask if invalid is None else (invalid | nan_mask)
    if invalid is not None:
        n_invalid = int(invalid.sum())
        codes[invalid] = radix + np.arange(n_invalid, dtype=np.int64)
        radix += n_invalid
    return codes, radix


def factorize_key_pair(
    left_arrays: Sequence[np.ndarray], right_arrays: Sequence[np.ndarray]
) -> tuple[np.ndarray, np.ndarray, int]:
    """Jointly factorize two sides' key columns into comparable codes."""
    if len(left_arrays) != len(right_arrays):
        raise ValueError("key column counts differ between sides")
    n_left = len(left_arrays[0]) if left_arrays else 0
    merged = [
        np.concatenate([np.asarray(l), np.asarray(r)])
        for l, r in zip(left_arrays, right_arrays)
    ]
    codes, n_codes = factorize_keys(merged)
    return codes[:n_left], codes[n_left:], n_codes


# ------------------------------------------------------------------ #
# dictionary alignment (encoded string join keys)
# ------------------------------------------------------------------ #
def merge_dictionaries(
    left_dict: np.ndarray, right_dict: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Align two sorted dictionaries into one shared code space.

    Returns ``(merged, left_map, right_map)``: ``merged`` is the sorted
    union of both dictionaries, and ``left_map[c]`` / ``right_map[c]``
    translate each side's codes into merged codes (so
    ``left_map[left_codes]`` and ``right_map[right_codes]`` are directly
    comparable). When both sides share the same dictionary object the
    translation is the identity and no merge is performed — the common
    case for self-joins and subsets of one base table, whose
    :meth:`~repro.db.table.Table.take` shares dictionaries.
    """
    if left_dict is right_dict:
        identity = np.arange(len(left_dict), dtype=np.int64)
        return left_dict, identity, identity
    merged = np.unique(np.concatenate([left_dict, right_dict]))
    left_map = np.searchsorted(merged, left_dict).astype(np.int64)
    right_map = np.searchsorted(merged, right_dict).astype(np.int64)
    return merged, left_map, right_map


# ------------------------------------------------------------------ #
# join
# ------------------------------------------------------------------ #
def build_join_index(
    build_codes: np.ndarray, n_codes: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build-side hash-join state from factorized codes.

    Bucket layout: build rows stably sorted by code; per-code offsets
    come from ``bincount``, so probing is direct indexing (no hashing,
    no binary search). Stable argsort keeps build rows ascending within
    a bucket. Returns ``(order, code_starts, code_counts)``.
    """
    code_counts = np.bincount(build_codes, minlength=n_codes)
    code_starts = np.concatenate(([0], np.cumsum(code_counts[:-1])))
    order = np.argsort(build_codes, kind="stable")
    return order, code_starts, code_counts


def probe_factorized(
    probe_codes: np.ndarray,
    order: np.ndarray,
    code_starts: np.ndarray,
    code_counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Probe a prebuilt join index with factorized codes.

    Pure function of its inputs and independent across probe rows, which
    is what makes the morsel-parallel probe in
    :mod:`repro.db.parallel` exact: each morsel probes its slice and the
    concatenation in morsel order reproduces the serial output.
    """
    counts = code_counts[probe_codes]
    total = int(counts.sum())
    probe_idx = np.repeat(np.arange(len(probe_codes), dtype=np.int64), counts)
    if total == 0:
        return probe_idx, np.zeros(0, dtype=np.int64)
    match_starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(match_starts, counts)
    build_idx = order[np.repeat(code_starts[probe_codes], counts) + within]
    return probe_idx, build_idx.astype(np.int64, copy=False)


@_timed("kernel.join_positions", size=lambda out: len(out[0]))
@shape_contract(
    build_keys=[("b",)], probe_keys=[("p",)], returns=(("m",), ("m",))
)
@dtype_contract(returns=("i", "i"))
def join_positions(
    build_keys: Sequence[np.ndarray], probe_keys: Sequence[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Inner equi-join match positions, in bucket-dict emission order.

    Returns ``(probe_idx, build_idx)``: one entry per match, ordered by
    probe row, then ascending build row within each key group — exactly
    the order the per-row ``buckets.setdefault(...)`` implementation
    emits. Large probe sides are split into morsels across the worker
    pool when one is configured (see :mod:`repro.db.parallel`).
    """
    if _FORCE_REFERENCE:
        return reference_join_positions(build_keys, probe_keys)
    build_codes, probe_codes, n_codes = factorize_key_pair(build_keys, probe_keys)
    order, code_starts, code_counts = build_join_index(build_codes, n_codes)

    from . import parallel as _parallel

    result = _parallel.maybe_parallel_probe(
        probe_codes, order, code_starts, code_counts
    )
    if result is not None:
        return result
    return probe_factorized(probe_codes, order, code_starts, code_counts)


def reference_join_positions(
    build_keys: Sequence[np.ndarray], probe_keys: Sequence[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Pre-vectorization per-row bucket join (ground truth / baseline)."""
    n_build = len(build_keys[0]) if build_keys else 0
    n_probe = len(probe_keys[0]) if probe_keys else 0
    n_cols = len(build_keys)
    buckets: dict[tuple, list[int]] = {}
    for i in range(n_build):
        key = tuple(build_keys[j][i] for j in range(n_cols))
        buckets.setdefault(key, []).append(i)
    probe_positions: list[int] = []
    build_positions: list[int] = []
    for i in range(n_probe):
        key = tuple(probe_keys[j][i] for j in range(n_cols))
        for b in buckets.get(key, ()):
            probe_positions.append(i)
            build_positions.append(b)
    return (
        np.asarray(probe_positions, dtype=np.int64),
        np.asarray(build_positions, dtype=np.int64),
    )


# ------------------------------------------------------------------ #
# distinct
# ------------------------------------------------------------------ #
@_timed("kernel.distinct_positions", size=len)
@shape_contract(arrays=[("n",)], returns=("d",))
@dtype_contract(returns="i")
def distinct_positions(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Stable distinct: positions of first occurrences, in input order."""
    if _FORCE_REFERENCE:
        return reference_distinct_positions(arrays)
    codes, _ = factorize_keys(arrays)
    if len(codes) == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    is_first = np.empty(len(codes), dtype=bool)
    is_first[0] = True
    np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=is_first[1:])
    return np.sort(order[is_first])


def reference_distinct_positions(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Pre-vectorization per-row distinct (ground truth / baseline)."""
    n = len(arrays[0]) if arrays else 0
    seen: set[tuple] = set()
    keep: list[int] = []
    for i in range(n):
        key = tuple(arr[i] for arr in arrays)
        if key not in seen:
            seen.add(key)
            keep.append(i)
    return np.asarray(keep, dtype=np.int64)


# ------------------------------------------------------------------ #
# group-by
# ------------------------------------------------------------------ #
@_timed("kernel.group_by_positions", size=len)
@shape_contract(arrays=[("n",)], returns=[(None,)])
@dtype_contract(returns=["i"])
def group_by_positions(arrays: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Group rows by key tuple; each group's positions are ascending.

    Returns one position array per distinct key. Group *enumeration*
    order is unspecified (the aggregate executor re-sorts groups by
    their key's string form); positions within a group are ascending,
    so ``group[0]`` is the first occurrence.
    """
    if _FORCE_REFERENCE:
        return reference_group_by_positions(arrays)
    n = len(arrays[0]) if arrays else 0
    if n == 0:
        return []
    codes, n_codes = factorize_keys(arrays)

    from . import parallel as _parallel

    result = _parallel.maybe_parallel_group_by(codes, n_codes)
    if result is not None:
        return result
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
    return np.split(order, boundaries)


def reference_group_by_positions(arrays: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Pre-vectorization per-row grouping (ground truth / baseline)."""
    n = len(arrays[0]) if arrays else 0
    groups: dict[tuple, list[int]] = {}
    for i in range(n):
        key = tuple(arr[i] for arr in arrays)
        groups.setdefault(key, []).append(i)
    return [np.asarray(positions, dtype=np.int64) for positions in groups.values()]
