"""Reinforcement-learning substrate: numpy MLPs, PPO, multi-actor rollouts.

Replaces the paper's PyTorch + Ray stack (see DESIGN.md §2). Everything is
deterministic given explicit ``numpy.random.Generator`` seeds.
"""

from .nn import MLP, Adam, masked_log_softmax, softmax
from .parallel import ActorSpec, Environment, MultiActorCollector, make_actor_specs
from .policy import ActorNetwork, CriticNetwork, PolicyDecision, entropy_of
from .ppo import PPOConfig, PPOUpdater, UpdateStats
from .rollout import (
    RolloutBatch,
    RolloutBuffer,
    Trajectory,
    discounted_returns,
    gae_advantages,
)

__all__ = [
    "ActorNetwork",
    "ActorSpec",
    "Adam",
    "CriticNetwork",
    "Environment",
    "MLP",
    "MultiActorCollector",
    "PPOConfig",
    "PPOUpdater",
    "PolicyDecision",
    "RolloutBatch",
    "RolloutBuffer",
    "Trajectory",
    "UpdateStats",
    "discounted_returns",
    "entropy_of",
    "gae_advantages",
    "make_actor_specs",
    "masked_log_softmax",
    "softmax",
]
