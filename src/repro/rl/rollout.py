"""Trajectory storage for rollout collection.

A :class:`Trajectory` is one episode; a :class:`RolloutBuffer` flattens a
batch of trajectories into arrays the PPO updater consumes, computing
returns and advantage estimates (TD / GAE per paper §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass
class Trajectory:
    """One episode: aligned per-step records."""

    states: list[np.ndarray] = field(default_factory=list)
    actions: list[int] = field(default_factory=list)
    rewards: list[float] = field(default_factory=list)
    log_probs: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    masks: list[np.ndarray] = field(default_factory=list)

    def append(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        log_prob: float,
        value: float,
        mask: np.ndarray,
    ) -> None:
        self.states.append(state)
        self.actions.append(action)
        self.rewards.append(reward)
        self.log_probs.append(log_prob)
        self.values.append(value)
        self.masks.append(mask)

    def __len__(self) -> int:
        return len(self.actions)

    @property
    def total_reward(self) -> float:
        return float(sum(self.rewards))


def discounted_returns(rewards: Sequence[float], gamma: float) -> np.ndarray:
    """Reward-to-go: ``G_t = r_t + gamma * G_{t+1}``."""
    returns = np.zeros(len(rewards))
    running = 0.0
    for t in reversed(range(len(rewards))):
        running = rewards[t] + gamma * running
        returns[t] = running
    return returns


def gae_advantages(
    rewards: Sequence[float],
    values: Sequence[float],
    gamma: float,
    lam: float,
) -> np.ndarray:
    """Generalized Advantage Estimation over one episode.

    The terminal state value is taken as 0 (episodes here always end on a
    terminal condition — the approximation set reached ``k`` tuples).
    """
    n = len(rewards)
    advantages = np.zeros(n)
    next_value = 0.0
    running = 0.0
    for t in reversed(range(n)):
        delta = rewards[t] + gamma * next_value - values[t]
        running = delta + gamma * lam * running
        advantages[t] = running
        next_value = values[t]
    return advantages


@dataclass
class RolloutBatch:
    """Flattened, advantage-annotated batch ready for a PPO update."""

    states: np.ndarray        # (n, state_dim)
    actions: np.ndarray       # (n,)
    old_log_probs: np.ndarray # (n,)
    returns: np.ndarray       # (n,)
    advantages: np.ndarray    # (n,)
    masks: np.ndarray         # (n, n_actions) bool

    def __len__(self) -> int:
        return len(self.actions)


class RolloutBuffer:
    """Accumulates trajectories and produces normalized batches."""

    def __init__(self, gamma: float = 0.99, lam: float = 0.95) -> None:
        self.gamma = gamma
        self.lam = lam
        self._trajectories: list[Trajectory] = []

    def add(self, trajectory: Trajectory) -> None:
        if len(trajectory) == 0:
            raise ValueError("cannot add an empty trajectory")
        self._trajectories.append(trajectory)

    def __len__(self) -> int:
        return sum(len(t) for t in self._trajectories)

    @property
    def n_trajectories(self) -> int:
        return len(self._trajectories)

    @property
    def mean_episode_reward(self) -> float:
        if not self._trajectories:
            return 0.0
        return float(np.mean([t.total_reward for t in self._trajectories]))

    def build(
        self, use_critic: bool = True, normalize_advantages: bool = True
    ) -> RolloutBatch:
        """Flatten all stored trajectories into one batch.

        With ``use_critic=False`` (the REINFORCE ablation, paper Fig. 3
        "-ac") the advantage is the raw return; otherwise GAE against the
        recorded critic values.
        """
        if not self._trajectories:
            raise ValueError("rollout buffer is empty")
        states, actions, log_probs, returns, advantages, masks = [], [], [], [], [], []
        for trajectory in self._trajectories:
            episode_returns = discounted_returns(trajectory.rewards, self.gamma)
            if use_critic:
                episode_adv = gae_advantages(
                    trajectory.rewards, trajectory.values, self.gamma, self.lam
                )
            else:
                episode_adv = episode_returns.copy()
            states.extend(trajectory.states)
            actions.extend(trajectory.actions)
            log_probs.extend(trajectory.log_probs)
            returns.extend(episode_returns)
            advantages.extend(episode_adv)
            masks.extend(trajectory.masks)

        advantage_array = np.asarray(advantages, dtype=np.float64)
        if normalize_advantages and len(advantage_array) > 1:
            std = advantage_array.std()
            if std > 1e-8:
                advantage_array = (advantage_array - advantage_array.mean()) / std

        return RolloutBatch(
            states=np.asarray(states, dtype=np.float64),
            actions=np.asarray(actions, dtype=np.int64),
            old_log_probs=np.asarray(log_probs, dtype=np.float64),
            returns=np.asarray(returns, dtype=np.float64),
            advantages=advantage_array,
            masks=np.asarray(masks, dtype=bool),
        )

    def clear(self) -> None:
        self._trajectories.clear()
