"""Multi-actor rollout collection.

The paper trains "32 actor and critic networks, asynchronously" with
distinct exploration policies per actor (§5.1). Asynchrony there buys
wall-clock speed on a GPU server; the algorithmically relevant part —
*multiple actors exploring with different policies between updates* — is
reproduced here synchronously: each logical actor runs episodes against
its own environment instance with its own sampling temperature and RNG
stream, and all trajectories feed one shared update.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .policy import ActorNetwork, CriticNetwork
from .rollout import RolloutBuffer, Trajectory


class Environment(abc.ABC):
    """Minimal episodic environment contract (gym-like, with masks)."""

    @abc.abstractmethod
    def reset(self) -> tuple[np.ndarray, np.ndarray]:
        """Start an episode; returns ``(state, valid-action mask)``."""

    @abc.abstractmethod
    def step(self, action: int) -> tuple[np.ndarray, float, bool, np.ndarray]:
        """Apply an action; returns ``(state, reward, done, mask)``."""

    @property
    @abc.abstractmethod
    def n_actions(self) -> int:
        """Size of the (fixed) discrete action space."""


@dataclass
class ActorSpec:
    """One logical actor: exploration temperature + its RNG stream."""

    temperature: float
    rng: np.random.Generator


def make_actor_specs(
    n_actors: int,
    seed: int,
    temperature_low: float = 0.8,
    temperature_high: float = 1.6,
) -> list[ActorSpec]:
    """Evenly spaced exploration temperatures, one RNG stream per actor."""
    if n_actors < 1:
        raise ValueError(f"need at least one actor, got {n_actors}")
    if n_actors == 1:
        temperatures = [1.0]
    else:
        temperatures = list(
            np.linspace(temperature_low, temperature_high, n_actors)
        )
    seeds = np.random.SeedSequence(seed).spawn(n_actors)
    return [
        ActorSpec(temperature=float(t), rng=np.random.default_rng(s))
        for t, s in zip(temperatures, seeds)
    ]


class MultiActorCollector:
    """Collects trajectories from N parallel (logical) actors.

    Parameters
    ----------
    env_factory:
        Builds a fresh environment per actor (environments carry mutable
        episode state, so actors must not share one).
    actor / critic:
        The shared networks. The critic is optional (REINFORCE ablation).
    specs:
        Per-actor exploration settings from :func:`make_actor_specs`.
    max_episode_steps:
        Hard cap per episode (safety net over the environment's own
        terminal condition).
    """

    def __init__(
        self,
        env_factory: Callable[[], Environment],
        actor: ActorNetwork,
        critic: CriticNetwork | None,
        specs: Sequence[ActorSpec],
        max_episode_steps: int = 10_000,
    ) -> None:
        if not specs:
            raise ValueError("need at least one actor spec")
        self.environments = [env_factory() for _ in specs]
        self.actor = actor
        self.critic = critic
        self.specs = list(specs)
        self.max_episode_steps = max_episode_steps

    def collect(self, episodes_per_actor: int, buffer: RolloutBuffer) -> float:
        """Run episodes for every actor; returns the mean episode reward."""
        rewards: list[float] = []
        for env, spec in zip(self.environments, self.specs):
            for _ in range(episodes_per_actor):
                trajectory = self._run_episode(env, spec)
                if len(trajectory) > 0:
                    buffer.add(trajectory)
                    rewards.append(trajectory.total_reward)
        return float(np.mean(rewards)) if rewards else 0.0

    def _run_episode(self, env: Environment, spec: ActorSpec) -> Trajectory:
        trajectory = Trajectory()
        state, mask = env.reset()
        for _ in range(self.max_episode_steps):
            if not mask.any():
                break
            decision = self.actor.sample(state, mask, spec.rng, spec.temperature)
            value = (
                float(self.critic.value(state[None, :])[0])
                if self.critic is not None
                else 0.0
            )
            next_state, reward, done, next_mask = env.step(decision.action)
            trajectory.append(
                state=state,
                action=decision.action,
                reward=reward,
                log_prob=decision.log_prob,
                value=value,
                mask=mask,
            )
            state, mask = next_state, next_mask
            if done:
                break
        return trajectory
