"""Minimal neural-network layer stack with manual backprop, plus Adam.

The paper trains its actor-critic networks with PyTorch; this module is the
CPU/numpy substitute. It provides exactly what ASQP-RL needs: fully
connected MLPs ("a large input layer matching the action space's size,
followed by smaller fully-connected layers", paper §5.1) with tanh hidden
activations, a linear output head, and the Adam optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass
class ForwardCache:
    """Activations recorded during a forward pass, consumed by backward."""

    inputs: list[np.ndarray]       # input to each linear layer
    pre_activations: list[np.ndarray]


class MLP:
    """A fully connected network: tanh hidden layers, linear output.

    Parameters
    ----------
    layer_sizes:
        e.g. ``[n_actions, 128, 64, n_actions]`` for the actor or
        ``[n_actions, 128, 64, 1]`` for the critic.
    rng:
        Initialization randomness (Xavier/Glorot uniform).
    """

    def __init__(self, layer_sizes: Sequence[int], rng: np.random.Generator) -> None:
        if len(layer_sizes) < 2:
            raise ValueError(f"need at least input+output sizes, got {layer_sizes}")
        self.layer_sizes = list(layer_sizes)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights.append(rng.uniform(-bound, bound, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    @property
    def n_layers(self) -> int:
        return len(self.weights)

    # -------------------------------------------------------------- #
    def forward(self, x: np.ndarray) -> tuple[np.ndarray, ForwardCache]:
        """Batch forward pass; ``x`` is ``(batch, input_dim)``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        cache = ForwardCache(inputs=[], pre_activations=[])
        activation = x
        for i in range(self.n_layers):
            cache.inputs.append(activation)
            z = activation @ self.weights[i] + self.biases[i]
            cache.pre_activations.append(z)
            activation = z if i == self.n_layers - 1 else np.tanh(z)
        return activation, cache

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass without keeping the cache."""
        output, _ = self.forward(x)
        return output

    def backward(
        self, cache: ForwardCache, grad_output: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Backprop ``dLoss/dOutput`` to per-parameter gradients.

        Returns ``(weight_grads, bias_grads)`` aligned with
        ``self.weights`` / ``self.biases``, averaged over the batch is the
        caller's choice — gradients here are *sums* over the batch.
        """
        grad = np.atleast_2d(np.asarray(grad_output, dtype=np.float64))
        weight_grads: list[Optional[np.ndarray]] = [None] * self.n_layers
        bias_grads: list[Optional[np.ndarray]] = [None] * self.n_layers
        for i in reversed(range(self.n_layers)):
            if i != self.n_layers - 1:
                grad = grad * (1.0 - np.tanh(cache.pre_activations[i]) ** 2)
            weight_grads[i] = cache.inputs[i].T @ grad
            bias_grads[i] = grad.sum(axis=0)
            if i > 0:
                grad = grad @ self.weights[i].T
        return weight_grads, bias_grads  # type: ignore[return-value]

    # -------------------------------------------------------------- #
    def parameters(self) -> list[np.ndarray]:
        return self.weights + self.biases

    def copy_from(self, other: "MLP") -> None:
        """Copy parameters from another MLP of identical shape."""
        if other.layer_sizes != self.layer_sizes:
            raise ValueError(
                f"shape mismatch: {other.layer_sizes} vs {self.layer_sizes}"
            )
        for target, source in zip(self.parameters(), other.parameters()):
            target[...] = source

    def clone(self, rng: Optional[np.random.Generator] = None) -> "MLP":
        clone = MLP(self.layer_sizes, rng or np.random.default_rng(0))
        clone.copy_from(self)
        return clone


class Adam:
    """Adam optimizer over a fixed list of parameter arrays (updated in place)."""

    def __init__(
        self,
        parameters: Sequence[np.ndarray],
        learning_rate: float = 5e-5,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.parameters = list(parameters)
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m = [np.zeros_like(p) for p in self.parameters]
        self._v = [np.zeros_like(p) for p in self.parameters]
        self._t = 0

    def step(self, gradients: Sequence[np.ndarray]) -> None:
        """One descent step given gradients aligned with ``parameters``."""
        if len(gradients) != len(self.parameters):
            raise ValueError(
                f"{len(gradients)} gradients for {len(self.parameters)} parameters"
            )
        self._t += 1
        correction1 = 1.0 - self.beta1 ** self._t
        correction2 = 1.0 - self.beta2 ** self._t
        for param, grad, m, v in zip(self.parameters, gradients, self._m, self._v):
            m[...] = self.beta1 * m + (1.0 - self.beta1) * grad
            v[...] = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            m_hat = m / correction1
            v_hat = v / correction2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def masked_log_softmax(logits: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Log-probabilities with invalid actions forced to ``-inf``.

    ``mask`` is boolean, True = valid. Rows with no valid action raise.
    """
    logits = np.atleast_2d(logits)
    mask = np.atleast_2d(mask).astype(bool)
    if not mask.any(axis=1).all():
        raise ValueError("at least one row has no valid action")
    masked = np.where(mask, logits, -np.inf)
    shifted = masked - np.max(masked, axis=1, keepdims=True)
    exp = np.where(mask, np.exp(shifted), 0.0)
    log_norm = np.log(np.sum(exp, axis=1, keepdims=True))
    return np.where(mask, shifted - log_norm, -np.inf)
