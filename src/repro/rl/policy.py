"""Actor and critic networks over a masked discrete action space.

Mirrors the paper's architecture (§5.1): both networks take the multi-hot
state over the action space; the actor ends in a softmax over actions
(invalid actions masked to -inf, per the action-masking technique of
[Huang & Ontañón]), the critic in a single linear value output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .nn import MLP, masked_log_softmax, softmax

DEFAULT_HIDDEN = (128, 64)


@dataclass
class PolicyDecision:
    """One sampled action with its bookkeeping for PPO."""

    action: int
    log_prob: float
    probabilities: np.ndarray


class ActorNetwork:
    """Policy network π_θ(a|s) with action masking and a temperature knob.

    Temperature scales logits before the softmax; the parallel actor
    collector gives each actor a distinct temperature, implementing the
    paper's "different exploration policies are explicitly used in each
    actor-critic to maximize diversity".
    """

    def __init__(
        self,
        n_actions: int,
        rng: np.random.Generator,
        hidden: Sequence[int] = DEFAULT_HIDDEN,
        state_dim: Optional[int] = None,
    ) -> None:
        if n_actions < 1:
            raise ValueError(f"need at least one action, got {n_actions}")
        self.n_actions = n_actions
        self.state_dim = state_dim if state_dim is not None else n_actions
        self.net = MLP([self.state_dim, *hidden, n_actions], rng)

    # -------------------------------------------------------------- #
    def logits(self, states: np.ndarray) -> np.ndarray:
        return self.net.predict(states)

    def log_probs(
        self, states: np.ndarray, masks: np.ndarray, temperature: float = 1.0
    ) -> np.ndarray:
        logits = self.logits(states) / max(temperature, 1e-6)
        return masked_log_softmax(logits, masks)

    def sample(
        self,
        state: np.ndarray,
        mask: np.ndarray,
        rng: np.random.Generator,
        temperature: float = 1.0,
    ) -> PolicyDecision:
        """Sample one masked action from π(a|s)."""
        log_probs = self.log_probs(state[None, :], mask[None, :], temperature)[0]
        probabilities = np.exp(np.where(np.isfinite(log_probs), log_probs, -np.inf))
        probabilities = np.where(np.isfinite(log_probs), probabilities, 0.0)
        probabilities /= probabilities.sum()
        action = int(rng.choice(self.n_actions, p=probabilities))
        return PolicyDecision(
            action=action,
            log_prob=float(log_probs[action]),
            probabilities=probabilities,
        )

    def greedy(self, state: np.ndarray, mask: np.ndarray) -> int:
        """The highest-probability valid action (used at inference)."""
        log_probs = self.log_probs(state[None, :], mask[None, :])[0]
        return int(np.argmax(log_probs))

    # -------------------------------------------------------------- #
    def clone(self) -> "ActorNetwork":
        copy = ActorNetwork(
            self.n_actions,
            np.random.default_rng(0),
            hidden=self.net.layer_sizes[1:-1],
            state_dim=self.state_dim,
        )
        copy.net.copy_from(self.net)
        return copy


class CriticNetwork:
    """Value network V(s) with a single linear output."""

    def __init__(
        self,
        state_dim: int,
        rng: np.random.Generator,
        hidden: Sequence[int] = DEFAULT_HIDDEN,
    ) -> None:
        self.state_dim = state_dim
        self.net = MLP([state_dim, *hidden, 1], rng)

    def value(self, states: np.ndarray) -> np.ndarray:
        """V(s) for a batch of states, shape ``(batch,)``."""
        return self.net.predict(states)[:, 0]

    def clone(self) -> "CriticNetwork":
        copy = CriticNetwork(
            self.state_dim, np.random.default_rng(0), hidden=self.net.layer_sizes[1:-1]
        )
        copy.net.copy_from(self.net)
        return copy


def entropy_of(probabilities: np.ndarray) -> float:
    """Shannon entropy of a distribution (natural log, zero-safe)."""
    p = probabilities[probabilities > 0]
    return float(-np.sum(p * np.log(p)))
