"""Policy updates: PPO-clip, A2C, and REINFORCE variants.

The full agent is the paper's actor-critic PPO (§5.1): clipped surrogate
objective, entropy bonus for exploration, and a KL coefficient that
penalizes large policy moves. The two ablation variants of Fig. 3 are
selected by flags:

* ``use_clip=False``  → "-ppo": plain advantage actor-critic (no ratio,
  no clipping, no KL penalty).
* ``use_critic=False`` (together with ``use_clip=False``) → "-ppo -ac":
  REINFORCE with reward-to-go.

All gradients are derived analytically against the masked softmax — see
the inline notes — and applied with Adam.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..contracts import STATE as _STRICT
from ..contracts import assert_finite
from ..obs import metrics as _metrics
from .nn import Adam, masked_log_softmax
from .policy import ActorNetwork, CriticNetwork
from .rollout import RolloutBatch


@dataclass
class PPOConfig:
    """Hyper-parameters (paper defaults from §6.1)."""

    learning_rate: float = 5e-5
    clip_epsilon: float = 0.2
    entropy_coef: float = 0.001
    kl_coef: float = 0.2
    value_coef: float = 0.5
    update_epochs: int = 4
    minibatch_size: int = 64
    max_grad_norm: float = 5.0
    use_clip: bool = True
    use_critic: bool = True

    def variant_name(self) -> str:
        if not self.use_critic:
            return "reinforce"
        if not self.use_clip:
            return "a2c"
        return "ppo"


@dataclass
class UpdateStats:
    """Diagnostics from one update call.

    ``grad_norm`` is the largest *pre-clip* actor gradient norm seen in
    any minibatch (clipping caps what Adam sees at ``max_grad_norm``, so
    the raw norm is the one that reveals instability).
    ``explained_variance`` is the critic's classic
    ``1 − Var(returns − values) / Var(returns)`` on the whole batch —
    near 1 when the value function tracks returns, ≤ 0 when it is
    useless or actively wrong.
    """

    policy_loss: float = 0.0
    value_loss: float = 0.0
    entropy: float = 0.0
    kl_divergence: float = 0.0
    clip_fraction: float = 0.0
    explained_variance: float = 0.0
    grad_norm: float = 0.0
    n_samples: int = 0


def _clip_gradients(
    gradients: list[np.ndarray], max_norm: float
) -> tuple[list[np.ndarray], float]:
    """Global-norm clip; returns the clipped list and the pre-clip norm."""
    total = np.sqrt(sum(float(np.sum(g * g)) for g in gradients))
    if total > max_norm > 0:
        scale = max_norm / (total + 1e-12)
        return [g * scale for g in gradients], total
    return gradients, total


class PPOUpdater:
    """Updates an actor (and optionally a critic) from rollout batches."""

    def __init__(
        self,
        actor: ActorNetwork,
        critic: Optional[CriticNetwork],
        config: Optional[PPOConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.config = config or PPOConfig()
        if self.config.use_critic and critic is None:
            raise ValueError("use_critic=True requires a critic network")
        self.actor = actor
        self.critic = critic
        self.rng = rng or np.random.default_rng(0)
        self.actor_optimizer = Adam(
            actor.net.parameters(), learning_rate=self.config.learning_rate
        )
        self.critic_optimizer = (
            Adam(critic.net.parameters(), learning_rate=self.config.learning_rate * 10)
            if critic is not None
            else None
        )

    # -------------------------------------------------------------- #
    def update(self, batch: RolloutBatch) -> UpdateStats:
        """Run K epochs of minibatch updates on one rollout batch."""
        config = self.config
        n = len(batch)
        stats = UpdateStats(n_samples=n)
        if n == 0:
            return stats
        if _STRICT.enabled:
            assert_finite(
                "ppo.update",
                advantages=batch.advantages,
                returns=batch.returns,
                old_log_probs=batch.old_log_probs,
            )

        # Snapshot π_old for ratios and the KL penalty.
        old_actor = self.actor.clone()
        old_log_dist = old_actor.log_probs(batch.states, batch.masks)

        n_updates = 0
        for _epoch in range(config.update_epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, config.minibatch_size):
                idx = order[start : start + config.minibatch_size]
                mb_stats = self._minibatch_update(batch, idx, old_log_dist[idx])
                stats.policy_loss += mb_stats.policy_loss
                stats.value_loss += mb_stats.value_loss
                stats.entropy += mb_stats.entropy
                stats.kl_divergence += mb_stats.kl_divergence
                stats.clip_fraction += mb_stats.clip_fraction
                stats.grad_norm = max(stats.grad_norm, mb_stats.grad_norm)
                n_updates += 1

        if n_updates:
            stats.policy_loss /= n_updates
            stats.value_loss /= n_updates
            stats.entropy /= n_updates
            stats.kl_divergence /= n_updates
            stats.clip_fraction /= n_updates
        stats.explained_variance = self._explained_variance(batch)
        _metrics.add("ppo.updates")
        _metrics.add("ppo.minibatch_updates", n_updates)
        _metrics.observe("ppo.kl_divergence", stats.kl_divergence)
        _metrics.observe("ppo.clip_fraction", stats.clip_fraction)
        _metrics.observe("ppo.entropy", stats.entropy)
        _metrics.observe("ppo.grad_norm", stats.grad_norm)
        _metrics.observe("ppo.explained_variance", stats.explained_variance)
        return stats

    def _explained_variance(self, batch: RolloutBatch) -> float:
        """Critic quality after the update: 1 − Var(R − V) / Var(R)."""
        if self.critic is None or len(batch) == 0:
            return 0.0
        values = self.critic.net.forward(batch.states)[0][:, 0]
        var_returns = float(np.var(batch.returns))
        if var_returns < 1e-12:
            return 0.0
        return float(1.0 - np.var(batch.returns - values) / var_returns)

    # -------------------------------------------------------------- #
    def _minibatch_update(
        self,
        batch: RolloutBatch,
        idx: np.ndarray,
        old_log_dist: np.ndarray,
    ) -> UpdateStats:
        config = self.config
        states = batch.states[idx]
        actions = batch.actions[idx]
        old_log_probs = batch.old_log_probs[idx]
        advantages = batch.advantages[idx]
        returns = batch.returns[idx]
        masks = batch.masks[idx]
        m = len(idx)

        logits, cache = self.actor.net.forward(states)
        log_dist = masked_log_softmax(logits, masks)
        probs = np.where(masks, np.exp(log_dist), 0.0)
        log_pi = log_dist[np.arange(m), actions]

        one_hot = np.zeros_like(probs)
        one_hot[np.arange(m), actions] = 1.0
        # d log π(a|s) / d logits = onehot(a) − p   (masked softmax identity)
        dlogpi_dlogits = one_hot - probs

        if config.use_clip:
            ratio = np.exp(log_pi - old_log_probs)
            if _STRICT.enabled:
                assert_finite("ppo.minibatch", ratio=ratio)
            clipped = np.clip(ratio, 1.0 - config.clip_epsilon, 1.0 + config.clip_epsilon)
            surrogate_1 = ratio * advantages
            surrogate_2 = clipped * advantages
            take_unclipped = surrogate_1 <= surrogate_2
            policy_loss = -float(np.mean(np.minimum(surrogate_1, surrogate_2)))
            clip_fraction = float(np.mean(~take_unclipped))
            # dL/dlogπ = −ratio·A when the unclipped branch is active, else 0.
            g = np.where(take_unclipped, -ratio * advantages, 0.0)
        else:
            policy_loss = -float(np.mean(log_pi * advantages))
            clip_fraction = 0.0
            g = -advantages

        grad_logits = (g[:, None] * dlogpi_dlogits) / m

        # Entropy bonus: L −= c_ent · H;  dH/dz_j = −p_j (log p_j + H).
        safe_log = np.where(probs > 0, np.log(np.maximum(probs, 1e-12)), 0.0)
        entropy = -np.sum(probs * safe_log, axis=1)
        dH_dlogits = -probs * (safe_log + entropy[:, None])
        grad_logits -= config.entropy_coef * dH_dlogits / m

        # KL(π_old ‖ π) penalty (PPO variant only): dKL/dz = p − p_old.
        kl = 0.0
        if config.use_clip and config.kl_coef > 0:
            old_probs = np.where(masks, np.exp(old_log_dist), 0.0)
            valid = masks & (old_probs > 0) & (probs > 0)
            kl_terms = np.where(
                valid, old_probs * (np.log(np.maximum(old_probs, 1e-12)) - safe_log), 0.0
            )
            kl = float(np.mean(np.sum(kl_terms, axis=1)))
            grad_logits += config.kl_coef * (probs - old_probs) / m

        grad_logits = np.where(masks, grad_logits, 0.0)
        weight_grads, bias_grads = self.actor.net.backward(cache, grad_logits)
        gradients, grad_norm = _clip_gradients(
            weight_grads + bias_grads, config.max_grad_norm
        )
        self.actor_optimizer.step(gradients)

        value_loss = 0.0
        if config.use_critic and self.critic is not None:
            values_out, value_cache = self.critic.net.forward(states)
            errors = values_out[:, 0] - returns
            value_loss = float(np.mean(errors ** 2))
            grad_values = (2.0 * errors / m)[:, None] * self.config.value_coef
            v_weight_grads, v_bias_grads = self.critic.net.backward(
                value_cache, grad_values
            )
            v_gradients, _ = _clip_gradients(
                v_weight_grads + v_bias_grads, config.max_grad_norm
            )
            assert self.critic_optimizer is not None
            self.critic_optimizer.step(v_gradients)

        if _STRICT.enabled:
            assert_finite(
                "ppo.minibatch",
                policy_loss=policy_loss,
                value_loss=value_loss,
                kl_divergence=kl,
                grad_logits=grad_logits,
            )
        return UpdateStats(
            policy_loss=policy_loss,
            value_loss=value_loss,
            entropy=float(np.mean(entropy)),
            kl_divergence=kl,
            clip_fraction=clip_fraction,
            grad_norm=grad_norm,
            n_samples=m,
        )
