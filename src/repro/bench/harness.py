"""Experiment harness shared by the ``benchmarks/`` scripts.

The unit of work is *evaluate one method on one train/test split*:
run the method's setup (RL training or a baseline's selection), score the
produced database on the held-out test workload with Eq. 1, and time a
batch of queries against it. Repeated over splits, this yields the
mean ± std rows of the paper's Figure 2 and the sweeps of Figures 8-10.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..baselines import VAEBaseline, make_baseline
from ..core.config import ASQPConfig
from ..core.metric import score
from ..core.trainer import ASQPTrainer, TrainedModel
from ..datasets.workloads import DatasetBundle, Workload
from ..db.database import Database
from ..db.executor import execute

#: Methods evaluated in the Figure 2 table, in paper order.
FIG2_METHODS = [
    "ASQP-RL", "ASQP-Light", "VAE", "CACH", "RAN",
    "QUIK", "VERD", "SKY", "BRT", "QRD", "TOP", "GRE",
]

#: Paper-reported Figure 2 scores (IMDB, MAS) for shape comparison.
PAPER_FIG2_SCORES = {
    "ASQP-RL": (0.64, 0.754),
    "ASQP-Light": (0.53, 0.61),
    "VAE": (0.0025, 0.045),
    "CACH": (0.084, 0.2207),
    "RAN": (0.29, 0.20275),
    "QUIK": (0.343, 0.25025),
    "VERD": (0.471, 0.3045),
    "SKY": (0.347, 0.33362),
    "BRT": (0.297, 0.3975),
    "QRD": (0.3215, 0.377),
    "TOP": (0.2707, 0.4592),
    "GRE": (float("nan"), 0.5177),
}


@dataclass
class MethodResult:
    """Outcome of one method on one split."""

    name: str
    quality: float
    setup_seconds: float
    query_avg_seconds: float
    completed: bool = True
    model: Optional[TrainedModel] = None
    database: Optional[Database] = None


@dataclass
class AggregatedResult:
    """Mean ± std over splits (one Figure 2 row)."""

    name: str
    quality_mean: float
    quality_std: float
    setup_mean: float
    setup_std: float
    query_avg_mean: float
    completed: bool = True
    n_splits: int = 1

    def row(self) -> list:
        quality = (
            "N/A"
            if not np.isfinite(self.quality_mean)
            else f"{self.quality_mean:.3f}±{self.quality_std:.3f}"
        )
        return [
            self.name,
            quality,
            f"{self.setup_mean:.1f}±{self.setup_std:.1f}",
            f"{self.query_avg_mean * 1000:.1f}ms",
            "yes" if self.completed else "TIMEOUT",
        ]


def bench_asqp_config(
    k: int,
    frame_size: int,
    light: bool = False,
    seed: int = 0,
    **overrides,
) -> ASQPConfig:
    """The ASQP-RL configuration the benchmarks run.

    Scaled from the paper's server defaults to this simulator: the same
    architecture and coefficients, a learning rate suited to the smaller
    networks, and iteration counts that keep one training run in seconds
    to low minutes.
    """
    settings = dict(
        memory_budget=k,
        frame_size=frame_size,
        learning_rate=1e-3,
        n_iterations=45,
        early_stopping_patience=12,
        n_actors=8,
        episodes_per_actor=1,
        action_space_target=800,
        exact_row_share=0.8,
        query_batch_size=16,
        n_candidate_rollouts=12,
        seed=seed,
    )
    if light:
        light_defaults = dict(
            training_fraction=0.25,
            learning_rate=2e-3,
            n_iterations=16,
            early_stopping_patience=5,
            action_space_target=500,
            n_candidate_rollouts=6,
        )
        settings.update(light_defaults)
    settings.update(overrides)
    return ASQPConfig(**settings)


def measure_query_batch(
    database: Database,
    workload: Workload,
    n_queries: int = 10,
    regenerator=None,
) -> float:
    """Seconds to answer ``n_queries`` test queries (the paper's QueryAvg).

    ``regenerator`` (VAE) is charged per batch: generative engines sample
    their model at query time.
    """
    spj = workload.spj_only()
    queries = spj.queries[:n_queries]
    start = time.perf_counter()
    target = database
    if regenerator is not None:
        target = regenerator()
    for query in queries:
        execute(target, query)
    return time.perf_counter() - start


def evaluate_method(
    bundle: DatasetBundle,
    train: Workload,
    test: Workload,
    method: str,
    k: int,
    frame_size: int,
    seed: int = 0,
    time_budget: Optional[float] = None,
    asqp_overrides: Optional[dict] = None,
    full_keys: Optional[Sequence[frozenset]] = None,
) -> MethodResult:
    """Run one method once and score it on the test workload."""
    rng = np.random.default_rng(seed)
    if method in ("ASQP-RL", "ASQP-Light"):
        config = bench_asqp_config(
            k, frame_size, light=(method == "ASQP-Light"), seed=seed,
            **(asqp_overrides or {}),
        )
        trainer = ASQPTrainer(bundle.db, train, config)
        model = trainer.train()
        database = model.approximation_database()
        quality = score(bundle.db, database, test, frame_size, full_keys=full_keys)
        query_avg = measure_query_batch(database, test)
        return MethodResult(
            name=method,
            quality=quality,
            setup_seconds=model.setup_seconds,
            query_avg_seconds=query_avg,
            model=model,
            database=database,
        )

    selector = make_baseline(method)
    result = selector.select(
        bundle.db, train, k, frame_size, rng, time_budget=time_budget
    )
    quality = score(bundle.db, result.database, test, frame_size, full_keys=full_keys)
    regenerator = None
    if isinstance(selector, VAEBaseline):
        regen_rng = np.random.default_rng(seed + 1)
        regenerator = lambda: selector.regenerate(bundle.db, k, regen_rng)  # noqa: E731
    query_avg = measure_query_batch(result.database, test, regenerator=regenerator)
    return MethodResult(
        name=method,
        quality=quality,
        setup_seconds=result.setup_seconds,
        query_avg_seconds=query_avg,
        completed=result.completed,
        database=result.database,
    )


def evaluate_over_splits(
    bundle: DatasetBundle,
    method: str,
    k: int,
    frame_size: int,
    n_splits: int = 2,
    test_fraction: float = 0.3,
    base_seed: int = 0,
    time_budget: Optional[float] = None,
    asqp_overrides: Optional[dict] = None,
) -> AggregatedResult:
    """Mean ± std of a method over repeated train/test partitions."""
    qualities, setups, query_avgs = [], [], []
    completed = True
    for split in range(n_splits):
        rng = np.random.default_rng(base_seed + 1000 * split)
        train, test = bundle.workload.split(test_fraction, rng)
        result = evaluate_method(
            bundle, train, test, method, k, frame_size,
            seed=base_seed + split, time_budget=time_budget,
            asqp_overrides=asqp_overrides,
        )
        qualities.append(result.quality)
        setups.append(result.setup_seconds)
        query_avgs.append(result.query_avg_seconds)
        completed = completed and result.completed
    return AggregatedResult(
        name=method,
        quality_mean=float(np.mean(qualities)),
        quality_std=float(np.std(qualities)),
        setup_mean=float(np.mean(setups)),
        setup_std=float(np.std(setups)),
        query_avg_mean=float(np.mean(query_avgs)),
        completed=completed,
        n_splits=n_splits,
    )
