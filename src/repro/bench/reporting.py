"""Plain-text table rendering and JSON persistence for benchmark output.

Every ``benchmarks/bench_*.py`` prints the rows/series of its paper table
or figure through these helpers, and drops a JSON record next to the
test output so EXPERIMENTS.md numbers can be traced to a run.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from typing import Optional, Sequence

from ..obs.log import console


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table with a header rule (pure text, no dependencies)."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[j]), *(len(row[j]) for row in rendered)) if rendered else len(headers[j])
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[j]) for j, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> None:
    console()
    console(format_table(headers, rows, title=title))
    console()


def results_dir() -> str:
    """Where benchmark JSON records land (override with REPRO_RESULTS_DIR)."""
    path = os.environ.get("REPRO_RESULTS_DIR", "bench_results")
    os.makedirs(path, exist_ok=True)
    return path


def _git_sha() -> str:
    """Short commit SHA of the working tree, or "unknown" outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def config_hash() -> str:
    """Stable hash of the default ASQPConfig — changes when defaults do."""
    from dataclasses import asdict

    from ..core.config import ASQPConfig

    payload = json.dumps(asdict(ASQPConfig()), sort_keys=True, default=str)
    return hashlib.sha1(payload.encode()).hexdigest()[:12]


def run_provenance(duration_seconds: Optional[float] = None) -> dict:
    """Provenance block stamped into every saved bench payload.

    Git SHA + bench scale + default-config hash make trajectory entries
    comparable across PRs; ``duration_seconds`` is a monotonic-clock
    measurement supplied by the caller (library code never reads the
    wall clock — the timestamp in :func:`save_results` is allowed here
    because ``bench/`` is exempt from that lint rule).
    """
    provenance = {
        "git_sha": _git_sha(),
        "bench_scale": bench_scale(),
        "config_hash": config_hash(),
    }
    if duration_seconds is not None:
        provenance["duration_seconds"] = round(float(duration_seconds), 4)
    return provenance


def save_results(
    experiment: str, payload: dict, duration_seconds: Optional[float] = None
) -> str:
    """Persist one experiment's results as JSON; returns the file path.

    Every record carries a ``provenance`` block (git SHA, bench scale,
    config hash, optional monotonic duration) so ``repro report`` can
    line up trajectory entries recorded under different commits.
    """
    record = {
        "experiment": experiment,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "provenance": run_provenance(duration_seconds),
        **payload,
    }
    path = os.path.join(results_dir(), f"{experiment}.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, default=str)
    return path


def bench_scale(default: float = 0.5) -> float:
    """Dataset scale for benchmarks (override with REPRO_BENCH_SCALE)."""
    raw: Optional[str] = os.environ.get("REPRO_BENCH_SCALE")
    if raw is None:
        return default
    value = float(raw)
    if value <= 0:
        raise ValueError(f"REPRO_BENCH_SCALE must be positive, got {raw!r}")
    return value


def bench_splits(default: int = 1) -> int:
    """Train/test repetitions for averaged benchmarks (REPRO_BENCH_SPLITS).

    Default 1 keeps a full `pytest benchmarks/` run under an hour; set 2+
    to reproduce the paper's mean ± std over repeated partitions.
    """
    raw = os.environ.get("REPRO_BENCH_SPLITS")
    return int(raw) if raw else default


#: ASQP-RL overrides for sweep figures (many trainings; ~3x faster each).
SWEEP_PROFILE = dict(
    n_iterations=16,
    early_stopping_patience=6,
    episodes_per_actor=1,
    action_space_target=500,
    n_candidate_rollouts=4,
)


def emit(experiment: str, headers, rows, payload: dict, title: str) -> None:
    """Print a benchmark table and persist JSON + text under bench_results/."""
    text = format_table(headers, rows, title=title)
    console()
    console(text)
    save_results(experiment, {**payload, "table": text})
    with open(os.path.join(results_dir(), f"{experiment}.txt"), "w") as handle:
        handle.write(text + "\n")


def ascii_chart(
    series: dict,
    x_labels,
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Render one or more numeric series as a plain-text line chart.

    ``series`` maps a name to a list of y-values (all the same length as
    ``x_labels``). Each series plots with its own marker; a legend maps
    markers back to names. Used by the figure benchmarks so the recorded
    ``bench_results/*.txt`` files carry the figure, not just the table.
    """
    markers = "ox+*#@%&"
    names = list(series)
    if not names:
        raise ValueError("ascii_chart needs at least one series")
    n_points = len(x_labels)
    for name in names:
        if len(series[name]) != n_points:
            raise ValueError(
                f"series {name!r} has {len(series[name])} points, "
                f"expected {n_points}"
            )
    all_values = [v for name in names for v in series[name]]
    lo, hi = min(all_values), max(all_values)
    if hi - lo < 1e-12:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for s, name in enumerate(names):
        marker = markers[s % len(markers)]
        for i, value in enumerate(series[name]):
            x = int(round(i * (width - 1) / max(1, n_points - 1)))
            y = int(round((value - lo) / (hi - lo) * (height - 1)))
            grid[height - 1 - y][x] = marker

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{hi:8.3f} |"
        elif r == height - 1:
            label = f"{lo:8.3f} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    first, last = str(x_labels[0]), str(x_labels[-1])
    lines.append(
        "          " + first + " " * max(1, width - len(first) - len(last)) + last
    )
    legend = "   ".join(
        f"{markers[s % len(markers)]} {name}" for s, name in enumerate(names)
    )
    lines.append("          " + legend)
    return "\n".join(lines)
