"""Benchmark harness: method evaluation, table rendering, result persistence."""

from .harness import (
    FIG2_METHODS,
    PAPER_FIG2_SCORES,
    AggregatedResult,
    MethodResult,
    bench_asqp_config,
    evaluate_method,
    evaluate_over_splits,
    measure_query_batch,
)
from .reporting import (
    SWEEP_PROFILE,
    ascii_chart,
    bench_scale,
    bench_splits,
    emit,
    format_table,
    print_table,
    results_dir,
    save_results,
)

__all__ = [
    "AggregatedResult",
    "SWEEP_PROFILE",
    "ascii_chart",
    "bench_splits",
    "emit",
    "FIG2_METHODS",
    "MethodResult",
    "PAPER_FIG2_SCORES",
    "bench_asqp_config",
    "bench_scale",
    "evaluate_method",
    "evaluate_over_splits",
    "format_table",
    "measure_query_batch",
    "print_table",
    "results_dir",
    "save_results",
]
