"""Low-level synthetic data primitives.

The paper evaluates on real IMDB / MAS / FLIGHTS data; offline we generate
seeded synthetic equivalents. The primitives here give the generated data
the properties the experiments depend on:

* **Zipfian categorical popularity** — a few very popular values and a long
  tail, so equality predicates have wildly different selectivities;
* **correlated numeric columns** — e.g. votes correlate with rating, delay
  with distance, so range predicates interact;
* **skewed foreign-key fan-out** — popular entities attract more
  references, producing heavy-tailed join result sizes (the reason Eq. 1's
  ``min(F, |q(T)|)`` matters).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def zipf_weights(n: int, exponent: float = 1.1) -> np.ndarray:
    """Normalized Zipf weights over ``n`` ranks."""
    if n < 1:
        raise ValueError(f"need at least one rank, got {n}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def zipf_choice(
    values: Sequence,
    size: int,
    rng: np.random.Generator,
    exponent: float = 1.1,
) -> list:
    """Sample ``size`` values with Zipfian popularity by list order."""
    weights = zipf_weights(len(values), exponent)
    picks = rng.choice(len(values), size=size, p=weights)
    return [values[i] for i in picks]


def correlated_numeric(
    base: np.ndarray,
    slope: float,
    noise_std: float,
    rng: np.random.Generator,
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
) -> np.ndarray:
    """A numeric column linearly correlated with ``base`` plus Gaussian noise."""
    values = slope * base + rng.normal(0.0, noise_std, size=len(base))
    if minimum is not None:
        values = np.maximum(values, minimum)
    if maximum is not None:
        values = np.minimum(values, maximum)
    return values


def skewed_foreign_keys(
    n_rows: int,
    n_parents: int,
    rng: np.random.Generator,
    exponent: float = 1.05,
) -> np.ndarray:
    """Foreign-key values with Zipfian fan-out over a shuffled parent order.

    Shuffling decorrelates popularity from parent id so that id-range
    predicates don't accidentally align with popularity.
    """
    order = rng.permutation(n_parents)
    weights = zipf_weights(n_parents, exponent)
    picks = rng.choice(n_parents, size=n_rows, p=weights)
    return order[picks].astype(np.int64)


_SYLLABLES = [
    "ka", "ri", "to", "mi", "sa", "lo", "ven", "dar", "el", "fu",
    "gor", "han", "ix", "jo", "kel", "lum", "mar", "nor", "pol", "qua",
    "ras", "sol", "tan", "ul", "vor", "wex", "yor", "zan", "bel", "cor",
]


def synthetic_names(
    n: int, rng: np.random.Generator, n_syllables: int = 3, prefix: str = ""
) -> list[str]:
    """Pronounceable unique-ish names ("Kelrito", "Vensolmar", ...)."""
    names = []
    for i in range(n):
        parts = rng.choice(len(_SYLLABLES), size=n_syllables)
        word = "".join(_SYLLABLES[p] for p in parts)
        names.append(f"{prefix}{word.capitalize()}_{i}")
    return names


def year_column(
    n: int,
    rng: np.random.Generator,
    low: int = 1950,
    high: int = 2023,
    mode: int = 2005,
) -> np.ndarray:
    """Years drawn from a triangular distribution (recent years dominate)."""
    values = rng.triangular(low, mode, high, size=n)
    return values.astype(np.int64)
