"""Synthetic FLIGHTS benchmark (paper dataset 3, flight delays).

A single wide fact table in the IDEBench style, plus a small ``carriers``
dimension so the dataset still exercises joins. The aggregate workload is
generated per the IDEBench recipe the paper cites ([11]): COUNT/SUM/AVG
with and without GROUP BY over delay/distance measures, filtered by
carrier, month, origin and route length. This is the dataset used for the
no-workload experiment (Fig. 6) and the AQP comparison (Fig. 12).
"""

from __future__ import annotations

import numpy as np

from ..db.database import Database
from ..db.query import AggFunc, JoinCondition
from ..db.schema import Column, ColumnType, ForeignKey, TableSchema
from ..db.statistics import compute_database_stats
from ..db.table import Table
from .synthetic import correlated_numeric, synthetic_names, zipf_choice, zipf_weights
from .workloads import (
    DatasetBundle,
    Workload,
    assemble_aggregate,
    assemble_spj,
    make_pooled_predicate_sampler,
)

CARRIER_CODES = ["AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9", "HA", "G4"]
AIRPORTS = ["atl", "lax", "ord", "dfw", "den", "jfk", "sfo", "sea", "mia",
            "bos", "phx", "ewr", "iah", "mco", "lga", "clt", "msp", "dtw",
            "phl", "slc"]


def flights_schemas() -> list[TableSchema]:
    return [
        TableSchema(
            "carriers",
            [
                Column("code", ColumnType.STR),
                Column("name", ColumnType.STR),
                Column("low_cost", ColumnType.INT),
            ],
            primary_key="code",
        ),
        TableSchema(
            "flights",
            [
                Column("id", ColumnType.INT),
                Column("month", ColumnType.INT),
                Column("day_of_week", ColumnType.INT),
                Column("carrier", ColumnType.STR),
                Column("origin", ColumnType.STR),
                Column("dest", ColumnType.STR),
                Column("distance", ColumnType.INT),
                Column("dep_delay", ColumnType.FLOAT),
                Column("arr_delay", ColumnType.FLOAT),
                Column("air_time", ColumnType.FLOAT),
                Column("cancelled", ColumnType.INT),
            ],
            primary_key="id",
            foreign_keys=(ForeignKey("carrier", "carriers", "code"),),
        ),
    ]


def make_flights_database(scale: float = 1.0, seed: int = 5150) -> Database:
    """Generate the synthetic FLIGHTS database."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rng = np.random.default_rng(seed)
    n_flights = max(200, int(8000 * scale))
    schemas = {s.name: s for s in flights_schemas()}

    carriers = Table(
        schemas["carriers"],
        {
            "code": CARRIER_CODES,
            "name": synthetic_names(len(CARRIER_CODES), rng, prefix="Air "),
            "low_cost": [0, 0, 0, 1, 1, 0, 1, 1, 0, 1],
        },
    )

    months = rng.integers(1, 13, size=n_flights)
    carrier = zipf_choice(CARRIER_CODES, n_flights, rng, exponent=0.9)
    origin_weights = zipf_weights(len(AIRPORTS), 1.0)
    origin_idx = rng.choice(len(AIRPORTS), size=n_flights, p=origin_weights)
    dest_idx = rng.choice(len(AIRPORTS), size=n_flights, p=origin_weights)
    # Re-draw self-loops once (a flight to the same airport is nonsense).
    same = origin_idx == dest_idx
    dest_idx[same] = (dest_idx[same] + 1 + rng.integers(0, len(AIRPORTS) - 1,
                                                        size=int(same.sum()))) % len(AIRPORTS)
    distance = rng.integers(120, 3000, size=n_flights)
    # Winter months and long-haul flights are more delay prone.
    seasonal = np.where(np.isin(months, (12, 1, 2, 6, 7)), 8.0, 0.0)
    dep_delay = np.round(
        rng.exponential(12.0, n_flights) - 6.0 + seasonal + 0.002 * distance, 1
    )
    arr_delay = np.round(
        correlated_numeric(dep_delay, 1.0, 9.0, rng), 1
    )
    air_time = np.round(distance / 7.5 + rng.normal(0, 8, n_flights), 1)
    cancelled = (rng.random(n_flights) < 0.02).astype(np.int64)

    flights = Table(
        schemas["flights"],
        {
            "id": np.arange(n_flights),
            "month": months.astype(np.int64),
            "day_of_week": rng.integers(1, 8, size=n_flights),
            "carrier": carrier,
            "origin": [AIRPORTS[i] for i in origin_idx],
            "dest": [AIRPORTS[i] for i in dest_idx],
            "distance": distance.astype(np.int64),
            "dep_delay": dep_delay,
            "arr_delay": arr_delay,
            "air_time": np.maximum(air_time, 15.0),
            "cancelled": cancelled,
        },
    )

    return Database([carriers, flights], name="flights")


_J_FLIGHTS_CARRIERS = JoinCondition("flights.carrier", "carriers.code")


def make_flights_workload(
    db: Database, n_queries: int = 48, seed: int = 31
) -> Workload:
    """IDEBench-style SPJ workload (drill-downs a dashboard would issue)."""
    rng = np.random.default_rng(seed)
    stats = compute_database_stats(db)
    draw_predicate = make_pooled_predicate_sampler(rng)
    queries = []
    template_picks = rng.integers(0, 4, size=n_queries)
    for i, template in enumerate(template_picks):
        name = f"flights_q{i:03d}"
        if template == 0:
            predicates = [
                draw_predicate("in", stats["flights"], "flights", "carrier", rng,
                                    n_values=int(rng.integers(1, 4))),
                draw_predicate("threshold", stats["flights"], "flights",
                                           "dep_delay", rng),
            ]
            queries.append(
                assemble_spj(["flights"], [], predicates, name=name,
                             projection=["flights.carrier", "flights.origin",
                                         "flights.dep_delay"])
            )
        elif template == 1:
            predicates = [
                draw_predicate("equality", stats["flights"], "flights", "origin", rng),
                draw_predicate("range", stats["flights"], "flights", "month", rng),
            ]
            queries.append(
                assemble_spj(["flights"], [], predicates, name=name,
                             projection=["flights.dest", "flights.month",
                                         "flights.arr_delay"])
            )
        elif template == 2:
            predicates = [
                draw_predicate("range", stats["flights"], "flights", "distance", rng),
                draw_predicate("threshold", stats["flights"], "flights",
                                           "arr_delay", rng),
            ]
            queries.append(
                assemble_spj(["flights"], [], predicates, name=name,
                             projection=["flights.origin", "flights.dest",
                                         "flights.distance"])
            )
        else:
            predicates = [
                draw_predicate("equality", stats["carriers"], "carriers",
                                          "name", rng, popularity_weighted=False),
                draw_predicate("range", stats["flights"], "flights", "month", rng),
            ]
            queries.append(
                assemble_spj(
                    ["flights", "carriers"], [_J_FLIGHTS_CARRIERS], predicates,
                    name=name,
                    projection=["carriers.name", "flights.origin",
                                "flights.dep_delay"],
                )
            )
    return Workload(queries, name="flights")


def make_flights_aggregate_workload(
    db: Database, n_queries: int = 60, seed: int = 32
) -> Workload:
    """The IDEBench aggregate workload used in the Fig. 12 AQP comparison.

    Query classes (equal shares): CNT, G+CNT, SUM, G+SUM, AVG, G+AVG —
    the six operator categories of the paper's Figure 12.
    """
    rng = np.random.default_rng(seed)
    stats = compute_database_stats(db)
    draw_predicate = make_pooled_predicate_sampler(rng)
    classes = [
        (AggFunc.COUNT, None, ()),
        (AggFunc.COUNT, None, ("flights.carrier",)),
        (AggFunc.SUM, "flights.distance", ()),
        (AggFunc.SUM, "flights.distance", ("flights.origin",)),
        (AggFunc.AVG, "flights.arr_delay", ()),
        (AggFunc.AVG, "flights.arr_delay", ("flights.month",)),
    ]
    queries = []
    for i in range(n_queries):
        func, column, group_by = classes[i % len(classes)]
        predicate_pool = [
            lambda: draw_predicate("range", stats["flights"], "flights", "month", rng),
            lambda: draw_predicate("in", stats["flights"], "flights", "carrier", rng,
                                        n_values=int(rng.integers(1, 4))),
            lambda: draw_predicate("range", stats["flights"], "flights",
                                           "distance", rng),
            lambda: draw_predicate("equality", stats["flights"], "flights",
                                              "origin", rng),
        ]
        n_predicates = int(rng.integers(1, 3))
        picks = rng.choice(len(predicate_pool), size=n_predicates, replace=False)
        predicates = [predicate_pool[p]() for p in picks]
        queries.append(
            assemble_aggregate(
                ["flights"], [], predicates, func, column,
                group_by=group_by, name=f"flights_agg{i:03d}",
            )
        )
    return Workload(queries, name="flights_agg")


def load_flights(
    scale: float = 1.0,
    seed: int = 5150,
    n_queries: int = 48,
    n_aggregate_queries: int = 60,
) -> DatasetBundle:
    """The full FLIGHTS bundle."""
    db = make_flights_database(scale=scale, seed=seed)
    return DatasetBundle(
        name="flights",
        db=db,
        workload=make_flights_workload(db, n_queries=n_queries, seed=seed + 1),
        aggregate_workload=make_flights_aggregate_workload(
            db, n_queries=n_aggregate_queries, seed=seed + 2
        ),
    )
