"""Workload construction helpers shared by the benchmark datasets.

Each dataset module composes these samplers into JOB-/MAS-/IDEBench-style
query mixes. The same helpers back :mod:`repro.core.workload_gen`, which
generates a workload from statistics alone when none is provided
(paper §4.5, "Unknown Query Workloads").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..db.database import Database
from ..db.expressions import Between, Comparison, Expression, InSet, conjoin
from ..db.query import AggFunc, AggregateQuery, AggregateSpec, JoinCondition, SPJQuery
from ..db.statistics import TableStats, compute_database_stats


@dataclass
class Workload:
    """A weighted query workload (the paper's ``(Q, w)``)."""

    queries: list[Union[SPJQuery, AggregateQuery]]
    weights: np.ndarray = field(default=None)  # type: ignore[assignment]
    name: str = ""

    def __post_init__(self) -> None:
        if self.weights is None:
            n = len(self.queries)
            self.weights = np.full(n, 1.0 / n) if n else np.empty(0)
        else:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if len(self.weights) != len(self.queries):
                raise ValueError(
                    f"{len(self.weights)} weights for {len(self.queries)} queries"
                )
            total = self.weights.sum()
            if total > 0:
                self.weights = self.weights / total

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def spj_only(self) -> "Workload":
        """Rewrite aggregates to SPJ (paper §3) and keep SPJ queries as-is."""
        queries = [
            q.strip_aggregates() if q.is_aggregate else q for q in self.queries
        ]
        return Workload(queries=queries, weights=self.weights.copy(), name=self.name)

    def split(
        self, test_fraction: float, rng: np.random.Generator
    ) -> tuple["Workload", "Workload"]:
        """Random train/test partition preserving relative weights."""
        n = len(self.queries)
        if n < 2:
            raise ValueError("need at least two queries to split")
        n_test = max(1, int(round(n * test_fraction)))
        n_test = min(n_test, n - 1)
        order = rng.permutation(n)
        test_idx = set(order[:n_test].tolist())
        train_q, train_w, test_q, test_w = [], [], [], []
        for i in range(n):
            if i in test_idx:
                test_q.append(self.queries[i])
                test_w.append(self.weights[i])
            else:
                train_q.append(self.queries[i])
                train_w.append(self.weights[i])
        return (
            Workload(train_q, np.asarray(train_w), name=f"{self.name}:train"),
            Workload(test_q, np.asarray(test_w), name=f"{self.name}:test"),
        )

    def subset(self, indices: Sequence[int], name: str = "") -> "Workload":
        queries = [self.queries[i] for i in indices]
        weights = self.weights[list(indices)]
        return Workload(queries, weights, name=name or f"{self.name}:subset")


@dataclass
class DatasetBundle:
    """A benchmark: database + SPJ workload + aggregate workload."""

    name: str
    db: Database
    workload: Workload
    aggregate_workload: Workload
    stats: dict[str, TableStats] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.stats:
            self.stats = compute_database_stats(self.db)


# ------------------------------------------------------------------ #
# predicate samplers
# ------------------------------------------------------------------ #
class PooledSampler:
    """Caches drawn predicates so workloads revisit *hot* regions.

    Real exploration sessions repeatedly query the same few slices of the
    data (the premise that makes approximation sets useful); the paper's
    IMDB/MAS logs show exactly this. ``draw`` returns a cached predicate
    for the same key with probability ``reuse_probability``, otherwise
    creates (and caches) a fresh one — so train/test splits of a workload
    share hot predicates while still containing unseen ones.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        reuse_probability: float = 0.8,
        pool_limit: int = 5,
    ) -> None:
        if not 0 <= reuse_probability <= 1:
            raise ValueError(
                f"reuse probability must be in [0, 1], got {reuse_probability}"
            )
        self.rng = rng
        self.reuse_probability = reuse_probability
        self.pool_limit = pool_limit
        self._pools: dict[tuple, list] = {}

    def draw(self, key: tuple, factory):
        """A cached value for ``key`` (probabilistically) or a new one."""
        pool = self._pools.setdefault(key, [])
        full = len(pool) >= self.pool_limit
        if pool and (full or self.rng.random() < self.reuse_probability):
            return pool[int(self.rng.integers(0, len(pool)))]
        value = factory()
        pool.append(value)
        return value



def sample_range_predicate(
    stats: TableStats,
    table: str,
    column: str,
    rng: np.random.Generator,
    width_fraction: Optional[float] = None,
) -> Expression:
    """A BETWEEN predicate over a random sub-range of the column."""
    numeric = stats.numeric[column]
    if width_fraction is None:
        width_fraction = float(rng.uniform(0.05, 0.5))
    span = numeric.value_range * width_fraction
    low = float(rng.uniform(numeric.minimum, max(numeric.minimum, numeric.maximum - span)))
    ref = f"{table}.{column}"
    if float(numeric.minimum).is_integer() and float(numeric.maximum).is_integer():
        return Between(ref, int(low), int(low + span))
    return Between(ref, round(low, 2), round(low + span, 2))


def sample_threshold_predicate(
    stats: TableStats,
    table: str,
    column: str,
    rng: np.random.Generator,
) -> Expression:
    """A one-sided comparison at a random quantile of the column."""
    numeric = stats.numeric[column]
    quantile = float(rng.choice(list(numeric.quantiles)))
    threshold = numeric.quantiles[quantile]
    op = ">" if rng.random() < 0.5 else "<"
    if float(numeric.minimum).is_integer() and float(numeric.maximum).is_integer():
        threshold = int(threshold)
    else:
        threshold = round(threshold, 2)
    return Comparison(f"{table}.{column}", op, threshold)


def sample_equality_predicate(
    stats: TableStats,
    table: str,
    column: str,
    rng: np.random.Generator,
    popularity_weighted: bool = True,
) -> Expression:
    """An equality on a categorical column (popular values more likely)."""
    cat = stats.categorical[column]
    if popularity_weighted:
        value = cat.sample_weighted(rng, 1)[0]
    else:
        value = str(rng.choice(list(cat.frequencies)))
    return Comparison(f"{table}.{column}", "=", value)


def sample_in_predicate(
    stats: TableStats,
    table: str,
    column: str,
    rng: np.random.Generator,
    n_values: int = 3,
) -> Expression:
    """An IN-set over popularity-weighted categorical values."""
    cat = stats.categorical[column]
    values = set(cat.sample_weighted(rng, n_values))
    return InSet(f"{table}.{column}", values)




def make_pooled_predicate_sampler(
    rng: np.random.Generator,
    reuse_probability: float = 0.8,
    pool_limit: int = 5,
):
    """A ``draw(kind, stats, table, column, rng, **kwargs)`` closure.

    Routes the four predicate samplers through one :class:`PooledSampler`
    keyed by (kind, table, column, kwargs), so a workload builder reuses
    hot predicates across its queries.
    """
    pool = PooledSampler(rng, reuse_probability, pool_limit)
    factories = {
        "range": sample_range_predicate,
        "threshold": sample_threshold_predicate,
        "equality": sample_equality_predicate,
        "in": sample_in_predicate,
    }

    def draw(kind: str, stats: TableStats, table: str, column: str,
             rng_: np.random.Generator, **kwargs):
        key = (kind, table, column, tuple(sorted(kwargs.items())))
        return pool.draw(
            key, lambda: factories[kind](stats, table, column, rng_, **kwargs)
        )

    return draw


# ------------------------------------------------------------------ #
# query assembly
# ------------------------------------------------------------------ #
def assemble_spj(
    tables: Sequence[str],
    joins: Sequence[JoinCondition],
    predicates: Sequence[Expression],
    name: str = "",
    projection: Sequence[str] = (),
    limit: Optional[int] = None,
) -> SPJQuery:
    return SPJQuery(
        tables=tuple(tables),
        joins=tuple(joins),
        predicate=conjoin(list(predicates)),
        projection=tuple(projection),
        limit=limit,
        name=name,
    )


def assemble_aggregate(
    tables: Sequence[str],
    joins: Sequence[JoinCondition],
    predicates: Sequence[Expression],
    func: AggFunc,
    column: Optional[str],
    group_by: Sequence[str] = (),
    name: str = "",
) -> AggregateQuery:
    return AggregateQuery(
        tables=tuple(tables),
        joins=tuple(joins),
        predicate=conjoin(list(predicates)),
        aggregates=(AggregateSpec(func=func, column=column),),
        group_by=tuple(group_by),
        name=name,
    )
