"""Synthetic IMDB-JOB benchmark (paper dataset 1, scaled ~1000x down).

Schema follows the JOB subset the paper's workload touches: ``title``,
``company`` / ``movie_companies``, ``person`` / ``cast_info`` and
``movie_info``. The workload mixes the JOB-style SPJ templates (year/kind
filters, company-country joins, cast/person joins, genre lookups, and a
five-table combination) with aggregate queries — matching the study cited
in the paper's introduction where roughly half of exploratory queries are
non-aggregate SPJ.
"""

from __future__ import annotations

import numpy as np

from ..db.database import Database
from ..db.query import AggFunc, JoinCondition
from ..db.schema import Column, ColumnType, ForeignKey, TableSchema
from ..db.statistics import compute_database_stats
from ..db.table import Table
from .synthetic import (
    correlated_numeric,
    skewed_foreign_keys,
    synthetic_names,
    year_column,
    zipf_choice,
)
from .workloads import (
    DatasetBundle,
    Workload,
    assemble_aggregate,
    assemble_spj,
    make_pooled_predicate_sampler,
)

KINDS = ["movie", "tv_series", "short", "video", "documentary"]
COUNTRIES = ["us", "gb", "fr", "de", "jp", "it", "ca", "es", "in", "kr",
             "se", "au", "br", "mx", "nl", "ru", "cn", "dk", "no", "ie"]
ROLES = ["actor", "actress", "director", "producer", "writer", "composer"]
GENDERS = ["m", "f"]
INFO_TYPES = ["genre", "language", "runtime_class", "color"]
GENRES = ["drama", "comedy", "action", "thriller", "documentary", "horror",
          "romance", "scifi", "animation", "crime", "western", "fantasy"]
LANGUAGES = ["english", "french", "german", "japanese", "spanish", "italian",
             "korean", "mandarin", "hindi", "swedish"]
RUNTIME_CLASSES = ["short", "standard", "long", "epic"]
COLORS = ["color", "bw"]

_INFO_VALUES = {
    "genre": GENRES,
    "language": LANGUAGES,
    "runtime_class": RUNTIME_CLASSES,
    "color": COLORS,
}


def imdb_schemas() -> list[TableSchema]:
    """The six JOB-subset table schemas."""
    return [
        TableSchema(
            "title",
            [
                Column("id", ColumnType.INT),
                Column("title", ColumnType.STR),
                Column("production_year", ColumnType.INT),
                Column("kind", ColumnType.STR),
                Column("rating", ColumnType.FLOAT),
                Column("votes", ColumnType.INT),
            ],
            primary_key="id",
        ),
        TableSchema(
            "company",
            [
                Column("id", ColumnType.INT),
                Column("name", ColumnType.STR),
                Column("country_code", ColumnType.STR),
            ],
            primary_key="id",
        ),
        TableSchema(
            "movie_companies",
            [
                Column("id", ColumnType.INT),
                Column("movie_id", ColumnType.INT),
                Column("company_id", ColumnType.INT),
            ],
            primary_key="id",
            foreign_keys=(
                ForeignKey("movie_id", "title", "id"),
                ForeignKey("company_id", "company", "id"),
            ),
        ),
        TableSchema(
            "person",
            [
                Column("id", ColumnType.INT),
                Column("name", ColumnType.STR),
                Column("gender", ColumnType.STR),
                Column("birth_year", ColumnType.INT),
            ],
            primary_key="id",
        ),
        TableSchema(
            "cast_info",
            [
                Column("id", ColumnType.INT),
                Column("movie_id", ColumnType.INT),
                Column("person_id", ColumnType.INT),
                Column("role", ColumnType.STR),
            ],
            primary_key="id",
            foreign_keys=(
                ForeignKey("movie_id", "title", "id"),
                ForeignKey("person_id", "person", "id"),
            ),
        ),
        TableSchema(
            "movie_info",
            [
                Column("id", ColumnType.INT),
                Column("movie_id", ColumnType.INT),
                Column("info_type", ColumnType.STR),
                Column("info", ColumnType.STR),
            ],
            primary_key="id",
            foreign_keys=(ForeignKey("movie_id", "title", "id"),),
        ),
    ]


def make_imdb_database(scale: float = 1.0, seed: int = 1337) -> Database:
    """Generate the synthetic IMDB database at the given size scale."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rng = np.random.default_rng(seed)
    n_titles = max(50, int(3000 * scale))
    n_companies = max(20, int(300 * scale))
    n_movie_companies = max(60, int(4500 * scale))
    n_persons = max(40, int(2000 * scale))
    n_cast = max(80, int(7000 * scale))
    n_info = max(60, int(5000 * scale))

    schemas = {s.name: s for s in imdb_schemas()}

    years = year_column(n_titles, rng, low=1950, high=2023, mode=2008)
    rating = np.round(
        np.clip(rng.normal(6.4, 1.4, n_titles) + 0.01 * (years - 1990), 1.0, 10.0), 1
    )
    votes = np.maximum(
        5, correlated_numeric(rating, 900.0, 2500.0, rng, minimum=5)
    ).astype(np.int64)
    title = Table(
        schemas["title"],
        {
            "id": np.arange(n_titles),
            "title": synthetic_names(n_titles, rng, prefix="The "),
            "production_year": years,
            "kind": zipf_choice(KINDS, n_titles, rng, exponent=1.0),
            "rating": rating,
            "votes": votes,
        },
    )

    company = Table(
        schemas["company"],
        {
            "id": np.arange(n_companies),
            "name": synthetic_names(n_companies, rng, prefix=""),
            "country_code": zipf_choice(COUNTRIES, n_companies, rng, exponent=1.2),
        },
    )

    movie_companies = Table(
        schemas["movie_companies"],
        {
            "id": np.arange(n_movie_companies),
            "movie_id": skewed_foreign_keys(n_movie_companies, n_titles, rng),
            "company_id": skewed_foreign_keys(n_movie_companies, n_companies, rng),
        },
    )

    person = Table(
        schemas["person"],
        {
            "id": np.arange(n_persons),
            "name": synthetic_names(n_persons, rng),
            "gender": zipf_choice(GENDERS, n_persons, rng, exponent=0.3),
            "birth_year": year_column(n_persons, rng, low=1920, high=2000, mode=1970),
        },
    )

    cast_info = Table(
        schemas["cast_info"],
        {
            "id": np.arange(n_cast),
            "movie_id": skewed_foreign_keys(n_cast, n_titles, rng),
            "person_id": skewed_foreign_keys(n_cast, n_persons, rng),
            "role": zipf_choice(ROLES, n_cast, rng, exponent=0.8),
        },
    )

    info_types = zipf_choice(INFO_TYPES, n_info, rng, exponent=0.5)
    info_values = [
        str(rng.choice(_INFO_VALUES[info_type])) for info_type in info_types
    ]
    movie_info = Table(
        schemas["movie_info"],
        {
            "id": np.arange(n_info),
            "movie_id": skewed_foreign_keys(n_info, n_titles, rng),
            "info_type": info_types,
            "info": info_values,
        },
    )

    return Database(
        [title, company, movie_companies, person, cast_info, movie_info],
        name="imdb",
    )


# Join edges reused by the templates.
_J_TITLE_MC = JoinCondition("title.id", "movie_companies.movie_id")
_J_MC_COMPANY = JoinCondition("movie_companies.company_id", "company.id")
_J_TITLE_CAST = JoinCondition("title.id", "cast_info.movie_id")
_J_CAST_PERSON = JoinCondition("cast_info.person_id", "person.id")
_J_TITLE_INFO = JoinCondition("title.id", "movie_info.movie_id")


def make_imdb_workload(
    db: Database, n_queries: int = 60, seed: int = 4242
) -> Workload:
    """JOB-style SPJ workload over the synthetic IMDB database."""
    rng = np.random.default_rng(seed)
    stats = compute_database_stats(db)
    draw_predicate = make_pooled_predicate_sampler(rng)
    queries = []
    template_picks = rng.integers(0, 5, size=n_queries)
    for i, template in enumerate(template_picks):
        name = f"imdb_q{i:03d}"
        if template == 0:
            predicates = [
                draw_predicate("range", stats["title"], "title", "production_year", rng),
                draw_predicate("equality", stats["title"], "title", "kind", rng),
            ]
            if rng.random() < 0.5:
                predicates.append(
                    draw_predicate("threshold", stats["title"], "title", "rating", rng)
                )
            queries.append(
                assemble_spj(["title"], [], predicates, name=name,
                             projection=["title.title", "title.production_year",
                                         "title.rating"])
            )
        elif template == 1:
            predicates = [
                draw_predicate("in", stats["company"], "company", "country_code", rng,
                                    n_values=int(rng.integers(1, 4))),
                draw_predicate("range", stats["title"], "title", "production_year", rng),
            ]
            queries.append(
                assemble_spj(
                    ["title", "movie_companies", "company"],
                    [_J_TITLE_MC, _J_MC_COMPANY],
                    predicates,
                    name=name,
                    projection=["title.title", "company.name",
                                "company.country_code"],
                )
            )
        elif template == 2:
            predicates = [
                draw_predicate("equality", stats["cast_info"], "cast_info", "role", rng),
                draw_predicate("threshold", stats["title"], "title", "rating", rng),
            ]
            if rng.random() < 0.4:
                predicates.append(
                    draw_predicate("equality", stats["person"], "person", "gender", rng)
                )
            queries.append(
                assemble_spj(
                    ["title", "cast_info", "person"],
                    [_J_TITLE_CAST, _J_CAST_PERSON],
                    predicates,
                    name=name,
                    projection=["title.title", "person.name", "cast_info.role"],
                )
            )
        elif template == 3:
            predicates = [
                draw_predicate("equality", stats["movie_info"], "movie_info", "info", rng),
                draw_predicate("range", stats["title"], "title", "production_year", rng),
            ]
            queries.append(
                assemble_spj(
                    ["title", "movie_info"],
                    [_J_TITLE_INFO],
                    predicates,
                    name=name,
                    projection=["title.title", "movie_info.info",
                                "title.production_year"],
                )
            )
        else:
            predicates = [
                draw_predicate("in", stats["company"], "company", "country_code", rng,
                                    n_values=2),
                draw_predicate("equality", stats["cast_info"], "cast_info", "role", rng),
                draw_predicate("threshold", stats["title"], "title", "votes", rng),
            ]
            queries.append(
                assemble_spj(
                    ["title", "movie_companies", "company", "cast_info", "person"],
                    [_J_TITLE_MC, _J_MC_COMPANY, _J_TITLE_CAST, _J_CAST_PERSON],
                    predicates,
                    name=name,
                    projection=["title.title", "company.name", "person.name"],
                )
            )
    # Popularity-skewed weights: early queries are "hot".
    weights = np.asarray(
        [1.0 / (1.0 + 0.05 * i) for i in range(len(queries))], dtype=np.float64
    )
    return Workload(queries, weights, name="imdb")


def make_imdb_aggregate_workload(
    db: Database, n_queries: int = 24, seed: int = 2121
) -> Workload:
    """Aggregate companion workload (counts/avgs/sums with GROUP BY)."""
    rng = np.random.default_rng(seed)
    stats = compute_database_stats(db)
    draw_predicate = make_pooled_predicate_sampler(rng)
    queries = []
    for i in range(n_queries):
        name = f"imdb_agg{i:03d}"
        template = int(rng.integers(0, 4))
        if template == 0:
            queries.append(
                assemble_aggregate(
                    ["title"], [],
                    [draw_predicate("range", stats["title"], "title",
                                            "production_year", rng)],
                    AggFunc.COUNT, None, group_by=("title.kind",), name=name,
                )
            )
        elif template == 1:
            queries.append(
                assemble_aggregate(
                    ["title"], [],
                    [draw_predicate("equality", stats["title"], "title", "kind", rng)],
                    AggFunc.AVG, "title.rating", name=name,
                )
            )
        elif template == 2:
            queries.append(
                assemble_aggregate(
                    ["title", "movie_companies", "company"],
                    [_J_TITLE_MC, _J_MC_COMPANY],
                    [draw_predicate("range", stats["title"], "title",
                                            "production_year", rng)],
                    AggFunc.COUNT, None, group_by=("company.country_code",),
                    name=name,
                )
            )
        else:
            queries.append(
                assemble_aggregate(
                    ["title"], [],
                    [draw_predicate("threshold", stats["title"], "title", "rating", rng)],
                    AggFunc.SUM, "title.votes", group_by=("title.kind",), name=name,
                )
            )
    return Workload(queries, name="imdb_agg")


def load_imdb(
    scale: float = 1.0,
    seed: int = 1337,
    n_queries: int = 60,
    n_aggregate_queries: int = 24,
) -> DatasetBundle:
    """The full IMDB bundle: database + SPJ workload + aggregate workload."""
    db = make_imdb_database(scale=scale, seed=seed)
    return DatasetBundle(
        name="imdb",
        db=db,
        workload=make_imdb_workload(db, n_queries=n_queries, seed=seed + 1),
        aggregate_workload=make_imdb_aggregate_workload(
            db, n_queries=n_aggregate_queries, seed=seed + 2
        ),
    )
