"""Synthetic MAS benchmark (paper dataset 2, Microsoft Academic Search).

Researchers, publications, venues and authorship edges; the workload
follows the LearnShapley query-log style cited by the paper: venue/area
lookups, author-publication joins, citation thresholds.
"""

from __future__ import annotations

import numpy as np

from ..db.database import Database
from ..db.query import AggFunc, JoinCondition
from ..db.schema import Column, ColumnType, ForeignKey, TableSchema
from ..db.statistics import compute_database_stats
from ..db.table import Table
from .synthetic import (
    correlated_numeric,
    skewed_foreign_keys,
    synthetic_names,
    year_column,
    zipf_choice,
)
from .workloads import (
    DatasetBundle,
    Workload,
    assemble_aggregate,
    assemble_spj,
    make_pooled_predicate_sampler,
)

AREAS = ["databases", "machine_learning", "systems", "theory", "vision",
         "nlp", "security", "hci", "networks", "graphics"]
VENUE_TYPES = ["conference", "journal", "workshop"]
AFFILIATION_COUNTRIES = ["us", "il", "de", "uk", "fr", "cn", "ca", "ch", "jp", "kr"]


def mas_schemas() -> list[TableSchema]:
    return [
        TableSchema(
            "author",
            [
                Column("id", ColumnType.INT),
                Column("name", ColumnType.STR),
                Column("affiliation_country", ColumnType.STR),
                Column("h_index", ColumnType.INT),
            ],
            primary_key="id",
        ),
        TableSchema(
            "venue",
            [
                Column("id", ColumnType.INT),
                Column("name", ColumnType.STR),
                Column("venue_type", ColumnType.STR),
                Column("area", ColumnType.STR),
            ],
            primary_key="id",
        ),
        TableSchema(
            "publication",
            [
                Column("id", ColumnType.INT),
                Column("title", ColumnType.STR),
                Column("year", ColumnType.INT),
                Column("venue_id", ColumnType.INT),
                Column("citations", ColumnType.INT),
            ],
            primary_key="id",
            foreign_keys=(ForeignKey("venue_id", "venue", "id"),),
        ),
        TableSchema(
            "writes",
            [
                Column("id", ColumnType.INT),
                Column("author_id", ColumnType.INT),
                Column("pub_id", ColumnType.INT),
            ],
            primary_key="id",
            foreign_keys=(
                ForeignKey("author_id", "author", "id"),
                ForeignKey("pub_id", "publication", "id"),
            ),
        ),
    ]


def make_mas_database(scale: float = 1.0, seed: int = 9090) -> Database:
    """Generate the synthetic MAS database."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rng = np.random.default_rng(seed)
    n_authors = max(40, int(1500 * scale))
    n_venues = max(10, int(120 * scale))
    n_pubs = max(60, int(3000 * scale))
    n_writes = max(100, int(5000 * scale))

    schemas = {s.name: s for s in mas_schemas()}

    author = Table(
        schemas["author"],
        {
            "id": np.arange(n_authors),
            "name": synthetic_names(n_authors, rng, prefix="Dr "),
            "affiliation_country": zipf_choice(
                AFFILIATION_COUNTRIES, n_authors, rng, exponent=1.0
            ),
            "h_index": np.maximum(
                0, rng.negative_binomial(3, 0.15, n_authors)
            ).astype(np.int64),
        },
    )

    venue = Table(
        schemas["venue"],
        {
            "id": np.arange(n_venues),
            "name": synthetic_names(n_venues, rng, prefix="Proc "),
            "venue_type": zipf_choice(VENUE_TYPES, n_venues, rng, exponent=0.6),
            "area": zipf_choice(AREAS, n_venues, rng, exponent=0.9),
        },
    )

    pub_years = year_column(n_pubs, rng, low=1985, high=2023, mode=2016)
    citations = np.maximum(
        0,
        correlated_numeric(
            2023 - pub_years.astype(np.float64), 3.0, 40.0, rng, minimum=0
        ),
    ).astype(np.int64)
    publication = Table(
        schemas["publication"],
        {
            "id": np.arange(n_pubs),
            "title": synthetic_names(n_pubs, rng, n_syllables=4, prefix="On "),
            "year": pub_years,
            "venue_id": skewed_foreign_keys(n_pubs, n_venues, rng),
            "citations": citations,
        },
    )

    writes = Table(
        schemas["writes"],
        {
            "id": np.arange(n_writes),
            "author_id": skewed_foreign_keys(n_writes, n_authors, rng),
            "pub_id": skewed_foreign_keys(n_writes, n_pubs, rng),
        },
    )

    return Database([author, venue, publication, writes], name="mas")


_J_PUB_VENUE = JoinCondition("publication.venue_id", "venue.id")
_J_WRITES_AUTHOR = JoinCondition("writes.author_id", "author.id")
_J_WRITES_PUB = JoinCondition("writes.pub_id", "publication.id")


def make_mas_workload(db: Database, n_queries: int = 50, seed: int = 777) -> Workload:
    """MAS-style SPJ workload."""
    rng = np.random.default_rng(seed)
    stats = compute_database_stats(db)
    draw_predicate = make_pooled_predicate_sampler(rng)
    queries = []
    template_picks = rng.integers(0, 4, size=n_queries)
    for i, template in enumerate(template_picks):
        name = f"mas_q{i:03d}"
        if template == 0:
            predicates = [
                draw_predicate("range", stats["publication"], "publication", "year", rng),
                draw_predicate("threshold", stats["publication"],
                               "publication", "citations", rng),
            ]
            queries.append(
                assemble_spj(["publication"], [], predicates, name=name,
                             projection=["publication.title", "publication.year",
                                         "publication.citations"])
            )
        elif template == 1:
            predicates = [
                draw_predicate("equality", stats["venue"], "venue", "area", rng),
                draw_predicate("range", stats["publication"], "publication", "year", rng),
            ]
            queries.append(
                assemble_spj(
                    ["publication", "venue"], [_J_PUB_VENUE], predicates, name=name,
                    projection=["publication.title", "venue.name", "venue.area"],
                )
            )
        elif template == 2:
            predicates = [
                draw_predicate("in", stats["author"], "author",
                                    "affiliation_country", rng,
                                    n_values=int(rng.integers(1, 3))),
                draw_predicate("threshold", stats["author"], "author", "h_index", rng),
            ]
            queries.append(
                assemble_spj(
                    ["author", "writes", "publication"],
                    [_J_WRITES_AUTHOR, _J_WRITES_PUB],
                    predicates,
                    name=name,
                    projection=["author.name", "publication.title",
                                "publication.year"],
                )
            )
        else:
            predicates = [
                draw_predicate("equality", stats["venue"], "venue", "venue_type", rng),
                draw_predicate("equality", stats["venue"], "venue", "area", rng),
                draw_predicate("threshold", stats["publication"],
                               "publication", "citations", rng),
            ]
            queries.append(
                assemble_spj(
                    ["author", "writes", "publication", "venue"],
                    [_J_WRITES_AUTHOR, _J_WRITES_PUB, _J_PUB_VENUE],
                    predicates,
                    name=name,
                    projection=["author.name", "publication.title", "venue.name"],
                )
            )
    weights = np.asarray(
        [1.0 / (1.0 + 0.04 * i) for i in range(len(queries))], dtype=np.float64
    )
    return Workload(queries, weights, name="mas")


def make_mas_aggregate_workload(
    db: Database, n_queries: int = 20, seed: int = 778
) -> Workload:
    rng = np.random.default_rng(seed)
    stats = compute_database_stats(db)
    draw_predicate = make_pooled_predicate_sampler(rng)
    queries = []
    for i in range(n_queries):
        name = f"mas_agg{i:03d}"
        template = int(rng.integers(0, 3))
        if template == 0:
            queries.append(
                assemble_aggregate(
                    ["publication"], [],
                    [draw_predicate("range", stats["publication"], "publication",
                                            "year", rng)],
                    AggFunc.COUNT, None, name=name,
                )
            )
        elif template == 1:
            queries.append(
                assemble_aggregate(
                    ["publication", "venue"], [_J_PUB_VENUE],
                    [draw_predicate("threshold", stats["publication"], "publication",
                                                "citations", rng)],
                    AggFunc.AVG, "publication.citations",
                    group_by=("venue.area",), name=name,
                )
            )
        else:
            queries.append(
                assemble_aggregate(
                    ["author"], [],
                    [draw_predicate("equality", stats["author"], "author",
                                               "affiliation_country", rng)],
                    AggFunc.MAX, "author.h_index", name=name,
                )
            )
    return Workload(queries, name="mas_agg")


def load_mas(
    scale: float = 1.0,
    seed: int = 9090,
    n_queries: int = 50,
    n_aggregate_queries: int = 20,
) -> DatasetBundle:
    """The full MAS bundle."""
    db = make_mas_database(scale=scale, seed=seed)
    return DatasetBundle(
        name="mas",
        db=db,
        workload=make_mas_workload(db, n_queries=n_queries, seed=seed + 1),
        aggregate_workload=make_mas_aggregate_workload(
            db, n_queries=n_aggregate_queries, seed=seed + 2
        ),
    )
