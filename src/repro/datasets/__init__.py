"""Benchmark datasets: seeded synthetic IMDB-JOB, MAS and FLIGHTS bundles."""

from .flights import (
    load_flights,
    make_flights_aggregate_workload,
    make_flights_database,
    make_flights_workload,
)
from .imdb import (
    load_imdb,
    make_imdb_aggregate_workload,
    make_imdb_database,
    make_imdb_workload,
)
from .mas import (
    load_mas,
    make_mas_aggregate_workload,
    make_mas_database,
    make_mas_workload,
)
from .workloads import DatasetBundle, Workload

__all__ = [
    "DatasetBundle",
    "Workload",
    "load_flights",
    "load_imdb",
    "load_mas",
    "make_flights_aggregate_workload",
    "make_flights_database",
    "make_flights_workload",
    "make_imdb_aggregate_workload",
    "make_imdb_database",
    "make_imdb_workload",
    "make_mas_aggregate_workload",
    "make_mas_database",
    "make_mas_workload",
]
