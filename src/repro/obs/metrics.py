"""Process-global metrics: counters, gauges, and fixed-bucket histograms.

The registry is deliberately simple — names are flat dotted strings
(``"executor.queries"``, ``"kernel.join_positions.seconds"``), values are
floats, and histograms use a fixed exponential bucket ladder so
``observe`` is one bisect plus two adds. :meth:`MetricsRegistry.snapshot`
returns a JSON-ready dict (histograms include approximate p50/p95/p99
interpolated within buckets); :func:`write_jsonl` exports one metric per
line for downstream tooling.

All module-level helpers (:func:`add`, :func:`set_gauge`,
:func:`observe`) check ``STATE.enabled`` first, so instrumented call
sites cost one function call and one attribute read when observability
is off.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Any, Optional

from . import context as _context
from .clock import perf_counter
from .runtime import STATE

#: Default histogram bucket upper bounds: 1µs … ~100s, ×~3.16 per step.
#: Suits both kernel timings (sub-ms) and whole-training spans (minutes).
DEFAULT_BUCKETS = tuple(10.0 ** (e / 2.0) for e in range(-12, 5))

#: Exemplars retained per bucket. Replacement keeps the largest values
#: (deterministic "worst-value reservoir"): an SLO burn alert wants the
#: trace ids of the *slowest* requests in the offending buckets, and a
#: value-ordered policy makes merge_dump commutative/associative.
EXEMPLARS_PER_BUCKET = 2


class Histogram:
    """Fixed-bucket histogram with approximate percentiles.

    Samples observed while a :mod:`repro.obs.context` request context is
    active may carry the request's trace id; those become per-bucket
    *exemplars* — ``(value, trace_id, ts)`` triples linking the bucket
    back to concrete requests. Exemplar storage is bounded
    (``EXEMPLARS_PER_BUCKET`` per bucket, largest values win) and rides
    along in :meth:`dump`/:meth:`merge_dump`, so worker-side histograms
    keep their request attribution across the process boundary.
    """

    __slots__ = (
        "bounds", "counts", "overflow", "total", "sum", "min", "max",
        "exemplars",
    )

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.total = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        #: bucket index -> [(value, trace_id, ts)], None until first use
        #: (exemplar-free histograms stay one pointer bigger, nothing more).
        self.exemplars: Optional[dict[int, list[tuple[float, str, float]]]] = None

    def observe(
        self,
        value: float,
        trace_id: Optional[str] = None,
        ts: float = 0.0,
    ) -> None:
        index = bisect_left(self.bounds, value)
        if index < len(self.counts):
            self.counts[index] += 1
        else:
            self.overflow += 1
        self.total += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if trace_id is not None:
            self._note_exemplar(index, float(value), trace_id, float(ts))

    def _note_exemplar(
        self, index: int, value: float, trace_id: str, ts: float
    ) -> None:
        if self.exemplars is None:
            self.exemplars = {}
        bucket = self.exemplars.setdefault(index, [])
        bucket.append((value, trace_id, ts))
        if len(bucket) > EXEMPLARS_PER_BUCKET:
            # Keep the largest; ties break on (trace_id, ts) so the
            # surviving set is a pure function of the observed multiset.
            bucket.sort(reverse=True)
            del bucket[EXEMPLARS_PER_BUCKET:]

    def worst_exemplars(
        self, n: int = 3, largest: bool = True
    ) -> list[dict[str, Any]]:
        """The ``n`` worst-value exemplars across all buckets.

        "Worst" is directional: latency-style metrics (upper-bound SLOs)
        want the largest values, quality-style metrics such as
        ``quality.recall`` (lower-bound SLOs) want the smallest — pass
        ``largest=False`` for those. Per-bucket retention always keeps the
        largest values, but the bucket ladder is fine enough that the
        survivors of the lowest occupied buckets are representative of
        the minimum.
        """
        if not self.exemplars:
            return []
        flat = [triple for bucket in self.exemplars.values() for triple in bucket]
        flat.sort(reverse=largest)
        return [
            {"value": value, "trace_id": trace_id, "ts": ts}
            for value, trace_id, ts in flat[:n]
        ]

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (q in [0, 100]) from the buckets.

        Interpolates linearly inside the winning bucket; exact min/max are
        tracked separately, so the estimate is clamped into [min, max].
        """
        if self.total == 0:
            return float("nan")
        target = self.total * q / 100.0
        running = 0.0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if running + count >= target:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                fraction = (target - running) / count
                value = lower + fraction * (upper - lower)
                return float(min(max(value, self.min), self.max))
            running += count
        return self.max

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.total,
            "sum": self.sum,
            "min": self.min if self.total else None,
            "max": self.max if self.total else None,
            "mean": self.sum / self.total if self.total else None,
            "p50": self.percentile(50.0) if self.total else None,
            "p95": self.percentile(95.0) if self.total else None,
            "p99": self.percentile(99.0) if self.total else None,
        }

    # -- cross-process transport ------------------------------------ #
    def dump(self) -> dict[str, Any]:
        """Lossless, picklable state — the shape :meth:`merge_dump` eats.

        Unlike :meth:`snapshot` (percentile summaries), a dump keeps the
        raw bucket counts so histograms recorded in worker processes can
        be merged into the parent registry without losing resolution.
        """
        record = {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "total": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }
        if self.exemplars:
            record["exemplars"] = {
                str(index): [list(triple) for triple in bucket]
                for index, bucket in self.exemplars.items()
            }
        return record

    def merge_dump(self, dump: dict[str, Any]) -> None:
        """Fold another histogram's :meth:`dump` into this one.

        Same bucket ladder merges exactly (bucket-wise adds). A foreign
        ladder degrades gracefully: its observations are re-observed at
        their mean, preserving count/sum/min/max but not the shape.
        """
        total = int(dump.get("total", 0))
        if total == 0:
            return
        same_ladder = tuple(dump.get("bounds", ())) == self.bounds
        if same_ladder:
            for index, count in enumerate(dump["counts"]):
                self.counts[index] += int(count)
            self.overflow += int(dump.get("overflow", 0))
            self.total += total
            self.sum += float(dump.get("sum", 0.0))
            self.min = min(self.min, float(dump.get("min", self.min)))
            self.max = max(self.max, float(dump.get("max", self.max)))
        else:
            mean = float(dump.get("sum", 0.0)) / total
            for _ in range(total):
                self.observe(mean)
            self.min = min(self.min, float(dump.get("min", self.min)))
            self.max = max(self.max, float(dump.get("max", self.max)))
        for key, bucket in (dump.get("exemplars") or {}).items():
            for triple in bucket:
                value, trace_id, ts = triple
                # Same ladder: keep the recorded bucket. Foreign ladder:
                # re-bucket the exemplar value on this ladder, so request
                # attribution survives even a degraded merge.
                index = (
                    int(key) if same_ladder
                    else bisect_left(self.bounds, float(value))
                )
                self._note_exemplar(index, float(value), str(trace_id), float(ts))


class MetricsRegistry:
    """Thread-safe registry of named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- write paths ------------------------------------------------ #
    def add(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        trace_id: Optional[str] = None,
        ts: float = 0.0,
    ) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value, trace_id=trace_id, ts=ts)

    def merge(self, dump: dict[str, Any]) -> None:
        """Fold a worker-side metrics dump into this registry.

        ``dump`` is ``{"counters": {name: value}, "gauges": {name: value},
        "histograms": {name: Histogram.dump()}}`` (any key may be
        absent). Counters add, gauges overwrite (last writer wins — they
        are point-in-time readings), histograms merge bucket-wise via
        :meth:`Histogram.merge_dump`. This is how per-morsel records
        captured inside pool workers land in the parent's registry.
        """
        with self._lock:
            for name, value in (dump.get("counters") or {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + float(value)
            for name, value in (dump.get("gauges") or {}).items():
                self._gauges[name] = float(value)
            for name, hist_dump in (dump.get("histograms") or {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    bounds = tuple(hist_dump.get("bounds", DEFAULT_BUCKETS))
                    histogram = self._histograms[name] = Histogram(bounds)
                histogram.merge_dump(hist_dump)

    # -- read paths -------------------------------------------------- #
    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view: {"counters": {...}, "gauges": {...}, "histograms": {...}}."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: histogram.snapshot()
                    for name, histogram in self._histograms.items()
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_REGISTRY = MetricsRegistry()

#: Optional tap on histogram samples (installed by repro.obs.slo so
#: latency objectives see every observation); at most one, None when no
#: SLO tracker is configured.
_SAMPLE_HOOK = None


def registry() -> MetricsRegistry:
    """The process-global registry (always writable, even when disabled)."""
    return _REGISTRY


def set_sample_hook(hook) -> None:
    """Install (or clear, with None) the histogram-sample tap."""
    global _SAMPLE_HOOK
    _SAMPLE_HOOK = hook


def add(name: str, value: float = 1.0) -> None:
    """Increment a counter iff observability is enabled."""
    if STATE.enabled:
        _REGISTRY.add(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge iff observability is enabled."""
    if STATE.enabled:
        _REGISTRY.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample iff observability is enabled.

    When a request context is active the sample carries its trace id as
    a bucket exemplar (one ContextVar read on the enabled path; nothing
    when observability is off or no request is in flight).
    """
    if STATE.enabled:
        trace_id = _context.current_trace_id()
        if trace_id is not None:
            _REGISTRY.observe(name, value, trace_id=trace_id, ts=perf_counter())
        else:
            _REGISTRY.observe(name, value)
        hook = _SAMPLE_HOOK
        if hook is not None:
            hook(name, value)


def snapshot() -> dict[str, Any]:
    return _REGISTRY.snapshot()


def reset() -> None:
    _REGISTRY.reset()


def write_json(path: str) -> None:
    """Write the full snapshot as one JSON document."""
    with open(path, "w") as handle:
        json.dump(snapshot(), handle, indent=2, default=str)


def write_jsonl(path: str) -> None:
    """Write one ``{"kind", "name", ...}`` JSON line per metric."""
    snap = snapshot()
    with open(path, "w") as handle:
        for name, value in sorted(snap["counters"].items()):
            handle.write(
                json.dumps({"kind": "counter", "name": name, "value": value}) + "\n"
            )
        for name, value in sorted(snap["gauges"].items()):
            handle.write(
                json.dumps({"kind": "gauge", "name": name, "value": value}) + "\n"
            )
        for name, stats in sorted(snap["histograms"].items()):
            handle.write(
                json.dumps({"kind": "histogram", "name": name, **stats}) + "\n"
            )
