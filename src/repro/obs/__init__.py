"""Observability: tracing, metrics, telemetry, profiling, and SLOs.

Dependency-free instrumentation substrate for the whole system
(DESIGN.md §Observability):

* :mod:`repro.obs.context`   — request-scoped causal context: 128-bit
  trace ids + baggage in a context-local, propagated into fork workers;
* :mod:`repro.obs.trace`     — nestable spans with a thread-local stack,
  exported as a JSON tree or a Chrome-trace file;
* :mod:`repro.obs.sampling`  — tail-based trace retention: keep slow /
  errored / fallback / watchdog traces, head-sample the rest;
* :mod:`repro.obs.analyze`   — offline span-tree reconstruction,
  critical-path analysis, and run-vs-run latency diffs (import it
  directly — kept out of this package's eager imports);
* :mod:`repro.obs.metrics`   — process-global counters / gauges /
  fixed-bucket histograms (p50/p95/p99) with snapshot/reset and JSONL
  export;
* :mod:`repro.obs.telemetry` — structured JSONL event streams with a
  bounded in-memory ring and size/line-capped file rotation;
* :mod:`repro.obs.profiler`  — continuous sampling CPU profiler
  (collapsed stacks + HTML flamegraph, span-attributed samples);
* :mod:`repro.obs.memory`    — tracemalloc snapshots, allocator tables,
  and per-phase leak checks surfaced as gauges;
* :mod:`repro.obs.slo`       — declarative latency/answerability
  objectives with multi-window burn-rate alerts into the health pipeline;
* :mod:`repro.obs.quality`   — answer-quality accounting: shadow-audit
  bookkeeping, quality histograms, and calibration-drift alerts;
* :mod:`repro.obs.health`    — rolling-window WARN/CRIT rules over the
  diagnostic streams;
* :mod:`repro.obs.log`       — the sanctioned console/structured-log
  channels for library code.

Everything is off by default and *zero-overhead when disabled*: each
instrumentation site checks one module-level flag before allocating
anything (``benchmarks/bench_kernels.py --obs-check`` gates this; the
sampling profiler's own overhead is gated by ``--profile-check``).

Typical use::

    from repro import obs

    with obs.run("obs_run"):            # enable + telemetry sink; the
        ...  # train, query             # artifacts flush even if this
                                        # block raises

    with obs.run("obs_run", profile=True, memory_tracking=True,
                 slo_objectives=obs.slo.DEFAULT_OBJECTIVES):
        ...  # adds flamegraph.html, profile.collapsed.txt,
             # memory.json, slo.json
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterable, Iterator, Optional

from . import (
    context,
    health,
    log,
    memory,
    metrics,
    profiler,
    quality,
    sampling,
    slo,
    telemetry,
    trace,
)
from .runtime import STATE, disable, enable, is_enabled, observed

#: File names written into a run directory by :func:`finish_run`.
TELEMETRY_FILE = "telemetry.jsonl"
TRACE_FILE = "trace.json"
CHROME_TRACE_FILE = "trace_chrome.json"
METRICS_FILE = "metrics.json"
PROFILE_COLLAPSED_FILE = profiler.COLLAPSED_FILE
FLAMEGRAPH_FILE = profiler.FLAMEGRAPH_FILE
MEMORY_FILE = memory.MEMORY_FILE
SLO_FILE = slo.SLO_FILE
TRACES_FILE = sampling.TRACES_FILE
QUALITY_FILE = quality.QUALITY_FILE

__all__ = [
    "STATE",
    "disable",
    "enable",
    "is_enabled",
    "observed",
    "context",
    "health",
    "log",
    "memory",
    "metrics",
    "profiler",
    "quality",
    "sampling",
    "slo",
    "telemetry",
    "trace",
    "span",
    "run",
    "start_run",
    "finish_run",
    "TELEMETRY_FILE",
    "TRACE_FILE",
    "CHROME_TRACE_FILE",
    "METRICS_FILE",
    "PROFILE_COLLAPSED_FILE",
    "FLAMEGRAPH_FILE",
    "MEMORY_FILE",
    "SLO_FILE",
    "TRACES_FILE",
    "QUALITY_FILE",
]

#: Re-export of the most-used entry point.
span = trace.span


def start_run(
    directory: str,
    max_telemetry_bytes: Optional[int] = telemetry.DEFAULT_MAX_BYTES,
    telemetry_rotations: int = telemetry.DEFAULT_MAX_FILES,
    audit_rate: Optional[float] = None,
) -> str:
    """Enable observability with a JSONL telemetry sink under ``directory``.

    Clears any state left from a previous run so the directory captures
    exactly one run. The telemetry sink rotates at
    ``max_telemetry_bytes`` per file keeping ``telemetry_rotations``
    rotated files (None disables rotation), so unattended long runs
    stay bounded on disk. ``audit_rate`` sets the shadow-audit sample
    rate (default: ``REPRO_AUDIT_RATE`` or
    :data:`repro.obs.quality.DEFAULT_AUDIT_RATE`; values outside
    [0, 1] are rejected with a ValueError). Returns the directory path.
    """
    os.makedirs(directory, exist_ok=True)
    trace.reset()
    metrics.reset()
    telemetry.reset()
    health.reset()
    # Tail-based trace retention: every finished root span is offered to
    # the sampler, which keeps the interesting tail (slow / errored /
    # fallback / watchdog traces) and head-samples the rest.
    # REPRO_TRACE_HEAD_RATE overrides the baseline keep rate.
    head_rate = sampling.DEFAULT_HEAD_RATE
    raw_rate = os.environ.get("REPRO_TRACE_HEAD_RATE")
    if raw_rate:
        try:
            head_rate = min(1.0, max(0.0, float(raw_rate)))
        except ValueError:
            pass
    sampling.configure(head_rate=head_rate)
    # Answer-quality accounting + shadow auditing. Unlike the head rate
    # above, a bad audit rate raises (quality.validate_rate): silently
    # disabling ground-truth audits would be a correctness bug.
    quality.configure(sample_rate=audit_rate)
    telemetry.configure(
        os.path.join(directory, TELEMETRY_FILE),
        max_bytes=max_telemetry_bytes,
        max_files=telemetry_rotations,
    )
    enable()
    return directory


def _flush_continuous(directory: str) -> None:
    """Periodic artifact flush for live watching (``repro top``).

    Wired as the profiler's ``on_flush`` callback: alongside the
    collapsed stacks / flamegraph the profiler itself rewrites, this
    refreshes the metrics snapshot, the SLO status, and the memory
    summary, and lets SLO escalations alert mid-run.
    """
    metrics.write_json(os.path.join(directory, METRICS_FILE))
    if slo.is_active():
        slo.publish()
        slo.write_json(os.path.join(directory, SLO_FILE))
    if quality.is_active():
        quality.write_json(os.path.join(directory, QUALITY_FILE))
    if memory.is_active():
        memory.write_json(os.path.join(directory, MEMORY_FILE))


def finish_run(directory: str) -> dict[str, str]:
    """Flush every artifact into ``directory`` and disable.

    Returns a name → path map of everything written (the telemetry JSONL
    has been streaming there since :func:`start_run`). Teardown —
    disabling instrumentation, detaching the telemetry sink and the SLO
    hook, stopping the profiler and memory tracker — is guaranteed even
    if an artifact write fails, so :func:`run` never leaks an enabled
    observability state out of a crashed block.
    """
    paths = {
        "telemetry": os.path.join(directory, TELEMETRY_FILE),
        "trace": os.path.join(directory, TRACE_FILE),
        "chrome_trace": os.path.join(directory, CHROME_TRACE_FILE),
        "metrics": os.path.join(directory, METRICS_FILE),
    }
    try:
        finished = profiler.stop()
        if finished is not None:
            paths["profile_collapsed"] = os.path.join(
                directory, PROFILE_COLLAPSED_FILE
            )
            paths["flamegraph"] = os.path.join(directory, FLAMEGRAPH_FILE)
            finished.write_collapsed(paths["profile_collapsed"])
            finished.write_flamegraph(paths["flamegraph"])
            for name, samples in finished.span_samples().items():
                metrics.registry().set_gauge(
                    f"profile.span_samples.{name}", float(samples)
                )
        if slo.is_active():
            slo.publish()  # final escalations land in telemetry/health
            paths["slo"] = os.path.join(directory, SLO_FILE)
            slo.write_json(paths["slo"])
        if memory.is_active():
            # Write while tracemalloc is still tracing: the allocator
            # tables and traced-bytes figures vanish once it stops.
            paths["memory"] = os.path.join(directory, MEMORY_FILE)
            memory.write_json(paths["memory"])
            memory.stop()
        if sampling.is_active():
            paths["traces"] = os.path.join(directory, TRACES_FILE)
            sampling.write_json(paths["traces"])
        if quality.is_active():
            paths["quality"] = os.path.join(directory, QUALITY_FILE)
            quality.write_json(paths["quality"])
        trace.write_trace(paths["trace"])
        trace.write_chrome_trace(paths["chrome_trace"])
        metrics.write_json(paths["metrics"])
    finally:
        profiler.stop()
        memory.stop()
        slo.clear()
        sampling.clear()
        quality.clear()
        disable()
        telemetry.configure(None)
    return paths


@contextmanager
def run(
    directory: str,
    profile: bool = False,
    profile_hz: float = 100.0,
    memory_tracking: bool = False,
    slo_objectives: Optional[Iterable[str]] = None,
    max_telemetry_bytes: Optional[int] = telemetry.DEFAULT_MAX_BYTES,
    telemetry_rotations: int = telemetry.DEFAULT_MAX_FILES,
    audit_rate: Optional[float] = None,
) -> Iterator[str]:
    """One observability run as a context manager.

    Guarantees :func:`finish_run` — telemetry, metrics, trace, and any
    profiler/memory/SLO artifacts are flushed and instrumentation is
    torn down even when the wrapped block raises. ``profile`` starts the
    continuous sampling profiler (collapsed stacks + flamegraph,
    refreshed live for ``repro top``), ``memory_tracking`` starts the
    tracemalloc tracker, and ``slo_objectives`` installs declarative
    objectives (e.g. ``obs.slo.DEFAULT_OBJECTIVES``).
    """
    start_run(
        directory,
        max_telemetry_bytes=max_telemetry_bytes,
        telemetry_rotations=telemetry_rotations,
        audit_rate=audit_rate,
    )
    if slo_objectives:
        slo.configure(slo_objectives)
    if memory_tracking:
        memory.start()
    if profile:
        profiler.start(
            hz=profile_hz,
            output_dir=directory,
            on_flush=lambda: _flush_continuous(directory),
        )
    try:
        yield directory
    finally:
        finish_run(directory)
