"""Observability: tracing spans, a metrics registry, and telemetry streams.

Dependency-free instrumentation substrate for the whole system
(DESIGN.md §Observability):

* :mod:`repro.obs.trace`     — nestable spans with a thread-local stack,
  exported as a JSON tree or a Chrome-trace file;
* :mod:`repro.obs.metrics`   — process-global counters / gauges /
  fixed-bucket histograms (p50/p95/p99) with snapshot/reset and JSONL
  export;
* :mod:`repro.obs.telemetry` — structured JSONL event streams
  (``train.update`` rows from PPO, per-query ``query`` outcomes);
* :mod:`repro.obs.log`       — the sanctioned console/structured-log
  channels for library code.

Everything is off by default and *zero-overhead when disabled*: each
instrumentation site checks one module-level flag before allocating
anything (``benchmarks/bench_kernels.py --obs-check`` gates this).

Typical use::

    from repro import obs

    obs.start_run("obs_run")            # enable + telemetry sink
    ...  # train, query
    obs.finish_run("obs_run")           # trace.json, trace_chrome.json,
                                        # metrics.json next to telemetry.jsonl
"""

from __future__ import annotations

import os

from . import health, log, metrics, telemetry, trace
from .runtime import STATE, disable, enable, is_enabled, observed

#: File names written into a run directory by :func:`finish_run`.
TELEMETRY_FILE = "telemetry.jsonl"
TRACE_FILE = "trace.json"
CHROME_TRACE_FILE = "trace_chrome.json"
METRICS_FILE = "metrics.json"

__all__ = [
    "STATE",
    "disable",
    "enable",
    "is_enabled",
    "observed",
    "health",
    "log",
    "metrics",
    "telemetry",
    "trace",
    "span",
    "start_run",
    "finish_run",
    "TELEMETRY_FILE",
    "TRACE_FILE",
    "CHROME_TRACE_FILE",
    "METRICS_FILE",
]

#: Re-export of the most-used entry point.
span = trace.span


def start_run(directory: str) -> str:
    """Enable observability with a JSONL telemetry sink under ``directory``.

    Clears any state left from a previous run so the directory captures
    exactly one run. Returns the directory path.
    """
    os.makedirs(directory, exist_ok=True)
    trace.reset()
    metrics.reset()
    telemetry.reset()
    health.reset()
    telemetry.configure(os.path.join(directory, TELEMETRY_FILE))
    enable()
    return directory


def finish_run(directory: str) -> dict[str, str]:
    """Flush trace/metrics artifacts into ``directory`` and disable.

    Returns a name → path map of everything written (the telemetry JSONL
    has been streaming there since :func:`start_run`).
    """
    paths = {
        "telemetry": os.path.join(directory, TELEMETRY_FILE),
        "trace": os.path.join(directory, TRACE_FILE),
        "chrome_trace": os.path.join(directory, CHROME_TRACE_FILE),
        "metrics": os.path.join(directory, METRICS_FILE),
    }
    trace.write_trace(paths["trace"])
    trace.write_chrome_trace(paths["chrome_trace"])
    metrics.write_json(paths["metrics"])
    disable()
    telemetry.configure(None)
    return paths
