"""``repro watch`` — a dependency-free live ops console for a run dir.

Tails the artifacts a live run flushes periodically (the telemetry
JSONL and its rotated set, ``metrics.json``, ``slo.json``) and renders
one operator-facing text frame:

* rolling throughput — QPS plus p50/p95 latency over the trailing
  window of ``query`` telemetry records;
* worker utilization — one bar per pool worker, busy time over query
  wall time, from the per-query ``parallel`` stream (DESIGN.md §11),
  with the skew ratio and straggler count beside it;
* shed/fallback counts — serial fallbacks by reason, watchdog
  timeouts, admission sheds (once the serving front end exists);
* answer quality — shadow-audit accounting from ``quality.json``
  (audited recall, calibration bias, audit overhead);
* tail-sampler keep reasons from ``traces.json`` — why retained traces
  were kept (error / low_quality / slow / …) and how many were shed;
* active SLO burn alerts from ``slo.json``.

Like ``repro top``, this module only *reads* files, so it can watch a
run owned by another process; the CLI refreshes the frame in place
(``--once`` prints a single snapshot for CI). "Now" is taken from the
newest record timestamp rather than the wall clock, so a snapshot of a
finished run renders the same frame every time.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional

from . import METRICS_FILE, QUALITY_FILE, SLO_FILE, TELEMETRY_FILE, TRACES_FILE
from . import health as health_mod
from . import telemetry as telemetry_mod

#: Trailing window (seconds of record time) for the QPS rate.
QPS_WINDOW_S = 60.0

#: Trailing query records for the latency percentiles.
LATENCY_WINDOW = 100

#: Trailing parallel-query records for the worker utilization bars.
UTILIZATION_WINDOW = 20

_BAR_WIDTH = 24


def _load_json(path: str) -> Optional[Any]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(
        len(sorted_values) - 1, max(0, round(q / 100.0 * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = round(fraction * width)
    return "█" * filled + "░" * (width - filled)


def render_watch(run_dir: str, width: int = 78) -> str:
    """One text frame of the ops view ``repro watch`` refreshes."""

    def rule(title: str) -> str:
        return f"── {title} " + "─" * max(0, width - len(title) - 4)

    records = telemetry_mod.load_run(os.path.join(run_dir, TELEMETRY_FILE))
    snapshot = _load_json(os.path.join(run_dir, METRICS_FILE)) or {}
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})

    pool_workers = gauges.get("parallel.pool.workers")
    generation = gauges.get("parallel.pool.generation")
    pool_note = ""
    if generation is not None:
        state = (
            f"{pool_workers:.0f} workers"
            if pool_workers
            else "pool down"
        )
        pool_note = f"  [pool gen {generation:.0f}: {state}]"
    lines = [f"repro watch — {run_dir}{pool_note}"]
    lines.append(f"telemetry: {len(records)} records")

    # -- rolling throughput ------------------------------------------ #
    lines.append(rule("throughput"))
    query_records = [r for r in records if r.get("stream") == "query"]
    if query_records:
        timestamps = [float(r.get("ts", 0.0)) for r in query_records]
        now = max(timestamps)
        in_window = sum(1 for ts in timestamps if now - ts <= QPS_WINDOW_S)
        qps = in_window / QPS_WINDOW_S
        latencies = sorted(
            float(r.get("elapsed_seconds", 0.0))
            for r in query_records[-LATENCY_WINDOW:]
        )
        lines.append(
            f"  {len(query_records)} queries | last {QPS_WINDOW_S:.0f}s: "
            f"{in_window} ({qps:.2f} qps) | "
            f"p50 {_percentile(latencies, 50.0) * 1e3:.1f} ms  "
            f"p95 {_percentile(latencies, 95.0) * 1e3:.1f} ms "
            f"(trailing {len(latencies)})"
        )
    else:
        lines.append("  (no query records yet)")

    # -- worker utilization ------------------------------------------ #
    lines.append(rule("worker utilization"))
    parallel_queries = [
        r
        for r in records
        if r.get("stream") == "parallel" and r.get("event") == "query"
    ][-UTILIZATION_WINDOW:]
    busy_by_pid: dict[str, float] = {}
    wall_total = 0.0
    for record in parallel_queries:
        wall_total += float(record.get("wall_seconds", 0.0))
        for pid, busy in (record.get("worker_busy") or {}).items():
            busy_by_pid[pid] = busy_by_pid.get(pid, 0.0) + float(busy)
    if busy_by_pid and wall_total > 0.0:
        for pid, busy in sorted(busy_by_pid.items()):
            fraction = busy / wall_total
            lines.append(
                f"  pid {pid:>8} {_bar(fraction)} {fraction:6.1%} "
                f"({busy * 1e3:.1f} ms busy)"
            )
        last = parallel_queries[-1]
        lines.append(
            f"  last query: skew {last.get('skew_ratio', 1.0):.2f}, "
            f"{last.get('stragglers', 0)} stragglers, "
            f"{last.get('morsels', 0)} morsels "
            f"(trailing {len(parallel_queries)} parallel queries)"
        )
    else:
        lines.append("  (no parallel queries yet)")

    # -- shed / fallback counts -------------------------------------- #
    lines.append(rule("shed & fallbacks"))
    dispatches = counters.get("parallel.dispatches", 0)
    fallbacks = counters.get("parallel.fallbacks", 0)
    watchdog = counters.get("parallel.watchdog.timeouts", 0)
    shed = counters.get("serve.shed", 0)
    reasons = {
        name[len("parallel.fallbacks."):]: count
        for name, count in counters.items()
        if name.startswith("parallel.fallbacks.")
    }
    reason_note = (
        " ("
        + ", ".join(
            f"{reason} ×{count:.0f}" for reason, count in sorted(reasons.items())
        )
        + ")"
        if reasons
        else ""
    )
    lines.append(
        f"  dispatches {dispatches:.0f} | fallbacks {fallbacks:.0f}"
        f"{reason_note} | watchdog timeouts {watchdog:.0f} | "
        f"shed {shed:.0f}"
    )

    # -- answer quality ---------------------------------------------- #
    lines.append(rule("answer quality"))
    quality_doc = _load_json(os.path.join(run_dir, QUALITY_FILE))
    if quality_doc:
        qcounts = quality_doc.get("counts", {})
        recall = quality_doc.get("mean_recall")
        bias = quality_doc.get("calibration_bias")
        overhead = quality_doc.get("overhead_fraction", 0.0)
        lines.append(
            f"  audits {qcounts.get('audits', 0)}/"
            f"{qcounts.get('approx_queries', 0)} approx answers | "
            f"recall "
            + (f"{float(recall):.3f}" if recall is not None else "-")
            + f" | bias "
            + (f"{float(bias):+.3f}" if bias is not None else "-")
            + f" | overhead {float(overhead or 0.0):.2%} | "
            f"low-quality {qcounts.get('low_quality', 0)} | "
            f"drift events {qcounts.get('drift_events', 0)}"
        )
    else:
        lines.append("  (no quality.json yet — shadow auditing disabled)")

    # -- tail-sampler keep reasons ------------------------------------ #
    lines.append(rule("trace keep reasons"))
    traces_doc = _load_json(os.path.join(run_dir, TRACES_FILE))
    tcounts = (traces_doc or {}).get("counts") or {}
    kept_by_reason = {
        name[len("kept_"):]: count
        for name, count in tcounts.items()
        if name.startswith("kept_") and count
    }
    if tcounts:
        kept_note = (
            ", ".join(
                f"{reason} ×{count}"
                for reason, count in sorted(
                    kept_by_reason.items(), key=lambda kv: -kv[1]
                )
            )
            or "none kept"
        )
        lines.append(
            f"  kept {sum(kept_by_reason.values())}"
            f"/{tcounts.get('offered', 0)} offered ({kept_note}) | "
            f"head-dropped {tcounts.get('dropped_head', 0)} | "
            f"evicted {tcounts.get('evicted', 0)}"
        )
    else:
        lines.append("  (no traces.json yet)")

    # -- SLO burn ---------------------------------------------------- #
    lines.append(rule("SLO burn"))
    slo_doc = _load_json(os.path.join(run_dir, SLO_FILE))
    active = [
        status
        for status in (slo_doc or {}).get("objectives", [])
        if status.get("severity")
    ]
    if active:
        for status in active:
            value = status.get("value")
            shown = "-" if value is None else f"{value:.4g}"
            lines.append(
                f"  {status.get('severity')}: {status.get('spec', '?'):<38} "
                f"{shown:>10}  burn {status.get('burn_rate', 0.0):.1f}x"
            )
            exemplars = status.get("exemplar_trace_ids") or []
            if exemplars:
                shown_ids = ", ".join(tid[:16] for tid in exemplars[:3])
                lines.append(
                    f"    worst traces: {shown_ids}"
                    "  (repro analyze --trace <id>)"
                )
    elif slo_doc and slo_doc.get("objectives"):
        lines.append("  all objectives within budget")
    else:
        lines.append("  (no slo.json yet)")

    # -- recent health ------------------------------------------------ #
    health_records = [r for r in records if r.get("stream") == "health"]
    crit = sum(
        1 for r in health_records if r.get("severity") == health_mod.CRIT
    )
    warn = sum(
        1 for r in health_records if r.get("severity") == health_mod.WARN
    )
    lines.append(rule("health"))
    lines.append(f"  {crit} CRIT, {warn} WARN")
    for record in health_records[-3:]:
        lines.append(
            f"  {record.get('severity', '?'):>4} {record.get('rule', '?')}: "
            f"{record.get('message', '')}"
        )
    return "\n".join(lines)
