"""Training health monitor: threshold rules over the diagnostic streams.

:class:`HealthMonitor` consumes the same flat dicts the telemetry
streams carry — per-iteration ``train.update`` fields (KL, entropy, clip
fraction, explained variance, grad norm, reward), per-query calibration
pairs (estimator confidence vs realized frame score), and drift events —
and applies rolling-window threshold rules. Each violation produces a
structured :class:`Alert` (WARN or CRIT) that is kept in memory,
emitted on the ``health`` telemetry stream, and counted in the metrics
registry, so ``repro report`` and tests can interrogate a run's health
without re-deriving the rules.

The monitor takes plain dicts, not trainer objects: ``repro.obs`` never
imports ``repro.core``/``repro.rl`` (the dependency points the other
way), which also lets reports re-run the rules over recorded JSONL.

Rule sizing: CRIT thresholds mark runs that are mathematically broken
(non-finite losses, KL far beyond any trust region, gradient norms
orders of magnitude above the run's own median) and stay silent on
healthy micro-runs; WARN thresholds flag drifts worth a look (entropy
collapse, sustained useless critic, miscalibrated estimator).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from . import metrics as _metrics
from . import telemetry as _telemetry

WARN = "WARN"
CRIT = "CRIT"

#: Alert history retained per monitor (ring; severity *counts* keep
#: accumulating past the cap, so week-long runs stay bounded without
#: losing the totals).
MAX_ALERTS = 512


@dataclass
class Alert:
    """One structured health alert."""

    severity: str                 # WARN | CRIT
    rule: str                     # e.g. "kl_spike", "non_finite"
    message: str
    value: Optional[float] = None
    threshold: Optional[float] = None
    iteration: Optional[int] = None

    def telemetry_fields(self) -> dict[str, Any]:
        fields: dict[str, Any] = {
            "severity": self.severity,
            "rule": self.rule,
            "message": self.message,
        }
        if self.value is not None:
            fields["value"] = self.value
        if self.threshold is not None:
            fields["threshold"] = self.threshold
        if self.iteration is not None:
            fields["iteration"] = self.iteration
        return fields


@dataclass
class HealthThresholds:
    """Tunable rule thresholds (defaults sized for the paper's PPO)."""

    kl_warn: float = 0.5          # healthy PPO-clip KL is ~1e-3..1e-1
    kl_crit: float = 2.0          # far beyond any trust region
    clip_fraction_warn: float = 0.5
    clip_fraction_crit: float = 0.9
    entropy_collapse_fraction: float = 0.05   # vs the run's initial entropy
    grad_norm_warn_ratio: float = 10.0        # vs rolling median
    grad_norm_crit_ratio: float = 100.0
    explained_variance_warn: float = -0.5     # sustained (window mean)
    reward_drop_warn_fraction: float = 0.5    # drop vs best, of reward range
    calibration_warn: float = 0.4             # mean |confidence − realized|
    min_window: int = 3           # samples needed before relative rules fire


#: Keys of ``train.update`` records that must stay finite.
_FINITE_KEYS = (
    "mean_episode_reward",
    "policy_loss",
    "value_loss",
    "entropy",
    "kl_divergence",
    "grad_norm",
)


class HealthMonitor:
    """Applies rolling-window health rules and collects alerts."""

    def __init__(
        self,
        thresholds: Optional[HealthThresholds] = None,
        window: int = 10,
    ) -> None:
        self.thresholds = thresholds or HealthThresholds()
        self.window = window
        self.alerts: deque[Alert] = deque(maxlen=MAX_ALERTS)
        self._severity_counts: dict[str, int] = {}
        self._grad_norms: deque[float] = deque(maxlen=window)
        self._explained: deque[float] = deque(maxlen=window)
        self._calibration: deque[float] = deque(maxlen=window)
        self._rewards: deque[float] = deque(maxlen=window)
        self._initial_entropy: Optional[float] = None
        self._best_reward = -math.inf
        self._worst_reward = math.inf

    # -- inputs ------------------------------------------------------ #
    def observe_update(self, fields: dict[str, Any]) -> list[Alert]:
        """Check one ``train.update`` record (an IterationRecord dict)."""
        t = self.thresholds
        iteration = fields.get("iteration")
        new: list[Alert] = []

        for key in _FINITE_KEYS:
            value = fields.get(key)
            if value is not None and not math.isfinite(float(value)):
                new.append(Alert(
                    CRIT, "non_finite",
                    f"{key} is {value!r} at iteration {iteration}",
                    iteration=iteration,
                ))

        kl = float(fields.get("kl_divergence", 0.0) or 0.0)
        if math.isfinite(kl) and kl > t.kl_crit:
            new.append(Alert(
                CRIT, "kl_spike",
                f"KL divergence {kl:.3f} exceeds {t.kl_crit} — the policy "
                "jumped far outside the trust region",
                value=kl, threshold=t.kl_crit, iteration=iteration,
            ))
        elif math.isfinite(kl) and kl > t.kl_warn:
            new.append(Alert(
                WARN, "kl_spike",
                f"KL divergence {kl:.3f} exceeds {t.kl_warn}",
                value=kl, threshold=t.kl_warn, iteration=iteration,
            ))

        clip = float(fields.get("clip_fraction", 0.0) or 0.0)
        if clip > t.clip_fraction_crit:
            new.append(Alert(
                CRIT, "clip_saturation",
                f"clip fraction {clip:.2f} — nearly every sample is "
                "clipped, the surrogate gradient is mostly zeroed",
                value=clip, threshold=t.clip_fraction_crit,
                iteration=iteration,
            ))
        elif clip > t.clip_fraction_warn:
            new.append(Alert(
                WARN, "clip_saturation",
                f"clip fraction {clip:.2f} exceeds {t.clip_fraction_warn}",
                value=clip, threshold=t.clip_fraction_warn,
                iteration=iteration,
            ))

        entropy = fields.get("entropy")
        if entropy is not None and math.isfinite(float(entropy)):
            entropy = float(entropy)
            if self._initial_entropy is None and entropy > 0:
                self._initial_entropy = entropy
            elif (
                self._initial_entropy
                and entropy < t.entropy_collapse_fraction * self._initial_entropy
            ):
                new.append(Alert(
                    WARN, "entropy_collapse",
                    f"entropy {entropy:.4f} fell below "
                    f"{t.entropy_collapse_fraction:.0%} of the initial "
                    f"{self._initial_entropy:.4f} — the policy may have "
                    "collapsed prematurely",
                    value=entropy,
                    threshold=t.entropy_collapse_fraction * self._initial_entropy,
                    iteration=iteration,
                ))

        grad = fields.get("grad_norm")
        if grad is not None and math.isfinite(float(grad)):
            grad = float(grad)
            if len(self._grad_norms) >= t.min_window:
                ordered = sorted(self._grad_norms)
                median = ordered[len(ordered) // 2]
                if median > 0 and grad > t.grad_norm_crit_ratio * median:
                    new.append(Alert(
                        CRIT, "grad_norm_spike",
                        f"pre-clip gradient norm {grad:.3g} is more than "
                        f"{t.grad_norm_crit_ratio:.0f}x the rolling median "
                        f"{median:.3g}",
                        value=grad,
                        threshold=t.grad_norm_crit_ratio * median,
                        iteration=iteration,
                    ))
                elif median > 0 and grad > t.grad_norm_warn_ratio * median:
                    new.append(Alert(
                        WARN, "grad_norm_spike",
                        f"pre-clip gradient norm {grad:.3g} is more than "
                        f"{t.grad_norm_warn_ratio:.0f}x the rolling median "
                        f"{median:.3g}",
                        value=grad,
                        threshold=t.grad_norm_warn_ratio * median,
                        iteration=iteration,
                    ))
            self._grad_norms.append(grad)

        ev = fields.get("explained_variance")
        if ev is not None and math.isfinite(float(ev)):
            self._explained.append(float(ev))
            if len(self._explained) >= t.min_window:
                mean_ev = sum(self._explained) / len(self._explained)
                if mean_ev < t.explained_variance_warn:
                    new.append(Alert(
                        WARN, "critic_useless",
                        f"explained variance averaged {mean_ev:.2f} over the "
                        f"last {len(self._explained)} iterations — the "
                        "critic is worse than predicting the mean return",
                        value=mean_ev, threshold=t.explained_variance_warn,
                        iteration=iteration,
                    ))

        reward = fields.get("mean_episode_reward")
        if reward is not None and math.isfinite(float(reward)):
            reward = float(reward)
            self._rewards.append(reward)
            self._best_reward = max(self._best_reward, reward)
            self._worst_reward = min(self._worst_reward, reward)
            span = self._best_reward - self._worst_reward
            if (
                len(self._rewards) >= t.min_window
                and span > 1e-9
                and reward < self._best_reward - t.reward_drop_warn_fraction * span
            ):
                new.append(Alert(
                    WARN, "reward_collapse",
                    f"mean episode reward {reward:.4f} dropped more than "
                    f"{t.reward_drop_warn_fraction:.0%} of the observed range "
                    f"below the best {self._best_reward:.4f}",
                    value=reward,
                    threshold=self._best_reward
                    - t.reward_drop_warn_fraction * span,
                    iteration=iteration,
                ))

        return self._publish(new)

    def observe_calibration(
        self, confidence: float, realized: float
    ) -> list[Alert]:
        """Check one estimator calibration pair from a routed query."""
        t = self.thresholds
        new: list[Alert] = []
        error = abs(float(confidence) - float(realized))
        if math.isfinite(error):
            self._calibration.append(error)
            if len(self._calibration) >= t.min_window:
                mean_error = sum(self._calibration) / len(self._calibration)
                if mean_error > t.calibration_warn:
                    new.append(Alert(
                        WARN, "estimator_miscalibrated",
                        f"mean |confidence − realized| is {mean_error:.2f} "
                        f"over the last {len(self._calibration)} queries — "
                        "the answerability estimator is poorly calibrated",
                        value=mean_error, threshold=t.calibration_warn,
                    ))
        return self._publish(new)

    def observe_drift(self, fields: Optional[dict[str, Any]] = None) -> list[Alert]:
        """Record an interest-drift event (informational WARN)."""
        fields = fields or {}
        if fields.get("external"):
            # Externally sourced drift signals (e.g. the quality
            # pipeline's calibration drift relayed through
            # core.drift.observe_external) publish their own alerts;
            # re-deriving an interest-drift WARN here would double-count.
            return []
        message = "interest drift detected"
        deviation = fields.get("mean_deviation")
        if deviation is not None:
            message += (
                f" after {fields.get('pending_count', '?')} low-confidence "
                f"queries (mean deviation {float(deviation):.2f})"
            )
        alert = Alert(WARN, "interest_drift", message, value=deviation)
        return self._publish([alert])

    def observe_quality(self, fields: dict[str, Any]) -> list[Alert]:
        """Re-derive alerts from a recorded ``quality`` stream record.

        The live run publishes calibration-drift alerts directly from
        :mod:`repro.obs.quality`; replay reconstructs the same alert
        from the recorded escalation so reports over JSONL agree with
        what the live monitor saw.
        """
        if fields.get("kind") != "calibration_drift":
            return []
        severity = fields.get("severity")
        if severity not in (WARN, CRIT):
            severity = WARN
        bias = fields.get("bias")
        message = "recorded calibration drift"
        if bias is not None:
            message += (
                f": predicted-vs-observed bias {float(bias):+.2f} over "
                f"{fields.get('window', '?')} approximation answers"
            )
        alert = Alert(severity, "quality_calibration_drift", message, value=bias)
        return self._publish([alert])

    # -- outputs ----------------------------------------------------- #
    def _publish(self, new: list[Alert]) -> list[Alert]:
        for alert in new:
            self.alerts.append(alert)
            self._severity_counts[alert.severity] = (
                self._severity_counts.get(alert.severity, 0) + 1
            )
            _telemetry.emit("health", **alert.telemetry_fields())
            _metrics.add(f"health.alerts.{alert.severity.lower()}")
        return new

    def publish(self, alerts: list[Alert]) -> list[Alert]:
        """Record externally derived alerts (the SLO tracker's entry point)."""
        return self._publish(alerts)

    def counts(self) -> dict[str, int]:
        return {WARN: 0, CRIT: 0, **self._severity_counts}

    def worst_severity(self) -> Optional[str]:
        counts = self.counts()
        if counts.get(CRIT):
            return CRIT
        if counts.get(WARN):
            return WARN
        return None

    def summary(self) -> dict[str, Any]:
        """JSON-ready view for reports."""
        return {
            "counts": self.counts(),
            "worst": self.worst_severity(),
            "alerts": [alert.telemetry_fields() for alert in self.alerts],
        }


def replay(
    records: list[dict[str, Any]],
    thresholds: Optional[HealthThresholds] = None,
    window: int = 10,
) -> HealthMonitor:
    """Re-run the health rules over recorded telemetry JSONL records.

    Used by ``repro report`` to evaluate runs recorded before the
    monitor existed (or with it disabled); alerts are collected on the
    returned monitor but not re-emitted (emission requires an enabled
    observability run).
    """
    monitor = HealthMonitor(thresholds, window=window)
    for record in records:
        stream = record.get("stream")
        if stream == "train.update":
            monitor.observe_update(record)
        elif stream == "query":
            confidence = record.get("confidence")
            realized = record.get("realized_frame_score")
            if confidence is not None and realized is not None:
                monitor.observe_calibration(confidence, realized)
            if record.get("drift"):
                monitor.observe_drift(record)
        elif stream == "drift":
            monitor.observe_drift(record)
        elif stream == "quality":
            monitor.observe_quality(record)
    return monitor


_ACTIVE: list[HealthMonitor] = []


def active_monitor() -> HealthMonitor:
    """The process-wide monitor (created on first use).

    The trainer and the query session feed this shared instance so one
    ``repro demo --telemetry`` run accumulates a single alert history.
    """
    if not _ACTIVE:
        _ACTIVE.append(HealthMonitor())
    return _ACTIVE[0]


def reset() -> None:
    """Drop the process-wide monitor (tests / run boundaries)."""
    _ACTIVE.clear()
