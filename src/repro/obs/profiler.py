"""Continuous sampling CPU profiler (dependency-free, stdlib-only).

A daemon thread wakes ``hz`` times per second, snapshots every live
thread's Python stack via ``sys._current_frames()``, and aggregates the
frames into *collapsed stacks* — the ``frame;frame;frame count`` text
format of Brendan Gregg's flamegraph tooling. Each sample is attributed
to the innermost active tracing span of the sampled thread (read from
:mod:`repro.obs.trace`'s cross-thread stack registry), so a profile of a
mediator run answers not just "which function is hot" but "hot *inside
which* ``session.query`` / ``train.rollout`` span".

Exports:

* :meth:`SamplingProfiler.collapsed` — collapsed-stack text
  (``speedscope``, ``flamegraph.pl``, and ``inferno`` all read it);
* :meth:`SamplingProfiler.write_flamegraph` — a self-contained HTML
  flamegraph (inline CSS/JS, click-to-zoom, no network access);
* :meth:`SamplingProfiler.hot_functions` /
  :meth:`SamplingProfiler.span_samples` — the tables ``repro top`` and
  ``repro report`` render.

The profiler is independent of the ``STATE.enabled`` observability
flag: it costs nothing unless explicitly started (``repro profile``,
``obs.run(profile=True)``), and its sampling overhead at 100 hz is
gated below 5% by ``benchmarks/bench_kernels.py --profile-check``.

Memory is bounded everywhere: stacks deeper than ``max_depth`` are
truncated, and at most ``max_unique_stacks`` distinct stacks are kept —
further new shapes aggregate under a single ``(overflow)`` key, counted
in :attr:`SamplingProfiler.dropped_stacks`.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from html import escape
from typing import Any, Callable, Optional

from . import trace as _trace

#: Frame used when a sample lands outside any tracing span.
NO_SPAN = "span:-"

#: Aggregation key once ``max_unique_stacks`` distinct stacks exist.
OVERFLOW_FRAME = "(overflow)"


def _frame_label(code) -> str:
    """``repro/db/executor.py:execute`` — short, collapsed-stack-safe."""
    filename = code.co_filename.replace("\\", "/")
    marker = filename.rfind("/repro/")
    if marker >= 0:
        filename = filename[marker + 1:]
    else:
        filename = os.path.basename(filename)
    return f"{filename}:{code.co_name}".replace(";", ",").replace(" ", "_")


class SamplingProfiler:
    """Background statistical profiler over ``sys._current_frames()``."""

    def __init__(
        self,
        hz: float = 100.0,
        max_depth: int = 64,
        max_unique_stacks: int = 20_000,
        output_dir: Optional[str] = None,
        flush_every_s: float = 2.0,
        on_flush: Optional[Callable[[], None]] = None,
    ) -> None:
        self.hz = float(min(max(hz, 1.0), 1000.0))
        self.max_depth = max_depth
        self.max_unique_stacks = max_unique_stacks
        self.output_dir = output_dir
        self.flush_every_s = flush_every_s
        self.on_flush = on_flush
        self.sample_count = 0
        self.dropped_stacks = 0
        self.started_s = 0.0
        self.stopped_s = 0.0
        self._counts: dict[tuple[str, ...], int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle --------------------------------------------------- #
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self.started_s = time.perf_counter()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        self.stopped_s = time.perf_counter()
        if self.output_dir:
            self._flush_artifacts()
        return self

    def is_running(self) -> bool:
        return self._thread is not None

    # -- sampling ---------------------------------------------------- #
    def _sample_loop(self) -> None:
        interval = 1.0 / self.hz
        own_ident = threading.get_ident()
        next_flush = time.perf_counter() + self.flush_every_s
        while not self._stop.wait(interval):
            self._take_sample(own_ident)
            if self.output_dir and time.perf_counter() >= next_flush:
                self._flush_artifacts()
                next_flush = time.perf_counter() + self.flush_every_s

    def _take_sample(self, own_ident: int) -> None:
        frames = sys._current_frames()
        sampled: list[tuple[str, ...]] = []
        for tid, frame in frames.items():
            if tid == own_ident:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(_frame_label(frame.f_code))
                frame = frame.f_back
                depth += 1
            stack.reverse()
            span_name = _trace.active_span_name(tid)
            stack.insert(0, f"span:{span_name}" if span_name else NO_SPAN)
            sampled.append(tuple(stack))
        del frames
        with self._lock:
            self.sample_count += 1
            for key in sampled:
                if (
                    key not in self._counts
                    and len(self._counts) >= self.max_unique_stacks
                ):
                    self.dropped_stacks += 1
                    key = (OVERFLOW_FRAME,)
                self._counts[key] = self._counts.get(key, 0) + 1

    def _flush_artifacts(self) -> None:
        """Write the live artifacts so ``repro top`` can watch a run."""
        assert self.output_dir is not None
        self.write_collapsed(os.path.join(self.output_dir, COLLAPSED_FILE))
        self.write_flamegraph(os.path.join(self.output_dir, FLAMEGRAPH_FILE))
        if self.on_flush is not None:
            self.on_flush()

    # -- views ------------------------------------------------------- #
    def stack_counts(self) -> dict[tuple[str, ...], int]:
        with self._lock:
            return dict(self._counts)

    def collapsed(self) -> str:
        """Collapsed-stack text: one ``frame;frame;... count`` per line."""
        counts = self.stack_counts()
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(counts.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def span_samples(self) -> dict[str, int]:
        """Samples attributed to each enclosing trace span."""
        return span_samples_of(self.stack_counts())

    def hot_functions(
        self, n: int = 15, self_time: bool = True
    ) -> list[tuple[str, int, float]]:
        """Top frames by samples: ``(frame, samples, fraction)``.

        ``self_time=True`` counts only leaf occurrences (time spent *in*
        the frame); otherwise any occurrence on a sampled stack counts
        (inclusive time).
        """
        return hot_functions_of(self.stack_counts(), n=n, self_time=self_time)

    def flame_tree(self) -> dict[str, Any]:
        """Merge the collapsed stacks into one hierarchy for rendering."""
        return flame_tree_of(self.stack_counts())

    def summary(self) -> dict[str, Any]:
        duration = (self.stopped_s or time.perf_counter()) - self.started_s
        return {
            "hz": self.hz,
            "samples": self.sample_count,
            "unique_stacks": len(self.stack_counts()),
            "dropped_stacks": self.dropped_stacks,
            "duration_s": max(duration, 0.0),
            "span_samples": self.span_samples(),
        }

    # -- artifacts ---------------------------------------------------- #
    def write_collapsed(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.collapsed())

    def write_flamegraph(self, path: str, title: str = "repro profile") -> None:
        with open(path, "w") as handle:
            handle.write(render_flamegraph_html(self.flame_tree(), title))


# ------------------------------------------------------------------ #
# aggregation over collapsed stacks (live profiler or parsed-back file)
# ------------------------------------------------------------------ #
def parse_collapsed(text: str) -> dict[tuple[str, ...], int]:
    """Parse collapsed-stack text back into a ``{stack: count}`` dict.

    Inverse of :meth:`SamplingProfiler.collapsed`, so ``repro top`` and
    ``repro report`` can aggregate a run's profile from the artifact
    alone (including a live run's periodically flushed file).
    """
    counts: dict[tuple[str, ...], int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack_text, _, count_text = line.rpartition(" ")
        if not stack_text or not count_text.isdigit():
            continue
        key = tuple(stack_text.split(";"))
        counts[key] = counts.get(key, 0) + int(count_text)
    return counts


def span_samples_of(counts: dict[tuple[str, ...], int]) -> dict[str, int]:
    """Samples attributed to each enclosing trace span."""
    out: dict[str, int] = {}
    for stack, count in counts.items():
        root = stack[0]
        name = root[5:] if root.startswith("span:") else root
        out[name] = out.get(name, 0) + count
    return out


def hot_functions_of(
    counts: dict[tuple[str, ...], int], n: int = 15, self_time: bool = True
) -> list[tuple[str, int, float]]:
    """Top frames by samples: ``(frame, samples, fraction)``."""
    totals: dict[str, int] = {}
    grand = 0
    for stack, count in counts.items():
        grand += count
        frames = stack[1:] if stack[0].startswith("span:") else stack
        if not frames:
            continue
        if self_time:
            totals[frames[-1]] = totals.get(frames[-1], 0) + count
        else:
            for frame in set(frames):
                totals[frame] = totals.get(frame, 0) + count
    ranked = sorted(totals.items(), key=lambda kv: -kv[1])[:n]
    return [
        (frame, count, count / grand if grand else 0.0)
        for frame, count in ranked
    ]


def flame_tree_of(counts: dict[tuple[str, ...], int]) -> dict[str, Any]:
    """Merge collapsed stacks into one hierarchy for flamegraph rendering."""
    root: dict[str, Any] = {"name": "all", "value": 0, "children": {}}
    for stack, count in counts.items():
        root["value"] += count
        node = root
        for frame in stack:
            child = node["children"].get(frame)
            if child is None:
                child = {"name": frame, "value": 0, "children": {}}
                node["children"][frame] = child
            child["value"] += count
            node = child

    def listify(node: dict[str, Any]) -> dict[str, Any]:
        return {
            "name": node["name"],
            "value": node["value"],
            "children": [
                listify(child)
                for child in sorted(
                    node["children"].values(), key=lambda c: -c["value"]
                )
            ],
        }

    return listify(root)


# ------------------------------------------------------------------ #
# self-contained HTML flamegraph
# ------------------------------------------------------------------ #
_FLAME_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 1.5rem; color: #1a1a2e; }
#chart { position: relative; width: 100%; }
.frame { position: absolute; height: 17px; box-sizing: border-box;
         overflow: hidden; white-space: nowrap; font-size: 11px;
         line-height: 17px; padding: 0 3px; border: 1px solid #fff;
         border-radius: 2px; cursor: pointer; }
.frame:hover { filter: brightness(0.85); }
#status { margin: .6rem 0; font-size: .85rem; color: #4a4e69;
          min-height: 1.2em; }
#reset { font-size: .8rem; }
"""

_FLAME_JS = """
const chart = document.getElementById('chart');
const status = document.getElementById('status');
const ROW = 18;
function color(name) {
  if (name.startsWith('span:')) return '#8d99ae';
  let hash = 0;
  for (let i = 0; i < name.length; i++)
    hash = (hash * 31 + name.charCodeAt(i)) >>> 0;
  const hue = name.includes('repro/') ? 18 + hash % 30 : 200 + hash % 40;
  return `hsl(${hue}, 68%, ${60 + hash % 18}%)`;
}
function render(root) {
  chart.innerHTML = '';
  let maxDepth = 0;
  function place(node, depth, left, width) {
    maxDepth = Math.max(maxDepth, depth);
    const div = document.createElement('div');
    div.className = 'frame';
    div.style.left = (100 * left) + '%';
    div.style.width = Math.max(100 * width, 0.1) + '%';
    div.style.top = (depth * ROW) + 'px';
    div.style.background = color(node.name);
    const pct = (100 * node.value / DATA.value).toFixed(1);
    div.textContent = node.name;
    div.title = `${node.name} — ${node.value} samples (${pct}% of total)`;
    div.onclick = () => { render(node); status.textContent =
      `zoomed: ${node.name} (${node.value} samples, ${pct}%)`; };
    chart.appendChild(div);
    let offset = left;
    for (const child of node.children) {
      const w = width * child.value / node.value;
      place(child, depth + 1, offset, w);
      offset += w;
    }
  }
  place(root, 0, 0, 1);
  chart.style.height = ((maxDepth + 1) * ROW) + 'px';
}
document.getElementById('reset').onclick = () => {
  render(DATA); status.textContent = '';
};
render(DATA);
"""


def render_flamegraph_html(tree: dict[str, Any], title: str) -> str:
    """One self-contained HTML document rendering ``tree`` as a flamegraph."""
    return "\n".join([
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{escape(title)}</title>",
        f"<style>{_FLAME_CSS}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        f"<p>{tree.get('value', 0)} samples — click a frame to zoom "
        "<button id='reset'>reset</button></p>",
        "<div id='status'></div>",
        "<div id='chart'></div>",
        f"<script>const DATA = {json.dumps(tree)};{_FLAME_JS}</script>",
        "</body></html>",
    ])


# ------------------------------------------------------------------ #
# module-level singleton (one continuous profiler per process)
# ------------------------------------------------------------------ #
#: Artifact names inside a run directory.
COLLAPSED_FILE = "profile.collapsed.txt"
FLAMEGRAPH_FILE = "flamegraph.html"

#: Bounded: holds at most the one active profiler (see `stop`).
_ACTIVE: list[SamplingProfiler] = []


def start(
    hz: float = 100.0,
    output_dir: Optional[str] = None,
    flush_every_s: float = 2.0,
    on_flush: Optional[Callable[[], None]] = None,
) -> SamplingProfiler:
    """Start (or return) the process-wide continuous profiler."""
    if _ACTIVE:
        return _ACTIVE[0]
    profiler = SamplingProfiler(
        hz=hz, output_dir=output_dir,
        flush_every_s=flush_every_s, on_flush=on_flush,
    )
    _ACTIVE.append(profiler)
    profiler.start()
    return profiler


def stop() -> Optional[SamplingProfiler]:
    """Stop the process-wide profiler; returns it (or None if idle)."""
    if not _ACTIVE:
        return None
    profiler = _ACTIVE.pop()
    profiler.stop()
    return profiler


def active() -> Optional[SamplingProfiler]:
    return _ACTIVE[0] if _ACTIVE else None


def is_active() -> bool:
    return bool(_ACTIVE)
